"""Hybrid-rendering shadow rays through the predictor.

The paper's introduction motivates occlusion-ray acceleration with
hybrid pipelines that add ray-traced shadows to a raster base.  This
example generates one shadow ray per pixel toward a ceiling light, runs
baseline and predictor simulations, and writes the shadow mask as a PPM.

Run:
    python examples/shadow_rays.py [scene-code]
"""

import os
import sys

import numpy as np

from repro import (
    GPUConfig,
    PredictorConfig,
    build_bvh,
    get_scene,
    simulate_workload,
)
from repro.rays.shadows import generate_shadow_workload
from repro.render import write_ppm
from repro.trace import trace_occlusion_batch


def main() -> None:
    code = sys.argv[1] if len(sys.argv) > 1 else "CK"
    scene = get_scene(code)
    bvh = build_bvh(scene.mesh)
    workload = generate_shadow_workload(scene, bvh, width=96, height=96)
    print(f"{scene.name}: {len(workload)} shadow rays toward light "
          f"{tuple(round(c, 2) for c in workload.light)}")

    shadowed = trace_occlusion_batch(bvh, workload.rays)
    print(f"  {shadowed.mean():.0%} of visible pixels are in shadow")

    predictor = PredictorConfig(
        origin_bits=4, direction_bits=3, go_up_level=2,
        nodes_per_entry=2, extra_warps=4,
    )
    baseline = simulate_workload(bvh, workload.rays, GPUConfig())
    predicted = simulate_workload(bvh, workload.rays, GPUConfig(predictor=predictor))
    print(f"  baseline: {baseline.cycles} cycles; "
          f"predictor: {predicted.cycles} cycles "
          f"(speedup {baseline.cycles / predicted.cycles:.3f}x, "
          f"predicted {predicted.predicted_rate:.0%}, "
          f"verified {predicted.verified_rate:.0%})")

    image = np.ones(96 * 96)
    image[workload.pixel_index] = 1.0 - shadowed.astype(float) * 0.8
    os.makedirs("renders", exist_ok=True)
    path = f"renders/shadows_{code.lower()}.ppm"
    write_ppm(path, image.reshape(96, 96))
    print(f"  wrote {path}")


if __name__ == "__main__":
    main()
