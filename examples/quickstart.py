"""Quickstart: trace an AO workload with and without the ray predictor.

Builds the Crytek Sponza stand-in scene, generates ambient-occlusion
rays per the paper's Section 5.2 recipe, and runs both the baseline RT
unit and the predictor-augmented one, printing the headline numbers
(speedup, predicted/verified rates, memory-access reduction).

Run:
    python examples/quickstart.py [scene-code]
"""

import sys

from repro import (
    GPUConfig,
    PredictorConfig,
    build_bvh,
    generate_ao_workload,
    get_scene,
    simulate_workload,
)


def main() -> None:
    code = sys.argv[1] if len(sys.argv) > 1 else "SP"
    print(f"Building scene {code} ...")
    scene = get_scene(code)
    bvh = build_bvh(scene.mesh)
    print(f"  {scene.name}: {scene.num_triangles} triangles, "
          f"{bvh.num_nodes} BVH nodes, depth {bvh.max_depth()}")

    print("Generating AO rays (64x64 viewport, 4 spp) ...")
    workload = generate_ao_workload(scene, bvh, width=64, height=64, spp=4, seed=1)
    print(f"  {len(workload)} occlusion rays from "
          f"{workload.num_primary_hits} primary hits")

    # The predictor configuration: 1024-entry 4-way table (5.5 KB class),
    # Grid Spherical hash, Go Up Level 2, warp repacking + 4 extra warps.
    predictor = PredictorConfig(
        origin_bits=4,
        direction_bits=3,
        go_up_level=2,
        nodes_per_entry=2,
        extra_warps=4,
    )

    print("Simulating baseline RT unit ...")
    baseline = simulate_workload(bvh, workload.rays, GPUConfig())
    print(f"  {baseline.cycles} cycles, "
          f"{baseline.total_accesses} memory accesses, "
          f"L1 hit rate {baseline.l1_hit_rate:.2f}")

    print("Simulating RT unit + ray intersection predictor ...")
    predicted = simulate_workload(bvh, workload.rays, GPUConfig(predictor=predictor))
    print(f"  {predicted.cycles} cycles, "
          f"{predicted.total_accesses} memory accesses")
    print(f"  predicted rays: {predicted.predicted_rate:.1%}, "
          f"verified: {predicted.verified_rate:.1%}")

    speedup = baseline.cycles / predicted.cycles
    savings = 1.0 - predicted.total_accesses / baseline.total_accesses
    print()
    print(f"Speedup:                 {speedup:.3f}x")
    print(f"Memory-access reduction: {savings:.1%}")


if __name__ == "__main__":
    main()
