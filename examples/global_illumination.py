"""Section 6.4's extension: GI with predicted t-max trimming.

Path-traces a scene twice - once with the plain closest-hit tracer and
once with the predictor trimming each ray's maximum length - verifies
the images are identical (trimming is work-saving speculation, never an
approximation), and reports the traversal-work difference.  Writes both
renders as PPMs.

Run:
    python examples/global_illumination.py [scene-code]
"""

import os
import sys
import time

import numpy as np

from repro import PredictorConfig, build_bvh, get_scene, render_gi
from repro.render import write_ppm


def main() -> None:
    code = sys.argv[1] if len(sys.argv) > 1 else "LR"
    scene = get_scene(code)
    bvh = build_bvh(scene.mesh)
    print(f"{scene.name}: {scene.num_triangles} triangles")

    predictor = PredictorConfig(
        origin_bits=4, direction_bits=3, go_up_level=1, nodes_per_entry=1
    )

    print("Path tracing (3 bounces) without the predictor ...")
    start = time.time()
    plain = render_gi(scene, bvh, 48, 48, bounces=3, seed=7, use_predictor=False)
    print(f"  {plain.rays_traced} closest-hit rays, "
          f"{plain.stats.total_accesses} memory accesses "
          f"({time.time() - start:.1f}s)")

    print("Path tracing with predicted t-max trimming ...")
    start = time.time()
    predicted = render_gi(
        scene, bvh, 48, 48, bounces=3, seed=7, predictor_config=predictor
    )
    print(f"  {predicted.stats.total_accesses} memory accesses, "
          f"{predicted.predicted} predicted rays, "
          f"{predicted.trimmed} trimmed "
          f"({time.time() - start:.1f}s)")

    assert np.allclose(plain.image, predicted.image), "trimming changed the image!"
    delta = 1.0 - predicted.stats.total_accesses / plain.stats.total_accesses
    print(f"\nImages identical: yes")
    print(f"Traversal-access change: {delta:+.1%} "
          "(the paper reports +4% speedup at full scale)")

    os.makedirs("renders", exist_ok=True)
    write_ppm(f"renders/gi_{code.lower()}.ppm", plain.image)
    print(f"Wrote renders/gi_{code.lower()}.ppm")


if __name__ == "__main__":
    main()
