"""Explore the predictor's design space with the fast functional simulator.

Sweeps the knobs the paper studies - hash tightness (Table 8), Go Up
Level (Figure 14) and table geometry (Table 6) - using the timing-free
functional simulation, which is an order of magnitude faster than the
RT-unit model and reports predicted/verified rates and Equation 1's
memory-savings decomposition.

Run:
    python examples/predictor_tuning.py [scene-code]
"""

import sys

from repro import PredictorConfig, build_bvh, generate_ao_workload, get_scene
from repro.analysis.tables import format_table
from repro.core import simulate_predictor
from repro.core.model import estimate_nodes_skipped, inputs_from_simulation


def sweep(bvh, rays, configs, label):
    rows = []
    for name, config in configs:
        result = simulate_predictor(bvh, rays, config, keep_outcomes=True)
        eq = inputs_from_simulation(result)
        rows.append(
            [
                name,
                result.predicted_rate,
                result.verified_rate,
                result.memory_savings,
                estimate_nodes_skipped(eq),
                result.nodes_skipped_per_ray(),
            ]
        )
    print(
        format_table(
            [label, "Predicted", "Verified", "Mem savings", "Eq.1 est", "Actual"],
            rows,
        )
    )
    print()


def main() -> None:
    code = sys.argv[1] if len(sys.argv) > 1 else "LR"
    scene = get_scene(code)
    bvh = build_bvh(scene.mesh)
    rays = generate_ao_workload(scene, bvh, width=48, height=48, spp=4, seed=1).rays
    print(f"{scene.name}: {scene.num_triangles} triangles, {len(rays)} AO rays\n")

    base = dict(origin_bits=4, direction_bits=3, go_up_level=2, nodes_per_entry=2)

    print("--- Hash tightness (Table 8a's axis) ---")
    sweep(
        bvh, rays,
        [
            (f"origin={ob}, direction={db}",
             PredictorConfig(**{**base, "origin_bits": ob, "direction_bits": db}))
            for ob in (3, 4, 5)
            for db in (2, 3)
        ],
        "Grid Spherical bits",
    )

    print("--- Go Up Level (Figure 14's axis) ---")
    sweep(
        bvh, rays,
        [
            (f"level {k}", PredictorConfig(**{**base, "go_up_level": k}))
            for k in range(6)
        ],
        "Go Up Level",
    )

    print("--- Table geometry (Table 6's axes) ---")
    sweep(
        bvh, rays,
        [
            (f"{entries} entries x {nodes} node(s)",
             PredictorConfig(**{**base, "num_entries": entries,
                                "nodes_per_entry": nodes}))
            for entries in (512, 1024, 2048)
            for nodes in (1, 2)
        ],
        "Table geometry",
    )


if __name__ == "__main__":
    main()
