"""Render ambient-occlusion images for every benchmark scene.

Produces one PPM per scene under ``renders/`` plus a per-scene summary
of ray statistics - the visual counterpart of the workload the paper
evaluates on (crevices and contact regions darken).

Run:
    python examples/render_ao.py [--size 96] [--spp 4]
"""

import argparse
import os
import time

from repro import build_bvh, get_scene, render_ao
from repro.render import write_ppm
from repro.scenes import SCENE_CODES


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=96, help="viewport edge length")
    parser.add_argument("--spp", type=int, default=4, help="AO samples per pixel")
    parser.add_argument("--out", default="renders", help="output directory")
    args = parser.parse_args()

    os.makedirs(args.out, exist_ok=True)
    for code in SCENE_CODES:
        start = time.time()
        scene = get_scene(code)
        bvh = build_bvh(scene.mesh)
        result = render_ao(
            scene, bvh, width=args.size, height=args.size, spp=args.spp, seed=1
        )
        path = os.path.join(args.out, f"ao_{code.lower()}.ppm")
        write_ppm(path, result.image)
        occluded = result.hits.mean() if len(result.hits) else 0.0
        print(
            f"{scene.name:16s} -> {path}  "
            f"({len(result.workload)} rays, {occluded:.0%} occluded, "
            f"{time.time() - start:.1f}s)"
        )


if __name__ == "__main__":
    main()
