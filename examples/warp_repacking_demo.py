"""Demonstrate warp repacking's effect on the RT unit (Section 4.4).

Runs the same AO workload through the timing simulator under three
predictor variants - Default (no repacking), Repack, and Repack with
four additional warps - and prints the Figure 15-style comparison along
with SIMT-efficiency and DRAM statistics explaining the differences.

Run:
    python examples/warp_repacking_demo.py [scene-code]
"""

import sys

from repro import (
    GPUConfig,
    PredictorConfig,
    build_bvh,
    generate_ao_workload,
    get_scene,
    simulate_workload,
)
from repro.analysis.tables import format_table


def main() -> None:
    code = sys.argv[1] if len(sys.argv) > 1 else "BI"
    scene = get_scene(code)
    bvh = build_bvh(scene.mesh)
    rays = generate_ao_workload(scene, bvh, width=64, height=64, spp=4, seed=1).rays
    print(f"{scene.name}: {scene.num_triangles} triangles, {len(rays)} AO rays\n")

    base_predictor = PredictorConfig(
        origin_bits=4, direction_bits=3, go_up_level=2, nodes_per_entry=2
    )
    variants = [
        ("Baseline (no predictor)", None),
        ("Default (no repack)", base_predictor.with_overrides(repack=False)),
        ("Repack", base_predictor),
        ("Repack + 4 warps", base_predictor.with_overrides(extra_warps=4)),
    ]

    rows = []
    baseline_cycles = None
    for name, predictor in variants:
        out = simulate_workload(bvh, rays, GPUConfig(predictor=predictor))
        if baseline_cycles is None:
            baseline_cycles = out.cycles
        collector_warps = sum(r.collector_warps for r in out.per_sm)
        rows.append(
            [
                name,
                out.cycles,
                baseline_cycles / out.cycles,
                out.simt_efficiency,
                out.dram_bank_parallelism,
                collector_warps,
            ]
        )

    print(
        format_table(
            ["Variant", "Cycles", "Speedup", "SIMT eff", "DRAM bank par",
             "Collector warps"],
            rows,
        )
    )
    print(
        "\nRepacking separates predicted rays (via the partial warp "
        "collector) from\nunpredicted ones, so mispredicted long-tail "
        "threads stop delaying whole warps;\nadditional warps keep the "
        "unit full while predicted rays wait in the collector."
    )


if __name__ == "__main__":
    main()
