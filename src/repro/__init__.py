"""repro - reproduction of "Intersection Prediction for Accelerated GPU
Ray Tracing" (Liu et al., MICRO 2021).

The package implements the paper's ray intersection predictor and every
substrate it depends on, in pure Python:

* :mod:`repro.geometry` - vectors, boxes, triangles, intersection tests;
* :mod:`repro.scenes` - the seven stand-in benchmark scenes + OBJ I/O;
* :mod:`repro.bvh` - SAH/median/LBVH builders, flat Aila-Laine nodes;
* :mod:`repro.rays` - cameras, AO workload generation, Morton sorting;
* :mod:`repro.trace` - reference while-while traversal (Algorithm 1);
* :mod:`repro.core` - the predictor: hashing, table, Go Up Level,
  repacking, oracles, the Equation 1 model;
* :mod:`repro.gpu` - the warp-level RT-unit timing simulator;
* :mod:`repro.faults` - fault injection + the differential oracle that
  proves speculation never changes occlusion results;
* :mod:`repro.energy` - the Table 4 energy model;
* :mod:`repro.render` - AO renderer and the Section 6.4 GI extension;
* :mod:`repro.analysis` - experiment drivers for every table and figure;
* :mod:`repro.telemetry` - metrics registry, event tracer, and
  profiling hooks behind ``repro telemetry`` / ``REPRO_TELEMETRY=1``
  (see ``docs/OBSERVABILITY.md``).

Quickstart::

    from repro import build_bvh, get_scene, generate_ao_workload
    from repro import PredictorConfig, GPUConfig, simulate_workload

    scene = get_scene("SP")
    bvh = build_bvh(scene.mesh)
    rays = generate_ao_workload(scene, bvh, width=64, height=64, spp=4).rays
    baseline = simulate_workload(bvh, rays, GPUConfig())
    predicted = simulate_workload(
        bvh, rays, GPUConfig(predictor=PredictorConfig())
    )
    print(baseline.cycles / predicted.cycles)
"""

from repro.bvh import build_bvh, compute_stats, validate_bvh
from repro.bvh.validate import BVHValidationError
from repro.core import (
    OracleKind,
    PredictorConfig,
    RayPredictor,
    run_limit_study,
    simulate_predictor,
)
from repro.energy import EnergyModel
from repro.errors import (
    InputValidationError,
    OracleMismatchError,
    RayValidationError,
    ReproError,
    SceneLoadError,
    SimulationStallError,
    TraversalError,
    exit_code_for,
)
from repro.faults import (
    FaultConfig,
    FaultInjector,
    FaultyPredictor,
    run_differential_oracle,
)
from repro.geometry import AABB, Ray, RayBatch, Triangle, TriangleMesh
from repro.geometry.ray import RayBatchValidation, validate_ray_batch
from repro.gpu import GPUConfig, simulate_workload
from repro.rays import generate_ao_workload, morton_sort_rays
from repro.render import render_ao, render_gi
from repro.scenes import get_scene
from repro.telemetry import (
    enabled as telemetry_enabled,
    get_registry,
    get_tracer,
    label_context,
)
from repro.trace import occlusion_any_hit, closest_hit

__version__ = "1.0.0"

__all__ = [
    "AABB",
    "BVHValidationError",
    "FaultConfig",
    "FaultInjector",
    "FaultyPredictor",
    "InputValidationError",
    "OracleMismatchError",
    "RayBatchValidation",
    "RayValidationError",
    "ReproError",
    "SceneLoadError",
    "SimulationStallError",
    "TraversalError",
    "EnergyModel",
    "GPUConfig",
    "OracleKind",
    "PredictorConfig",
    "Ray",
    "RayBatch",
    "RayPredictor",
    "Triangle",
    "TriangleMesh",
    "build_bvh",
    "closest_hit",
    "compute_stats",
    "generate_ao_workload",
    "get_scene",
    "morton_sort_rays",
    "occlusion_any_hit",
    "render_ao",
    "render_gi",
    "run_limit_study",
    "simulate_predictor",
    "simulate_workload",
    "exit_code_for",
    "get_registry",
    "get_tracer",
    "label_context",
    "run_differential_oracle",
    "telemetry_enabled",
    "validate_bvh",
    "validate_ray_batch",
    "__version__",
]
