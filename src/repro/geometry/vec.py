"""Small 3-vector helpers on plain Python tuples.

Traversal inner loops call these millions of times; tuples of floats are
several times faster than numpy scalars at this granularity.  All functions
accept any indexable of three numbers and return plain tuples.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

Vec3 = Tuple[float, float, float]


def vec_add(a: Sequence[float], b: Sequence[float]) -> Vec3:
    """Component-wise sum ``a + b``."""
    return (a[0] + b[0], a[1] + b[1], a[2] + b[2])


def vec_sub(a: Sequence[float], b: Sequence[float]) -> Vec3:
    """Component-wise difference ``a - b``."""
    return (a[0] - b[0], a[1] - b[1], a[2] - b[2])


def vec_scale(a: Sequence[float], s: float) -> Vec3:
    """Scale vector ``a`` by scalar ``s``."""
    return (a[0] * s, a[1] * s, a[2] * s)


def vec_dot(a: Sequence[float], b: Sequence[float]) -> float:
    """Dot product of ``a`` and ``b``."""
    return a[0] * b[0] + a[1] * b[1] + a[2] * b[2]


def vec_cross(a: Sequence[float], b: Sequence[float]) -> Vec3:
    """Cross product ``a x b``."""
    return (
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    )


def vec_length(a: Sequence[float]) -> float:
    """Euclidean length of ``a``."""
    return math.sqrt(a[0] * a[0] + a[1] * a[1] + a[2] * a[2])


def vec_normalize(a: Sequence[float]) -> Vec3:
    """Unit vector in the direction of ``a``.

    Raises:
        ValueError: if ``a`` is the zero vector.
    """
    length = vec_length(a)
    if length == 0.0:
        raise ValueError("cannot normalize the zero vector")
    inv = 1.0 / length
    return (a[0] * inv, a[1] * inv, a[2] * inv)
