"""Morton (Z-order) codes.

Used in two places, mirroring the paper:

* the LBVH builder orders triangle centroids by Morton code, and
* ray sorting (Aila-Laine Morton-order quicksort, Section 5.2) orders AO
  rays to evaluate the "sorted rays" bars of Figure 12.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def _part1by2(x: np.ndarray) -> np.ndarray:
    """Spread the low 21 bits of ``x`` so there are two zero bits between each."""
    x = x.astype(np.uint64) & np.uint64(0x1FFFFF)
    x = (x | (x << np.uint64(32))) & np.uint64(0x1F00000000FFFF)
    x = (x | (x << np.uint64(16))) & np.uint64(0x1F0000FF0000FF)
    x = (x | (x << np.uint64(8))) & np.uint64(0x100F00F00F00F00F)
    x = (x | (x << np.uint64(4))) & np.uint64(0x10C30C30C30C30C3)
    x = (x | (x << np.uint64(2))) & np.uint64(0x1249249249249249)
    return x


def _compact1by2(x: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_part1by2`."""
    x = x.astype(np.uint64) & np.uint64(0x1249249249249249)
    x = (x | (x >> np.uint64(2))) & np.uint64(0x10C30C30C30C30C3)
    x = (x | (x >> np.uint64(4))) & np.uint64(0x100F00F00F00F00F)
    x = (x | (x >> np.uint64(8))) & np.uint64(0x1F0000FF0000FF)
    x = (x | (x >> np.uint64(16))) & np.uint64(0x1F00000000FFFF)
    x = (x | (x >> np.uint64(32))) & np.uint64(0x1FFFFF)
    return x


def morton_encode_3d(ix: int, iy: int, iz: int) -> int:
    """Interleave three non-negative integers (up to 21 bits each)."""
    parts = _part1by2(np.asarray([ix, iy, iz], dtype=np.uint64))
    return int(parts[0] | (parts[1] << np.uint64(1)) | (parts[2] << np.uint64(2)))


def morton_decode_3d(code: int) -> Tuple[int, int, int]:
    """Recover the three interleaved integers from a Morton code."""
    c = np.asarray([code, code >> 1, code >> 2], dtype=np.uint64)
    ix, iy, iz = (int(v) for v in _compact1by2(c))
    return ix, iy, iz


def morton_codes(points: np.ndarray, lo: np.ndarray, hi: np.ndarray, bits: int = 10) -> np.ndarray:
    """Morton codes for ``points`` quantized on a ``2^bits`` grid over ``[lo, hi]``.

    Args:
        points: array of shape ``(n, 3)``.
        lo, hi: bounding-box corners, shape ``(3,)``.
        bits: bits per axis (<= 21).

    Returns:
        uint64 array of shape ``(n,)``.
    """
    if bits < 1 or bits > 21:
        raise ValueError("bits must be in [1, 21]")
    points = np.asarray(points, dtype=np.float64)
    lo = np.asarray(lo, dtype=np.float64)
    hi = np.asarray(hi, dtype=np.float64)
    extent = np.where(hi > lo, hi - lo, 1.0)
    scale = float(2**bits - 1)
    quantized = np.clip((points - lo) / extent * scale, 0.0, scale).astype(np.uint64)
    return (
        _part1by2(quantized[:, 0])
        | (_part1by2(quantized[:, 1]) << np.uint64(1))
        | (_part1by2(quantized[:, 2]) << np.uint64(2))
    )
