"""Rays and ray batches.

Rays follow the paper's parameterization ``o + t * d`` with a valid
interval ``[t_min, t_max]``.  Occlusion (ambient-occlusion / shadow) rays
are distinguished only by how they are traced: any hit in the interval
terminates the search.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.geometry.vec import Vec3, vec_length, vec_normalize


@dataclass
class Ray:
    """A single ray ``origin + t * direction`` for ``t in [t_min, t_max]``.

    ``direction`` is not required to be unit length, but ray generation in
    :mod:`repro.rays` always produces normalized directions so that ``t``
    is a distance, matching the paper's 25-40 % bbox-diagonal ray lengths.
    """

    origin: Vec3
    direction: Vec3
    t_min: float = 0.0
    t_max: float = float("inf")

    def __post_init__(self) -> None:
        if self.t_min > self.t_max:
            raise ValueError(f"t_min ({self.t_min}) must be <= t_max ({self.t_max})")
        if vec_length(self.direction) == 0.0:
            raise ValueError("ray direction must be non-zero")

    def at(self, t: float) -> Vec3:
        """Point at parameter ``t``."""
        return (
            self.origin[0] + t * self.direction[0],
            self.origin[1] + t * self.direction[1],
            self.origin[2] + t * self.direction[2],
        )

    def normalized(self) -> "Ray":
        """Copy of the ray with a unit-length direction (same t interval)."""
        return Ray(self.origin, vec_normalize(self.direction), self.t_min, self.t_max)

    def inv_direction(self) -> Vec3:
        """Reciprocal direction for slab tests; zero components become +/-inf."""
        return (
            _safe_inverse(self.direction[0]),
            _safe_inverse(self.direction[1]),
            _safe_inverse(self.direction[2]),
        )


def _safe_inverse(x: float) -> float:
    """1/x with IEEE-style signed infinity at zero (slab-test convention)."""
    if x == 0.0:
        # Preserve the sign of the zero so the slab test degenerates cleanly.
        return math.copysign(math.inf, x)
    return 1.0 / x


class RayBatch:
    """Structure-of-arrays collection of rays.

    Attributes:
        origins: float64 array, shape ``(n, 3)``.
        directions: float64 array, shape ``(n, 3)`` (normalized by builders).
        t_min, t_max: float64 arrays, shape ``(n,)``.
    """

    def __init__(
        self,
        origins: np.ndarray,
        directions: np.ndarray,
        t_min: np.ndarray | float = 0.0,
        t_max: np.ndarray | float = np.inf,
    ) -> None:
        self.origins = np.asarray(origins, dtype=np.float64)
        self.directions = np.asarray(directions, dtype=np.float64)
        if self.origins.shape != self.directions.shape or self.origins.ndim != 2:
            raise ValueError("origins and directions must share shape (n, 3)")
        n = self.origins.shape[0]
        self.t_min = np.broadcast_to(np.asarray(t_min, dtype=np.float64), (n,)).copy()
        self.t_max = np.broadcast_to(np.asarray(t_max, dtype=np.float64), (n,)).copy()
        if np.any(self.t_min > self.t_max):
            raise ValueError("every ray must satisfy t_min <= t_max")

    def __len__(self) -> int:
        return self.origins.shape[0]

    def __getitem__(self, index: int) -> Ray:
        return Ray(
            tuple(self.origins[index]),
            tuple(self.directions[index]),
            float(self.t_min[index]),
            float(self.t_max[index]),
        )

    def __iter__(self) -> Iterator[Ray]:
        for i in range(len(self)):
            yield self[i]

    def subset(self, indices: Sequence[int] | np.ndarray) -> "RayBatch":
        """New batch containing the rays at ``indices`` (in that order)."""
        idx = np.asarray(indices, dtype=np.int64)
        return RayBatch(
            self.origins[idx], self.directions[idx], self.t_min[idx], self.t_max[idx]
        )

    @classmethod
    def concatenate(cls, batches: "list[RayBatch]") -> "RayBatch":
        """Concatenate several batches, preserving order."""
        if not batches:
            return cls(np.zeros((0, 3)), np.zeros((0, 3)))
        return cls(
            np.concatenate([b.origins for b in batches]),
            np.concatenate([b.directions for b in batches]),
            np.concatenate([b.t_min for b in batches]),
            np.concatenate([b.t_max for b in batches]),
        )
