"""Rays and ray batches.

Rays follow the paper's parameterization ``o + t * d`` with a valid
interval ``[t_min, t_max]``.  Occlusion (ambient-occlusion / shadow) rays
are distinguished only by how they are traced: any hit in the interval
terminates the search.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.errors import RayValidationError
from repro.geometry.vec import Vec3, vec_length, vec_normalize


@dataclass
class Ray:
    """A single ray ``origin + t * direction`` for ``t in [t_min, t_max]``.

    ``direction`` is not required to be unit length, but ray generation in
    :mod:`repro.rays` always produces normalized directions so that ``t``
    is a distance, matching the paper's 25-40 % bbox-diagonal ray lengths.
    """

    origin: Vec3
    direction: Vec3
    t_min: float = 0.0
    t_max: float = float("inf")

    def __post_init__(self) -> None:
        if self.t_min > self.t_max:
            raise ValueError(f"t_min ({self.t_min}) must be <= t_max ({self.t_max})")
        if vec_length(self.direction) == 0.0:
            raise ValueError("ray direction must be non-zero")

    def at(self, t: float) -> Vec3:
        """Point at parameter ``t``."""
        return (
            self.origin[0] + t * self.direction[0],
            self.origin[1] + t * self.direction[1],
            self.origin[2] + t * self.direction[2],
        )

    def normalized(self) -> "Ray":
        """Copy of the ray with a unit-length direction (same t interval)."""
        return Ray(self.origin, vec_normalize(self.direction), self.t_min, self.t_max)

    def inv_direction(self) -> Vec3:
        """Reciprocal direction for slab tests; zero components become +/-inf."""
        return (
            _safe_inverse(self.direction[0]),
            _safe_inverse(self.direction[1]),
            _safe_inverse(self.direction[2]),
        )


def _safe_inverse(x: float) -> float:
    """1/x with IEEE-style signed infinity at zero (slab-test convention)."""
    if x == 0.0:
        # Preserve the sign of the zero so the slab test degenerates cleanly.
        return math.copysign(math.inf, x)
    return 1.0 / x


class RayBatch:
    """Structure-of-arrays collection of rays.

    Attributes:
        origins: float64 array, shape ``(n, 3)``.
        directions: float64 array, shape ``(n, 3)`` (normalized by builders).
        t_min, t_max: float64 arrays, shape ``(n,)``.
    """

    def __init__(
        self,
        origins: np.ndarray,
        directions: np.ndarray,
        t_min: np.ndarray | float = 0.0,
        t_max: np.ndarray | float = np.inf,
    ) -> None:
        self.origins = np.asarray(origins, dtype=np.float64)
        self.directions = np.asarray(directions, dtype=np.float64)
        if self.origins.shape != self.directions.shape or self.origins.ndim != 2:
            raise ValueError("origins and directions must share shape (n, 3)")
        n = self.origins.shape[0]
        self.t_min = np.broadcast_to(np.asarray(t_min, dtype=np.float64), (n,)).copy()
        self.t_max = np.broadcast_to(np.asarray(t_max, dtype=np.float64), (n,)).copy()
        if np.any(self.t_min > self.t_max):
            raise ValueError("every ray must satisfy t_min <= t_max")

    def __len__(self) -> int:
        return self.origins.shape[0]

    def __getitem__(self, index: int) -> Ray:
        return Ray(
            tuple(self.origins[index]),
            tuple(self.directions[index]),
            float(self.t_min[index]),
            float(self.t_max[index]),
        )

    def __iter__(self) -> Iterator[Ray]:
        for i in range(len(self)):
            yield self[i]

    def subset(self, indices: Sequence[int] | np.ndarray) -> "RayBatch":
        """New batch containing the rays at ``indices`` (in that order)."""
        idx = np.asarray(indices, dtype=np.int64)
        return RayBatch(
            self.origins[idx], self.directions[idx], self.t_min[idx], self.t_max[idx]
        )

    def validate(self, mode: str = "filter") -> "Tuple[RayBatch, RayBatchValidation]":
        """Shorthand for :func:`validate_ray_batch` on this batch."""
        return validate_ray_batch(self, mode=mode)

    @classmethod
    def concatenate(cls, batches: "list[RayBatch]") -> "RayBatch":
        """Concatenate several batches, preserving order."""
        if not batches:
            return cls(np.zeros((0, 3)), np.zeros((0, 3)))
        return cls(
            np.concatenate([b.origins for b in batches]),
            np.concatenate([b.directions for b in batches]),
            np.concatenate([b.t_min for b in batches]),
            np.concatenate([b.t_max for b in batches]),
        )


@dataclass
class RayBatchValidation:
    """Counters from one :func:`validate_ray_batch` pass.

    A ray can trip several categories at once (e.g. a NaN origin *and* a
    zero direction); each counter tallies its category independently,
    while ``num_invalid`` counts distinct rays rejected.

    Attributes:
        total: rays inspected.
        nonfinite_origins: rays with a NaN/inf origin component.
        nonfinite_directions: rays with a NaN/inf direction component.
        zero_directions: rays whose direction is exactly zero length.
        invalid_intervals: rays with NaN bounds or ``t_min > t_max``.
        kept: boolean mask over the input batch (True = ray survived).
    """

    total: int = 0
    nonfinite_origins: int = 0
    nonfinite_directions: int = 0
    zero_directions: int = 0
    invalid_intervals: int = 0
    kept: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def num_invalid(self) -> int:
        """Distinct rays rejected."""
        if self.kept is None:
            return 0
        return int(self.total - int(np.count_nonzero(self.kept)))

    @property
    def ok(self) -> bool:
        """True when every ray passed."""
        return self.num_invalid == 0

    def summary(self) -> str:
        """One-line human-readable report."""
        if self.ok:
            return f"{self.total} rays valid"
        return (
            f"{self.num_invalid}/{self.total} rays invalid "
            f"(non-finite origins: {self.nonfinite_origins}, "
            f"non-finite directions: {self.nonfinite_directions}, "
            f"zero directions: {self.zero_directions}, "
            f"bad intervals: {self.invalid_intervals})"
        )


def validate_ray_batch(
    rays: RayBatch, mode: str = "filter"
) -> Tuple[RayBatch, RayBatchValidation]:
    """Screen a ray batch for NaN/inf and degenerate rays.

    This is the input-boundary guard for everything that traverses: a
    zero-length direction would raise deep inside :class:`Ray`
    construction, and NaN coordinates silently fail every slab test.
    Ray *generation* should never produce such rays, but fault injection
    (and real-world malformed inputs) can.

    Args:
        rays: the batch to screen.
        mode: ``"filter"`` returns a new batch with invalid rays removed
            (the original is untouched); ``"raise"`` raises
            :class:`~repro.errors.RayValidationError` if any ray is
            invalid; ``"report"`` returns the original batch unchanged
            and only fills in the counters.

    Returns:
        ``(batch, report)``; the batch is the filtered copy in
        ``"filter"`` mode, the input otherwise.

    Raises:
        RayValidationError: in ``"raise"`` mode, if any ray is invalid.
        ValueError: on an unknown ``mode``.
    """
    if mode not in ("filter", "raise", "report"):
        raise ValueError(f"unknown validation mode {mode!r}")
    n = len(rays)
    finite_o = np.isfinite(rays.origins).all(axis=1)
    finite_d = np.isfinite(rays.directions).all(axis=1)
    nonzero_d = np.any(rays.directions != 0.0, axis=1)
    # NaN comparisons are False, so check for NaN bounds explicitly.
    interval_ok = (
        ~np.isnan(rays.t_min) & ~np.isnan(rays.t_max) & (rays.t_min <= rays.t_max)
    )
    valid = finite_o & finite_d & nonzero_d & interval_ok

    report = RayBatchValidation(
        total=n,
        nonfinite_origins=int(np.count_nonzero(~finite_o)),
        nonfinite_directions=int(np.count_nonzero(~finite_d)),
        zero_directions=int(np.count_nonzero(finite_d & ~nonzero_d)),
        invalid_intervals=int(np.count_nonzero(~interval_ok)),
        kept=valid,
    )
    if mode == "raise" and not report.ok:
        raise RayValidationError(report.summary())
    if report.ok or mode == "report":
        return rays, report
    idx = np.nonzero(valid)[0]
    filtered = RayBatch(
        rays.origins[idx], rays.directions[idx], rays.t_min[idx], rays.t_max[idx]
    )
    return filtered, report
