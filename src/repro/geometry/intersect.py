"""Ray-box and ray-triangle intersection tests.

These are the two operations the paper's RT unit accelerates in hardware
(the Box Intersection Evaluators and Triangle Intersection Evaluators of
the NVIDIA RT Core, and the T&I engine's pipelined units).  The scalar
variants take unpacked floats so the traversal loop avoids per-call object
construction; the batch variants operate on numpy arrays.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

_EPS = 1e-12


def ray_aabb_intersect(
    ox: float,
    oy: float,
    oz: float,
    inv_dx: float,
    inv_dy: float,
    inv_dz: float,
    t_min: float,
    t_max: float,
    lo_x: float,
    lo_y: float,
    lo_z: float,
    hi_x: float,
    hi_y: float,
    hi_z: float,
) -> Tuple[bool, float]:
    """Slab test of a ray against an AABB.

    Returns ``(hit, t_entry)`` where ``t_entry`` is the parametric distance
    at which the ray enters the box (clamped to ``t_min``).  Traversal uses
    ``t_entry`` to visit the nearer child first.
    """
    tx1 = (lo_x - ox) * inv_dx
    tx2 = (hi_x - ox) * inv_dx
    if tx1 > tx2:
        tx1, tx2 = tx2, tx1
    ty1 = (lo_y - oy) * inv_dy
    ty2 = (hi_y - oy) * inv_dy
    if ty1 > ty2:
        ty1, ty2 = ty2, ty1
    tz1 = (lo_z - oz) * inv_dz
    tz2 = (hi_z - oz) * inv_dz
    if tz1 > tz2:
        tz1, tz2 = tz2, tz1

    t_near = max(tx1, ty1, tz1, t_min)
    t_far = min(tx2, ty2, tz2, t_max)
    return (t_near <= t_far, t_near)


def ray_triangle_intersect(
    ox: float,
    oy: float,
    oz: float,
    dx: float,
    dy: float,
    dz: float,
    t_min: float,
    t_max: float,
    v0: Tuple[float, float, float],
    v1: Tuple[float, float, float],
    v2: Tuple[float, float, float],
) -> Optional[float]:
    """Moeller-Trumbore ray-triangle test.

    Returns the hit parameter ``t`` in ``[t_min, t_max]``, or ``None`` if
    the ray misses.  Both triangle orientations count as hits (no
    back-face culling), matching occlusion-ray semantics.
    """
    e1x = v1[0] - v0[0]
    e1y = v1[1] - v0[1]
    e1z = v1[2] - v0[2]
    e2x = v2[0] - v0[0]
    e2y = v2[1] - v0[1]
    e2z = v2[2] - v0[2]

    # p = d x e2
    px = dy * e2z - dz * e2y
    py = dz * e2x - dx * e2z
    pz = dx * e2y - dy * e2x

    det = e1x * px + e1y * py + e1z * pz
    if -_EPS < det < _EPS:
        return None
    inv_det = 1.0 / det

    tx = ox - v0[0]
    ty = oy - v0[1]
    tz = oz - v0[2]
    u = (tx * px + ty * py + tz * pz) * inv_det
    if u < 0.0 or u > 1.0:
        return None

    # q = t x e1
    qx = ty * e1z - tz * e1y
    qy = tz * e1x - tx * e1z
    qz = tx * e1y - ty * e1x
    v = (dx * qx + dy * qy + dz * qz) * inv_det
    if v < 0.0 or u + v > 1.0:
        return None

    t = (e2x * qx + e2y * qy + e2z * qz) * inv_det
    if t < t_min or t > t_max:
        return None
    return t


def ray_aabb_intersect_batch(
    origins: np.ndarray,
    inv_directions: np.ndarray,
    t_min: np.ndarray,
    t_max: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
) -> np.ndarray:
    """Vectorized slab test of ``n`` rays against one box each.

    All ray arrays have shape ``(n, 3)`` / ``(n,)``; ``lo``/``hi`` may be a
    single box ``(3,)`` or per-ray boxes ``(n, 3)``.  Returns a boolean
    array of shape ``(n,)``.
    """
    with np.errstate(invalid="ignore"):
        t1 = (lo - origins) * inv_directions
        t2 = (hi - origins) * inv_directions
    t_near = np.maximum(np.minimum(t1, t2).max(axis=-1), t_min)
    t_far = np.minimum(np.maximum(t1, t2).min(axis=-1), t_max)
    return t_near <= t_far


def ray_triangle_intersect_batch(
    origins: np.ndarray,
    directions: np.ndarray,
    t_min: np.ndarray,
    t_max: np.ndarray,
    v0: np.ndarray,
    v1: np.ndarray,
    v2: np.ndarray,
) -> np.ndarray:
    """Vectorized Moeller-Trumbore test of ``n`` rays against one triangle each.

    Returns a float array of hit parameters with ``np.inf`` for misses.

    The arithmetic is spelled out component by component in exactly the
    evaluation order of the scalar :func:`ray_triangle_intersect`, so the
    two kernels produce bit-identical ``t`` values - the contract the
    wavefront engine's differential tests rely on.  (``np.cross`` /
    ``einsum`` reductions may associate sums differently and drift by an
    ulp.)
    """
    v0 = np.asarray(v0, dtype=np.float64)
    v1 = np.asarray(v1, dtype=np.float64)
    v2 = np.asarray(v2, dtype=np.float64)
    ox, oy, oz = origins[..., 0], origins[..., 1], origins[..., 2]
    dx, dy, dz = directions[..., 0], directions[..., 1], directions[..., 2]
    e1x = v1[..., 0] - v0[..., 0]
    e1y = v1[..., 1] - v0[..., 1]
    e1z = v1[..., 2] - v0[..., 2]
    e2x = v2[..., 0] - v0[..., 0]
    e2y = v2[..., 1] - v0[..., 1]
    e2z = v2[..., 2] - v0[..., 2]

    # p = d x e2
    px = dy * e2z - dz * e2y
    py = dz * e2x - dx * e2z
    pz = dx * e2y - dy * e2x

    det = e1x * px + e1y * py + e1z * pz
    near_zero = np.abs(det) < _EPS
    inv_det = 1.0 / np.where(near_zero, 1.0, det)

    tx = ox - v0[..., 0]
    ty = oy - v0[..., 1]
    tz = oz - v0[..., 2]
    u = (tx * px + ty * py + tz * pz) * inv_det

    # q = t x e1
    qx = ty * e1z - tz * e1y
    qy = tz * e1x - tx * e1z
    qz = tx * e1y - ty * e1x
    v = (dx * qx + dy * qy + dz * qz) * inv_det
    t = (e2x * qx + e2y * qy + e2z * qz) * inv_det

    hit = (
        ~near_zero
        & (u >= 0.0)
        & (u <= 1.0)
        & (v >= 0.0)
        & (u + v <= 1.0)
        & (t >= t_min)
        & (t <= t_max)
    )
    return np.where(hit, t, np.inf)
