"""Axis-aligned bounding boxes (AABBs).

BVH nodes bound geometry with AABBs; the predictor's Grid Hash quantizes
ray origins against the scene AABB.  The class is intentionally small and
immutable-ish: mutation happens through :meth:`AABB.grow_*` during BVH
construction only.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.geometry.vec import Vec3

_INF = math.inf


@dataclass
class AABB:
    """An axis-aligned box described by its two extreme corners.

    A default-constructed box is *empty* (inverted bounds); growing an empty
    box by a point yields the degenerate box containing just that point.
    """

    lo: Vec3 = field(default=(_INF, _INF, _INF))
    hi: Vec3 = field(default=(-_INF, -_INF, -_INF))

    @classmethod
    def from_points(cls, points: Iterable[Sequence[float]]) -> "AABB":
        """Smallest box containing every point in ``points``."""
        box = cls()
        for point in points:
            box.grow_point(point)
        return box

    def is_empty(self) -> bool:
        """True if the box contains no points (inverted bounds)."""
        return self.lo[0] > self.hi[0] or self.lo[1] > self.hi[1] or self.lo[2] > self.hi[2]

    def grow_point(self, p: Sequence[float]) -> None:
        """Expand the box to contain point ``p``."""
        self.lo = (min(self.lo[0], p[0]), min(self.lo[1], p[1]), min(self.lo[2], p[2]))
        self.hi = (max(self.hi[0], p[0]), max(self.hi[1], p[1]), max(self.hi[2], p[2]))

    def grow_aabb(self, other: "AABB") -> None:
        """Expand the box to contain ``other``."""
        self.grow_point(other.lo)
        self.grow_point(other.hi)

    def contains_point(self, p: Sequence[float], eps: float = 0.0) -> bool:
        """True if ``p`` lies inside the box, within tolerance ``eps``."""
        return (
            self.lo[0] - eps <= p[0] <= self.hi[0] + eps
            and self.lo[1] - eps <= p[1] <= self.hi[1] + eps
            and self.lo[2] - eps <= p[2] <= self.hi[2] + eps
        )

    def contains_aabb(self, other: "AABB", eps: float = 0.0) -> bool:
        """True if ``other`` lies entirely inside this box (within ``eps``)."""
        return self.contains_point(other.lo, eps) and self.contains_point(other.hi, eps)

    def center(self) -> Vec3:
        """Geometric center of the box."""
        return (
            0.5 * (self.lo[0] + self.hi[0]),
            0.5 * (self.lo[1] + self.hi[1]),
            0.5 * (self.lo[2] + self.hi[2]),
        )

    def extent(self) -> Vec3:
        """Edge lengths along each axis (zero for an empty box)."""
        if self.is_empty():
            return (0.0, 0.0, 0.0)
        return (self.hi[0] - self.lo[0], self.hi[1] - self.lo[1], self.hi[2] - self.lo[2])

    def diagonal_length(self) -> float:
        """Length of the main diagonal; the paper sizes AO rays from this."""
        ex, ey, ez = self.extent()
        return math.sqrt(ex * ex + ey * ey + ez * ez)

    def max_extent(self) -> float:
        """Length of the longest edge; the Two Point hash uses this."""
        return max(self.extent())

    def longest_axis(self) -> int:
        """Index (0/1/2) of the axis with the largest extent."""
        ex = self.extent()
        return max(range(3), key=lambda axis: ex[axis])

    def surface_area(self) -> float:
        """Total surface area (0 for an empty box); used by the SAH builder."""
        if self.is_empty():
            return 0.0
        ex, ey, ez = self.extent()
        return 2.0 * (ex * ey + ey * ez + ez * ex)


def aabb_union(a: AABB, b: AABB) -> AABB:
    """Smallest box containing both ``a`` and ``b``."""
    out = AABB(a.lo, a.hi)
    out.grow_aabb(b)
    return out


def aabb_surface_area(lo: Sequence[float], hi: Sequence[float]) -> float:
    """Surface area from raw corner tuples (fast path for the SAH builder)."""
    ex = hi[0] - lo[0]
    ey = hi[1] - lo[1]
    ez = hi[2] - lo[2]
    if ex < 0.0 or ey < 0.0 or ez < 0.0:
        return 0.0
    return 2.0 * (ex * ey + ey * ez + ez * ex)
