"""Triangles and triangle meshes.

A :class:`TriangleMesh` is the structure-of-arrays form consumed by the BVH
builder and the traversal kernels; :class:`Triangle` is a convenience view
for scalar code and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.geometry.aabb import AABB
from repro.geometry.vec import Vec3, vec_cross, vec_sub


@dataclass(frozen=True)
class Triangle:
    """A single triangle with vertices ``v0``, ``v1``, ``v2``."""

    v0: Vec3
    v1: Vec3
    v2: Vec3

    def aabb(self) -> AABB:
        """Bounding box of the triangle."""
        return AABB.from_points([self.v0, self.v1, self.v2])

    def centroid(self) -> Vec3:
        """Centroid (average of the three vertices)."""
        third = 1.0 / 3.0
        return (
            (self.v0[0] + self.v1[0] + self.v2[0]) * third,
            (self.v0[1] + self.v1[1] + self.v2[1]) * third,
            (self.v0[2] + self.v1[2] + self.v2[2]) * third,
        )

    def normal(self) -> Vec3:
        """Unnormalized geometric normal ``(v1-v0) x (v2-v0)``."""
        return vec_cross(vec_sub(self.v1, self.v0), vec_sub(self.v2, self.v0))

    def area(self) -> float:
        """Surface area of the triangle."""
        n = self.normal()
        return 0.5 * (n[0] * n[0] + n[1] * n[1] + n[2] * n[2]) ** 0.5


class TriangleMesh:
    """Structure-of-arrays triangle soup.

    Attributes:
        v0, v1, v2: float64 arrays of shape ``(n, 3)`` with the vertices of
            each triangle.
    """

    def __init__(self, v0: np.ndarray, v1: np.ndarray, v2: np.ndarray) -> None:
        v0 = np.asarray(v0, dtype=np.float64)
        v1 = np.asarray(v1, dtype=np.float64)
        v2 = np.asarray(v2, dtype=np.float64)
        if v0.shape != v1.shape or v1.shape != v2.shape:
            raise ValueError("vertex arrays must have identical shapes")
        if v0.ndim != 2 or v0.shape[1] != 3:
            raise ValueError("vertex arrays must have shape (n, 3)")
        self.v0 = v0
        self.v1 = v1
        self.v2 = v2

    def __len__(self) -> int:
        return self.v0.shape[0]

    def __getitem__(self, index: int) -> Triangle:
        return Triangle(
            tuple(self.v0[index]), tuple(self.v1[index]), tuple(self.v2[index])
        )

    @classmethod
    def from_vertices_faces(cls, vertices: np.ndarray, faces: np.ndarray) -> "TriangleMesh":
        """Build from an indexed representation (``vertices[faces]``)."""
        vertices = np.asarray(vertices, dtype=np.float64)
        faces = np.asarray(faces, dtype=np.int64)
        if faces.ndim != 2 or faces.shape[1] != 3:
            raise ValueError("faces must have shape (n, 3)")
        return cls(vertices[faces[:, 0]], vertices[faces[:, 1]], vertices[faces[:, 2]])

    @classmethod
    def concatenate(cls, meshes: "list[TriangleMesh]") -> "TriangleMesh":
        """Concatenate several meshes into one soup."""
        if not meshes:
            return cls(np.zeros((0, 3)), np.zeros((0, 3)), np.zeros((0, 3)))
        return cls(
            np.concatenate([m.v0 for m in meshes]),
            np.concatenate([m.v1 for m in meshes]),
            np.concatenate([m.v2 for m in meshes]),
        )

    def centroids(self) -> np.ndarray:
        """Per-triangle centroids, shape ``(n, 3)``."""
        return (self.v0 + self.v1 + self.v2) / 3.0

    def bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-triangle AABB corners ``(lo, hi)``, each shape ``(n, 3)``."""
        lo = np.minimum(np.minimum(self.v0, self.v1), self.v2)
        hi = np.maximum(np.maximum(self.v0, self.v1), self.v2)
        return lo, hi

    def scene_aabb(self) -> AABB:
        """Bounding box of the whole mesh."""
        if len(self) == 0:
            return AABB()
        lo, hi = self.bounds()
        return AABB(tuple(lo.min(axis=0)), tuple(hi.max(axis=0)))

    def transformed(self, scale: float = 1.0, translate: Tuple[float, float, float] = (0.0, 0.0, 0.0)) -> "TriangleMesh":
        """Return a uniformly scaled and translated copy."""
        offset = np.asarray(translate, dtype=np.float64)
        return TriangleMesh(
            self.v0 * scale + offset, self.v1 * scale + offset, self.v2 * scale + offset
        )
