"""Geometry kernel: vectors, boxes, triangles, rays, and intersection tests.

This package is the lowest layer of the reproduction.  Everything above it
(BVH construction, traversal, the predictor, the RT-unit timing model)
consumes these primitives.  Two styles are provided throughout:

* scalar functions on plain Python floats/tuples, used by the traversal
  inner loops where per-call numpy overhead would dominate, and
* numpy-batched functions, used by ray generation, renderers and tests.
"""

from repro.geometry.aabb import AABB, aabb_surface_area, aabb_union
from repro.geometry.intersect import (
    ray_aabb_intersect,
    ray_aabb_intersect_batch,
    ray_triangle_intersect,
    ray_triangle_intersect_batch,
)
from repro.geometry.morton import morton_decode_3d, morton_encode_3d, morton_codes
from repro.geometry.ray import Ray, RayBatch, RayBatchValidation, validate_ray_batch
from repro.geometry.triangle import Triangle, TriangleMesh
from repro.geometry.vec import (
    vec_add,
    vec_cross,
    vec_dot,
    vec_length,
    vec_normalize,
    vec_scale,
    vec_sub,
)

__all__ = [
    "AABB",
    "Ray",
    "RayBatch",
    "RayBatchValidation",
    "validate_ray_batch",
    "Triangle",
    "TriangleMesh",
    "aabb_surface_area",
    "aabb_union",
    "morton_codes",
    "morton_decode_3d",
    "morton_encode_3d",
    "ray_aabb_intersect",
    "ray_aabb_intersect_batch",
    "ray_triangle_intersect",
    "ray_triangle_intersect_batch",
    "vec_add",
    "vec_cross",
    "vec_dot",
    "vec_length",
    "vec_normalize",
    "vec_scale",
    "vec_sub",
]
