"""Schema validation for ``telemetry.json`` artifacts.

The layout contract (schema tag ``repro-telemetry/1``) is documented in
``docs/OBSERVABILITY.md``; the CI ``telemetry-smoke`` step runs
``repro telemetry --quick --check``, which validates the freshly
emitted payload with :func:`validate_telemetry`.  Validation returns
human-readable problem strings instead of raising, matching the bench
harness's regression-gate style.
"""

from __future__ import annotations

from typing import List

#: Artifact schema identifier; bump on incompatible layout changes.
TELEMETRY_SCHEMA = "repro-telemetry/1"

#: Counter families a workload run must have recorded (the acceptance
#: surface: prediction outcomes, traffic, and cache behaviour).
REQUIRED_COUNTERS = (
    "predictor.rays",
    "predictor.predicted",
    "predictor.verified",
    "predictor.mispredicted",
    "predictor.node_fetches",
    "trace.node_fetches",
    "cache.accesses",
    "cache.hits",
    "cache.misses",
)

#: Top-level keys every payload must carry.
REQUIRED_KEYS = (
    "schema", "scene", "preset", "metrics", "spans", "phases",
    "trace_events",
)

_VALID_PHASES = {"X", "i", "M"}


def _check_metrics(metrics, problems: List[str]) -> None:
    if not isinstance(metrics, dict):
        problems.append("metrics: expected an object")
        return
    for section in ("counters", "gauges", "histograms"):
        entries = metrics.get(section)
        if not isinstance(entries, list):
            problems.append(f"metrics.{section}: expected a list")
            continue
        for i, entry in enumerate(entries):
            where = f"metrics.{section}[{i}]"
            if not isinstance(entry, dict):
                problems.append(f"{where}: expected an object")
                continue
            if not isinstance(entry.get("name"), str):
                problems.append(f"{where}: missing string 'name'")
            if not isinstance(entry.get("labels"), dict):
                problems.append(f"{where}: missing object 'labels'")
            if section == "counters":
                value = entry.get("value")
                if not isinstance(value, int) or value < 0:
                    problems.append(
                        f"{where}: counter value must be a non-negative "
                        f"integer, got {value!r}"
                    )
            elif section == "gauges":
                if not isinstance(entry.get("value"), (int, float)):
                    problems.append(f"{where}: gauge value must be numeric")
            else:
                buckets = entry.get("buckets")
                if not isinstance(buckets, list) or not buckets:
                    problems.append(f"{where}: histogram needs buckets")
                elif buckets[-1].get("le") != "inf":
                    problems.append(
                        f"{where}: last histogram bucket must be 'inf'"
                    )


def _check_trace_events(events, problems: List[str]) -> None:
    if not isinstance(events, list):
        problems.append("trace_events: expected a list")
        return
    if not events:
        problems.append("trace_events: empty (no spans were recorded)")
        return
    for i, ev in enumerate(events):
        where = f"trace_events[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: expected an object")
            continue
        if not isinstance(ev.get("name"), str):
            problems.append(f"{where}: missing string 'name'")
        phase = ev.get("ph")
        if phase not in _VALID_PHASES:
            problems.append(f"{where}: invalid phase {phase!r}")
        if not isinstance(ev.get("pid"), int) or not isinstance(
            ev.get("tid"), int
        ):
            problems.append(f"{where}: pid/tid must be integers")
        if phase == "M":
            continue  # metadata records carry no timestamp
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: 'ts' must be a non-negative number")
        if phase == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(
                    f"{where}: complete event needs non-negative 'dur'"
                )


def _counter_totals(metrics: dict) -> dict:
    totals: dict = {}
    for entry in metrics.get("counters", []):
        if isinstance(entry, dict) and isinstance(entry.get("value"), int):
            totals[entry.get("name")] = (
                totals.get(entry.get("name"), 0) + entry["value"]
            )
    return totals


def validate_telemetry(payload: dict) -> List[str]:
    """Validate a ``telemetry.json`` payload against the documented schema.

    Returns:
        Human-readable problems; an empty list means the payload is
        valid.  Beyond structure, this checks the predictor accounting
        invariant the 7-scene smoke test relies on:
        ``verified + mispredicted + unpredicted == rays`` and
        ``verified + mispredicted == predicted``.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["payload: expected a JSON object"]
    schema = payload.get("schema")
    if schema != TELEMETRY_SCHEMA:
        problems.append(
            f"schema: expected {TELEMETRY_SCHEMA!r}, got {schema!r}"
        )
    for key in REQUIRED_KEYS:
        if key not in payload:
            problems.append(f"missing required key {key!r}")

    metrics = payload.get("metrics", {})
    _check_metrics(metrics, problems)
    _check_trace_events(payload.get("trace_events"), problems)

    spans = payload.get("spans")
    if not isinstance(spans, dict):
        problems.append("spans: expected an object")
    else:
        for name, summary in spans.items():
            if not isinstance(summary, dict) or "count" not in summary or (
                "total_ms" not in summary
            ):
                problems.append(
                    f"spans[{name!r}]: needs 'count' and 'total_ms'"
                )

    if isinstance(metrics, dict):
        totals = _counter_totals(metrics)
        for name in REQUIRED_COUNTERS:
            if name not in totals:
                problems.append(f"metrics: required counter {name!r} missing")
        if all(
            k in totals
            for k in ("predictor.rays", "predictor.predicted",
                      "predictor.verified", "predictor.mispredicted",
                      "predictor.unpredicted")
        ):
            rays = totals["predictor.rays"]
            predicted = totals["predictor.predicted"]
            verified = totals["predictor.verified"]
            mispredicted = totals["predictor.mispredicted"]
            unpredicted = totals["predictor.unpredicted"]
            if verified + mispredicted != predicted:
                problems.append(
                    "predictor accounting: verified + mispredicted "
                    f"({verified} + {mispredicted}) != predicted ({predicted})"
                )
            if predicted + unpredicted != rays:
                problems.append(
                    "predictor accounting: predicted + unpredicted "
                    f"({predicted} + {unpredicted}) != rays ({rays})"
                )
    return problems


__all__ = ["REQUIRED_COUNTERS", "REQUIRED_KEYS", "TELEMETRY_SCHEMA",
           "validate_telemetry"]
