"""Profiling hooks: per-phase wall/CPU timing and a sampling profiler.

Two opt-in layers on top of the metrics/tracing pillars:

* :class:`PhaseTimer` - coarse per-phase wall *and* CPU time, cheap
  enough to leave on for every benchmark run; the bench harness embeds
  its report in the ``telemetry`` section of ``BENCH_*.json``.
* :class:`SamplingProfiler` - a zero-dependency statistical profiler: a
  background thread snapshots the target thread's stack via
  ``sys._current_frames()`` at a fixed interval and aggregates collapsed
  stacks.  Overhead scales with the sampling rate, not with the profiled
  code, so it is safe on the simulator's Python-heavy hot paths where a
  deterministic tracer (``cProfile``) would distort timings badly.
"""

from __future__ import annotations

import logging
import sys
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class PhaseRecord:
    """Accumulated timing of one named phase."""

    wall_s: float = 0.0
    cpu_s: float = 0.0
    count: int = 0


@dataclass
class PhaseTimer:
    """Accumulates wall and CPU time per named phase.

    Phases may nest; each level accounts its own full duration (no
    self-time subtraction), mirroring span semantics.
    """

    phases: Dict[str, PhaseRecord] = field(default_factory=dict)

    @contextmanager
    def phase(self, name: str):
        """Time a ``with`` block under ``name``."""
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        try:
            yield
        finally:
            record = self.phases.setdefault(name, PhaseRecord())
            record.wall_s += time.perf_counter() - wall0
            record.cpu_s += time.process_time() - cpu0
            record.count += 1

    def report(self) -> Dict[str, dict]:
        """JSON-friendly per-phase report, insertion-ordered."""
        return {
            name: {
                "wall_s": round(rec.wall_s, 6),
                "cpu_s": round(rec.cpu_s, 6),
                "count": rec.count,
            }
            for name, rec in self.phases.items()
        }

    def reset(self) -> None:
        self.phases.clear()


class SamplingProfiler:
    """Periodic stack sampler for one thread (default: the caller's).

    Usage::

        profiler = SamplingProfiler(interval_s=0.005)
        profiler.start()
        ...workload...
        profiler.stop()
        for stack, count in profiler.top(10):
            print(count, stack)

    Stacks are collapsed to ``module:function`` frames joined with
    ``;`` (leaf last), the flamegraph-friendly folded format.
    """

    def __init__(self, interval_s: float = 0.005, max_depth: int = 64) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.interval_s = interval_s
        self.max_depth = max_depth
        self.samples: Dict[str, int] = {}
        self.total_samples = 0
        self._target_tid: Optional[int] = None
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    def start(self, target_tid: Optional[int] = None) -> None:
        """Begin sampling ``target_tid`` (default: the calling thread)."""
        if self._thread is not None:
            raise RuntimeError("profiler already running")
        self._target_tid = target_tid or threading.get_ident()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._sample_loop, name="repro-profiler", daemon=True
        )
        self._thread.start()

    def stop(self, join_timeout_s: float = 2.0, raise_on_leak: bool = True) -> None:
        """Stop sampling (idempotent).

        The sampler thread normally exits within one interval.  If it is
        still alive after ``join_timeout_s`` something is genuinely wrong
        (the loop is wedged inside ``sys._current_frames``); leaking it
        silently would let a daemon thread keep mutating ``samples``
        behind the caller's back, so the leak is reported: a warning is
        logged and, with ``raise_on_leak`` (the default), a
        :class:`RuntimeError` is raised.  ``raise_on_leak=False`` keeps
        the diagnostic but suppresses the exception, for teardown paths
        that are already unwinding another error.
        """
        if self._thread is None:
            return
        self._stop.set()
        thread = self._thread
        thread.join(timeout=join_timeout_s)
        self._thread = None
        if thread.is_alive():
            message = (
                f"SamplingProfiler thread {thread.name!r} did not stop "
                f"within {join_timeout_s:.1f}s; daemon thread leaked and "
                "its samples are no longer trustworthy"
            )
            logging.getLogger(__name__).warning(message)
            if raise_on_leak:
                raise RuntimeError(message)

    @contextmanager
    def profile(self):
        """Context-manager form: sample the enclosed block."""
        self.start()
        try:
            yield self
        except BaseException:
            # Don't let a leak diagnostic mask the workload's own error;
            # the warning is still logged.
            self.stop(raise_on_leak=False)
            raise
        else:
            self.stop()

    def __enter__(self) -> "SamplingProfiler":
        """``with SamplingProfiler() as p:`` - same contract as
        :meth:`profile`: the sampler always stops on the way out, and a
        failing block keeps its partial samples (the leak diagnostic
        never masks the workload's own exception)."""
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(raise_on_leak=exc_type is None)

    # ------------------------------------------------------------------
    def _sample_loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            frame = sys._current_frames().get(self._target_tid)
            if frame is None:
                continue
            stack: List[str] = []
            depth = 0
            while frame is not None and depth < self.max_depth:
                code = frame.f_code
                module = code.co_filename.rsplit("/", 1)[-1]
                stack.append(f"{module}:{code.co_name}")
                frame = frame.f_back
                depth += 1
            key = ";".join(reversed(stack))
            self.samples[key] = self.samples.get(key, 0) + 1
            self.total_samples += 1

    # ------------------------------------------------------------------
    def top(self, n: int = 20) -> List[Tuple[str, int]]:
        """The ``n`` hottest collapsed stacks, descending by samples."""
        return sorted(self.samples.items(), key=lambda kv: -kv[1])[:n]

    def hot_functions(self, n: int = 15) -> List[Tuple[str, int]]:
        """Leaf-frame aggregation: where time is actually spent."""
        leaves: Dict[str, int] = {}
        for stack, count in self.samples.items():
            leaf = stack.rsplit(";", 1)[-1]
            leaves[leaf] = leaves.get(leaf, 0) + count
        return sorted(leaves.items(), key=lambda kv: -kv[1])[:n]

    def report(self, n: int = 15) -> dict:
        """JSON-friendly profile summary."""
        return {
            "interval_s": self.interval_s,
            "total_samples": self.total_samples,
            "hot_functions": [
                {"frame": frame, "samples": count}
                for frame, count in self.hot_functions(n)
            ],
            "hot_stacks": [
                {"stack": stack, "samples": count}
                for stack, count in self.top(n)
            ],
        }


__all__ = ["PhaseRecord", "PhaseTimer", "SamplingProfiler"]
