"""Cross-process telemetry: ship worker state home, merge it losslessly.

The sharded execution paths (``repro bench --jobs N``,
``repro simulate --jobs N``, ``simulate_workload(sm_jobs=N)``) run each
unit inside a ``ProcessPoolExecutor`` worker.  Telemetry state is
process-global, so before this module existed every counter increment,
histogram observation, and span recorded inside a worker died with the
worker - the parent's artifact silently showed only parent-side work.

The fix is a snapshot/absorb pair riding the existing result path:

* the worker calls :func:`init_worker` first (fork inherits the
  parent's live registry, so the worker *must* reset before recording),
  runs its unit, then returns :func:`capture_snapshot` alongside its
  normal result payload;
* the parent calls :func:`absorb_snapshot` on each returned snapshot,
  in a deterministic order (scene order on the plain path, completion
  order with per-unit labels on the resilient path), merging counters
  by label-preserving addition, histograms by raw-bucket union
  (:meth:`~repro.telemetry.metrics.Histogram.add_raw`), and gauges by
  last-write-wins - the same semantics a serial run would produce;
* :func:`stitched_chrome_trace` renders the parent's events plus every
  absorbed worker's events under the worker's original ``pid``, so one
  ``trace.json`` shows the whole sharded sweep as separate process rows.

Snapshots are plain JSON-safe dicts (schema :data:`SNAPSHOT_SCHEMA`),
so they cross the pickle boundary cheaply and can be embedded in
artifacts verbatim.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from repro import telemetry
from repro.telemetry.metrics import MetricError, Registry
from repro.telemetry.tracing import (
    TraceEvent,
    chrome_trace_events,
    summarize_spans,
)

#: Schema tag stamped on every worker snapshot.
SNAPSHOT_SCHEMA = "repro-telemetry-worker/1"


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def init_worker(
    enabled: bool,
    ambient_labels: Optional[Dict[str, str]] = None,
) -> None:
    """Prepare a pool worker's telemetry state before it runs a unit.

    With ``enabled=False`` this forces telemetry off (cheap no-op paths
    for the whole unit).  With ``enabled=True`` it enables *and resets*:
    on Linux the default ``fork`` start method clones the parent's live
    registry and ring buffer into the child, and without the reset the
    worker's snapshot would double-count everything the parent had
    already recorded at fork time.  ``ambient_labels`` re-establishes
    the parent's label context (e.g. a sweep-level ``run`` label) that
    the reset just cleared.
    """
    if not enabled:
        telemetry.disable()
        return
    telemetry.enable(reset=True)
    if ambient_labels:
        # Re-pin the parent's ambient labels for the worker's lifetime.
        # The worker process is single-unit and exits afterwards, so the
        # context is deliberately never popped.
        telemetry._CONTEXT_LABELS.append(
            {k: str(v) for k, v in ambient_labels.items()}
        )


def capture_snapshot(unit: Optional[str] = None) -> Optional[dict]:
    """Serialize this process's telemetry state for transport.

    Returns ``None`` when telemetry is off (the common case - callers
    ship it as-is and the parent skips ``None`` snapshots).  The dict is
    JSON-safe: metrics via :meth:`Registry.snapshot`, trace events via
    :meth:`TraceEvent.to_dict`, plus the phase-timer report and enough
    identity (``pid``, ``unit``) for trace stitching and diagnostics.
    """
    if not telemetry.enabled():
        return None
    tracer = telemetry.get_tracer()
    return {
        "schema": SNAPSHOT_SCHEMA,
        "pid": os.getpid(),
        "unit": unit,
        "metrics": telemetry.get_registry().snapshot(),
        "events": [ev.to_dict() for ev in tracer.events()],
        "dropped_events": tracer.dropped,
        "phases": telemetry.get_phase_timer().report(),
    }


# ----------------------------------------------------------------------
# Parent side: merging
# ----------------------------------------------------------------------
def _decumulate(buckets: List[dict]) -> List[int]:
    """Raw per-bucket counts from exported cumulative ``le`` buckets."""
    raw: List[int] = []
    previous = 0
    for bucket in buckets:
        count = int(bucket["count"])
        raw.append(count - previous)
        previous = count
    return raw


def _snapshot_edges(buckets: List[dict]) -> tuple:
    """The finite bucket edges encoded in an exported histogram."""
    return tuple(
        float(b["le"]) for b in buckets if b["le"] != "inf"
    )


def merge_metrics(registry: Registry, metrics: dict) -> None:
    """Merge one exported :meth:`Registry.snapshot` into ``registry``.

    * counters: label-preserving addition;
    * gauges: last-write-wins (matching serial semantics, where the
      later unit's ``set`` overwrites the earlier one's);
    * histograms: raw-bucket union via :meth:`Histogram.add_raw`.

    Collisions are surfaced, never papered over: a name registered as a
    different kind, or a histogram arriving with different bucket
    edges, raises :class:`~repro.telemetry.metrics.MetricError`.
    """
    for entry in metrics.get("counters", ()):
        registry.counter(entry["name"], **entry["labels"]).inc(
            int(entry["value"])
        )
    for entry in metrics.get("gauges", ()):
        registry.gauge(entry["name"], **entry["labels"]).set(entry["value"])
    for entry in metrics.get("histograms", ()):
        edges = _snapshot_edges(entry["buckets"])
        if not edges:
            raise MetricError(
                f"histogram {entry['name']!r} snapshot has no finite edges"
            )
        local = registry.histogram(
            entry["name"], buckets=edges, **entry["labels"]
        )
        local.add_raw(
            _decumulate(entry["buckets"]),
            int(entry["count"]),
            float(entry["sum"]),
            float(entry["min"]),
            float(entry["max"]),
        )


def absorb_snapshot(snapshot: Optional[dict]) -> bool:
    """Fold a worker snapshot into this process's global telemetry.

    Merges the metrics into the global registry and stores the snapshot
    for trace stitching / span summaries.  Returns whether anything was
    absorbed (``None`` - the worker ran with telemetry off - is a
    no-op).  Safe to call with telemetry currently disabled: absorbing
    is an explicit parent-side decision, not a hot-path hook.
    """
    if snapshot is None:
        return False
    schema = snapshot.get("schema")
    if schema != SNAPSHOT_SCHEMA:
        raise MetricError(
            f"unrecognized worker telemetry snapshot schema {schema!r} "
            f"(expected {SNAPSHOT_SCHEMA!r})"
        )
    merge_metrics(telemetry.get_registry(), snapshot.get("metrics", {}))
    telemetry._append_worker_snapshot(snapshot)
    return True


# ----------------------------------------------------------------------
# Parent side: reading the merged picture
# ----------------------------------------------------------------------
def _worker_events(snapshot: dict) -> List[TraceEvent]:
    return [TraceEvent.from_dict(d) for d in snapshot.get("events", ())]


def merged_span_summary() -> Dict[str, dict]:
    """Per-stage span statistics across the parent and every worker."""
    events = telemetry.get_tracer().events()
    for snapshot in telemetry.worker_snapshots():
        events.extend(_worker_events(snapshot))
    return summarize_spans(events)


def total_dropped_events() -> int:
    """Ring-buffer drops across the parent and every absorbed worker."""
    dropped = telemetry.get_tracer().dropped
    for snapshot in telemetry.worker_snapshots():
        dropped += int(snapshot.get("dropped_events", 0))
    return dropped


def stitched_chrome_trace(process_name: str = "repro") -> List[dict]:
    """One Chrome ``trace_event`` array covering every process.

    The parent's row comes first (named ``process_name``), then one row
    per absorbed worker snapshot, named after the worker's unit and
    keyed by the worker's original ``pid`` so the viewer separates the
    shards.  Timestamps within each row are relative to that process's
    tracer epoch (rows align at zero, not wall clock); cross-process
    *ordering* should be read from the parent's spans, per-shard
    *attribution* from the worker rows.
    """
    out = telemetry.get_tracer().chrome_trace(process_name)
    for index, snapshot in enumerate(telemetry.worker_snapshots()):
        unit = snapshot.get("unit") or f"worker-{index}"
        pid = int(snapshot.get("pid", -(index + 1)))
        out.extend(chrome_trace_events(
            _worker_events(snapshot), pid,
            f"{process_name}-worker/{unit}",
        ))
    return out


def worker_summary() -> List[dict]:
    """Compact per-worker accounting for artifact embedding."""
    summary = []
    for snapshot in telemetry.worker_snapshots():
        metrics = snapshot.get("metrics", {})
        summary.append({
            "pid": snapshot.get("pid"),
            "unit": snapshot.get("unit"),
            "counters": len(metrics.get("counters", ())),
            "histograms": len(metrics.get("histograms", ())),
            "events": len(snapshot.get("events", ())),
            "dropped_events": snapshot.get("dropped_events", 0),
        })
    return summary


__all__ = [
    "SNAPSHOT_SCHEMA",
    "absorb_snapshot",
    "capture_snapshot",
    "init_worker",
    "merge_metrics",
    "merged_span_summary",
    "stitched_chrome_trace",
    "total_dropped_events",
    "worker_summary",
]
