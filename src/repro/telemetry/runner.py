"""Telemetry workload runner behind the ``repro telemetry`` subcommand.

Runs one scene through the whole instrumented pipeline - scene load,
BVH build, AO workload generation, batch occlusion tracing, the
functional predictor simulation, and a (scaled) RT-unit timing run -
with telemetry enabled, then assembles a ``telemetry.json`` payload
(schema ``repro-telemetry/1``): the full metrics snapshot, per-stage
span summaries, phase wall/CPU timings, the Chrome ``trace_event``
array, and an optional sampling profile.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from typing import Optional

import numpy as np

from repro import telemetry
from repro.telemetry.schema import TELEMETRY_SCHEMA
from repro.telemetry.tracing import summarize_spans


@dataclass(frozen=True)
class TelemetryPreset:
    """Workload knobs for one telemetry run (embedded in the payload)."""

    scene: str = "SP"
    detail: float = 1.0
    width: int = 32
    height: int = 32
    spp: int = 2
    seed: int = 1
    sim_rays: int = 1024
    rt_rays: int = 512
    in_flight: int = 32
    engine: str = "wavefront"

    def scaled_for_quick(self) -> "TelemetryPreset":
        """The CI smoke shape: tiny but still exercising every stage."""
        return TelemetryPreset(
            scene=self.scene,
            detail=min(self.detail, 0.4),
            width=16,
            height=16,
            spp=2,
            seed=self.seed,
            sim_rays=256,
            rt_rays=256,
            in_flight=self.in_flight,
            engine=self.engine,
        )


def run_telemetry_workload(
    preset: TelemetryPreset,
    profile: bool = False,
    profile_interval_s: float = 0.005,
) -> dict:
    """Run the instrumented pipeline and return the payload dict.

    Telemetry is force-enabled (and reset) for the duration of the run
    and restored to its previous switch state afterwards, so this can
    drive both the CLI and tests without leaking global state.
    """
    # Imports are deferred so ``import repro.telemetry`` stays cycle-free.
    from repro.analysis.experiments import (
        scaled_gpu_config,
        scaled_predictor_config,
    )
    from repro.bvh import build_bvh
    from repro.core.simulate import simulate_predictor
    from repro.gpu import simulate_workload
    from repro.rays import generate_ao_workload
    from repro.scenes import get_scene
    from repro.telemetry.stats import TraversalStats
    from repro.trace import trace_occlusion_batch

    was_enabled = telemetry.enabled()
    telemetry.enable(reset=True)
    profiler = None
    timer = telemetry.get_phase_timer()
    try:
        if profile:
            profiler = telemetry.SamplingProfiler(
                interval_s=profile_interval_s
            )
            profiler.start()
        with telemetry.label_context(scene=preset.scene):
            with timer.phase("scene.load"), telemetry.span(
                "scene.load", scene=preset.scene, detail=preset.detail
            ):
                scene = get_scene(preset.scene, detail=preset.detail)
            with timer.phase("bvh.build"):
                bvh = build_bvh(scene.mesh)
            with timer.phase("workload.generate"):
                workload = generate_ao_workload(
                    scene, bvh,
                    width=preset.width, height=preset.height,
                    spp=preset.spp, seed=preset.seed,
                )
            rays = workload.rays

            with timer.phase("trace.occlusion"):
                stats = TraversalStats()
                trace_occlusion_batch(
                    bvh, rays, stats=stats, engine=preset.engine
                )

            sim_sub = rays.subset(
                np.arange(min(preset.sim_rays, len(rays)))
            )
            with timer.phase("sim.predictor"), telemetry.span(
                "sim.predictor", rays=len(sim_sub), engine=preset.engine
            ):
                sim = simulate_predictor(
                    bvh, sim_sub,
                    in_flight=preset.in_flight,
                    engine=preset.engine,
                )

            rt_sub = rays.subset(np.arange(min(preset.rt_rays, len(rays))))
            with timer.phase("gpu.rt_unit"), telemetry.span(
                "gpu.simulate_workload", rays=len(rt_sub)
            ):
                gpu = simulate_workload(
                    bvh, rt_sub,
                    scaled_gpu_config(scaled_predictor_config()),
                )

        tracer = telemetry.get_tracer()
        payload = {
            "schema": TELEMETRY_SCHEMA,
            "scene": preset.scene,
            "preset": asdict(preset),
            "metrics": telemetry.get_registry().snapshot(),
            "spans": summarize_spans(tracer.events()),
            "phases": timer.report(),
            "trace_events": tracer.chrome_trace(),
            "dropped_events": tracer.dropped,
            "headline": {
                "rays": len(rays),
                "sim_verified_rate": round(sim.verified_rate, 6),
                "sim_memory_savings": round(sim.memory_savings, 6),
                "trace_node_fetches": stats.node_fetches,
                "gpu_cycles": gpu.cycles,
                "gpu_l1_hit_rate": round(gpu.l1_hit_rate, 6),
            },
        }
        if profiler is not None:
            profiler.stop()
            payload["profile"] = profiler.report()
        return payload
    finally:
        if profiler is not None:
            profiler.stop()
        if not was_enabled:
            telemetry.disable()


def write_telemetry(payload: dict, path: str) -> str:
    """Write the payload as JSON at ``path`` (directories created)."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_telemetry(path: str) -> dict:
    """Load a ``telemetry.json``, checking the schema tag."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    schema = payload.get("schema")
    if schema != TELEMETRY_SCHEMA:
        raise ValueError(
            f"{path}: unsupported telemetry schema {schema!r} "
            f"(expected {TELEMETRY_SCHEMA!r})"
        )
    return payload


def _counter_rows(metrics: dict, prefix: str, limit: int = 12) -> list:
    rows = []
    for entry in metrics.get("counters", []):
        if not entry["name"].startswith(prefix):
            continue
        labels = ",".join(
            f"{k}={v}" for k, v in sorted(entry["labels"].items())
        )
        rows.append([entry["name"], labels, entry["value"]])
        if len(rows) >= limit:
            break
    return rows


def summarize_telemetry(payload: dict) -> str:
    """Human-readable summary: headline, stage timings, key counters."""
    from repro.analysis.tables import format_table

    lines = [
        f"telemetry artifact: scene {payload['scene']} ({payload['schema']})"
    ]
    headline = payload.get("headline", {})
    if headline:
        lines.append(
            "  rays={rays}  verified={v:.1%}  mem_savings={m:+.1%}  "
            "gpu_cycles={c}  l1_hit={l1:.1%}".format(
                rays=headline.get("rays", 0),
                v=headline.get("sim_verified_rate", 0.0),
                m=headline.get("sim_memory_savings", 0.0),
                c=headline.get("gpu_cycles", 0),
                l1=headline.get("gpu_l1_hit_rate", 0.0),
            )
        )
    span_rows = [
        [name, s["count"], s["total_ms"], s["mean_ms"], s["max_ms"]]
        for name, s in list(payload.get("spans", {}).items())[:12]
    ]
    if span_rows:
        lines.append(format_table(
            ["Stage", "Count", "Total ms", "Mean ms", "Max ms"],
            span_rows, title="Per-stage spans",
        ))
    counter_rows = (
        _counter_rows(payload.get("metrics", {}), "predictor.")
        + _counter_rows(payload.get("metrics", {}), "cache.")
    )
    if counter_rows:
        lines.append(format_table(
            ["Counter", "Labels", "Value"], counter_rows,
            title="Key counters",
        ))
    profile = payload.get("profile")
    if profile:
        hot = [
            [entry["frame"], entry["samples"]]
            for entry in profile.get("hot_functions", [])[:10]
        ]
        lines.append(format_table(
            ["Hot frame", "Samples"], hot,
            title=f"Sampling profile ({profile.get('total_samples', 0)} samples)",
        ))
    return "\n".join(lines)


__all__ = [
    "TelemetryPreset",
    "load_telemetry",
    "run_telemetry_workload",
    "summarize_telemetry",
    "write_telemetry",
]
