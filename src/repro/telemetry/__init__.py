"""repro.telemetry - unified observability for the predictor pipeline.

One subsystem, three pillars (see ``docs/OBSERVABILITY.md``):

* **metrics** - a process-global :class:`~repro.telemetry.metrics.Registry`
  of labeled counters/gauges/histograms replacing the ad-hoc counter
  dicts that used to live in ``trace/counters.py``, ``core/simulate.py``
  and the GPU models; read it with ``get_registry().snapshot()``;
* **tracing** - :func:`span` brackets pipeline stages (predictor
  lookup/verify/fallback, wavefront kernels, RT-unit runs, BVH builds)
  into a ring-buffered event log exportable as Chrome ``trace_event``
  JSON (``chrome://tracing`` / Perfetto);
* **profiling** - :class:`~repro.telemetry.profiling.PhaseTimer` and the
  opt-in :class:`~repro.telemetry.profiling.SamplingProfiler` feed the
  bench harness's ``telemetry`` section.

Telemetry is **off by default** and the off path is designed to cost
nearly nothing: every hook first checks :func:`enabled` (one global
read) and :func:`span` hands back a shared no-op object.  Enable it
with ``REPRO_TELEMETRY=1`` in the environment, the ``--telemetry`` CLI
switch, or :func:`enable` programmatically.

This package deliberately imports nothing from the rest of ``repro`` at
module level, so any subsystem (geometry, trace, gpu, bench) can import
it without cycles.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    Registry,
)
from repro.telemetry.profiling import PhaseTimer, SamplingProfiler
from repro.telemetry.tracing import (
    NULL_SPAN,
    EventTracer,
    TraceEvent,
    summarize_spans,
    write_chrome_trace,
)

#: Environment variable switching telemetry on for any entry point.
ENV_VAR = "REPRO_TELEMETRY"

_TRUTHY = frozenset({"1", "true", "yes", "on"})


def env_enabled(value: Optional[str]) -> bool:
    """Whether an environment-variable value means "telemetry on"."""
    return value is not None and value.strip().lower() in _TRUTHY


class _TelemetryState:
    """Process-global switch + instruments (one per process)."""

    __slots__ = ("enabled", "registry", "tracer", "phase_timer",
                 "worker_snapshots", "hook_activations")

    def __init__(self) -> None:
        self.enabled = env_enabled(os.environ.get(ENV_VAR))
        self.registry = Registry()
        self.tracer = EventTracer()
        self.phase_timer = PhaseTimer()
        # Snapshots absorbed from worker processes this run (see
        # repro.telemetry.distributed) - kept so the stitched Chrome
        # trace and per-worker accounting survive until reset.
        self.worker_snapshots: List[dict] = []
        # How many times an introspection hook's enabled-branch ran.
        # The off-path overhead guard tests assert this stays zero with
        # telemetry off - a hook firing while disabled is a bug.
        self.hook_activations = 0


_STATE = _TelemetryState()


# ----------------------------------------------------------------------
# Switching
# ----------------------------------------------------------------------
def enabled() -> bool:
    """The global on/off switch (the hot-path fast check)."""
    return _STATE.enabled


def enable(reset: bool = False) -> None:
    """Turn telemetry on; with ``reset=True``, start from clean state."""
    if reset:
        reset_telemetry()
    _STATE.enabled = True


def disable() -> None:
    """Turn telemetry off (buffered data is kept until reset)."""
    _STATE.enabled = False


def reset_telemetry() -> None:
    """Clear the registry, tracer, phase timer, and distributed state."""
    _STATE.registry.reset()
    _STATE.tracer.reset()
    _STATE.phase_timer.reset()
    _STATE.worker_snapshots.clear()
    _STATE.hook_activations = 0
    _CONTEXT_LABELS.clear()


@contextmanager
def enabled_scope(on: bool = True) -> Iterator[None]:
    """Temporarily force telemetry on (or off) - test/CLI helper."""
    before = _STATE.enabled
    _STATE.enabled = on
    try:
        yield
    finally:
        _STATE.enabled = before


# ----------------------------------------------------------------------
# Access
# ----------------------------------------------------------------------
def get_registry() -> Registry:
    """The process-global metrics registry."""
    return _STATE.registry


def get_tracer() -> EventTracer:
    """The process-global event tracer."""
    return _STATE.tracer


def get_phase_timer() -> PhaseTimer:
    """The process-global phase timer (bench harness integration)."""
    return _STATE.phase_timer


def worker_snapshots() -> List[dict]:
    """Worker telemetry snapshots absorbed this run (oldest first)."""
    return list(_STATE.worker_snapshots)


def _append_worker_snapshot(snapshot: dict) -> None:
    """Store an absorbed worker snapshot (distributed-merge internal)."""
    _STATE.worker_snapshots.append(snapshot)


def record_hook_activation(count: int = 1) -> None:
    """Count one enabled-branch execution of an introspection hook.

    Called *inside* the ``enabled()`` branch of the vectable / RT-unit /
    memory-hierarchy hooks, never on the off path - so the off-path
    overhead guard can assert "hooks did nothing" via this counter
    instead of a brittle wall-clock measurement.
    """
    _STATE.hook_activations += count


def hook_activations() -> int:
    """Total enabled-branch hook executions since the last reset."""
    return _STATE.hook_activations


# ----------------------------------------------------------------------
# Label context: ambient labels (scene, run, ...) merged into every
# metric recorded inside the ``with`` block.  A plain stack, not a
# contextvar: the simulator pipeline is single-threaded per run, and a
# stack keeps the off path free of contextvar lookups.
# ----------------------------------------------------------------------
_CONTEXT_LABELS: List[Dict[str, str]] = []


@contextmanager
def label_context(**labels: object) -> Iterator[None]:
    """Attach ambient labels (e.g. ``scene="SP"``) to nested metrics."""
    _CONTEXT_LABELS.append({k: str(v) for k, v in labels.items()})
    try:
        yield
    finally:
        _CONTEXT_LABELS.pop()


def current_labels(extra: Optional[Dict[str, object]] = None) -> Dict[str, str]:
    """The merged ambient label set (innermost context wins)."""
    merged: Dict[str, str] = {}
    for layer in _CONTEXT_LABELS:
        merged.update(layer)
    if extra:
        merged.update({k: str(v) for k, v in extra.items()})
    return merged


# ----------------------------------------------------------------------
# Recording shims: all guarded by enabled(), so instrumented code can
# call them unconditionally.
# ----------------------------------------------------------------------
def span(name: str, **args: object):
    """A tracing span, or the shared no-op object when telemetry is off."""
    if not _STATE.enabled:
        return NULL_SPAN
    return _STATE.tracer.span(name, **args)


def instant(name: str, **args: object) -> None:
    """Record an instant marker (no-op when off)."""
    if _STATE.enabled:
        _STATE.tracer.instant(name, **args)


def inc_counter(name: str, amount: int = 1, **labels: object) -> None:
    """Increment a labeled counter (ambient labels merged; no-op off)."""
    if _STATE.enabled:
        _STATE.registry.counter(name, **current_labels(labels)).inc(amount)


def set_gauge(name: str, value: float, **labels: object) -> None:
    """Set a labeled gauge (ambient labels merged; no-op when off)."""
    if _STATE.enabled:
        _STATE.registry.gauge(name, **current_labels(labels)).set(value)


def observe(
    name: str,
    value: float,
    buckets: Optional[Sequence[float]] = None,
    **labels: object,
) -> None:
    """Observe into a labeled histogram (no-op when telemetry is off)."""
    if _STATE.enabled:
        _STATE.registry.histogram(
            name, buckets=buckets, **current_labels(labels)
        ).observe(value)


__all__ = [
    "ENV_VAR",
    "NULL_SPAN",
    "Counter",
    "EventTracer",
    "Gauge",
    "Histogram",
    "MetricError",
    "PhaseTimer",
    "Registry",
    "SamplingProfiler",
    "TraceEvent",
    "current_labels",
    "disable",
    "enable",
    "enabled",
    "enabled_scope",
    "env_enabled",
    "get_phase_timer",
    "get_registry",
    "get_tracer",
    "hook_activations",
    "inc_counter",
    "instant",
    "label_context",
    "observe",
    "record_hook_activation",
    "reset_telemetry",
    "set_gauge",
    "span",
    "summarize_spans",
    "worker_snapshots",
    "write_chrome_trace",
]
