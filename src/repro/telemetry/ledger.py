"""Run ledger: index ``BENCH_*.json`` / ``SIM_*.json`` into one view.

A sweep leaves one artifact per run; after a few weeks of work a
``results/`` directory holds a pile of them and "did verified rate move
this month?" means opening files by hand.  The ledger is the missing
index: :func:`build_ledger` scans artifact files or directories into a
schema-versioned (``repro-ledger/1``) summary - one entry per artifact
with its headline per-scene figures and telemetry counter totals -
:func:`render_trends` turns it into per-scene trend tables, and
:func:`compare_runs` diffs two runs (counter deltas plus the
:func:`repro.bench.harness.compare_payloads` regression gate).

``repro report --ledger`` / ``--compare`` is the CLI veneer
(see docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import glob
import json
import os
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import EXIT_USAGE, ReproError

#: Schema tag of the ledger payload produced by :func:`build_ledger`.
LEDGER_SCHEMA = "repro-ledger/1"

#: Artifact filename patterns the ledger indexes inside a directory.
ARTIFACT_GLOBS = ("BENCH_*.json", "SIM_*.json")


class LedgerError(ReproError, ValueError):
    """A ledger input is missing or not a recognized artifact."""

    exit_code = EXIT_USAGE


def _labels_key(labels: Dict[str, object]) -> str:
    """Canonical rendering of a label dict (``k=v,k=v`` sorted)."""
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items()))


def _counter_totals(payload: dict) -> Dict[str, float]:
    """Total each telemetry counter over its label sets.

    Labels are summed out on purpose: the ledger tracks run-level
    trends; :func:`counter_deltas` keeps per-label resolution for
    two-run diffs.
    """
    totals: Dict[str, float] = {}
    metrics = payload.get("telemetry", {}).get("metrics", {})
    for counter in metrics.get("counters", []):
        name = counter["name"]
        totals[name] = totals.get(name, 0.0) + counter["value"]
    return totals


def _scene_rows(payload: dict) -> Dict[str, Dict[str, object]]:
    """Headline per-scene figures of one artifact (kind-specific)."""
    rows: Dict[str, Dict[str, object]] = {}
    schema = payload.get("schema", "")
    if schema.startswith("repro-sim-sweep/"):
        for row in payload.get("results", []):
            rows[row["scene"]] = {
                "verified_rate": row.get("verified_rate"),
                "predicted_rate": row.get("predicted_rate"),
                "memory_savings": row.get("memory_savings"),
            }
        return rows
    derived = payload.get("derived", {})
    for code, row in derived.get("predictor_throughput", {}).items():
        entry = rows.setdefault(code, {})
        entry.update(row.get("rates", {}))
    for code, row in derived.get("rt_timing", {}).items():
        entry = rows.setdefault(code, {})
        for key in ("cycles", "cycles_predictor", "cycle_speedup_predictor"):
            if key in row:
                entry[key] = row[key]
    return rows


def load_artifact(path: str) -> dict:
    """Load one artifact file, validating it looks like a known schema."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise LedgerError(f"cannot read artifact {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise LedgerError(f"{path} is not valid JSON: {exc}") from exc
    schema = payload.get("schema", "")
    if not (schema.startswith("repro-bench/")
            or schema.startswith("repro-sim-sweep/")):
        raise LedgerError(
            f"{path}: schema {schema!r} is not a bench or simulate artifact"
        )
    return payload


def discover_artifacts(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of artifact paths."""
    found: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for pattern in ARTIFACT_GLOBS:
                found.extend(glob.glob(os.path.join(path, pattern)))
        elif os.path.exists(path):
            found.append(path)
        else:
            raise LedgerError(f"no artifact or directory at {path}")
    # De-duplicate while keeping a stable (name-sorted) order.
    return sorted(set(found))


def ledger_entry(path: str, payload: Optional[dict] = None) -> dict:
    """Summarize one artifact into a ledger entry."""
    payload = payload if payload is not None else load_artifact(path)
    schema = payload.get("schema", "")
    kind = "bench" if schema.startswith("repro-bench/") else "simulate"
    entry = {
        "path": path,
        "kind": kind,
        "artifact_schema": schema,
        "name": payload.get("name"),
        "scenes": list(payload.get("scenes", [])),
        "mtime": os.path.getmtime(path),
        "scene_rows": _scene_rows(payload),
        "counters": _counter_totals(payload),
        "has_telemetry": "telemetry" in payload,
    }
    workers = payload.get("telemetry", {}).get("workers")
    if workers:
        entry["worker_pids"] = sorted({w["pid"] for w in workers})
    return entry


def build_ledger(paths: Iterable[str]) -> dict:
    """Index artifacts (files or directories) into a ledger payload.

    Entries are ordered oldest-first by file modification time, so
    trend tables read left-to-right in run order.
    """
    files = discover_artifacts(paths)
    if not files:
        raise LedgerError(
            "no BENCH_*.json or SIM_*.json artifacts found under "
            + ", ".join(paths)
        )
    entries = [ledger_entry(path) for path in files]
    entries.sort(key=lambda e: (e["mtime"], e["path"]))
    return {"schema": LEDGER_SCHEMA, "entries": entries}


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _format_cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_trends(ledger: dict) -> str:
    """Per-scene trend tables across the ledger's runs (oldest first).

    One table per (kind, metric): rows are scenes, columns are runs, so
    a regressed column stands out at a glance.
    """
    entries = ledger["entries"]
    lines = [f"run ledger ({ledger['schema']}): {len(entries)} artifact(s)"]
    for entry in entries:
        tag = "telemetry" if entry["has_telemetry"] else "no telemetry"
        lines.append(
            f"  {entry['kind']:8s} {entry['name'] or '?':12s} "
            f"{os.path.basename(entry['path'])} ({tag})"
        )

    for kind in ("bench", "simulate"):
        runs = [e for e in entries if e["kind"] == kind]
        if not runs:
            continue
        metrics: List[str] = []
        scenes: List[str] = []
        for run in runs:
            for code, row in run["scene_rows"].items():
                if code not in scenes:
                    scenes.append(code)
                for key in row:
                    if key not in metrics:
                        metrics.append(key)
        for metric in metrics:
            lines.append("")
            lines.append(f"{kind}: {metric}")
            header = ["scene"] + [run["name"] or "?" for run in runs]
            widths = [max(8, len(h)) for h in header]
            rows = []
            for code in scenes:
                cells = [code]
                for run in runs:
                    cells.append(_format_cell(
                        run["scene_rows"].get(code, {}).get(metric)
                    ))
                rows.append(cells)
            for cells in [header] + rows:
                lines.append("  " + "  ".join(
                    c.ljust(w) for c, w in zip(cells, widths)
                ))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Two-run comparison
# ----------------------------------------------------------------------
def counter_deltas(
    old: dict, new: dict
) -> List[Tuple[str, str, float, float]]:
    """Label-resolved telemetry counter deltas between two artifacts.

    Returns ``(name, labels, old_value, new_value)`` rows for every
    counter present in either run (0.0 where absent), sorted by name.
    """
    def extract(payload: dict) -> Dict[Tuple[str, str], float]:
        out: Dict[Tuple[str, str], float] = {}
        metrics = payload.get("telemetry", {}).get("metrics", {})
        for counter in metrics.get("counters", []):
            key = (counter["name"], _labels_key(counter.get("labels", {})))
            out[key] = out.get(key, 0.0) + counter["value"]
        return out

    old_vals = extract(old)
    new_vals = extract(new)
    rows = []
    for key in sorted(set(old_vals) | set(new_vals)):
        rows.append((
            key[0], key[1], old_vals.get(key, 0.0), new_vals.get(key, 0.0)
        ))
    return rows


def render_counter_deltas(
    rows: List[Tuple[str, str, float, float]], only_changed: bool = True
) -> str:
    """Human-readable counter-delta table (changed counters first)."""
    shown = [r for r in rows if not only_changed or r[2] != r[3]]
    if not shown:
        return "telemetry counters: no differences"
    lines = ["telemetry counter deltas (old -> new):"]
    for name, labels, old_value, new_value in shown:
        delta = new_value - old_value
        label_part = f" {{{labels}}}" if labels else ""
        lines.append(
            f"  {name}{label_part}: {old_value:g} -> {new_value:g} "
            f"({delta:+g})"
        )
    return "\n".join(lines)


def compare_runs(
    old: dict, new: dict, tolerance: float = 0.2
) -> List[str]:
    """Regression check between two runs of the same kind.

    Bench artifacts go through the full
    :func:`repro.bench.harness.compare_payloads` gate (old run as the
    baseline).  Simulate artifacts gate on per-scene rate drift.
    """
    old_schema = old.get("schema", "")
    new_schema = new.get("schema", "")
    old_kind = "bench" if old_schema.startswith("repro-bench/") else "simulate"
    new_kind = "bench" if new_schema.startswith("repro-bench/") else "simulate"
    if old_kind != new_kind:
        raise LedgerError(
            f"cannot compare a {old_kind} artifact with a {new_kind} one"
        )
    if old_kind == "bench":
        from repro.bench.harness import compare_payloads

        return compare_payloads(new, old, tolerance=tolerance)

    problems: List[str] = []
    old_rows = {row["scene"]: row for row in old.get("results", [])}
    new_rows = {row["scene"]: row for row in new.get("results", [])}
    for code, old_row in old_rows.items():
        new_row = new_rows.get(code)
        if new_row is None:
            problems.append(f"simulate/{code}: scene missing from new run")
            continue
        for rate in ("predicted_rate", "verified_rate", "memory_savings"):
            old_value = old_row.get(rate)
            new_value = new_row.get(rate)
            if old_value is None or not old_value:
                continue
            if new_value is None:
                problems.append(
                    f"simulate/{code}: {rate} missing from new run"
                )
                continue
            drift = abs(new_value - old_value) / abs(old_value)
            if drift > tolerance:
                problems.append(
                    f"simulate/{code}: {rate} drifted {drift:.1%} "
                    f"({old_value} -> {new_value})"
                )
    return problems


__all__ = [
    "ARTIFACT_GLOBS",
    "LEDGER_SCHEMA",
    "LedgerError",
    "build_ledger",
    "compare_runs",
    "counter_deltas",
    "discover_artifacts",
    "ledger_entry",
    "load_artifact",
    "render_counter_deltas",
    "render_trends",
]
