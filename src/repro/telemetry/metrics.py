"""Labeled metrics: counters, gauges, histograms, and their registry.

The paper's claims are denominated in per-ray and per-stage counts
(predicted/verified/mispredicted rates, node-fetch elision, cache hit
rates), so the registry models exactly that shape: a metric *family* is
a name plus a kind, and each distinct label set (``scene``, ``engine``,
``stage``, ...) owns an independent instrument.  Everything is plain
Python - no external dependencies - and the whole state is exportable
as one JSON-friendly :meth:`Registry.snapshot`.

Instruments are cheap on the hot path: a :class:`Counter` increment is
one integer add, and family lookup is a dict probe.  The global on/off
fast path (skipping even the dict probe) lives one layer up, in
:mod:`repro.telemetry`.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

#: A frozen label set: sorted ``(key, value)`` pairs.
LabelKey = Tuple[Tuple[str, str], ...]

#: Default histogram bucket upper bounds (milliseconds-ish scale; callers
#: timing other quantities should pass explicit edges).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
    500.0, 1000.0,
)


class MetricError(ValueError):
    """Metric misuse: kind conflicts, negative counter increments, ..."""


def _label_key(labels: Dict[str, object]) -> LabelKey:
    """Canonical, hashable form of a label dict (values stringified)."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing integer count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise MetricError(
                f"counter {self.name!r} cannot decrease (inc({amount}))"
            )
        self.value += amount


class Gauge:
    """A point-in-time value that can move in either direction."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Move the gauge up (or down, with a negative amount)."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Move the gauge down."""
        self.value -= amount


class Histogram:
    """A fixed-bucket distribution with cumulative-``le`` semantics.

    ``edges`` are strictly increasing upper bounds; an observation ``v``
    lands in the first bucket whose edge satisfies ``v <= edge``, and in
    the implicit ``+inf`` overflow bucket when it exceeds every edge -
    the Prometheus convention, which keeps exported snapshots easy to
    aggregate.
    """

    __slots__ = ("name", "labels", "edges", "bucket_counts", "count",
                 "sum", "min", "max")

    def __init__(
        self,
        name: str,
        labels: LabelKey,
        edges: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        edges = tuple(float(e) for e in edges)
        if not edges:
            raise MetricError(f"histogram {name!r} needs at least one bucket edge")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise MetricError(
                f"histogram {name!r} edges must be strictly increasing: {edges}"
            )
        self.name = name
        self.labels = labels
        self.edges = edges
        self.bucket_counts = [0] * (len(edges) + 1)  # +1: overflow (+inf)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.bucket_counts[bisect_left(self.edges, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def add_raw(
        self,
        bucket_counts: Sequence[int],
        count: int,
        total: float,
        minimum: float,
        maximum: float,
    ) -> None:
        """Fold another histogram's *raw* (non-cumulative) state in.

        The merge primitive behind cross-process aggregation
        (:mod:`repro.telemetry.distributed`): bucket counts add
        element-wise, so the merged distribution is exactly what a single
        process observing both streams would have recorded.  The caller
        must de-cumulate exported ``le`` buckets first; a length mismatch
        means the edges differ and the merge would misplace counts, so it
        raises :class:`MetricError` instead.
        """
        if len(bucket_counts) != len(self.bucket_counts):
            raise MetricError(
                f"histogram {self.name!r} merge: {len(bucket_counts)} raw "
                f"buckets against {len(self.bucket_counts)} local "
                f"(edges differ)"
            )
        if count < 0:
            raise MetricError(
                f"histogram {self.name!r} merge: negative count {count}"
            )
        if count == 0:
            return
        for i, n in enumerate(bucket_counts):
            self.bucket_counts[i] += int(n)
        self.count += int(count)
        self.sum += float(total)
        if minimum < self.min:
            self.min = float(minimum)
        if maximum > self.max:
            self.max = float(maximum)

    def quantile_bound(self, q: float) -> float:
        """Upper bound of the bucket containing the ``q``-quantile.

        A coarse estimate (bucket resolution), adequate for summaries;
        returns ``inf`` when the quantile falls in the overflow bucket.
        """
        if not 0.0 <= q <= 1.0:
            raise MetricError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for i, n in enumerate(self.bucket_counts):
            seen += n
            if seen >= target and n:
                return self.edges[i] if i < len(self.edges) else float("inf")
        return float("inf")


Metric = Union[Counter, Gauge, Histogram]


class Registry:
    """All metric families of one run, keyed by name and label set.

    The registry is the single source of truth the CLI, the bench
    harness, and the tests read: every instrumented subsystem creates
    its instruments here and :meth:`snapshot` serializes the whole
    state deterministically (sorted by name, then labels).
    """

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelKey], Metric] = {}
        self._kinds: Dict[str, str] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Instrument creation (get-or-create)
    # ------------------------------------------------------------------
    def _get(self, kind: str, name: str, labels: Dict[str, object], factory):
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is not None:
            if self._kinds[name] != kind:
                raise MetricError(
                    f"metric {name!r} already registered as "
                    f"{self._kinds[name]}, requested as {kind}"
                )
            return metric
        with self._lock:
            metric = self._metrics.get(key)
            if metric is not None:
                return metric
            registered = self._kinds.setdefault(name, kind)
            if registered != kind:
                raise MetricError(
                    f"metric {name!r} already registered as "
                    f"{registered}, requested as {kind}"
                )
            metric = factory(name, key[1])
            self._metrics[key] = metric
            return metric

    def counter(self, name: str, **labels: object) -> Counter:
        """Get or create the :class:`Counter` for ``name`` + ``labels``."""
        return self._get("counter", name, labels, Counter)

    def gauge(self, name: str, **labels: object) -> Gauge:
        """Get or create the :class:`Gauge` for ``name`` + ``labels``."""
        return self._get("gauge", name, labels, Gauge)

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        **labels: object,
    ) -> Histogram:
        """Get or create the :class:`Histogram` for ``name`` + ``labels``.

        Reusing an existing instrument with *different* explicit
        ``buckets`` raises :class:`MetricError` - silently keeping the
        first edges would skew every later observation's placement.
        """
        edges = (
            tuple(float(b) for b in buckets)
            if buckets is not None else DEFAULT_BUCKETS
        )
        metric = self._get(
            "histogram", name, labels,
            lambda n, lk: Histogram(n, lk, edges=edges),
        )
        if buckets is not None and metric.edges != edges:
            raise MetricError(
                f"histogram {name!r} already registered with buckets "
                f"{metric.edges}, requested {edges}"
            )
        return metric

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def value(self, name: str, **labels: object):
        """Current value of a counter/gauge (``None`` if absent)."""
        metric = self._metrics.get((name, _label_key(labels)))
        if metric is None or isinstance(metric, Histogram):
            return None
        return metric.value

    def total(self, name: str) -> float:
        """Sum of a counter/gauge family over every label set."""
        total = 0
        for (metric_name, _), metric in self._metrics.items():
            if metric_name == name and not isinstance(metric, Histogram):
                total += metric.value
        return total

    def families(self) -> List[str]:
        """Registered family names, sorted."""
        return sorted(self._kinds)

    def __len__(self) -> int:
        return len(self._metrics)

    def _sorted(self, want) -> Iterable[Metric]:
        for key in sorted(self._metrics):
            metric = self._metrics[key]
            if isinstance(metric, want):
                yield metric

    def snapshot(self) -> dict:
        """Serialize every instrument into a JSON-friendly dict.

        Layout (documented in ``docs/OBSERVABILITY.md``)::

            {"counters":   [{"name", "labels", "value"}, ...],
             "gauges":     [{"name", "labels", "value"}, ...],
             "histograms": [{"name", "labels", "count", "sum", "min",
                             "max", "buckets": [{"le", "count"}, ...]}]}
        """
        counters = [
            {"name": m.name, "labels": dict(m.labels), "value": m.value}
            for m in self._sorted(Counter)
        ]
        gauges = [
            {"name": m.name, "labels": dict(m.labels), "value": m.value}
            for m in self._sorted(Gauge)
        ]
        histograms = []
        for m in self._sorted(Histogram):
            les = [*m.edges, float("inf")]
            # Export cumulative counts (the Prometheus ``le`` convention):
            # each bucket's count covers every observation <= its edge, so
            # the final ``inf`` bucket always equals the total count.
            buckets = []
            running = 0
            for le, c in zip(les, m.bucket_counts):
                running += c
                buckets.append({
                    "le": le if le != float("inf") else "inf",
                    "count": running,
                })
            histograms.append({
                "name": m.name,
                "labels": dict(m.labels),
                "count": m.count,
                "sum": m.sum,
                "min": m.min if m.count else 0.0,
                "max": m.max if m.count else 0.0,
                "buckets": buckets,
            })
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def reset(self) -> None:
        """Drop every instrument (fresh run)."""
        with self._lock:
            self._metrics.clear()
            self._kinds.clear()
