"""Structured event tracing with Chrome ``trace_event`` export.

A :class:`EventTracer` holds a bounded ring buffer of timestamped
events; :func:`EventTracer.span` brackets a pipeline stage (predictor
lookup, verification wavefront, RT-unit run, BVH build, ...) and
records one *complete* event on exit.  The buffer exports directly to
the Chrome ``trace_event`` JSON format, so a run can be inspected on a
timeline in ``chrome://tracing`` or https://ui.perfetto.dev.

Timestamps are monotonic (``time.perf_counter_ns``) relative to the
tracer's creation, converted to microseconds on export as the format
requires.  The ring buffer keeps the *newest* events when full and
counts what it dropped, so a long run degrades gracefully instead of
growing without bound.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Default ring-buffer capacity (events); ~64k spans is hours of
#: window-granularity tracing at simulator speeds.
DEFAULT_CAPACITY = 65536


@dataclass
class TraceEvent:
    """One recorded event (a completed span or an instant marker)."""

    name: str
    phase: str  # "X" = complete (has dur), "i" = instant
    ts_ns: int  # start, relative to the tracer epoch
    dur_ns: int  # 0 for instants
    tid: int
    args: Dict[str, object] = field(default_factory=dict)

    @property
    def dur_ms(self) -> float:
        return self.dur_ns / 1e6

    def to_dict(self) -> dict:
        """JSON-safe form for cross-process transport (pickle-free)."""
        return {
            "name": self.name,
            "phase": self.phase,
            "ts_ns": self.ts_ns,
            "dur_ns": self.dur_ns,
            "tid": self.tid,
            "args": dict(self.args),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TraceEvent":
        """Rebuild an event shipped as :meth:`to_dict` output."""
        return cls(
            name=str(data["name"]),
            phase=str(data["phase"]),
            ts_ns=int(data["ts_ns"]),  # type: ignore[arg-type]
            dur_ns=int(data["dur_ns"]),  # type: ignore[arg-type]
            tid=int(data["tid"]),  # type: ignore[arg-type]
            args=dict(data.get("args") or {}),  # type: ignore[arg-type]
        )


class _NullSpan:
    """Reusable no-op span: the disabled-telemetry fast path.

    A single shared instance is handed out for every span request while
    telemetry is off, so the cost of an instrumented block is one
    attribute check plus an empty context-manager enter/exit.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def add(self, **args: object) -> None:
        """Ignore extra args (mirrors :meth:`_Span.add`)."""


#: The shared no-op span (identity-comparable in tests).
NULL_SPAN = _NullSpan()


class _Span:
    """An open span; records a complete ("X") event when it exits."""

    __slots__ = ("_tracer", "name", "args", "_start")

    def __init__(self, tracer: "EventTracer", name: str, args: Dict[str, object]):
        self._tracer = tracer
        self.name = name
        self.args = args
        self._start = 0

    def add(self, **args: object) -> None:
        """Attach extra args (e.g. results known only at the end)."""
        self.args.update(args)

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, *exc) -> bool:
        end = time.perf_counter_ns()
        tracer = self._tracer
        tracer._record(TraceEvent(
            name=self.name,
            phase="X",
            ts_ns=self._start - tracer.epoch_ns,
            dur_ns=end - self._start,
            tid=threading.get_ident(),
            args=self.args,
        ))
        return False


class EventTracer:
    """Ring-buffered event log with monotonic timestamps."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        self.capacity = capacity
        self.epoch_ns = time.perf_counter_ns()
        self.dropped = 0
        self._events: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _record(self, event: TraceEvent) -> None:
        with self._lock:
            if len(self._events) == self.capacity:
                self.dropped += 1
            self._events.append(event)

    def span(self, name: str, **args: object) -> _Span:
        """Open a span; use as ``with tracer.span("stage", rays=n):``."""
        return _Span(self, name, dict(args))

    def instant(self, name: str, **args: object) -> None:
        """Record a zero-duration marker event."""
        self._record(TraceEvent(
            name=name,
            phase="i",
            ts_ns=time.perf_counter_ns() - self.epoch_ns,
            dur_ns=0,
            tid=threading.get_ident(),
            args=dict(args),
        ))

    # ------------------------------------------------------------------
    def events(self) -> List[TraceEvent]:
        """The buffered events, oldest first."""
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def reset(self) -> None:
        """Drop all buffered events and restart the epoch."""
        with self._lock:
            self._events.clear()
            self.dropped = 0
            self.epoch_ns = time.perf_counter_ns()

    def chrome_trace(self, process_name: str = "repro") -> List[dict]:
        """Export as a Chrome ``trace_event`` array.

        The returned list is a valid JSON trace on its own (the viewer
        accepts a bare event array); it leads with a process-name
        metadata record, then every buffered event with microsecond
        timestamps.
        """
        return chrome_trace_events(self.events(), os.getpid(), process_name)


def chrome_trace_events(
    events: List[TraceEvent],
    pid: int,
    process_name: str,
) -> List[dict]:
    """Render one process's events as a Chrome ``trace_event`` row.

    Shared by :meth:`EventTracer.chrome_trace` (the local process) and
    the distributed stitcher, which re-emits shipped worker events under
    the worker's original ``pid`` so every shard gets its own row in the
    viewer.  Timestamps stay relative to each process's tracer epoch;
    rows therefore align at zero, not at absolute wall-clock - adequate
    for within-process attribution, documented in
    ``docs/OBSERVABILITY.md``.
    """
    out: List[dict] = [{
        "name": "process_name",
        "ph": "M",
        "pid": pid,
        "tid": 0,
        "args": {"name": process_name},
    }]
    for ev in events:
        record = {
            "name": ev.name,
            "ph": ev.phase,
            "ts": ev.ts_ns / 1e3,
            "pid": pid,
            "tid": ev.tid,
            "args": ev.args,
        }
        if ev.phase == "X":
            record["dur"] = ev.dur_ns / 1e3
        else:
            record["s"] = "t"  # instant scope: thread
        out.append(record)
    return out


def summarize_spans(events: List[TraceEvent]) -> Dict[str, dict]:
    """Aggregate complete events into per-stage timing statistics.

    Returns ``{name: {"count", "total_ms", "mean_ms", "max_ms"}}``,
    sorted by descending total time - the per-stage breakdown the CLI
    summary table and the bench ``telemetry`` section embed.
    """
    agg: Dict[str, List[float]] = {}
    for ev in events:
        if ev.phase != "X":
            continue
        agg.setdefault(ev.name, []).append(ev.dur_ms)
    out: Dict[str, dict] = {}
    for name, durs in sorted(
        agg.items(), key=lambda kv: -sum(kv[1])
    ):
        total = sum(durs)
        out[name] = {
            "count": len(durs),
            "total_ms": round(total, 3),
            "mean_ms": round(total / len(durs), 3),
            "max_ms": round(max(durs), 3),
        }
    return out


def write_chrome_trace(events: List[dict], path: str) -> str:
    """Write a ``{"traceEvents": [...]}`` JSON file loadable by viewers."""
    import json

    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"traceEvents": events}, handle)
        handle.write("\n")
    return path


__all__ = [
    "DEFAULT_CAPACITY",
    "NULL_SPAN",
    "EventTracer",
    "TraceEvent",
    "chrome_trace_events",
    "summarize_spans",
    "write_chrome_trace",
]
