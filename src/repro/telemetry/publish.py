"""Fold pipeline result objects into the global metrics registry.

Each ``publish_*`` helper maps one subsystem's result/stats object onto
the documented metric catalog (``docs/OBSERVABILITY.md``).  They are
duck-typed on purpose: importing the GPU or simulation modules here
would create an import cycle (those modules import
:mod:`repro.telemetry` for spans), and attribute access is all the
mapping needs.

Every helper is a no-op while telemetry is disabled, so instrumented
call sites invoke them unconditionally.
"""

from __future__ import annotations

from repro import telemetry

#: Bucket edges for fraction-valued histograms (rates in [0, 1]).
FRACTION_BUCKETS = (0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


def publish_simulation_result(result, engine: str, **labels: object) -> None:
    """Publish a functional :class:`~repro.core.simulate.SimulationResult`.

    Emits the paper's headline decomposition: every ray is exactly one
    of verified / mispredicted / unpredicted, and
    ``predicted = verified + mispredicted``.
    """
    if not telemetry.enabled():
        return
    inc = telemetry.inc_counter
    mispredicted = result.predicted - result.verified
    inc("predictor.rays", result.num_rays, engine=engine, **labels)
    inc("predictor.predicted", result.predicted, engine=engine, **labels)
    inc("predictor.verified", result.verified, engine=engine, **labels)
    inc("predictor.mispredicted", mispredicted, engine=engine, **labels)
    inc("predictor.unpredicted", result.num_rays - result.predicted,
        engine=engine, **labels)
    inc("predictor.hits", result.hits, engine=engine, **labels)
    inc("predictor.table_lookups", result.table_lookups, engine=engine, **labels)
    inc("predictor.table_updates", result.table_updates, engine=engine, **labels)
    inc("predictor.guard_fallbacks", result.guard_fallbacks,
        engine=engine, **labels)
    inc("predictor.node_fetches", result.predictor_node_fetches,
        engine=engine, **labels)
    inc("predictor.tri_fetches", result.predictor_tri_fetches,
        engine=engine, **labels)
    inc("predictor.baseline_node_fetches", result.baseline_node_fetches,
        engine=engine, **labels)
    inc("predictor.baseline_tri_fetches", result.baseline_tri_fetches,
        engine=engine, **labels)
    inc("predictor.misprediction_node_fetches",
        result.misprediction_node_fetches, engine=engine, **labels)
    inc("predictor.misprediction_tri_fetches",
        result.misprediction_tri_fetches, engine=engine, **labels)
    telemetry.observe(
        "predictor.verified_rate", result.verified_rate,
        buckets=FRACTION_BUCKETS, engine=engine, **labels,
    )


def publish_rt_unit_result(result, **labels: object) -> None:
    """Publish a :class:`~repro.gpu.rt_unit.RTUnitResult`.

    Cache and DRAM traffic is published separately (from the cache/DRAM
    stats objects themselves, see :func:`publish_cache_stats`) to avoid
    double counting when several RT units share one hierarchy.
    """
    if not telemetry.enabled():
        return
    inc = telemetry.inc_counter
    inc("rt_unit.rays", result.rays, **labels)
    inc("rt_unit.hits", result.hits, **labels)
    inc("rt_unit.predicted", result.predicted, **labels)
    inc("rt_unit.verified", result.verified, **labels)
    inc("rt_unit.mispredicted", result.predicted - result.verified, **labels)
    inc("rt_unit.node_fetches", result.node_fetches, **labels)
    inc("rt_unit.tri_fetches", result.tri_fetches, **labels)
    inc("rt_unit.box_tests", result.box_tests, **labels)
    inc("rt_unit.tri_tests", result.tri_tests, **labels)
    inc("rt_unit.warps_executed", result.warps_executed, **labels)
    inc("rt_unit.warp_steps", result.warp_steps, **labels)
    inc("rt_unit.stack_spills", result.stack_spills, **labels)
    inc("rt_unit.guard_restarts", result.guard_restarts, **labels)
    inc("rt_unit.predictor_lookups", result.predictor_lookups, **labels)
    inc("rt_unit.predictor_updates", result.predictor_updates, **labels)
    telemetry.set_gauge("rt_unit.cycles", result.cycles, **labels)
    telemetry.set_gauge(
        "rt_unit.simt_efficiency", result.simt_efficiency, **labels
    )


def publish_cache_stats(stats, level: str, **labels: object) -> None:
    """Publish one :class:`~repro.gpu.cache.CacheStats` (``level``: l1/l2).

    Counters are cumulative on the stats object, so publish once per
    run from a single owner (the workload simulator), not per access.
    """
    if not telemetry.enabled():
        return
    telemetry.inc_counter("cache.accesses", stats.accesses,
                          level=level, **labels)
    telemetry.inc_counter("cache.hits", stats.hits, level=level, **labels)
    telemetry.inc_counter("cache.misses", stats.misses, level=level, **labels)
    telemetry.set_gauge("cache.hit_rate", stats.hit_rate,
                        level=level, **labels)


def publish_dram_stats(stats, num_banks: int, **labels: object) -> None:
    """Publish one :class:`~repro.gpu.dram.DRAMStats`."""
    if not telemetry.enabled():
        return
    telemetry.inc_counter("dram.accesses", stats.accesses, **labels)
    telemetry.inc_counter("dram.stall_cycles", stats.stall_cycles, **labels)
    telemetry.inc_counter("dram.busy_cycles", stats.busy_cycles, **labels)
    telemetry.set_gauge(
        "dram.bank_parallelism", stats.bank_parallelism(num_banks), **labels
    )


def publish_bvh(bvh, method: str, **labels: object) -> None:
    """Publish build-time facts of a :class:`~repro.bvh.nodes.FlatBVH`."""
    if not telemetry.enabled():
        return
    telemetry.inc_counter("bvh.builds", 1, method=method, **labels)
    telemetry.set_gauge("bvh.nodes", bvh.num_nodes, method=method, **labels)
    telemetry.set_gauge(
        "bvh.triangles", bvh.num_triangles, method=method, **labels
    )


__all__ = [
    "FRACTION_BUCKETS",
    "publish_bvh",
    "publish_cache_stats",
    "publish_dram_stats",
    "publish_rt_unit_result",
    "publish_simulation_result",
]
