"""Fold pipeline result objects into the global metrics registry.

Each ``publish_*`` helper maps one subsystem's result/stats object onto
the documented metric catalog (``docs/OBSERVABILITY.md``).  They are
duck-typed on purpose: importing the GPU or simulation modules here
would create an import cycle (those modules import
:mod:`repro.telemetry` for spans), and attribute access is all the
mapping needs.

Every helper is a no-op while telemetry is disabled, so instrumented
call sites invoke them unconditionally.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Optional, Tuple

from repro import telemetry

#: Bucket edges for fraction-valued histograms (rates in [0, 1]).
FRACTION_BUCKETS = (0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)

#: Bucket edges for per-warp-iteration active-lane counts (powers of
#: two up to the widest supported warp).  The shape of this histogram
#: *is* the divergence story: Figure 10's SIMT-efficiency gap shows up
#: here as mass in the low buckets.
LANE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0,
                512.0, 1024.0)


class LaneHistogram:
    """Accumulates per-warp-iteration active-lane counts locally.

    The RT-unit event loops retire one warp iteration at a time, so
    observing straight into the registry would cost a dict probe per
    iteration.  Instead the loop allocates one of these only when
    telemetry is enabled (``None`` otherwise - the off path stays a
    single ``is not None`` check), accumulates raw bucket counts with a
    ``bisect``, and folds the whole distribution into the registry once
    at run end via :meth:`publish`.
    """

    __slots__ = ("counts", "total", "sum", "min", "max")

    def __init__(self) -> None:
        self.counts = [0] * (len(LANE_BUCKETS) + 1)
        self.total = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def add(self, active: int) -> None:
        """Record one warp iteration's active-lane count."""
        telemetry.record_hook_activation()
        self.counts[bisect_left(LANE_BUCKETS, active)] += 1
        self.total += 1
        self.sum += active
        if active < self.min:
            self.min = float(active)
        if active > self.max:
            self.max = float(active)

    def publish(self, **labels: object) -> None:
        """Fold the accumulated distribution into the global registry."""
        if not telemetry.enabled() or not self.total:
            return
        hist = telemetry.get_registry().histogram(
            "rt_unit.active_lanes", buckets=LANE_BUCKETS,
            **telemetry.current_labels(labels),
        )
        hist.add_raw(self.counts, self.total, self.sum, self.min, self.max)


def table_stats_state(table) -> Optional[Tuple[int, ...]]:
    """Snapshot a predictor table's cumulative stats (for deltas).

    Returns ``None`` when telemetry is off or ``table`` is ``None``
    (meta predictors without a single table).  Taken at run start so
    :func:`publish_table_stats` can publish only what *this* run did -
    pre-warmed predictors reused across frames keep cumulative stats,
    and publishing those repeatedly would double count.
    """
    if table is None or not telemetry.enabled():
        return None
    stats = table.stats
    return (
        stats.lookups, stats.hits, stats.updates,
        stats.entry_evictions, stats.node_evictions,
        getattr(table, "tag_alias_probes", 0),
    )


def publish_table_stats(
    table, since: Optional[Tuple[int, ...]] = None, **labels: object
) -> None:
    """Publish predictor-table introspection counters (Section 4.1).

    ``since`` is a :func:`table_stats_state` snapshot from run start;
    ``None`` publishes the cumulative values (fresh-table runs).  The
    occupancy gauge is point-in-time by nature.  ``tag_alias_probes``
    (probes matching more than one way, only possible after tag
    corruption or deliberate hash aliasing) is only tracked by the
    vectorized table; the scalar reference table publishes zero.
    ``table=None`` is a no-op (predictors without a single table).
    """
    if table is None or not telemetry.enabled():
        return
    base = since or (0, 0, 0, 0, 0, 0)
    stats = table.stats
    inc = telemetry.inc_counter
    inc("table.lookups", stats.lookups - base[0], **labels)
    inc("table.hits", stats.hits - base[1], **labels)
    inc("table.updates", stats.updates - base[2], **labels)
    inc("table.entry_evictions", stats.entry_evictions - base[3], **labels)
    inc("table.node_evictions", stats.node_evictions - base[4], **labels)
    inc("table.tag_aliases",
        getattr(table, "tag_alias_probes", 0) - base[5], **labels)
    occupancy = getattr(table, "occupancy", None)
    if occupancy is not None:
        telemetry.set_gauge("table.occupancy", occupancy(), **labels)


def publish_reuse_distances(memory, **labels: object) -> None:
    """Publish a memory hierarchy's cache-line reuse-distance buckets.

    The raw counts accumulate locally on the
    :class:`~repro.gpu.memory.MemoryHierarchy` (tracking is sampled at
    construction; see ``docs/OBSERVABILITY.md``), so this also works
    for memory objects shipped back from ``sm_jobs`` workers.  Publish
    once per run per hierarchy from a single owner (the workload
    simulator) to avoid double counting.
    """
    if not telemetry.enabled():
        return
    counts = getattr(memory, "reuse_counts", None)
    if counts is None:
        return
    telemetry.inc_counter(
        "memory.cold_lines", memory.reuse_cold_lines, **labels
    )
    if not memory.reuse_total:
        return
    from repro.gpu.memory import REUSE_DISTANCE_BUCKETS

    hist = telemetry.get_registry().histogram(
        "memory.reuse_distance", buckets=REUSE_DISTANCE_BUCKETS,
        **telemetry.current_labels(labels),
    )
    hist.add_raw(
        counts, memory.reuse_total, memory.reuse_sum,
        memory.reuse_min, memory.reuse_max,
    )


def publish_simulation_result(result, engine: str, **labels: object) -> None:
    """Publish a functional :class:`~repro.core.simulate.SimulationResult`.

    Emits the paper's headline decomposition: every ray is exactly one
    of verified / mispredicted / unpredicted, and
    ``predicted = verified + mispredicted``.
    """
    if not telemetry.enabled():
        return
    inc = telemetry.inc_counter
    mispredicted = result.predicted - result.verified
    inc("predictor.rays", result.num_rays, engine=engine, **labels)
    inc("predictor.predicted", result.predicted, engine=engine, **labels)
    inc("predictor.verified", result.verified, engine=engine, **labels)
    inc("predictor.mispredicted", mispredicted, engine=engine, **labels)
    inc("predictor.unpredicted", result.num_rays - result.predicted,
        engine=engine, **labels)
    inc("predictor.hits", result.hits, engine=engine, **labels)
    inc("predictor.table_lookups", result.table_lookups, engine=engine, **labels)
    inc("predictor.table_updates", result.table_updates, engine=engine, **labels)
    inc("predictor.guard_fallbacks", result.guard_fallbacks,
        engine=engine, **labels)
    inc("predictor.node_fetches", result.predictor_node_fetches,
        engine=engine, **labels)
    inc("predictor.tri_fetches", result.predictor_tri_fetches,
        engine=engine, **labels)
    inc("predictor.baseline_node_fetches", result.baseline_node_fetches,
        engine=engine, **labels)
    inc("predictor.baseline_tri_fetches", result.baseline_tri_fetches,
        engine=engine, **labels)
    inc("predictor.misprediction_node_fetches",
        result.misprediction_node_fetches, engine=engine, **labels)
    inc("predictor.misprediction_tri_fetches",
        result.misprediction_tri_fetches, engine=engine, **labels)
    telemetry.observe(
        "predictor.verified_rate", result.verified_rate,
        buckets=FRACTION_BUCKETS, engine=engine, **labels,
    )


def publish_rt_unit_result(result, **labels: object) -> None:
    """Publish a :class:`~repro.gpu.rt_unit.RTUnitResult`.

    Cache and DRAM traffic is published separately (from the cache/DRAM
    stats objects themselves, see :func:`publish_cache_stats`) to avoid
    double counting when several RT units share one hierarchy.
    """
    if not telemetry.enabled():
        return
    inc = telemetry.inc_counter
    inc("rt_unit.rays", result.rays, **labels)
    inc("rt_unit.hits", result.hits, **labels)
    inc("rt_unit.predicted", result.predicted, **labels)
    inc("rt_unit.verified", result.verified, **labels)
    inc("rt_unit.mispredicted", result.predicted - result.verified, **labels)
    inc("rt_unit.node_fetches", result.node_fetches, **labels)
    inc("rt_unit.tri_fetches", result.tri_fetches, **labels)
    inc("rt_unit.box_tests", result.box_tests, **labels)
    inc("rt_unit.tri_tests", result.tri_tests, **labels)
    inc("rt_unit.warps_executed", result.warps_executed, **labels)
    inc("rt_unit.warp_steps", result.warp_steps, **labels)
    inc("rt_unit.stack_spills", result.stack_spills, **labels)
    inc("rt_unit.guard_restarts", result.guard_restarts, **labels)
    inc("rt_unit.predictor_lookups", result.predictor_lookups, **labels)
    inc("rt_unit.predictor_updates", result.predictor_updates, **labels)
    telemetry.set_gauge("rt_unit.cycles", result.cycles, **labels)
    telemetry.set_gauge(
        "rt_unit.simt_efficiency", result.simt_efficiency, **labels
    )


def publish_cache_stats(stats, level: str, **labels: object) -> None:
    """Publish one :class:`~repro.gpu.cache.CacheStats` (``level``: l1/l2).

    Counters are cumulative on the stats object, so publish once per
    run from a single owner (the workload simulator), not per access.
    """
    if not telemetry.enabled():
        return
    telemetry.inc_counter("cache.accesses", stats.accesses,
                          level=level, **labels)
    telemetry.inc_counter("cache.hits", stats.hits, level=level, **labels)
    telemetry.inc_counter("cache.misses", stats.misses, level=level, **labels)
    telemetry.set_gauge("cache.hit_rate", stats.hit_rate,
                        level=level, **labels)


def publish_dram_stats(stats, num_banks: int, **labels: object) -> None:
    """Publish one :class:`~repro.gpu.dram.DRAMStats`."""
    if not telemetry.enabled():
        return
    telemetry.inc_counter("dram.accesses", stats.accesses, **labels)
    telemetry.inc_counter("dram.stall_cycles", stats.stall_cycles, **labels)
    telemetry.inc_counter("dram.busy_cycles", stats.busy_cycles, **labels)
    telemetry.set_gauge(
        "dram.bank_parallelism", stats.bank_parallelism(num_banks), **labels
    )


def publish_bvh(bvh, method: str, **labels: object) -> None:
    """Publish build-time facts of a :class:`~repro.bvh.nodes.FlatBVH`."""
    if not telemetry.enabled():
        return
    telemetry.inc_counter("bvh.builds", 1, method=method, **labels)
    telemetry.set_gauge("bvh.nodes", bvh.num_nodes, method=method, **labels)
    telemetry.set_gauge(
        "bvh.triangles", bvh.num_triangles, method=method, **labels
    )


__all__ = [
    "FRACTION_BUCKETS",
    "LANE_BUCKETS",
    "LaneHistogram",
    "publish_bvh",
    "publish_cache_stats",
    "publish_dram_stats",
    "publish_reuse_distances",
    "publish_rt_unit_result",
    "publish_simulation_result",
    "publish_table_stats",
    "table_stats_state",
]
