"""Traversal statistics counters (canonical home of ``TraversalStats``).

The paper's figures are denominated in *memory accesses*: fetches of BVH
node records versus fetches of triangle records (Figure 1, Figure 13)
and nodes traversed per ray (Equation 1, Table 5).
:class:`TraversalStats` accumulates exactly those quantities as a cheap
local struct - per-ray hot loops mutate plain integers - and
:meth:`TraversalStats.publish` folds a finished accumulation into the
global telemetry registry as labeled ``trace.*`` counters.

Historically this class lived in :mod:`repro.trace.counters`; that
module remains as a re-exporting shim so existing imports keep working.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro import telemetry


@dataclass
class TraversalStats:
    """Mutable counters accumulated while tracing one or more rays.

    Attributes:
        node_fetches: interior BVH node records fetched from memory.
        tri_fetches: triangle records fetched from memory.
        box_tests: ray-box intersection tests executed.
        tri_tests: ray-triangle intersection tests executed.
        rays: rays traced into this counter.
        hits: rays that found an intersection.
        trace: optional ordered access log of ``("node"|"tri", index)``
            pairs, populated only when tracing with ``record_trace=True``.
    """

    node_fetches: int = 0
    tri_fetches: int = 0
    box_tests: int = 0
    tri_tests: int = 0
    rays: int = 0
    hits: int = 0
    trace: List[Tuple[str, int]] = field(default_factory=list)

    @property
    def total_accesses(self) -> int:
        """Total memory accesses (node + triangle fetches)."""
        return self.node_fetches + self.tri_fetches

    def merge(self, other: "TraversalStats") -> None:
        """Accumulate ``other`` into this counter (traces concatenate)."""
        self.node_fetches += other.node_fetches
        self.tri_fetches += other.tri_fetches
        self.box_tests += other.box_tests
        self.tri_tests += other.tri_tests
        self.rays += other.rays
        self.hits += other.hits
        if other.trace:
            self.trace.extend(other.trace)

    def per_ray(self) -> "TraversalStats":
        """Average counters per ray (trace omitted)."""
        n = max(1, self.rays)
        return TraversalStats(
            node_fetches=self.node_fetches / n,
            tri_fetches=self.tri_fetches / n,
            box_tests=self.box_tests / n,
            tri_tests=self.tri_tests / n,
            rays=1,
            hits=self.hits / n,
        )

    def publish(self, **labels: object) -> None:
        """Fold into the global registry as ``trace.*`` counters.

        No-op while telemetry is disabled.  Typical labels: ``engine``
        (scalar/wavefront) and ``stage`` (occlusion/closest/verify);
        ambient :func:`repro.telemetry.label_context` labels (scene)
        merge in automatically.
        """
        if not telemetry.enabled():
            return
        telemetry.inc_counter("trace.rays", self.rays, **labels)
        telemetry.inc_counter("trace.hits", self.hits, **labels)
        telemetry.inc_counter("trace.node_fetches", self.node_fetches, **labels)
        telemetry.inc_counter("trace.tri_fetches", self.tri_fetches, **labels)
        telemetry.inc_counter("trace.box_tests", self.box_tests, **labels)
        telemetry.inc_counter("trace.tri_tests", self.tri_tests, **labels)


__all__ = ["TraversalStats"]
