"""Ray hashing schemes (Section 4.2).

The predictor's key insight is that *similar* rays - similar origins and
directions - should collide in the predictor table ("constructive
aliasing"), while dissimilar rays should not.  Two hash functions are
evaluated in the paper:

* **Grid Spherical** (Figure 6a): quantize the origin on a ``2^n`` grid
  over the scene bounding box (the *Grid Hash*), quantize the direction
  in spherical coordinates (``m`` bits of theta, ``m+1`` bits of phi),
  and xor the two.
* **Two Point** (Figure 6b): Grid-Hash the origin and an estimated target
  point ``t = o + r * l * d`` (``l`` = longest scene-box edge, ``r`` a
  fixed length ratio), and xor the two grid hashes.

Hashes wider than the table index are folded by splitting into
index-width chunks and xor-ing them, like the gshare branch predictor.
"""

from __future__ import annotations

import math
from typing import Protocol, Sequence

import numpy as np

from repro.geometry.aabb import AABB


def fold_hash(value: int, in_bits: int, out_bits: int) -> int:
    """Fold an ``in_bits``-wide hash to ``out_bits`` by xor-ing chunks.

    Mirrors the gshare-style folding of Section 4.1: the hash is split
    into ``ceil(in_bits / out_bits)`` components combined with xor.
    """
    if out_bits <= 0:
        raise ValueError("out_bits must be positive")
    if in_bits <= out_bits:
        return value & ((1 << out_bits) - 1)
    mask = (1 << out_bits) - 1
    folded = 0
    while value:
        folded ^= value & mask
        value >>= out_bits
    return folded


def quantize(value: float, lo: float, hi: float, bits: int) -> int:
    """Map ``value`` in ``[lo, hi]`` to an integer in ``[0, 2^bits)``."""
    if bits < 1:
        raise ValueError("bits must be >= 1")
    span = hi - lo
    if span <= 0.0:
        return 0
    cells = (1 << bits) - 1
    q = int((value - lo) / span * (cells + 1))
    return min(max(q, 0), cells)


def grid_hash(
    point: Sequence[float], lo: Sequence[float], hi: Sequence[float], bits: int
) -> int:
    """The Grid Hash block: quantize each axis and concatenate (3*bits wide)."""
    qx = quantize(point[0], lo[0], hi[0], bits)
    qy = quantize(point[1], lo[1], hi[1], bits)
    qz = quantize(point[2], lo[2], hi[2], bits)
    return (qx << (2 * bits)) | (qy << bits) | qz


class RayHasher(Protocol):
    """Interface for ray hash functions consumed by the predictor."""

    #: Width of the produced hash in bits.
    bits: int

    def hash_ray(self, origin: Sequence[float], direction: Sequence[float]) -> int:
        """Hash one ray."""

    def hash_batch(self, origins: np.ndarray, directions: np.ndarray) -> np.ndarray:
        """Hash ``n`` rays at once (uint64 array)."""


class GridSphericalHash:
    """Grid Spherical hash (Figure 6a).

    The origin contributes ``3 * origin_bits`` bits via the Grid Hash;
    the direction contributes ``2 * direction_bits + 1`` bits (the most
    significant ``m`` bits of integer theta in [0, 180) and ``m+1`` bits
    of integer phi in [0, 360)), xor-ed into the origin hash.  The final
    hash is ``3 * origin_bits`` wide (15 bits at the paper's 5/3 setting).
    """

    def __init__(self, scene_aabb: AABB, origin_bits: int = 5, direction_bits: int = 3):
        if origin_bits < 1 or direction_bits < 1:
            raise ValueError("origin_bits and direction_bits must be >= 1")
        if direction_bits > 7:
            raise ValueError("direction_bits must be <= 7 (theta is an 8-bit integer)")
        self.origin_bits = origin_bits
        self.direction_bits = direction_bits
        self.bits = 3 * origin_bits
        self._lo = scene_aabb.lo
        self._hi = scene_aabb.hi

    def hash_ray(self, origin: Sequence[float], direction: Sequence[float]) -> int:
        """Hash one ray (see class docstring for the bit layout)."""
        origin_hash = grid_hash(origin, self._lo, self._hi, self.origin_bits)

        dx, dy, dz = direction[0], direction[1], direction[2]
        # Spherical coordinates of the (normalized) direction.
        theta = math.degrees(math.acos(max(-1.0, min(1.0, dy))))  # [0, 180]
        phi = math.degrees(math.atan2(dz, dx)) % 360.0  # [0, 360)
        theta_int = min(int(theta), 179)
        phi_int = min(int(phi), 359)
        m = self.direction_bits
        theta_bits = (theta_int >> (8 - m)) & ((1 << m) - 1)
        phi_bits = (phi_int >> (9 - (m + 1))) & ((1 << (m + 1)) - 1)
        direction_hash = (theta_bits << (m + 1)) | phi_bits

        return origin_hash ^ direction_hash

    def hash_batch(self, origins: np.ndarray, directions: np.ndarray) -> np.ndarray:
        """Vectorized hash of a whole ray batch."""
        origin_hash = _grid_hash_batch(origins, self._lo, self._hi, self.origin_bits)

        dy = np.clip(directions[:, 1], -1.0, 1.0)
        theta = np.degrees(np.arccos(dy))
        phi = np.degrees(np.arctan2(directions[:, 2], directions[:, 0])) % 360.0
        theta_int = np.minimum(theta.astype(np.uint64), 179)
        phi_int = np.minimum(phi.astype(np.uint64), 359)
        m = self.direction_bits
        theta_bits = (theta_int >> np.uint64(8 - m)) & np.uint64((1 << m) - 1)
        phi_bits = (phi_int >> np.uint64(9 - (m + 1))) & np.uint64((1 << (m + 1)) - 1)
        direction_hash = (theta_bits << np.uint64(m + 1)) | phi_bits
        return origin_hash ^ direction_hash


class TwoPointHash:
    """Two Point hash (Figure 6b).

    Hashes the origin and the estimated target point
    ``t = o + r * l * d`` through the Grid Hash block and xors them.
    ``l`` is the maximum extent of the scene bounding box and ``r`` the
    fixed estimated length ratio (paper sweeps 0.05-0.35, Table 8b).
    """

    def __init__(self, scene_aabb: AABB, origin_bits: int = 5, length_ratio: float = 0.15):
        if origin_bits < 1:
            raise ValueError("origin_bits must be >= 1")
        if length_ratio <= 0.0:
            raise ValueError("length_ratio must be positive")
        self.origin_bits = origin_bits
        self.length_ratio = length_ratio
        self.bits = 3 * origin_bits
        self._lo = scene_aabb.lo
        self._hi = scene_aabb.hi
        self._reach = length_ratio * scene_aabb.max_extent()

    def hash_ray(self, origin: Sequence[float], direction: Sequence[float]) -> int:
        """Hash one ray (origin xor estimated-target grid hashes)."""
        origin_hash = grid_hash(origin, self._lo, self._hi, self.origin_bits)
        target = (
            origin[0] + self._reach * direction[0],
            origin[1] + self._reach * direction[1],
            origin[2] + self._reach * direction[2],
        )
        target_hash = grid_hash(target, self._lo, self._hi, self.origin_bits)
        return origin_hash ^ target_hash

    def hash_batch(self, origins: np.ndarray, directions: np.ndarray) -> np.ndarray:
        """Vectorized hash of a whole ray batch."""
        origin_hash = _grid_hash_batch(origins, self._lo, self._hi, self.origin_bits)
        targets = origins + self._reach * directions
        target_hash = _grid_hash_batch(targets, self._lo, self._hi, self.origin_bits)
        return origin_hash ^ target_hash


def _grid_hash_batch(
    points: np.ndarray, lo: Sequence[float], hi: Sequence[float], bits: int
) -> np.ndarray:
    """Vectorized Grid Hash block."""
    lo_arr = np.asarray(lo, dtype=np.float64)
    hi_arr = np.asarray(hi, dtype=np.float64)
    span = np.where(hi_arr > lo_arr, hi_arr - lo_arr, 1.0)
    cells = (1 << bits) - 1
    q = ((points - lo_arr) / span * (cells + 1)).astype(np.int64)
    q = np.clip(q, 0, cells).astype(np.uint64)
    b = np.uint64(bits)
    return (q[:, 0] << (b + b)) | (q[:, 1] << b) | q[:, 2]


def make_hasher(
    kind: str,
    scene_aabb: AABB,
    origin_bits: int = 5,
    direction_bits: int = 3,
    length_ratio: float = 0.15,
) -> RayHasher:
    """Construct a hasher by name (``"grid_spherical"`` or ``"two_point"``)."""
    if kind == "grid_spherical":
        return GridSphericalHash(scene_aabb, origin_bits, direction_bits)
    if kind == "two_point":
        return TwoPointHash(scene_aabb, origin_bits, length_ratio)
    raise ValueError(f"unknown hash kind: {kind!r}")
