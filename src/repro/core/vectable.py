"""Struct-of-arrays predictor table with batched probe kernels.

:class:`VectorizedPredictorTable` stores the Section 4.1 table as flat
numpy arrays - one plane per hardware field (valid bit, tag, node slot,
replacement metadata) - instead of per-entry Python objects, and adds
``lookup_batch`` / ``update_batch`` / ``confirm_batch`` kernels that
process a whole hash vector per call.  The wavefront simulation engine
(:mod:`repro.core.simulate`) probes an entire in-flight window with
three kernel calls instead of ``3 x in_flight`` Python method calls.

Order equivalence
-----------------
The scalar :class:`~repro.core.table.PredictorTable` remains the
differential reference; this class is *order-equivalent* to it:

* Entry LRU order is a monotone global stamp per entry; the scalar
  list front (the eviction victim) is the minimum stamp.
* Node-policy state is per-slot metadata: LRU keeps a recency stamp,
  LFU a use count plus insertion sequence, LRU-K a right-aligned
  K-history (``-1`` padded, so the K-th most recent reference is simply
  column 0).  Victim selection reproduces the scalar tie-breaks
  (minimum count / oldest K-th reference, then insertion order).
* ``lookup`` returns nodes in the scalar list order (recency order for
  LRU, insertion order for LFU/LRU-K), which the verification step
  traverses in order.

Batched probes are order-equivalent to sequential probes: every probe
in a batch draws a distinct, position-ordered stamp, probes to
*different* sets commute, and probes that share a set (or entry) are
replayed sequentially through the same single-probe kernel.  The
differential and Hypothesis tests in ``tests/test_vectable.py`` pin
this contract across all associativities and policies.

The fault-injection surface (``occupied_slots`` / ``entry_nodes`` /
``corrupt_node`` / ``corrupt_tag``) is preserved: logical ``(set, way)``
coordinates follow the scalar bucket order (stamp-ascending), and
corruption rewrites the stored value without touching replacement
metadata, like SRAM corruption would.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro import telemetry
from repro.core.policies import LFUPolicy, LRUKPolicy, LRUPolicy, make_node_policy
from repro.core.table import NODE_INDEX_BITS, VALID_BITS, PredictorTable, TableStats

#: Sentinel for masked argmin reductions over stamps/counts.
_INF = np.iinfo(np.int64).max


class VectorizedPredictorTable:
    """Set-associative predictor table backed by flat numpy planes.

    Drop-in replacement for :class:`~repro.core.table.PredictorTable`
    (same constructor, probe, statistics and fault surfaces) plus the
    batched kernels ``lookup_batch`` / ``update_batch`` /
    ``confirm_batch``.
    """

    def __init__(
        self,
        num_entries: int = 1024,
        ways: int = 4,
        nodes_per_entry: int = 1,
        hash_bits: int = 15,
        node_policy: str = "lru",
        node_policy_kwargs: Optional[dict] = None,
    ) -> None:
        if num_entries < 1 or ways < 1:
            raise ValueError("num_entries and ways must be >= 1")
        if num_entries % ways != 0:
            raise ValueError("num_entries must be divisible by ways")
        num_sets = num_entries // ways
        if num_sets & (num_sets - 1):
            raise ValueError("num_entries / ways must be a power of two")
        self.num_entries = num_entries
        self.ways = ways
        self.nodes_per_entry = nodes_per_entry
        self.hash_bits = hash_bits
        self.num_sets = num_sets
        self.index_bits = num_sets.bit_length() - 1
        self.node_policy = node_policy
        self._node_policy_kwargs = dict(node_policy_kwargs or {})

        # Validate the policy configuration through the scalar factory so
        # both implementations reject identical configurations.
        probe = make_node_policy(
            node_policy, nodes_per_entry, **self._node_policy_kwargs
        )
        if isinstance(probe, LRUKPolicy):
            self._kind = "lruk"
            self._k = probe.k
        elif isinstance(probe, LFUPolicy):
            self._kind = "lfu"
            self._k = 0
        elif isinstance(probe, LRUPolicy):
            self._kind = "lru"
            self._k = 0
        else:  # pragma: no cover - unreachable via make_node_policy
            raise ValueError(f"unsupported node replacement policy: {node_policy!r}")

        S, W, P = num_sets, ways, nodes_per_entry
        # Entry planes.
        self._valid = np.zeros((S, W), dtype=bool)
        self._tags = np.zeros((S, W), dtype=np.int64)
        self._estamp = np.zeros((S, W), dtype=np.int64)
        # Node-slot planes.
        self._nodes = np.full((S, W, P), -1, dtype=np.int64)
        self._nvalid = np.zeros((S, W, P), dtype=bool)
        self._nstamp = np.zeros((S, W, P), dtype=np.int64)   # LRU recency
        self._nseq = np.zeros((S, W, P), dtype=np.int64)     # insertion order
        self._ncount = np.zeros((S, W, P), dtype=np.int64)   # LFU use count
        if self._kind == "lruk":
            self._nhist = np.full((S, W, P, self._k), -1, dtype=np.int64)
        else:
            self._nhist = None
        self._clock = 0
        self.stats = TableStats()
        # Tag-alias introspection (docs/OBSERVABILITY.md): a probe that
        # matches more than one way means two entries share a tag in a
        # set - impossible in normal operation, observable after
        # ``corrupt_tag`` (hash aliasing) fault injection.  Enablement
        # is sampled at construction so the disabled probe path pays a
        # single attribute check.
        self._telemetry = telemetry.enabled()
        self.tag_alias_probes = 0

    # ------------------------------------------------------------------
    # Hash folding (batched form of PredictorTable._index_and_tag).
    # ------------------------------------------------------------------
    def _index_and_tag(self, ray_hash: int):
        """Scalar fold, identical to the batched kernel for one hash."""
        tag = int(ray_hash) & ((1 << self.hash_bits) - 1)
        if self.index_bits == 0:
            return 0, tag
        omask = (1 << self.index_bits) - 1
        folded = 0
        chunk = tag
        remaining = self.hash_bits
        while remaining > 0:
            folded ^= chunk & omask
            chunk >>= self.index_bits
            remaining -= self.index_bits
        return folded, tag

    def _index_and_tag_batch(self, hashes: np.ndarray):
        hashes = np.asarray(hashes, dtype=np.uint64)
        tag = hashes & np.uint64((1 << self.hash_bits) - 1)
        if self.index_bits == 0:
            return np.zeros(hashes.shape, dtype=np.int64), tag.astype(np.int64)
        omask = np.uint64((1 << self.index_bits) - 1)
        shift = np.uint64(self.index_bits)
        folded = np.zeros_like(tag)
        chunk = tag.copy()
        remaining = self.hash_bits
        while remaining > 0:
            folded ^= chunk & omask
            chunk >>= shift
            remaining -= self.index_bits
        return folded.astype(np.int64), tag.astype(np.int64)

    def _ticks(self, n: int) -> np.ndarray:
        """Reserve ``n`` consecutive stamps, one per probe position."""
        base = self._clock
        self._clock += n
        return np.arange(base + 1, base + n + 1, dtype=np.int64)

    # ------------------------------------------------------------------
    # Internal order helpers.
    # ------------------------------------------------------------------
    def _order_key(self) -> np.ndarray:
        """Per-slot key whose ascending order is the scalar list order."""
        return self._nstamp if self._kind == "lru" else self._nseq

    def _match_way(self, s: int, t: int) -> int:
        """Way holding tag ``t`` in set ``s`` (-1 = miss).

        Tags are unique per set in normal operation; after
        ``corrupt_tag`` aliasing the scalar engine answers with the
        first bucket-order match, i.e. the minimum entry stamp.
        """
        m = self._valid[s] & (self._tags[s] == t)
        if not m.any():
            return -1
        return int(np.where(m, self._estamp[s], _INF).argmin())

    def _node_order(self, s: int, w: int) -> np.ndarray:
        """Physical slot indices of entry ``(s, w)`` in list order."""
        val = self._nvalid[s, w]
        key = np.where(val, self._order_key()[s, w], _INF)
        return np.argsort(key, kind="stable")[: int(val.sum())]

    def _entry_order(self, s: int) -> np.ndarray:
        """Physical ways of set ``s`` in bucket (LRU) order."""
        val = self._valid[s]
        key = np.where(val, self._estamp[s], _INF)
        return np.argsort(key, kind="stable")[: int(val.sum())]

    # ------------------------------------------------------------------
    # Batched kernels.
    # ------------------------------------------------------------------
    def lookup_batch(self, hashes: np.ndarray):
        """Probe a whole hash vector; returns ``(nodes, counts)``.

        ``nodes`` is ``(n, nodes_per_entry)`` int64, list-ordered and
        ``-1``-padded; ``counts`` is the per-probe number of valid
        nodes (0 = table miss).  Statistics and entry recency update
        exactly as ``n`` sequential :meth:`lookup` calls would: probes
        never mutate node state, and duplicate probes of one entry
        leave the latest probe's stamp.
        """
        hashes = np.asarray(hashes, dtype=np.uint64)
        n = hashes.size
        P = self.nodes_per_entry
        out_nodes = np.full((n, P), -1, dtype=np.int64)
        out_counts = np.zeros(n, dtype=np.int64)
        self.stats.lookups += n
        if n == 0:
            return out_nodes, out_counts
        idx, tag = self._index_and_tag_batch(hashes)
        vt = self._valid[idx]
        match = vt & (self._tags[idx] == tag[:, None])
        if self._telemetry:
            telemetry.record_hook_activation()
            self.tag_alias_probes += int((match.sum(axis=1) > 1).sum())
        hit = match.any(axis=1)
        nhits = int(hit.sum())
        self.stats.hits += nhits
        if not nhits:
            return out_nodes, out_counts
        way = np.where(match, self._estamp[idx], _INF).argmin(axis=1)
        hs, hw = idx[hit], way[hit]
        stamps = self._ticks(n)
        # Duplicate probes of one entry: the sequentially-last (max)
        # stamp survives, exactly like repeated scalar lookups.
        np.maximum.at(self._estamp, (hs, hw), stamps[hit])
        ev = self._nvalid[hs, hw]
        key = np.where(ev, self._order_key()[hs, hw], _INF)
        order = np.argsort(key, axis=1, kind="stable")
        snodes = np.take_along_axis(self._nodes[hs, hw], order, axis=1)
        counts = ev.sum(axis=1)
        snodes[np.arange(P)[None, :] >= counts[:, None]] = -1
        out_nodes[hit] = snodes
        out_counts[hit] = counts
        return out_nodes, out_counts

    def update_batch(self, hashes: np.ndarray, nodes: np.ndarray) -> None:
        """Train a whole probe vector (delayed window commit).

        Equivalent to ``n`` sequential :meth:`update` calls in batch
        order.  Probes to distinct sets commute and run through one
        vectorized pass; probes sharing a set are replayed sequentially
        (same kernel, singleton rows) with their original stamps, so
        allocation and eviction order is preserved.
        """
        hashes = np.asarray(hashes, dtype=np.uint64)
        nodes = np.asarray(nodes, dtype=np.int64)
        n = hashes.size
        self.stats.updates += n
        if n == 0:
            return
        idx, tag = self._index_and_tag_batch(hashes)
        stamps = self._ticks(n)
        uniq, counts = np.unique(idx, return_counts=True)
        conflicted = np.isin(idx, uniq[counts > 1])
        rows = np.nonzero(~conflicted)[0]
        if rows.size:
            self._update_rows(idx[rows], tag[rows], nodes[rows], stamps[rows])
        for i in np.nonzero(conflicted)[0]:
            self._update_rows(idx[i:i + 1], tag[i:i + 1],
                              nodes[i:i + 1], stamps[i:i + 1])

    def confirm_batch(self, hashes: np.ndarray, nodes: np.ndarray) -> None:
        """Policy feedback for a whole vector of verified predictions.

        Equivalent to ``n`` sequential :meth:`confirm` calls in batch
        order; probes sharing an entry are replayed sequentially.
        """
        hashes = np.asarray(hashes, dtype=np.uint64)
        nodes = np.asarray(nodes, dtype=np.int64)
        n = hashes.size
        if n == 0:
            return
        idx, tag = self._index_and_tag_batch(hashes)
        stamps = self._ticks(n)
        # Conflicts are per *entry* here: confirm never moves entries,
        # so probes of different ways in one set still commute.
        vt = self._valid[idx]
        match = vt & (self._tags[idx] == tag[:, None])
        hit = match.any(axis=1)
        if not hit.any():
            return
        way = np.where(match, self._estamp[idx], _INF).argmin(axis=1)
        key = np.where(hit, idx * self.ways + way, -1)
        uniq, counts = np.unique(key[hit], return_counts=True)
        conflicted = np.isin(key, uniq[counts > 1]) & hit
        rows = np.nonzero(hit & ~conflicted)[0]
        if rows.size:
            self._confirm_rows(idx[rows], way[rows], nodes[rows], stamps[rows])
        for i in np.nonzero(conflicted)[0]:
            self._confirm_rows(idx[i:i + 1], way[i:i + 1],
                               nodes[i:i + 1], stamps[i:i + 1])

    # ------------------------------------------------------------------
    # Row kernels (vectorized over probes with unique sets/entries).
    # ------------------------------------------------------------------
    def _update_rows(self, s, t, node, stamp) -> None:
        vt = self._valid[s]
        match = vt & (self._tags[s] == t[:, None])
        hit = match.any(axis=1)
        way = np.where(match, self._estamp[s], _INF).argmin(axis=1)
        miss = ~hit
        full = vt.all(axis=1)
        evict = miss & full
        self.stats.entry_evictions += int(evict.sum())
        free_way = (~vt).argmax(axis=1)
        victim_way = self._estamp[s].argmin(axis=1)
        way = np.where(hit, way, np.where(full, victim_way, free_way))
        if miss.any():
            ms, mw = s[miss], way[miss]
            self._valid[ms, mw] = True
            self._tags[ms, mw] = t[miss]
            self._nvalid[ms, mw] = False
        # Hit or miss, the trained entry becomes most recent (the scalar
        # path re-appends it to the bucket).
        self._estamp[s, way] = stamp

        ent_nodes = self._nodes[s, way]
        ent_valid = self._nvalid[s, way]
        dup = ent_valid & (ent_nodes == node[:, None])
        isdup = dup.any(axis=1)
        dup_slot = dup.argmax(axis=1)
        count = ent_valid.sum(axis=1)
        has_free = count < self.nodes_per_entry
        free_slot = (~ent_valid).argmax(axis=1)
        victim = self._node_victims(s, way, ent_valid)
        slot = np.where(isdup, dup_slot, np.where(has_free, free_slot, victim))
        self.stats.node_evictions += int((~isdup & ~has_free).sum())

        new = ~isdup
        if new.any():
            ns, nw, nslot = s[new], way[new], slot[new]
            self._nodes[ns, nw, nslot] = node[new]
            self._nvalid[ns, nw, nslot] = True
            self._nseq[ns, nw, nslot] = stamp[new]
            if self._kind == "lru":
                self._nstamp[ns, nw, nslot] = stamp[new]
            elif self._kind == "lfu":
                self._ncount[ns, nw, nslot] = 1
            else:
                self._nhist[ns, nw, nslot, :] = -1
                self._nhist[ns, nw, nslot, -1] = stamp[new]
        if isdup.any():
            # Re-inserting a present node is a policy touch.
            self._touch_slots(s[isdup], way[isdup], slot[isdup], stamp[isdup])

    def _confirm_rows(self, s, w, node, stamp) -> None:
        ent_valid = self._nvalid[s, w]
        m = ent_valid & (self._nodes[s, w] == node[:, None])
        found = m.any(axis=1)
        if not found.any():
            return
        # First list-order occurrence, matching scalar value search.
        key = np.where(m, self._order_key()[s, w], _INF)
        slot = key.argmin(axis=1)
        fs = found
        self._touch_slots(s[fs], w[fs], slot[fs], stamp[fs])

    def _touch_slots(self, s, w, slot, stamp) -> None:
        """Policy 'use' events at distinct ``(s, w, slot)`` coordinates."""
        if self._kind == "lru":
            self._nstamp[s, w, slot] = stamp
        elif self._kind == "lfu":
            self._ncount[s, w, slot] += 1
        else:
            hist = self._nhist[s, w, slot]
            hist[:, :-1] = hist[:, 1:]
            hist[:, -1] = stamp
            self._nhist[s, w, slot] = hist

    def _node_victims(self, s, w, ent_valid) -> np.ndarray:
        """Per-row eviction slot under the configured policy."""
        if self._kind == "lru":
            key = np.where(ent_valid, self._nstamp[s, w], _INF)
            return key.argmin(axis=1)
        if self._kind == "lfu":
            primary = np.where(ent_valid, self._ncount[s, w], _INF)
        else:
            primary = np.where(ent_valid, self._nhist[s, w, :, 0], _INF)
        cand = primary == primary.min(axis=1, keepdims=True)
        tie = np.where(cand, self._nseq[s, w], _INF)
        return tie.argmin(axis=1)

    def _touch_slot(self, s: int, w: int, slot: int, stamp: int) -> None:
        """Single-coordinate form of :meth:`_touch_slots`."""
        if self._kind == "lru":
            self._nstamp[s, w, slot] = stamp
        elif self._kind == "lfu":
            self._ncount[s, w, slot] += 1
        else:
            hist = self._nhist[s, w, slot]
            hist[:-1] = hist[1:]
            hist[-1] = stamp

    def _node_victim(self, s: int, w: int, ent_valid: np.ndarray) -> int:
        """Single-entry form of :meth:`_node_victims`."""
        if self._kind == "lru":
            key = np.where(ent_valid, self._nstamp[s, w], _INF)
            return int(key.argmin())
        if self._kind == "lfu":
            primary = np.where(ent_valid, self._ncount[s, w], _INF)
        else:
            primary = np.where(ent_valid, self._nhist[s, w, :, 0], _INF)
        cand = primary == primary.min()
        tie = np.where(cand, self._nseq[s, w], _INF)
        return int(tie.argmin())

    # ------------------------------------------------------------------
    # Scalar probe API.
    #
    # Semantically these are ``*_batch`` calls with ``n == 1``, but they
    # run as direct single-row kernels: the event-driven RT-unit timing
    # model retires threads one at a time, and going through the batch
    # path costs ~100x more per probe in fancy-indexing overhead.  The
    # differential tests in ``tests/test_vectable.py`` drive the table
    # through this scalar surface, pinning it to both the batch kernels
    # and the reference ``PredictorTable``.
    # ------------------------------------------------------------------
    def lookup(self, ray_hash: int) -> Optional[List[int]]:
        """Look a ray hash up; returns the predicted nodes or ``None``."""
        self.stats.lookups += 1
        s, t = self._index_and_tag(ray_hash)
        if self._telemetry:
            telemetry.record_hook_activation()
            m = self._valid[s] & (self._tags[s] == t)
            if int(m.sum()) > 1:
                self.tag_alias_probes += 1
        way = self._match_way(s, t)
        if way < 0:
            # Misses consume no stamp, matching ``lookup_batch``'s
            # early return before ``_ticks``.
            return None
        self.stats.hits += 1
        self._clock += 1
        self._estamp[s, way] = self._clock
        order = self._node_order(s, way)
        return [int(self._nodes[s, way, p]) for p in order]

    def peek(self, ray_hash: int) -> Optional[List[int]]:
        """Probe without touching LRU state or statistics."""
        idx, tag = self._index_and_tag_batch(
            np.asarray([ray_hash], dtype=np.uint64)
        )
        s, t = int(idx[0]), int(tag[0])
        way = self._match_way(s, t)
        if way < 0:
            return None
        order = self._node_order(s, way)
        return [int(self._nodes[s, way, p]) for p in order]

    def confirm(self, ray_hash: int, node: int) -> None:
        """Record that ``node`` from this entry verified a ray."""
        s, t = self._index_and_tag(ray_hash)
        # ``confirm_batch`` reserves stamps before probing; keep the
        # same clock consumption so interleavings stay order-equivalent.
        self._clock += 1
        stamp = self._clock
        way = self._match_way(s, t)
        if way < 0:
            return
        ent_valid = self._nvalid[s, way]
        m = ent_valid & (self._nodes[s, way] == int(node))
        if not m.any():
            return
        key = np.where(m, self._order_key()[s, way], _INF)
        self._touch_slot(s, way, int(key.argmin()), stamp)

    def update(self, ray_hash: int, node: int) -> None:
        """Insert one traversal result (see ``PredictorTable.update``)."""
        self.stats.updates += 1
        s, t = self._index_and_tag(ray_hash)
        node = int(node)
        self._clock += 1
        stamp = self._clock
        way = self._match_way(s, t)
        if way < 0:
            valid_row = self._valid[s]
            if valid_row.all():
                way = int(self._estamp[s].argmin())
                self.stats.entry_evictions += 1
            else:
                way = int((~valid_row).argmax())
            self._valid[s, way] = True
            self._tags[s, way] = t
            self._nvalid[s, way] = False
        # Hit or miss, the trained entry becomes most recent.
        self._estamp[s, way] = stamp
        ent_valid = self._nvalid[s, way]
        dup = ent_valid & (self._nodes[s, way] == node)
        if dup.any():
            # Re-inserting a present node is a policy touch.
            self._touch_slot(s, way, int(dup.argmax()), stamp)
            return
        if not ent_valid.all():
            slot = int((~ent_valid).argmax())
        else:
            slot = self._node_victim(s, way, ent_valid)
            self.stats.node_evictions += 1
        self._nodes[s, way, slot] = node
        self._nvalid[s, way, slot] = True
        self._nseq[s, way, slot] = stamp
        if self._kind == "lru":
            self._nstamp[s, way, slot] = stamp
        elif self._kind == "lfu":
            self._ncount[s, way, slot] = 1
        else:
            self._nhist[s, way, slot, :] = -1
            self._nhist[s, way, slot, -1] = stamp

    # ------------------------------------------------------------------
    # Fault-injection surface (logical scalar coordinates).
    # ------------------------------------------------------------------
    def occupied_slots(self) -> List[tuple]:
        """All ``(set_index, way)`` pairs currently holding an entry."""
        return [
            (s, way)
            for s in range(self.num_sets)
            for way in range(int(self._valid[s].sum()))
        ]

    def entry_nodes(self, set_index: int, way: int) -> List[int]:
        """The node slots of one entry (copy, list order)."""
        pw = int(self._entry_order(set_index)[way])
        order = self._node_order(set_index, pw)
        return [int(self._nodes[set_index, pw, p]) for p in order]

    def entry_tag(self, set_index: int, way: int) -> int:
        """The tag of one entry."""
        return int(self._tags[set_index, self._entry_order(set_index)[way]])

    def corrupt_node(self, set_index: int, way: int, slot: int, value: int) -> int:
        """Overwrite one node slot with ``value``; returns the old node.

        Replacement metadata keeps tracking the slot (hardware
        corruption does not update LRU state either).
        """
        pw = int(self._entry_order(set_index)[way])
        p = int(self._node_order(set_index, pw)[slot])
        old = int(self._nodes[set_index, pw, p])
        self._nodes[set_index, pw, p] = value
        return old

    def corrupt_tag(self, set_index: int, way: int, value: int) -> int:
        """Overwrite one entry's tag (hash aliasing); returns the old tag."""
        pw = int(self._entry_order(set_index)[way])
        old = int(self._tags[set_index, pw])
        self._tags[set_index, pw] = value & ((1 << self.hash_bits) - 1)
        return old

    # ------------------------------------------------------------------
    def occupancy(self) -> float:
        """Fraction of entries currently valid."""
        return float(self._valid.sum()) / self.num_entries

    def iter_nodes(self) -> List[int]:
        """All node indices currently stored (for oracle-lookup scans)."""
        out: List[int] = []
        for s in range(self.num_sets):
            for pw in self._entry_order(s):
                order = self._node_order(s, int(pw))
                out.extend(int(self._nodes[s, pw, p]) for p in order)
        return out

    def size_bits(self) -> int:
        """Storage cost in bits (valid + tag + node slots, per entry)."""
        per_entry = VALID_BITS + self.hash_bits + self.nodes_per_entry * NODE_INDEX_BITS
        return self.num_entries * per_entry

    def size_kib(self) -> float:
        """Storage cost in KiB (the paper quotes 5.5 KB for the default)."""
        return self.size_bits() / 8.0 / 1024.0

    def clear(self) -> None:
        """Invalidate every entry (start of a new frame)."""
        self._valid[:] = False
        self._nvalid[:] = False


#: Table implementations selectable via ``PredictorConfig.table_impl``.
TABLE_IMPLS = ("vector", "scalar")


def make_table(impl: str = "vector", **kwargs):
    """Construct a predictor table by implementation name.

    ``"vector"`` is the struct-of-arrays default;  ``"scalar"`` is the
    per-entry reference implementation kept for differential testing.
    """
    if impl == "vector":
        return VectorizedPredictorTable(**kwargs)
    if impl == "scalar":
        return PredictorTable(**kwargs)
    raise ValueError(
        f"unknown table implementation {impl!r}; expected one of {TABLE_IMPLS}"
    )


__all__ = ["TABLE_IMPLS", "VectorizedPredictorTable", "make_table"]
