"""Node replacement policies for multi-node predictor entries.

When an entry stores more than one predicted node (Table 6 columns), an
incoming node must evict an old one.  Section 6.1.3 compares LRU, LFU and
LRU-K and finds the differences insignificant; all three are implemented
so that result is reproducible.

A policy instance manages the slots of a *single* entry.  Slots store
BVH node indices; "use" events come from successful verifications.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class NodeReplacementPolicy:
    """Base class: an ordered set of node slots with a replacement rule."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._nodes: List[int] = []

    @property
    def nodes(self) -> List[int]:
        """Current predicted nodes, most recently inserted/used ordering."""
        return list(self._nodes)

    def __contains__(self, node: int) -> bool:
        return node in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def insert(self, node: int) -> Optional[int]:
        """Insert ``node``; returns the evicted node, if any."""
        """Insert ``node``; returns the evicted node, if any."""
        raise NotImplementedError

    def touch(self, node: int) -> None:
        """Record a use of ``node``."""
        """Record a use (successful verification) of ``node``."""
        raise NotImplementedError

    def replace_node(self, slot: int, node: int) -> int:
        """Overwrite the node in ``slot`` in place; returns the old value.

        This is the fault-injection hook: it models a bit-flipped or
        stale node field without going through the replacement rule.
        Recency/frequency metadata intentionally keeps tracking the old
        value - hardware corruption does not update LRU state either.
        """
        old = self._nodes[slot]
        self._nodes[slot] = node
        return old


class LRUPolicy(NodeReplacementPolicy):
    """Evict the least recently inserted-or-used node."""

    def insert(self, node: int) -> Optional[int]:
        """Insert ``node``; returns the evicted node, if any."""
        if node in self._nodes:
            self.touch(node)
            return None
        evicted = None
        if len(self._nodes) >= self.capacity:
            evicted = self._nodes.pop(0)
        self._nodes.append(node)
        return evicted

    def touch(self, node: int) -> None:
        """Record a use of ``node``."""
        if node in self._nodes:
            self._nodes.remove(node)
            self._nodes.append(node)


class LFUPolicy(NodeReplacementPolicy):
    """Evict the least frequently used node (ties break oldest-first)."""

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._counts: Dict[int, int] = {}

    def insert(self, node: int) -> Optional[int]:
        """Insert ``node``; returns the evicted node, if any."""
        if node in self._nodes:
            self.touch(node)
            return None
        evicted = None
        if len(self._nodes) >= self.capacity:
            evicted = min(self._nodes, key=lambda n: (self._counts.get(n, 0),
                                                      self._nodes.index(n)))
            self._nodes.remove(evicted)
            self._counts.pop(evicted, None)
        self._nodes.append(node)
        self._counts[node] = 1
        return evicted

    def touch(self, node: int) -> None:
        """Record a use of ``node``."""
        if node in self._counts:
            self._counts[node] += 1


class LRUKPolicy(NodeReplacementPolicy):
    """LRU-K: evict the node with the oldest K-th most recent reference.

    Nodes with fewer than K references rank before (are evicted before)
    nodes with K references, per O'Neil et al.; ``k`` defaults to 2.
    """

    def __init__(self, capacity: int, k: int = 2) -> None:
        super().__init__(capacity)
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self._history: Dict[int, List[int]] = {}
        self._clock = 0

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    def _kth_reference(self, node: int) -> int:
        refs = self._history.get(node, [])
        if len(refs) < self.k:
            return -1  # "infinitely old": evicted first
        return refs[-self.k]

    def insert(self, node: int) -> Optional[int]:
        """Insert ``node``, evicting the oldest-K-th-reference victim."""
        if node in self._nodes:
            self.touch(node)
            return None
        evicted = None
        if len(self._nodes) >= self.capacity:
            evicted = min(self._nodes, key=self._kth_reference)
            self._nodes.remove(evicted)
            self._history.pop(evicted, None)
        self._nodes.append(node)
        self._history[node] = [self._tick()]
        return evicted

    def touch(self, node: int) -> None:
        """Record a reference to ``node`` in its K-history."""
        if node in self._history:
            refs = self._history[node]
            refs.append(self._tick())
            # Only the last K references matter.
            if len(refs) > self.k:
                del refs[: len(refs) - self.k]


def make_node_policy(kind: str, capacity: int, **kwargs) -> NodeReplacementPolicy:
    """Construct a node replacement policy by name (``lru``/``lfu``/``lru-k``)."""
    if kind == "lru":
        return LRUPolicy(capacity)
    if kind == "lfu":
        return LFUPolicy(capacity)
    if kind in ("lru-k", "lruk"):
        return LRUKPolicy(capacity, **kwargs)
    raise ValueError(f"unknown node replacement policy: {kind!r}")
