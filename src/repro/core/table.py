"""The per-SM predictor table (Section 4.1, Figure 5).

A set-associative table of predictor entries.  Each entry holds a valid
bit, a ray-hash tag, and one or more predicted-node slots (27-bit BVH
node indices in hardware).  The ray hash indexes the table (folded to
the index width) and the full hash is compared against the stored tags;
entry replacement within a set is LRU, node replacement within an entry
is pluggable (Section 6.1.3).

At the paper's best configuration - 1024 entries, 4-way, 1 node/entry,
15-bit tags - the table costs 1024 * (1 + 15 + 27) bits = 5.5 KB per SM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.hashing import fold_hash
from repro.core.policies import NodeReplacementPolicy, make_node_policy

#: Bits per stored node index (2^27 nodes = at least 67M triangles).
NODE_INDEX_BITS = 27
#: The valid bit per entry.
VALID_BITS = 1


@dataclass
class TableStats:
    """Counters for predictor-table traffic."""

    lookups: int = 0
    hits: int = 0
    updates: int = 0
    entry_evictions: int = 0
    node_evictions: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that matched an entry (the predicted rate)."""
        return self.hits / self.lookups if self.lookups else 0.0


class _Entry:
    """One predictor entry: tag + node slots managed by a policy."""

    __slots__ = ("tag", "policy")

    def __init__(self, tag: int, policy: NodeReplacementPolicy) -> None:
        self.tag = tag
        self.policy = policy


class PredictorTable:
    """Set-associative table mapping ray hashes to predicted BVH nodes."""

    def __init__(
        self,
        num_entries: int = 1024,
        ways: int = 4,
        nodes_per_entry: int = 1,
        hash_bits: int = 15,
        node_policy: str = "lru",
        node_policy_kwargs: Optional[dict] = None,
    ) -> None:
        if num_entries < 1 or ways < 1:
            raise ValueError("num_entries and ways must be >= 1")
        if num_entries % ways != 0:
            raise ValueError("num_entries must be divisible by ways")
        num_sets = num_entries // ways
        if num_sets & (num_sets - 1):
            raise ValueError("num_entries / ways must be a power of two")
        self.num_entries = num_entries
        self.ways = ways
        self.nodes_per_entry = nodes_per_entry
        self.hash_bits = hash_bits
        self.num_sets = num_sets
        self.index_bits = num_sets.bit_length() - 1
        self.node_policy = node_policy
        self._node_policy_kwargs = dict(node_policy_kwargs or {})
        # Each set is an LRU-ordered list of entries (front = LRU victim).
        self._sets: List[List[_Entry]] = [[] for _ in range(num_sets)]
        self.stats = TableStats()

    # ------------------------------------------------------------------
    def _index_and_tag(self, ray_hash: int) -> tuple[int, int]:
        """Fold the hash to a set index; the tag is the full-width hash."""
        tag = ray_hash & ((1 << self.hash_bits) - 1)
        if self.index_bits == 0:
            return 0, tag
        index = fold_hash(tag, self.hash_bits, self.index_bits)
        return index, tag

    def _find(self, bucket: List[_Entry], tag: int) -> Optional[_Entry]:
        for entry in bucket:
            if entry.tag == tag:
                return entry
        return None

    # ------------------------------------------------------------------
    def lookup(self, ray_hash: int) -> Optional[List[int]]:
        """Look a ray hash up; returns the predicted nodes or ``None``.

        A hit refreshes the entry's LRU position (the entry was useful
        enough to consult; whether it verifies is reported separately via
        :meth:`confirm`).
        """
        self.stats.lookups += 1
        index, tag = self._index_and_tag(ray_hash)
        bucket = self._sets[index]
        entry = self._find(bucket, tag)
        if entry is None:
            return None
        self.stats.hits += 1
        bucket.remove(entry)
        bucket.append(entry)
        return entry.policy.nodes

    def peek(self, ray_hash: int) -> Optional[List[int]]:
        """Probe without touching LRU state or statistics."""
        index, tag = self._index_and_tag(ray_hash)
        entry = self._find(self._sets[index], tag)
        return entry.policy.nodes if entry is not None else None

    def confirm(self, ray_hash: int, node: int) -> None:
        """Record that ``node`` from this entry verified a ray (policy use)."""
        index, tag = self._index_and_tag(ray_hash)
        entry = self._find(self._sets[index], tag)
        if entry is not None:
            entry.policy.touch(node)

    def update(self, ray_hash: int, node: int) -> None:
        """Insert a traversal result: the ray hashed to ``ray_hash`` and
        intersected (the Go Up Level ancestor) ``node``.

        Allocates an entry on miss (evicting the set's LRU entry if the
        set is full) and inserts the node per the node policy.
        """
        self.stats.updates += 1
        index, tag = self._index_and_tag(ray_hash)
        bucket = self._sets[index]
        entry = self._find(bucket, tag)
        if entry is None:
            if len(bucket) >= self.ways:
                bucket.pop(0)
                self.stats.entry_evictions += 1
            policy = make_node_policy(
                self.node_policy, self.nodes_per_entry, **self._node_policy_kwargs
            )
            entry = _Entry(tag, policy)
            bucket.append(entry)
        else:
            bucket.remove(entry)
            bucket.append(entry)
        if entry.policy.insert(node) is not None:
            self.stats.node_evictions += 1

    # ------------------------------------------------------------------
    # Fault-injection surface (used by :mod:`repro.faults.injector`).
    #
    # These methods model physical corruption of the table SRAM - a
    # node field, a tag, or a whole entry changing underneath the
    # predictor - without reaching into the private set structure.
    # ------------------------------------------------------------------
    def occupied_slots(self) -> List[tuple[int, int]]:
        """All ``(set_index, way)`` pairs currently holding an entry."""
        return [
            (set_index, way)
            for set_index, bucket in enumerate(self._sets)
            for way in range(len(bucket))
        ]

    def entry_nodes(self, set_index: int, way: int) -> List[int]:
        """The node slots of one entry (copy)."""
        return self._sets[set_index][way].policy.nodes

    def entry_tag(self, set_index: int, way: int) -> int:
        """The tag of one entry."""
        return self._sets[set_index][way].tag

    def corrupt_node(self, set_index: int, way: int, slot: int, value: int) -> int:
        """Overwrite one node slot with ``value``; returns the old node."""
        return self._sets[set_index][way].policy.replace_node(slot, value)

    def corrupt_tag(self, set_index: int, way: int, value: int) -> int:
        """Overwrite one entry's tag (hash aliasing); returns the old tag.

        The entry now answers lookups for a *different* ray hash - the
        aliased-set fault mode: rays that never trained this entry will
        receive its (now unrelated) prediction.
        """
        entry = self._sets[set_index][way]
        old = entry.tag
        entry.tag = value & ((1 << self.hash_bits) - 1)
        return old

    # ------------------------------------------------------------------
    def occupancy(self) -> float:
        """Fraction of entries currently valid."""
        used = sum(len(bucket) for bucket in self._sets)
        return used / self.num_entries

    def iter_nodes(self) -> List[int]:
        """All node indices currently stored (for oracle-lookup scans)."""
        nodes: List[int] = []
        for bucket in self._sets:
            for entry in bucket:
                nodes.extend(entry.policy.nodes)
        return nodes

    def size_bits(self) -> int:
        """Storage cost in bits (valid + tag + node slots, per entry)."""
        per_entry = VALID_BITS + self.hash_bits + self.nodes_per_entry * NODE_INDEX_BITS
        return self.num_entries * per_entry

    def size_kib(self) -> float:
        """Storage cost in KiB (the paper quotes 5.5 KB for the default)."""
        return self.size_bits() / 8.0 / 1024.0

    def clear(self) -> None:
        """Invalidate every entry (start of a new frame)."""
        self._sets = [[] for _ in range(self.num_sets)]
