"""Limit-study oracles (Section 6.3, Figure 2).

Three idealizations bound the headroom of ray prediction:

* **OL - oracle lookup**: the table is trained and capacity-limited
  exactly like the real predictor, but a lookup can always find an entry
  *anywhere in the table* whose node verifies the ray, if one exists
  ("Potential Prediction (5.5KB)").  Mispredictions disappear.
* **OT - oracle training**: additionally the table is unbounded - a ray
  finds a node whenever *any* prior ray inserted a node that verifies it
  ("Potential Prediction (inf)").
* **OU - oracle updates**: additionally updates are visible immediately,
  ignoring traversal latency (no in-flight window).

A node verifies a ray iff the node's subtree contains a leaf holding a
triangle the ray intersects - i.e. the node lies in the *ancestor
closure* of the ray's hit leaves.  We compute that closure with an
exhaustive all-hits traversal (oracles are free by definition, so the
closure computation adds no simulated cost).
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple


from repro.bvh.nodes import FlatBVH
from repro.core.predictor import PredictorConfig, RayPredictor
from repro.core.simulate import (
    DEFAULT_IN_FLIGHT,
    PredictionOutcome,
    SimulationResult,
    simulate_predictor,
)
from repro.geometry.ray import RayBatch
from repro.trace.counters import TraversalStats
from repro.trace.traversal import occlusion_all_hit_leaves, occlusion_any_hit_tri


class OracleKind(enum.Enum):
    """Which idealization to apply."""

    PROPOSED = "proposed"
    ORACLE_LOOKUP = "oracle_lookup"
    ORACLE_TRAINING = "oracle_training"
    ORACLE_UPDATES = "oracle_updates"


def ancestor_closure(bvh: FlatBVH, leaves: Iterable[int]) -> Set[int]:
    """All ancestors (inclusive) of the given leaves, up to the root."""
    closure: Set[int] = set()
    parent = bvh.parent
    for leaf in leaves:
        node = int(leaf)
        while node >= 0 and node not in closure:
            closure.add(node)
            node = int(parent[node])
    return closure


def _deepest(bvh: FlatBVH, nodes: Iterable[int]) -> int:
    """The deepest node of a non-empty collection (cheapest to verify)."""
    depths = bvh.depths()
    return max(nodes, key=lambda n: int(depths[n]))


def run_limit_study(
    bvh: FlatBVH,
    rays: RayBatch,
    config: Optional[PredictorConfig] = None,
    kinds: Optional[Sequence[OracleKind]] = None,
    in_flight: int = DEFAULT_IN_FLIGHT,
) -> Dict[OracleKind, SimulationResult]:
    """Run the Figure 2 limit study.

    Returns one :class:`SimulationResult` per requested oracle kind; the
    ``PROPOSED`` entry is a plain :func:`simulate_predictor` run.
    """
    config = config or PredictorConfig()
    if kinds is None:
        kinds = list(OracleKind)
    results: Dict[OracleKind, SimulationResult] = {}
    for kind in kinds:
        if kind is OracleKind.PROPOSED:
            results[kind] = simulate_predictor(bvh, rays, config, in_flight=in_flight)
        else:
            results[kind] = _run_oracle(bvh, rays, config, kind, in_flight)
    return results


def _run_oracle(
    bvh: FlatBVH,
    rays: RayBatch,
    config: PredictorConfig,
    kind: OracleKind,
    in_flight: int,
) -> SimulationResult:
    """Shared loop for the three oracle variants."""
    predictor = RayPredictor(bvh, config)  # used for hashing/training (OL)
    hashes = predictor.hash_batch(rays.origins, rays.directions)
    unbounded: Set[int] = set()
    immediate = kind is OracleKind.ORACLE_UPDATES
    window = 1 if immediate else in_flight

    outcomes: List[PredictionOutcome] = []
    baseline_nodes = 0
    baseline_tris = 0
    lookups = 0
    updates = 0

    n = len(rays)
    for start in range(0, n, window):
        stop = min(start + window, n)
        pending: List[Tuple[int, int]] = []
        for i in range(start, stop):
            ray = rays[i]
            ray_hash = int(hashes[i])
            outcome = PredictionOutcome()
            lookups += 1

            # Ground truth: which leaves would verify this ray?
            hit_leaves = occlusion_all_hit_leaves(bvh, ray)
            outcome.hit = bool(hit_leaves)
            closure = ancestor_closure(bvh, hit_leaves) if hit_leaves else set()

            # Oracle lookup: find a verifying stored node, if any exists.
            if kind is OracleKind.ORACLE_LOOKUP:
                stored = set(predictor.table.iter_nodes())
            else:
                stored = unbounded
            matching = closure & stored if closure else set()

            if matching:
                best = _deepest(bvh, matching)
                outcome.predicted = True
                outcome.predicted_nodes = 1
                verify_stats = TraversalStats()
                hit_tri = occlusion_any_hit_tri(
                    bvh, ray, stats=verify_stats, start_nodes=[best]
                )
                # By construction the subtree contains a hit; assert the
                # invariant rather than trusting it silently.
                assert hit_tri >= 0, "oracle chose a non-verifying node"
                outcome.verified = True
                outcome.verify_node_fetches = verify_stats.node_fetches
                outcome.verify_tri_fetches = verify_stats.tri_fetches
                baseline = TraversalStats()
                occlusion_any_hit_tri(bvh, ray, stats=baseline)
                baseline_nodes += baseline.node_fetches
                baseline_tris += baseline.tri_fetches
            else:
                full_stats = TraversalStats()
                hit_tri = occlusion_any_hit_tri(bvh, ray, stats=full_stats)
                outcome.full_node_fetches = full_stats.node_fetches
                outcome.full_tri_fetches = full_stats.tri_fetches
                baseline_nodes += full_stats.node_fetches
                baseline_tris += full_stats.tri_fetches

            if hit_tri >= 0:
                pending.append((ray_hash, hit_tri))
            outcomes.append(outcome)

        for ray_hash, hit_tri in pending:
            updates += 1
            if kind is OracleKind.ORACLE_LOOKUP:
                predictor.train(ray_hash, hit_tri)
            else:
                unbounded.add(predictor.trained_node_for(hit_tri))

    return SimulationResult(
        num_rays=n,
        predicted=sum(1 for o in outcomes if o.predicted),
        verified=sum(1 for o in outcomes if o.verified),
        hits=sum(1 for o in outcomes if o.hit),
        predictor_node_fetches=sum(o.node_fetches for o in outcomes),
        predictor_tri_fetches=sum(o.tri_fetches for o in outcomes),
        baseline_node_fetches=baseline_nodes,
        baseline_tri_fetches=baseline_tris,
        misprediction_node_fetches=0,
        misprediction_tri_fetches=0,
        table_lookups=lookups,
        table_updates=updates,
        outcomes=None,
    )
