"""The ray intersection predictor (Sections 3-4).

:class:`RayPredictor` glues together a hash function, the predictor
table, and Go Up Level training:

* ``predict(ray)`` hashes the ray and looks the table up, returning the
  predicted node(s) to verify (or ``None``);
* ``train(ray, hit_tri)`` computes the Go Up Level ancestor of the leaf
  containing the intersected triangle and inserts it into the table.

The predictor is deliberately timing-free; the functional concurrency
model lives in :mod:`repro.core.simulate` and the full port/latency model
in :mod:`repro.gpu`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

import numpy as np

from repro.bvh.nodes import FlatBVH
from repro.core.hashing import RayHasher, make_hasher
from repro.core.vectable import make_table


@dataclass
class GuardStats:
    """Counters for the predictor's speculation-safety guards.

    The guards enforce the paper's safety contract (Section 3): a
    prediction - even one corrupted in the table SRAM - may only cost
    cycles, never change traversal correctness.  Invalid predicted node
    indices degrade to "no prediction"; invalid training requests are
    dropped.  Counters make the degradation observable.
    """

    invalid_nodes_dropped: int = 0
    predictions_rejected: int = 0
    invalid_training_dropped: int = 0

    @property
    def total_guard_events(self) -> int:
        """All guard interventions (for quick 'anything odd?' checks)."""
        return (
            self.invalid_nodes_dropped
            + self.predictions_rejected
            + self.invalid_training_dropped
        )


@dataclass(frozen=True)
class PredictorConfig:
    """Predictor settings; defaults reproduce Table 3.

    Attributes:
        num_entries: total predictor entries (1024).
        ways: set associativity (4); 1 means direct-mapped (tags kept).
        nodes_per_entry: predicted-node slots per entry (1).
        hash_function: ``"grid_spherical"`` or ``"two_point"``.
        origin_bits: Grid Hash bits per origin axis (5).
        direction_bits: spherical-direction bits (3; Grid Spherical only).
        length_ratio: estimated length ratio (Two Point only).
        node_policy: node replacement policy (``"lru"``/``"lfu"``/``"lru-k"``).
        go_up_level: ancestor level stored on training (3).
        ports: predictor access ports (4 accesses/cycle; timing model).
        lookup_latency: table access latency in cycles (timing model).
        repack: enable warp repacking after prediction (Section 4.4).
        extra_warps: additional warps admitted after repacking (4.4.2).
        table_impl: predictor-table backend: ``"vector"`` (struct-of-
            arrays numpy store with batched probes, the default) or
            ``"scalar"`` (per-entry reference).  The two are
            order-equivalent; results are identical.
    """

    num_entries: int = 1024
    ways: int = 4
    nodes_per_entry: int = 1
    hash_function: str = "grid_spherical"
    origin_bits: int = 5
    direction_bits: int = 3
    length_ratio: float = 0.15
    node_policy: str = "lru"
    go_up_level: int = 3
    ports: int = 4
    lookup_latency: int = 1
    repack: bool = True
    extra_warps: int = 0
    table_impl: str = "vector"

    @property
    def hash_bits(self) -> int:
        """Width of the ray hash / tag (3 bits per origin axis)."""
        return 3 * self.origin_bits

    def with_overrides(self, **kwargs) -> "PredictorConfig":
        """Copy with selected fields replaced (sweep helper)."""
        return replace(self, **kwargs)


class RayPredictor:
    """A per-SM ray intersection predictor bound to one BVH."""

    def __init__(self, bvh: FlatBVH, config: Optional[PredictorConfig] = None) -> None:
        self.bvh = bvh
        self.config = config or PredictorConfig()
        self.hasher: RayHasher = make_hasher(
            self.config.hash_function,
            bvh.root_aabb(),
            origin_bits=self.config.origin_bits,
            direction_bits=self.config.direction_bits,
            length_ratio=self.config.length_ratio,
        )
        self.table = make_table(
            self.config.table_impl,
            num_entries=self.config.num_entries,
            ways=self.config.ways,
            nodes_per_entry=self.config.nodes_per_entry,
            hash_bits=self.config.hash_bits,
            node_policy=self.config.node_policy,
        )
        # Ancestor links are precomputed at BVH build time in hardware
        # (stored in node padding, Figure 8); fetching them is free.
        self._ancestors = bvh.ancestors(self.config.go_up_level)
        self._tri_to_leaf = bvh.leaf_of_triangle()
        self.guards = GuardStats()

    # ------------------------------------------------------------------
    def hash_ray(self, origin: Sequence[float], direction: Sequence[float]) -> int:
        """Hash one ray with the configured scheme."""
        return self.hasher.hash_ray(origin, direction)

    def hash_batch(self, origins: np.ndarray, directions: np.ndarray) -> np.ndarray:
        """Hash a whole batch (vectorized)."""
        return self.hasher.hash_batch(origins, directions)

    def predict(self, ray_hash: int) -> Optional[List[int]]:
        """Table lookup; returns predicted node indices or ``None``.

        Speculation-safety guard: every returned node index is
        range-checked against the bound BVH.  An out-of-range index
        (stale entry after a rebuild, bit-flipped SRAM, injected fault)
        is dropped; if nothing valid remains the lookup degrades to "no
        prediction" so the caller falls back to a full traversal.  The
        guard never raises - a wrong prediction must only cost cycles.
        """
        nodes = self.table.lookup(ray_hash)
        if not nodes:
            return None
        num_nodes = self.bvh.num_nodes
        valid = [n for n in nodes if 0 <= n < num_nodes]
        dropped = len(nodes) - len(valid)
        if dropped:
            self.guards.invalid_nodes_dropped += dropped
        if not valid:
            self.guards.predictions_rejected += 1
            return None
        return valid

    def confirm(self, ray_hash: int, node: int) -> None:
        """Tell the table which predicted node verified (policy feedback)."""
        self.table.confirm(ray_hash, node)

    # ------------------------------------------------------------------
    # Batched pipeline (wavefront window path).  Each *_batch method is
    # order-equivalent to calling its scalar counterpart per element.
    # ------------------------------------------------------------------
    @property
    def supports_batch(self) -> bool:
        """Whether the whole-window batched pipeline may be used.

        True only when the bound table exposes the batched kernels;
        proxies that must observe every individual probe (e.g. the
        fault injector's :class:`~repro.faults.injector.FaultyPredictor`)
        deliberately report False so the simulation falls back to
        per-ray probing.
        """
        return hasattr(self.table, "lookup_batch")

    def predict_batch(self, hashes: np.ndarray):
        """Guarded table lookup over a whole hash vector.

        Returns ``(nodes, counts)``: ``nodes`` is ``(n, nodes_per_entry)``
        int64 in entry list order (``-1`` padded) and ``counts`` the
        per-ray number of surviving nodes - 0 means "no prediction"
        (table miss, or every node rejected by the range guard).
        Equivalent to ``n`` sequential :meth:`predict` calls, including
        guard-counter updates.
        """
        nodes, counts = self.table.lookup_batch(hashes)
        P = nodes.shape[1]
        slot = np.arange(P)[None, :] < counts[:, None]
        ok = slot & (nodes >= 0) & (nodes < self.bvh.num_nodes)
        dropped = int((slot & ~ok).sum())
        if dropped:
            self.guards.invalid_nodes_dropped += dropped
            new_counts = ok.sum(axis=1)
            rejected = int(((counts > 0) & (new_counts == 0)).sum())
            if rejected:
                self.guards.predictions_rejected += rejected
            # Compact surviving nodes left, preserving list order.
            order = np.argsort(~ok, axis=1, kind="stable")
            nodes = np.take_along_axis(nodes, order, axis=1)
            nodes[np.arange(P)[None, :] >= new_counts[:, None]] = -1
            counts = new_counts
        return nodes, counts

    def confirm_batch(self, hashes: np.ndarray, nodes: np.ndarray) -> None:
        """Batched policy feedback (see :meth:`confirm`)."""
        self.table.confirm_batch(hashes, nodes)

    def train_batch(self, hashes: np.ndarray, hit_tris: np.ndarray) -> np.ndarray:
        """Batched training; returns the stored node per ray (-1 = dropped).

        Out-of-range triangle indices are dropped and counted, exactly
        like sequential :meth:`train` calls.
        """
        hashes = np.asarray(hashes, dtype=np.uint64)
        hit_tris = np.asarray(hit_tris, dtype=np.int64)
        ok = (hit_tris >= 0) & (hit_tris < self.bvh.num_triangles)
        invalid = int((~ok).sum())
        if invalid:
            self.guards.invalid_training_dropped += invalid
        stored = np.full(hit_tris.shape, -1, dtype=np.int64)
        if ok.any():
            leaves = self._tri_to_leaf[hit_tris[ok]]
            stored[ok] = self._ancestors[leaves]
            self.table.update_batch(hashes[ok], stored[ok])
        return stored

    def trained_nodes_batch(self, hit_tris: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`trained_node_for` (-1 for out-of-range)."""
        hit_tris = np.asarray(hit_tris, dtype=np.int64)
        ok = (hit_tris >= 0) & (hit_tris < self.bvh.num_triangles)
        nodes = np.full(hit_tris.shape, -1, dtype=np.int64)
        if ok.any():
            nodes[ok] = self._ancestors[self._tri_to_leaf[hit_tris[ok]]]
        return nodes

    def train(self, ray_hash: int, hit_tri: int) -> int:
        """Insert the traversal result for a ray that hit triangle ``hit_tri``.

        Returns the node actually stored (the Go Up Level ancestor of the
        leaf containing the triangle), or ``-1`` if ``hit_tri`` is out of
        range - an invalid training request is dropped (and counted)
        rather than corrupting the table or raising from deep inside a
        simulation loop.
        """
        if not 0 <= hit_tri < self.bvh.num_triangles:
            self.guards.invalid_training_dropped += 1
            return -1
        leaf = int(self._tri_to_leaf[hit_tri])
        node = int(self._ancestors[leaf])
        self.table.update(ray_hash, node)
        return node

    def trained_node_for(self, hit_tri: int) -> int:
        """The node that training on ``hit_tri`` would store (no insert).

        Returns ``-1`` for an out-of-range triangle index (same guard as
        :meth:`train`).
        """
        if not 0 <= hit_tri < self.bvh.num_triangles:
            return -1
        leaf = int(self._tri_to_leaf[hit_tri])
        return int(self._ancestors[leaf])

    def reset(self) -> None:
        """Clear the table (new frame)."""
        self.table.clear()

    def rebind(self, bvh: FlatBVH) -> None:
        """Point the predictor at a refitted tree, keeping the table.

        Inter-frame persistence (the paper's conclusion): when geometry
        moves but the tree is *refitted* (topology preserved), stored
        node indices remain valid, so a warm table can carry over to the
        next frame.  The hash keeps the original scene bounds so ray
        hashes stay comparable across frames.

        Raises:
            ValueError: if ``bvh`` has a different topology.
        """
        if bvh.num_nodes != self.bvh.num_nodes or bvh.num_triangles != self.bvh.num_triangles:
            raise ValueError("rebind requires an identically-shaped (refitted) BVH")
        self.bvh = bvh
        self._ancestors = bvh.ancestors(self.config.go_up_level)
        self._tri_to_leaf = bvh.leaf_of_triangle()
