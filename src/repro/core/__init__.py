"""The ray intersection predictor - the paper's primary contribution.

Contents map one-to-one onto Sections 3 and 4 of the paper:

* :mod:`repro.core.hashing` - Grid Spherical and Two Point ray hashes
  with gshare-style folding (Section 4.2, Figure 6).
* :mod:`repro.core.table` - the per-SM set-associative predictor table
  (Section 4.1, Figure 5).
* :mod:`repro.core.policies` - node replacement policies for multi-node
  entries (LRU / LFU / LRU-K, Section 6.1.3).
* :mod:`repro.core.predictor` - the predictor proper, including Go Up
  Level training (Section 4.3, Figure 7).
* :mod:`repro.core.simulate` - functional (timing-free) simulation of
  predict -> verify -> fallback with a delayed-update concurrency model.
* :mod:`repro.core.oracle` - the limit-study oracles OL / OT / OU
  (Section 6.3, Figure 2).
* :mod:`repro.core.model` - the Equation 1 analytic node-savings model.
* :mod:`repro.core.repacking` - the partial warp collector and warp
  repacking (Section 4.4, Figures 9 and 10).
* :mod:`repro.core.adaptive` - the tournament multi-hash predictor,
  implementing Section 4.2's "combining multiple hash functions" future
  work.
"""

from repro.core.adaptive import TournamentPredictor
from repro.core.hashing import (
    GridSphericalHash,
    TwoPointHash,
    fold_hash,
    make_hasher,
)
from repro.core.model import Equation1Inputs, estimate_nodes_skipped, estimate_avg_nodes
from repro.core.oracle import OracleKind, run_limit_study
from repro.core.policies import LFUPolicy, LRUKPolicy, LRUPolicy, make_node_policy
from repro.core.predictor import PredictorConfig, RayPredictor
from repro.core.repacking import PartialWarpCollector, repack_rays
from repro.core.simulate import PredictionOutcome, SimulationResult, simulate_predictor
from repro.core.table import PredictorTable, TableStats

__all__ = [
    "Equation1Inputs",
    "GridSphericalHash",
    "LFUPolicy",
    "LRUKPolicy",
    "LRUPolicy",
    "OracleKind",
    "PartialWarpCollector",
    "PredictionOutcome",
    "PredictorConfig",
    "PredictorTable",
    "RayPredictor",
    "SimulationResult",
    "TableStats",
    "TournamentPredictor",
    "TwoPointHash",
    "estimate_avg_nodes",
    "estimate_nodes_skipped",
    "fold_hash",
    "make_hasher",
    "make_node_policy",
    "repack_rays",
    "run_limit_study",
    "simulate_predictor",
]
