"""Warp repacking and the partial warp collector (Section 4.4).

After the predictor-lookup stage, a warp's rays fall into two classes:
*predicted* rays (which will either verify quickly or mispredict and pay
a long tail) and *not predicted* rays (regular full traversals).  Keeping
them together means one mispredicted ray elongates the whole warp
(Figure 9's Thread 5).  Repacking removes the predicted rays from the
warp and accumulates them in the :class:`PartialWarpCollector`, which
emits full 32-ray warps (or flushes on a short timeout).  Only ray IDs
move; ray data stays in the ray buffer, indexed by ray ID, so no
architecturally visible register state is touched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

#: SIMT width of a warp.
WARP_SIZE = 32
#: Collector capacity in ray IDs (two warps' worth, to absorb overflow).
COLLECTOR_CAPACITY = 64
#: Default flush timeout in cycles (paper: 5-30 all work; 5-bit counter).
DEFAULT_TIMEOUT_CYCLES = 16


@dataclass
class CollectorStats:
    """Counters for collector behaviour."""

    rays_collected: int = 0
    warps_emitted: int = 0
    full_flushes: int = 0
    timeout_flushes: int = 0
    final_flushes: int = 0


class PartialWarpCollector:
    """Accumulates predicted-ray IDs and re-emits them as full warps.

    The hardware structure stores only ray IDs (0.2 % of the register
    file: 64 IDs plus a 5-bit timeout counter).  ``tick()`` advances the
    timeout; ``push()`` adds rays and returns any warp(s) ready to
    dispatch.
    """

    def __init__(
        self,
        warp_size: int = WARP_SIZE,
        capacity: int = COLLECTOR_CAPACITY,
        timeout_cycles: int = DEFAULT_TIMEOUT_CYCLES,
    ) -> None:
        if warp_size < 1 or capacity < warp_size:
            raise ValueError("capacity must be at least one warp")
        if timeout_cycles < 1 or timeout_cycles > 31:
            raise ValueError("timeout must fit a 5-bit counter (1-31 cycles)")
        self.warp_size = warp_size
        self.capacity = capacity
        self.timeout_cycles = timeout_cycles
        self._ids: List[int] = []
        self._idle_cycles = 0
        self.stats = CollectorStats()

    def __len__(self) -> int:
        return len(self._ids)

    def push(self, ray_ids: Sequence[int]) -> List[List[int]]:
        """Add predicted rays; returns zero or more full warps to dispatch.

        Overflow beyond ``capacity`` is drained immediately as full warps
        (the "45 rays in the collector for one cycle" case of 4.4.1).
        """
        self._ids.extend(int(r) for r in ray_ids)
        self.stats.rays_collected += len(ray_ids)
        self._idle_cycles = 0
        emitted: List[List[int]] = []
        while len(self._ids) >= self.warp_size:
            emitted.append(self._ids[: self.warp_size])
            del self._ids[: self.warp_size]
            self.stats.warps_emitted += 1
            self.stats.full_flushes += 1
        return emitted

    def tick(self, cycles: int = 1) -> Optional[List[int]]:
        """Advance the timeout; returns a partial warp if it expired."""
        if not self._ids:
            self._idle_cycles = 0
            return None
        self._idle_cycles += cycles
        if self._idle_cycles >= self.timeout_cycles:
            return self.flush(reason="timeout")
        return None

    def flush(self, reason: str = "final") -> Optional[List[int]]:
        """Emit whatever is buffered as one (possibly partial) warp."""
        if not self._ids:
            return None
        warp = self._ids[: self.warp_size]
        del self._ids[: self.warp_size]
        self._idle_cycles = 0
        self.stats.warps_emitted += 1
        if reason == "timeout":
            self.stats.timeout_flushes += 1
        else:
            self.stats.final_flushes += 1
        return warp


def repack_rays(
    predicted_ids: Sequence[int],
    unpredicted_ids: Sequence[int],
    warp_size: int = WARP_SIZE,
) -> Tuple[List[List[int]], List[List[int]]]:
    """Pure repacking: group each class into its own warps.

    A convenience used by tests and the functional analysis; the timing
    model uses the stateful :class:`PartialWarpCollector` instead.

    Returns:
        ``(predicted_warps, unpredicted_warps)`` - lists of ray-ID lists,
        each at most ``warp_size`` long, preserving arrival order.
    """

    def chunk(ids: Sequence[int]) -> List[List[int]]:
        ids = [int(i) for i in ids]
        return [ids[i : i + warp_size] for i in range(0, len(ids), warp_size)]

    return chunk(predicted_ids), chunk(unpredicted_ids)
