"""Functional (timing-free) simulation of the predictor algorithm.

Implements the Section 3 flow for a stream of occlusion rays:

1. hash the ray and look up the predictor table;
2. on a hit, *verify* by traversing only the predicted subtree(s);
3. a verified ray is done (interior nodes skipped); a mispredicted ray
   restarts with a full traversal from the root;
4. rays that found an intersection train the table with the Go Up Level
   ancestor of the hit leaf.

Concurrency matters: a real RT unit has ~256 rays in flight, so a ray's
table update is not visible to rays that looked up the table while it was
still traversing.  We model this with an ``in_flight`` window: lookups of
a window happen before any update from the same window commits.  This is
exactly why *sorted* rays benefit less (Figure 12): sorting packs similar
rays into the same window, where they cannot train one another.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro import telemetry
from repro.bvh.nodes import FlatBVH
from repro.core.baseline import baseline_record
from repro.core.predictor import PredictorConfig, RayPredictor
from repro.errors import TraversalError
from repro.geometry.ray import RayBatch
from repro.telemetry.publish import (
    FRACTION_BUCKETS,
    publish_simulation_result,
    publish_table_stats,
    table_stats_state,
)
from repro.trace.counters import TraversalStats
from repro.trace.traversal import occlusion_any_hit_tri
from repro.trace.wavefront import resolve_engine, wavefront_verify_batch

#: Ray-buffer capacity of the baseline RT unit (8 warps x 32 threads).
DEFAULT_IN_FLIGHT = 256


@dataclass
class PredictionOutcome:
    """Per-ray record of what the predictor did.

    Attributes:
        predicted: the table lookup hit.
        verified: the predicted subtree contained an intersection.
        hit: the ray intersects the scene (by any path).
        predicted_nodes: how many node slots the prediction contained.
        verify_node_fetches / verify_tri_fetches: traffic of the
            verification traversal (zero if not predicted).
        full_node_fetches / full_tri_fetches: traffic of the full
            traversal (zero if verified - that is the whole point).
    """

    predicted: bool = False
    verified: bool = False
    hit: bool = False
    predicted_nodes: int = 0
    verify_node_fetches: int = 0
    verify_tri_fetches: int = 0
    full_node_fetches: int = 0
    full_tri_fetches: int = 0

    @property
    def node_fetches(self) -> int:
        """Total node fetches this ray caused under the predictor."""
        return self.verify_node_fetches + self.full_node_fetches

    @property
    def tri_fetches(self) -> int:
        """Total triangle fetches this ray caused under the predictor."""
        return self.verify_tri_fetches + self.full_tri_fetches


@dataclass
class SimulationResult:
    """Aggregated functional-simulation result for one ray stream."""

    num_rays: int
    predicted: int
    verified: int
    hits: int
    predictor_node_fetches: int
    predictor_tri_fetches: int
    baseline_node_fetches: int
    baseline_tri_fetches: int
    misprediction_node_fetches: int
    misprediction_tri_fetches: int
    table_lookups: int
    table_updates: int
    outcomes: Optional[List[PredictionOutcome]] = None
    #: Verifications aborted by the traversal guard (corrupted predicted
    #: node indices that slipped past the predictor's own range check,
    #: e.g. when a raw table is driven directly).  Each one degraded to
    #: a full root traversal; correctness was preserved.
    guard_fallbacks: int = 0

    # ------------------------------------------------------------------
    @property
    def predicted_rate(self) -> float:
        """p: fraction of rays with a table hit."""
        return self.predicted / self.num_rays if self.num_rays else 0.0

    @property
    def verified_rate(self) -> float:
        """v: fraction of rays whose prediction verified."""
        return self.verified / self.num_rays if self.num_rays else 0.0

    @property
    def hit_rate(self) -> float:
        """Fraction of rays that intersect the scene at all."""
        return self.hits / self.num_rays if self.num_rays else 0.0

    @property
    def baseline_accesses(self) -> int:
        """Memory accesses of the no-predictor baseline."""
        return self.baseline_node_fetches + self.baseline_tri_fetches

    @property
    def predictor_accesses(self) -> int:
        """Memory accesses with the predictor enabled."""
        return self.predictor_node_fetches + self.predictor_tri_fetches

    @property
    def memory_savings(self) -> float:
        """Net fraction of memory accesses removed by the predictor."""
        if not self.baseline_accesses:
            return 0.0
        return 1.0 - self.predictor_accesses / self.baseline_accesses

    @property
    def node_savings(self) -> float:
        """Fraction of BVH-node fetches removed (Figure 13's biggest bar)."""
        if not self.baseline_node_fetches:
            return 0.0
        return 1.0 - self.predictor_node_fetches / self.baseline_node_fetches

    def nodes_skipped_per_ray(self) -> float:
        """Measured ``n - N`` of Equation 1 (node fetches only)."""
        if not self.num_rays:
            return 0.0
        return (self.baseline_node_fetches - self.predictor_node_fetches) / self.num_rays


def simulate_predictor(
    bvh: FlatBVH,
    rays: RayBatch,
    config: Optional[PredictorConfig] = None,
    in_flight: int = DEFAULT_IN_FLIGHT,
    keep_outcomes: bool = False,
    predictor: Optional[RayPredictor] = None,
    engine: str = "wavefront",
) -> SimulationResult:
    """Run the functional predictor simulation over ``rays`` in order.

    Args:
        bvh: acceleration structure.
        rays: occlusion rays, traced in batch order.
        config: predictor configuration (Table 3 defaults).
        in_flight: concurrency window for delayed table updates; 1 makes
            updates immediately visible (the OU idealization).
        keep_outcomes: retain the per-ray :class:`PredictionOutcome` list
            (needed by the repacking analysis and some tests).
        predictor: reuse an existing (already warmed) predictor instead
            of building a fresh one - used by the multi-SM experiment.
        engine: ``"wavefront"`` (vectorized, default - each window runs
            as array stages: batched hash, batched table probe,
            wavefront verification, memoized-baseline fallback and
            batched delayed updates) or ``"scalar"`` (reference -
            per-ray traversal in exact paper order).  Correctness
            (per-ray occlusion) is identical; traversal-order-dependent
            statistics such as which triangle trained the table, and
            therefore downstream predicted / verified rates, may differ
            slightly between engines.

    Returns:
        A :class:`SimulationResult`; baseline counters come from full
        traversals of the same rays, so ``memory_savings`` is exact.
    """
    if in_flight < 1:
        raise ValueError("in_flight must be >= 1")
    resolve_engine(engine)
    pred = predictor if predictor is not None else RayPredictor(bvh, config)
    hashes = pred.hash_batch(rays.origins, rays.directions)
    # Delta-published at run end so a reused (pre-warmed) predictor's
    # cumulative counters are not double counted across runs.  Meta
    # predictors (e.g. the adaptive tournament) have no single table and
    # skip the introspection counters.
    table = getattr(pred, "table", None)
    table_base = table_stats_state(table)

    if engine == "wavefront":
        result = _simulate_wavefront(
            bvh, rays, pred, hashes, in_flight, keep_outcomes
        )
        publish_table_stats(table, since=table_base, engine="wavefront")
        return result

    outcomes: List[PredictionOutcome] = []
    baseline_nodes = 0
    baseline_tris = 0
    mis_nodes = 0
    mis_tris = 0
    guard_fallbacks = 0

    # Lazily-memoized per-ray baseline: full traversals recorded here
    # are reused across configurations sharing this (bvh, rays) unit.
    base = baseline_record(bvh, rays, "scalar", compute=False)

    n = len(rays)
    for start in range(0, n, in_flight):
        stop = min(start + in_flight, n)
        pending: List[Tuple[int, int]] = []
        # The scalar reference interleaves lookup/verify/fallback per
        # ray, so the span brackets the whole concurrency window; the
        # wavefront engine breaks the same window into per-stage spans.
        with telemetry.span(
            "predictor.window", engine="scalar", rays=stop - start
        ):
            for i in range(start, stop):
                ray = rays[i]
                ray_hash = int(hashes[i])
                outcome = PredictionOutcome()
                nodes = pred.predict(ray_hash)

                hit_tri = -1
                if nodes:
                    outcome.predicted = True
                    outcome.predicted_nodes = len(nodes)
                    verify_stats = TraversalStats()
                    try:
                        hit_tri = occlusion_any_hit_tri(
                            bvh, ray, stats=verify_stats, start_nodes=nodes
                        )
                    except TraversalError:
                        # Corrupted entry point (possible when driving a raw
                        # table without the predictor's range guard): treat
                        # as a misprediction and restart from the root.
                        guard_fallbacks += 1
                        hit_tri = -1
                    outcome.verify_node_fetches = verify_stats.node_fetches
                    outcome.verify_tri_fetches = verify_stats.tri_fetches
                    if hit_tri >= 0:
                        outcome.verified = True
                        # Policy feedback: this stored node was useful.
                        pred.confirm(ray_hash, pred.trained_node_for(hit_tri))

                if not outcome.verified:
                    full_stats = TraversalStats()
                    hit_tri = occlusion_any_hit_tri(bvh, ray, stats=full_stats)
                    outcome.full_node_fetches = full_stats.node_fetches
                    outcome.full_tri_fetches = full_stats.tri_fetches
                    # The fallback *is* this ray's baseline traversal;
                    # memoize it for later configurations.
                    base.record(
                        i, hit_tri,
                        full_stats.node_fetches, full_stats.tri_fetches,
                    )
                    if outcome.predicted:
                        mis_nodes += outcome.verify_node_fetches
                        mis_tris += outcome.verify_tri_fetches

                outcome.hit = hit_tri >= 0
                if outcome.hit:
                    pending.append((ray_hash, hit_tri))

                # Baseline bookkeeping: for verified rays the full traversal
                # never ran, so measure it separately (oracle-free baseline,
                # memoized per ray across configurations).
                if outcome.verified:
                    if not base.known[i]:
                        base_stats = TraversalStats()
                        base_tri = occlusion_any_hit_tri(bvh, ray, stats=base_stats)
                        base.record(
                            i, base_tri,
                            base_stats.node_fetches, base_stats.tri_fetches,
                        )
                    baseline_nodes += int(base.node_fetches[i])
                    baseline_tris += int(base.tri_fetches[i])
                else:
                    baseline_nodes += outcome.full_node_fetches
                    baseline_tris += outcome.full_tri_fetches

                outcomes.append(outcome)

            # Updates from this window commit only after the window drains.
            for ray_hash, hit_tri in pending:
                pred.train(ray_hash, hit_tri)
        if telemetry.enabled() and stop > start:
            window_predicted = sum(
                1 for o in outcomes[start:stop] if o.predicted
            )
            telemetry.observe(
                "predictor.window_predicted_fraction",
                window_predicted / (stop - start),
                buckets=FRACTION_BUCKETS, engine="scalar",
            )

    result = _finalize_result(
        outcomes, baseline_nodes, baseline_tris, mis_nodes, mis_tris,
        guard_fallbacks, keep_outcomes, engine="scalar",
    )
    publish_table_stats(table, since=table_base, engine="scalar")
    return result


def simulate_baseline(
    bvh: FlatBVH,
    rays: RayBatch,
    engine: str = "scalar",
) -> SimulationResult:
    """Predictor-disabled baseline: plain occlusion traversal, no table.

    This is the ``predictor_off`` rung of the resilience degradation
    ladder (see :mod:`repro.resilience.degrade`): when the functional
    predictor simulation itself is what keeps failing, a sweep can
    still report exact per-ray occlusion and traversal traffic from a
    full traversal.  Predictor-side counters mirror the baseline ones
    (a disabled predictor saves nothing) and the table counters are
    zero, so downstream consumers see ``memory_savings == 0`` rather
    than a hole in the artifact.
    """
    resolve_engine(engine)
    n = len(rays)
    if engine == "wavefront":
        base = baseline_record(bvh, rays, "wavefront")
        nodes = int(base.node_fetches.sum())
        tris = int(base.tri_fetches.sum())
        hit_mask = base.hit_tri >= 0
    else:
        stats = TraversalStats()
        hit_mask = np.zeros(n, dtype=bool)
        for i in range(n):
            hit_mask[i] = occlusion_any_hit_tri(bvh, rays[i], stats=stats) >= 0
        nodes = stats.node_fetches
        tris = stats.tri_fetches
    hits = int(np.count_nonzero(hit_mask))
    outcomes = [
        PredictionOutcome(hit=bool(h), full_node_fetches=0, full_tri_fetches=0)
        for h in hit_mask
    ]
    result = SimulationResult(
        num_rays=n,
        predicted=0,
        verified=0,
        hits=hits,
        predictor_node_fetches=nodes,
        predictor_tri_fetches=tris,
        baseline_node_fetches=nodes,
        baseline_tri_fetches=tris,
        misprediction_node_fetches=0,
        misprediction_tri_fetches=0,
        table_lookups=0,
        table_updates=0,
        outcomes=outcomes,
    )
    publish_simulation_result(result, engine=engine)
    return result


def _finalize_result(
    outcomes: List[PredictionOutcome],
    baseline_nodes: int,
    baseline_tris: int,
    mis_nodes: int,
    mis_tris: int,
    guard_fallbacks: int,
    keep_outcomes: bool,
    engine: str,
) -> SimulationResult:
    """Aggregate per-ray outcomes into a :class:`SimulationResult`.

    Also publishes the run's ``predictor.*`` counters into the global
    telemetry registry (no-op while telemetry is off).
    """
    n = len(outcomes)
    predicted = sum(1 for o in outcomes if o.predicted)
    verified = sum(1 for o in outcomes if o.verified)
    hits = sum(1 for o in outcomes if o.hit)
    result = SimulationResult(
        num_rays=n,
        predicted=predicted,
        verified=verified,
        hits=hits,
        predictor_node_fetches=sum(o.node_fetches for o in outcomes),
        predictor_tri_fetches=sum(o.tri_fetches for o in outcomes),
        baseline_node_fetches=baseline_nodes,
        baseline_tri_fetches=baseline_tris,
        misprediction_node_fetches=mis_nodes,
        misprediction_tri_fetches=mis_tris,
        # One lookup per ray; one update per hitting ray (this also holds
        # for alternative predictors like the tournament extension).
        table_lookups=n,
        table_updates=hits,
        outcomes=outcomes if keep_outcomes else None,
        guard_fallbacks=guard_fallbacks,
    )
    publish_simulation_result(result, engine=engine)
    return result


def _simulate_wavefront(
    bvh: FlatBVH,
    rays: RayBatch,
    pred: RayPredictor,
    hashes: np.ndarray,
    in_flight: int,
    keep_outcomes: bool,
) -> SimulationResult:
    """Wavefront form of the functional simulation: array stages only.

    One batched full-occlusion pass per *stream* (memoized per
    ``(bvh, rays)`` across configurations, see
    :mod:`repro.core.baseline`) serves both the fallback results of
    every unverified ray and the baseline bookkeeping of every window -
    per-ray wavefront results are independent of batch composition, so
    the whole-stream record is bit-identical to per-window fallback and
    baseline passes.  Each ``in_flight`` window then runs as pure array
    stages:

    1. batched table probe over the window's hash vector
       (:meth:`~repro.core.predictor.RayPredictor.predict_batch`);
    2. one verification wavefront seeded from the probe's ``(nodes,
       counts)`` arrays (:func:`wavefront_verify_batch`);
    3. vectorized policy feedback for verified rays
       (``confirm_batch``) and vectorized delayed training
       (``train_batch``) when the window drains.

    Table semantics are unchanged: lookups see the window-start state
    and updates commit when the window drains.  The batched kernels are
    order-equivalent to the per-ray probes, so results match the
    previous per-ray wavefront path exactly.  A predictor that must
    observe individual probes (``supports_batch`` false, e.g. the fault
    injector's proxy) drops to per-ray probing with identical
    semantics.
    """
    n = len(rays)
    base = baseline_record(bvh, rays, "wavefront")
    use_batch = bool(getattr(pred, "supports_batch", False))

    predicted = np.zeros(n, dtype=bool)
    verified = np.zeros(n, dtype=bool)
    hit = np.zeros(n, dtype=bool)
    predicted_nodes = np.zeros(n, dtype=np.int64)
    verify_nf = np.zeros(n, dtype=np.int64)
    verify_tf = np.zeros(n, dtype=np.int64)
    full_nf = np.zeros(n, dtype=np.int64)
    full_tf = np.zeros(n, dtype=np.int64)
    guard_fallbacks = 0

    for start in range(0, n, in_flight):
        stop = min(start + in_flight, n)
        m = stop - start
        w = slice(start, stop)
        sub = rays.subset(np.arange(start, stop))
        whashes = hashes[start:stop]

        with telemetry.span("predictor.lookup", engine="wavefront", rays=m):
            if use_batch:
                seed_nodes, seed_counts = pred.predict_batch(whashes)
                seeds = (seed_nodes, seed_counts)
                predicted[w] = seed_counts > 0
                predicted_nodes[w] = seed_counts
            else:
                preds: List[Optional[List[int]]] = []
                for j in range(m):
                    nodes = pred.predict(int(whashes[j]))
                    preds.append(nodes if nodes else None)
                    if nodes:
                        predicted[start + j] = True
                        predicted_nodes[start + j] = len(nodes)
                seeds = preds
        if telemetry.enabled() and m:
            telemetry.observe(
                "predictor.window_predicted_fraction",
                float(predicted[w].sum()) / m,
                buckets=FRACTION_BUCKETS, engine="wavefront",
            )

        with telemetry.span("predictor.verify", engine="wavefront", rays=m):
            ver_tri, ver_counts, guard_mask = wavefront_verify_batch(
                bvh, sub, seeds
            )
        guard_fallbacks += int(np.count_nonzero(guard_mask))
        win_verified = ver_tri >= 0
        verified[w] = win_verified
        verify_nf[w] = ver_counts.node_fetches
        verify_tf[w] = ver_counts.tri_fetches

        # Fallback for unverified rays (misprediction restart or no
        # prediction) served from the memoized whole-stream baseline.
        win_hit_tri = np.where(win_verified, ver_tri, base.hit_tri[w])
        full_nf[w] = np.where(win_verified, 0, base.node_fetches[w])
        full_tf[w] = np.where(win_verified, 0, base.tri_fetches[w])
        hit[w] = win_hit_tri >= 0

        # Policy feedback: these stored nodes were useful.
        vidx = np.nonzero(win_verified)[0]
        if vidx.size:
            if use_batch:
                pred.confirm_batch(
                    whashes[vidx], pred.trained_nodes_batch(ver_tri[vidx])
                )
            else:
                for j in vidx:
                    pred.confirm(
                        int(whashes[j]),
                        pred.trained_node_for(int(ver_tri[j])),
                    )

        # Updates from this window commit only after the window drains.
        hidx = np.nonzero(win_hit_tri >= 0)[0]
        if hidx.size:
            if use_batch:
                pred.train_batch(whashes[hidx], win_hit_tri[hidx])
            else:
                for j in hidx:
                    pred.train(int(whashes[j]), int(win_hit_tri[j]))

    mis_mask = predicted & ~verified
    outcomes: Optional[List[PredictionOutcome]] = None
    if keep_outcomes:
        outcomes = [
            PredictionOutcome(
                predicted=bool(predicted[i]),
                verified=bool(verified[i]),
                hit=bool(hit[i]),
                predicted_nodes=int(predicted_nodes[i]),
                verify_node_fetches=int(verify_nf[i]),
                verify_tri_fetches=int(verify_tf[i]),
                full_node_fetches=int(full_nf[i]),
                full_tri_fetches=int(full_tf[i]),
            )
            for i in range(n)
        ]
    result = SimulationResult(
        num_rays=n,
        predicted=int(predicted.sum()),
        verified=int(verified.sum()),
        hits=int(hit.sum()),
        predictor_node_fetches=int(verify_nf.sum() + full_nf.sum()),
        predictor_tri_fetches=int(verify_tf.sum() + full_tf.sum()),
        baseline_node_fetches=int(base.node_fetches.sum()),
        baseline_tri_fetches=int(base.tri_fetches.sum()),
        misprediction_node_fetches=int(verify_nf[mis_mask].sum()),
        misprediction_tri_fetches=int(verify_tf[mis_mask].sum()),
        # One lookup per ray; one update per hitting ray.
        table_lookups=n,
        table_updates=int(hit.sum()),
        outcomes=outcomes,
        guard_fallbacks=guard_fallbacks,
    )
    publish_simulation_result(result, engine="wavefront")
    return result
