"""Memoized baseline (predictor-off) traversal counters.

``simulate_predictor`` needs, for every ray stream it simulates, the
traffic of a *full* occlusion traversal: it is both the denominator of
the paper's memory-savings metrics and the fallback cost of every
unverified ray.  Ablation sweeps (``tab06``/``tab07``/``tab08``) run
many predictor configurations over the *same* ``(bvh, rays)`` unit, and
the baseline is a pure function of that unit - recomputing it per
configuration was the single largest redundant cost in a sweep.

This module memoizes one :class:`BaselineRecord` per
``(bvh, rays, engine)``:

* Per-ray independence: a ray's full-traversal result and counters do
  not depend on which other rays share the batch (wavefront rays only
  share kernel launches, never state), so one whole-stream record can
  serve any subset - a window's fallback rays, a window's verified
  rays, or the predictor-off baseline.
* Engine affinity: order-dependent counters differ between the scalar
  and wavefront engines, so records are keyed by engine and never mix.
* Keying: the BVH is keyed by identity (a strong reference is kept and
  re-checked, so a recycled ``id()`` can never alias) and the rays by a
  content digest - sweeps rebuild ``RayBatch`` views freely, and equal
  ray content must hit.

The cache is a small process-local LRU; entries are a few ``int64``
arrays per ray stream.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro import telemetry
from repro.bvh.nodes import FlatBVH
from repro.geometry.ray import RayBatch
from repro.trace.wavefront import wavefront_occlusion_tri_batch

#: Maximum memoized (bvh, rays, engine) records kept alive.
CACHE_CAPACITY = 8

_CacheKey = Tuple[int, str, str]


@dataclass
class BaselineRecord:
    """Per-ray full-traversal results and traffic for one ray stream.

    ``known`` tracks lazy (scalar-engine) fills: the wavefront engine
    computes the whole record in one batched pass, while the scalar
    engine fills rays as their full traversals happen to run.
    """

    hit_tri: np.ndarray
    node_fetches: np.ndarray
    tri_fetches: np.ndarray
    known: np.ndarray
    #: Streams served from this record after its first computation.
    hits: int = 0
    #: Strong references pinning the cache key's identity.
    _bvh: Optional[FlatBVH] = field(default=None, repr=False)

    @classmethod
    def empty(cls, n: int) -> "BaselineRecord":
        return cls(
            hit_tri=np.full(n, -1, dtype=np.int64),
            node_fetches=np.zeros(n, dtype=np.int64),
            tri_fetches=np.zeros(n, dtype=np.int64),
            known=np.zeros(n, dtype=bool),
        )

    def complete(self) -> bool:
        return bool(self.known.all())

    def record(self, index, hit_tri, node_fetches, tri_fetches) -> None:
        """Fill rays (lazy scalar path); already-known rays keep their
        first value (the traversal is deterministic, so they agree)."""
        fresh = ~self.known[index]
        if np.isscalar(index):
            if fresh:
                self.hit_tri[index] = hit_tri
                self.node_fetches[index] = node_fetches
                self.tri_fetches[index] = tri_fetches
                self.known[index] = True
            return
        index = np.asarray(index)
        sel = index[fresh]
        self.hit_tri[sel] = np.asarray(hit_tri)[fresh]
        self.node_fetches[sel] = np.asarray(node_fetches)[fresh]
        self.tri_fetches[sel] = np.asarray(tri_fetches)[fresh]
        self.known[sel] = True


_CACHE: "OrderedDict[_CacheKey, BaselineRecord]" = OrderedDict()


def _rays_digest(rays: RayBatch) -> str:
    """Content digest of a ray stream (subsets/rebuilds with equal
    content must share one baseline)."""
    h = hashlib.sha1()
    for arr in (rays.origins, rays.directions, rays.t_min, rays.t_max):
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


def baseline_record(
    bvh: FlatBVH, rays: RayBatch, engine: str, compute: bool = True
) -> BaselineRecord:
    """The memoized baseline record for ``(bvh, rays, engine)``.

    Args:
        bvh: acceleration structure (keyed by identity).
        rays: the ray stream (keyed by content digest).
        engine: ``"wavefront"`` or ``"scalar"`` - counters are
            order-dependent, so records never cross engines.
        compute: when True and the engine is ``"wavefront"``, a missing
            or incomplete record is filled eagerly with one batched
            full-occlusion pass.  Scalar records are always returned
            lazily (the caller fills rays as it traverses them).
    """
    key: _CacheKey = (id(bvh), engine, _rays_digest(rays))
    record = _CACHE.get(key)
    if record is not None and record._bvh is bvh:
        _CACHE.move_to_end(key)
        record.hits += 1
    else:
        record = BaselineRecord.empty(len(rays))
        record._bvh = bvh
        _CACHE[key] = record
        _CACHE.move_to_end(key)
        while len(_CACHE) > CACHE_CAPACITY:
            _CACHE.popitem(last=False)
    if compute and engine == "wavefront" and not record.complete():
        with telemetry.span("predictor.baseline", engine=engine, rays=len(rays)):
            hit_tri, counters = wavefront_occlusion_tri_batch(
                bvh, rays, per_ray=True
            )
        record.hit_tri[:] = hit_tri
        record.node_fetches[:] = counters.node_fetches
        record.tri_fetches[:] = counters.tri_fetches
        record.known[:] = True
    return record


def clear_baseline_cache() -> None:
    """Drop every memoized record (tests, or frees pinned BVHs)."""
    _CACHE.clear()


def baseline_cache_info() -> dict:
    """JSON-safe cache summary (telemetry/debugging)."""
    return {
        "entries": len(_CACHE),
        "capacity": CACHE_CAPACITY,
        "hits": sum(rec.hits for rec in _CACHE.values()),
    }


__all__ = [
    "CACHE_CAPACITY",
    "BaselineRecord",
    "baseline_cache_info",
    "baseline_record",
    "clear_baseline_cache",
]
