"""Equation 1: the analytic node-savings model (Section 3).

With ``p`` the predicted fraction, ``v`` the verified fraction, ``n`` the
average nodes fetched by a full traversal, ``k`` the predictions
evaluated per predicted ray and ``m`` the nodes fetched per evaluated
prediction, the average nodes traversed per ray is

    N = (1 - p) n + v k m + (p - v)(k m + n) = n + p k m - v n

so the expected per-ray saving is ``n - N = v n - p k m``.  Table 5
compares this estimate against the measured reduction; this module
provides both directions (estimate from parameters, and parameter
extraction from a :class:`~repro.core.simulate.SimulationResult`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.simulate import SimulationResult


@dataclass(frozen=True)
class Equation1Inputs:
    """The five parameters of Equation 1."""

    p: float  # predicted fraction of rays
    v: float  # verified fraction of rays
    n: float  # nodes fetched by an average full traversal
    k: float  # predictions evaluated per predicted ray
    m: float  # nodes fetched per evaluated prediction

    def __post_init__(self) -> None:
        if not 0.0 <= self.v <= self.p <= 1.0:
            raise ValueError("need 0 <= v <= p <= 1")
        if self.n < 0.0 or self.k < 0.0 or self.m < 0.0:
            raise ValueError("n, k, m must be non-negative")


def estimate_avg_nodes(inputs: Equation1Inputs) -> float:
    """``N = n + p k m - v n``: expected nodes fetched per ray."""
    return inputs.n + inputs.p * inputs.k * inputs.m - inputs.v * inputs.n


def estimate_nodes_skipped(inputs: Equation1Inputs) -> float:
    """``n - N = v n - p k m``: expected nodes skipped per ray."""
    return inputs.v * inputs.n - inputs.p * inputs.k * inputs.m


def inputs_from_simulation(result: SimulationResult) -> Equation1Inputs:
    """Extract measured (p, v, n, k, m) from a functional simulation.

    ``k`` averages the slots actually evaluated per predicted ray; ``m``
    averages node fetches per evaluated prediction, matching the paper's
    definitions for Table 5.
    """
    if result.outcomes is None:
        raise ValueError("simulation must be run with keep_outcomes=True")
    n_rays = max(1, result.num_rays)
    p = result.predicted / n_rays
    v = result.verified / n_rays
    n = result.baseline_node_fetches / n_rays

    predicted = [o for o in result.outcomes if o.predicted]
    if predicted:
        total_slots = sum(o.predicted_nodes for o in predicted)
        k = total_slots / len(predicted)
        total_verify_nodes = sum(o.verify_node_fetches for o in predicted)
        m = total_verify_nodes / total_slots if total_slots else 0.0
    else:
        k = 0.0
        m = 0.0
    return Equation1Inputs(p=p, v=v, n=n, k=k, m=m)
