"""Tournament hashing - the Section 4.2 future-work extension.

The paper leaves "combining multiple hash functions" to future work.
This module implements the natural design, borrowed from tournament
branch predictors: run a Grid Spherical table and a Two Point table side
by side (each at half capacity, so storage stays comparable to the
baseline predictor) plus a small chooser table of saturating counters
that learns, per ray-hash region, which component's predictions verify.

:class:`TournamentPredictor` exposes the same surface as
:class:`~repro.core.predictor.RayPredictor` (``hash_batch`` /
``predict`` / ``confirm`` / ``train`` / ``config``), so both the
functional simulator and the RT-unit timing model accept it unchanged -
the two component hashes are packed into one opaque integer.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.bvh.nodes import FlatBVH
from repro.core.hashing import GridSphericalHash, TwoPointHash, fold_hash
from repro.core.predictor import PredictorConfig
from repro.core.table import PredictorTable

#: Bits reserved for each packed component hash.
_PACK_BITS = 24
_PACK_MASK = (1 << _PACK_BITS) - 1
#: Saturating-counter range of the chooser (2-bit, like gshare choosers).
_COUNTER_MAX = 3


class TournamentPredictor:
    """Two component predictors and a chooser, one opaque interface."""

    def __init__(
        self,
        bvh: FlatBVH,
        config: Optional[PredictorConfig] = None,
        chooser_bits: int = 8,
    ) -> None:
        self.bvh = bvh
        self.config = config or PredictorConfig()
        if self.config.num_entries < 2:
            raise ValueError("tournament predictor needs at least 2 entries")
        aabb = bvh.root_aabb()
        self.hasher_a = GridSphericalHash(
            aabb, self.config.origin_bits, self.config.direction_bits
        )
        self.hasher_b = TwoPointHash(
            aabb, self.config.origin_bits, self.config.length_ratio
        )
        half = max(self.config.ways, self.config.num_entries // 2)
        self.table_a = PredictorTable(
            num_entries=half,
            ways=self.config.ways,
            nodes_per_entry=self.config.nodes_per_entry,
            hash_bits=self.config.hash_bits,
            node_policy=self.config.node_policy,
        )
        self.table_b = PredictorTable(
            num_entries=half,
            ways=self.config.ways,
            nodes_per_entry=self.config.nodes_per_entry,
            hash_bits=self.config.hash_bits,
            node_policy=self.config.node_policy,
        )
        self.chooser_bits = chooser_bits
        # Counter > midpoint: prefer component A; < midpoint: prefer B.
        self._chooser = np.full(1 << chooser_bits, _COUNTER_MAX // 2, dtype=np.int8)
        self._ancestors = bvh.ancestors(self.config.go_up_level)
        self._tri_to_leaf = bvh.leaf_of_triangle()

    # ------------------------------------------------------------------
    # Hashing: both component hashes packed into one opaque value.
    # ------------------------------------------------------------------
    def hash_ray(self, origin: Sequence[float], direction: Sequence[float]) -> int:
        """Pack both component hashes into one opaque value."""
        a = self.hasher_a.hash_ray(origin, direction)
        b = self.hasher_b.hash_ray(origin, direction)
        return (a << _PACK_BITS) | b

    def hash_batch(self, origins: np.ndarray, directions: np.ndarray) -> np.ndarray:
        """Vectorized packed hashing of a ray batch."""
        a = self.hasher_a.hash_batch(origins, directions)
        b = self.hasher_b.hash_batch(origins, directions)
        return (a << np.uint64(_PACK_BITS)) | b

    @staticmethod
    def _unpack(ray_hash: int) -> tuple:
        return ray_hash >> _PACK_BITS, ray_hash & _PACK_MASK

    def _chooser_index(self, hash_a: int) -> int:
        return fold_hash(hash_a, self.config.hash_bits, self.chooser_bits)

    # ------------------------------------------------------------------
    # Predictor interface
    # ------------------------------------------------------------------
    def predict(self, ray_hash: int) -> Optional[List[int]]:
        """Look both tables up; return the chooser-preferred prediction."""
        hash_a, hash_b = self._unpack(ray_hash)
        nodes_a = self.table_a.lookup(hash_a)
        nodes_b = self.table_b.lookup(hash_b)
        if nodes_a is None and nodes_b is None:
            return None
        if nodes_a is None:
            return nodes_b
        if nodes_b is None:
            return nodes_a
        prefer_a = self._chooser[self._chooser_index(hash_a)] > _COUNTER_MAX // 2
        return nodes_a if prefer_a else nodes_b

    def confirm(self, ray_hash: int, node: int) -> None:
        """Credit the component whose table held the verifying node."""
        hash_a, hash_b = self._unpack(ray_hash)
        index = self._chooser_index(hash_a)
        in_a = node in (self.table_a.peek(hash_a) or [])
        in_b = node in (self.table_b.peek(hash_b) or [])
        if in_a and not in_b:
            self._chooser[index] = min(_COUNTER_MAX, self._chooser[index] + 1)
        elif in_b and not in_a:
            self._chooser[index] = max(0, self._chooser[index] - 1)
        if in_a:
            self.table_a.confirm(hash_a, node)
        if in_b:
            self.table_b.confirm(hash_b, node)

    def train(self, ray_hash: int, hit_tri: int) -> int:
        """Insert the Go Up Level ancestor into both component tables."""
        hash_a, hash_b = self._unpack(ray_hash)
        leaf = int(self._tri_to_leaf[hit_tri])
        node = int(self._ancestors[leaf])
        self.table_a.update(hash_a, node)
        self.table_b.update(hash_b, node)
        return node

    def trained_node_for(self, hit_tri: int) -> int:
        """The node training on ``hit_tri`` would store."""
        leaf = int(self._tri_to_leaf[hit_tri])
        return int(self._ancestors[leaf])

    def reset(self) -> None:
        """Clear both tables and the chooser (new frame)."""
        self.table_a.clear()
        self.table_b.clear()
        self._chooser[:] = _COUNTER_MAX // 2

    def size_kib(self) -> float:
        """Total storage: both tables plus the 2-bit chooser counters."""
        chooser_bits = 2 * (1 << self.chooser_bits)
        return (
            self.table_a.size_bits() + self.table_b.size_bits() + chooser_bits
        ) / 8.0 / 1024.0
