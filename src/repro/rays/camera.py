"""Pinhole camera and primary-ray generation."""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.ray import RayBatch
from repro.scenes.scene import CameraSpec


class PinholeCamera:
    """A classic look-at pinhole camera.

    Generates one primary ray per pixel through the image plane; pixel
    (0, 0) is the top-left corner, rays pass through pixel centers.
    """

    def __init__(self, spec: CameraSpec, width: int, height: int) -> None:
        if width < 1 or height < 1:
            raise ValueError("image dimensions must be positive")
        self.spec = spec
        self.width = width
        self.height = height

        eye = np.asarray(spec.eye, dtype=np.float64)
        look_at = np.asarray(spec.look_at, dtype=np.float64)
        up = np.asarray(spec.up, dtype=np.float64)
        forward = look_at - eye
        norm = np.linalg.norm(forward)
        if norm == 0.0:
            raise ValueError("camera eye and look_at coincide")
        forward /= norm
        right = np.cross(forward, up)
        r_norm = np.linalg.norm(right)
        if r_norm < 1e-12:
            raise ValueError("camera up vector is parallel to view direction")
        right /= r_norm
        true_up = np.cross(right, forward)

        self._eye = eye
        self._forward = forward
        self._right = right
        self._up = true_up
        self._tan_half_fov = math.tan(math.radians(spec.fov_degrees) * 0.5)

    def primary_rays(self) -> RayBatch:
        """One normalized primary ray per pixel, row-major order."""
        xs = (np.arange(self.width) + 0.5) / self.width * 2.0 - 1.0
        ys = 1.0 - (np.arange(self.height) + 0.5) / self.height * 2.0
        aspect = self.width / self.height
        px, py = np.meshgrid(xs * self._tan_half_fov * aspect, ys * self._tan_half_fov)
        directions = (
            self._forward[None, None, :]
            + px[..., None] * self._right[None, None, :]
            + py[..., None] * self._up[None, None, :]
        ).reshape(-1, 3)
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        origins = np.broadcast_to(self._eye, directions.shape).copy()
        return RayBatch(origins, directions, t_min=1e-4, t_max=np.inf)

    def pixel_of_ray(self, index: int) -> tuple[int, int]:
        """(x, y) pixel coordinates of primary ray ``index``."""
        if index < 0 or index >= self.width * self.height:
            raise IndexError("ray index out of range")
        return index % self.width, index // self.width
