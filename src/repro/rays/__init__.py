"""Ray generation: cameras, primary rays, AO rays, and ray sorting.

Reproduces the workload-generation recipe of Section 5.2: primary rays
are traced from a pinhole camera through every pixel; each primary hit
spawns ``spp`` ambient-occlusion rays by cosine-sampling the upper
hemisphere, with lengths fixed to 25-40 % of the scene bounding-box
diagonal.  Morton-order sorting reproduces the "sorted rays" variants.
"""

from repro.rays.aogen import AOWorkload, generate_ao_rays, generate_ao_workload
from repro.rays.camera import PinholeCamera
from repro.rays.sampling import (
    cosine_hemisphere_batch,
    cosine_sample_hemisphere,
    orthonormal_basis,
)
from repro.rays.sorting import morton_sort_rays

__all__ = [
    "AOWorkload",
    "PinholeCamera",
    "cosine_hemisphere_batch",
    "cosine_sample_hemisphere",
    "generate_ao_rays",
    "generate_ao_workload",
    "morton_sort_rays",
    "orthonormal_basis",
]
