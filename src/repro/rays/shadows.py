"""Shadow-ray workload generation.

The paper's introduction motivates occlusion rays with hybrid
rendering: commercial titles add ray-traced *shadows* on top of a raster
base (the Shadowlands example).  Shadow rays are occlusion rays exactly
like AO rays - any hit between a surface point and the light means
shadow - so the predictor applies unchanged.  This generator produces
one shadow ray per primary-hit pixel toward a point light, bounded by
the light distance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.bvh.nodes import FlatBVH
from repro.geometry.ray import RayBatch, RayBatchValidation, validate_ray_batch
from repro.rays.camera import PinholeCamera
from repro.scenes.scene import Scene
from repro.trace.traversal import DEFAULT_ENGINE, trace_closest_batch

_SURFACE_EPSILON = 1e-4
#: Shadow rays stop just short of the light to avoid self-intersection.
_LIGHT_EPSILON = 1e-3


@dataclass
class ShadowWorkload:
    """Shadow rays plus the pixel each belongs to."""

    rays: RayBatch
    pixel_index: np.ndarray
    light: tuple
    width: int
    height: int
    validation: Optional[RayBatchValidation] = None

    def __len__(self) -> int:
        return len(self.rays)


def default_light_position(scene: Scene) -> tuple:
    """A point light near the scene ceiling, slightly off-center."""
    aabb = scene.aabb()
    cx, _, cz = aabb.center()
    ex = aabb.extent()
    return (
        float(cx + 0.2 * ex[0]),
        float(aabb.hi[1] - 0.08 * ex[1]),
        float(cz - 0.15 * ex[2]),
    )


def generate_shadow_workload(
    scene: Scene,
    bvh: FlatBVH,
    width: int = 64,
    height: int = 64,
    light: Sequence[float] | None = None,
    engine: str = DEFAULT_ENGINE,
) -> ShadowWorkload:
    """One shadow ray per primary-hit pixel toward ``light``.

    Rays carry ``t_max`` equal to the surface-to-light distance (less an
    epsilon), so any hit inside the interval means the pixel is shadowed
    - first-hit termination applies, the predictor's target case.
    ``engine`` selects the traversal engine for the primary pass.
    """
    light_pos = tuple(light) if light is not None else default_light_position(scene)
    camera = PinholeCamera(scene.camera, width, height)
    primary = camera.primary_rays()
    ts, tris = trace_closest_batch(bvh, primary, engine=engine)
    hit_idx = np.nonzero(tris >= 0)[0]
    if hit_idx.size == 0:
        return ShadowWorkload(
            RayBatch(np.zeros((0, 3)), np.zeros((0, 3))),
            np.zeros(0, dtype=np.int64), light_pos, width, height,
        )

    points = primary.origins[hit_idx] + primary.directions[hit_idx] * ts[hit_idx][:, None]
    mesh = bvh.mesh
    hit_tris = tris[hit_idx]
    e1 = mesh.v1[hit_tris] - mesh.v0[hit_tris]
    e2 = mesh.v2[hit_tris] - mesh.v0[hit_tris]
    normals = np.cross(e1, e2)
    norms = np.linalg.norm(normals, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    normals /= norms
    facing = np.einsum("ij,ij->i", normals, primary.directions[hit_idx])
    normals[facing > 0.0] *= -1.0

    to_light = np.asarray(light_pos) - points
    distances = np.linalg.norm(to_light, axis=1)
    distances[distances == 0.0] = 1.0
    directions = to_light / distances[:, None]
    origins = points + _SURFACE_EPSILON * normals

    rays = RayBatch(
        origins, directions,
        t_min=0.0, t_max=np.maximum(distances - _LIGHT_EPSILON, 0.0),
    )
    pixel_index = hit_idx
    # Input boundary guard, same as the AO generator: a light sitting
    # exactly on a surface point yields a zero-length direction, and
    # degenerate geometry can produce NaN normals.
    rays, validation = validate_ray_batch(rays, mode="filter")
    if not validation.ok:
        pixel_index = pixel_index[validation.kept]
    return ShadowWorkload(
        rays, pixel_index, light_pos, width, height, validation=validation
    )
