"""Morton-order ray sorting (Aila-Laine, used for the "sorted" variants).

Section 5.2 compares unsorted rays against rays sorted with the Aila and
Laine Morton-order quicksort: the sort key interleaves the quantized ray
origin and direction so that spatially similar rays become adjacent.
Sorted rays reduce divergence but - the paper's point - give the
predictor *less* opportunity, because similar rays are in flight
simultaneously and cannot train the table for one another.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.morton import morton_codes
from repro.geometry.ray import RayBatch


def morton_sort_rays(
    rays: RayBatch, origin_bits: int = 10, direction_bits: int = 5
) -> np.ndarray:
    """Sort key computation for a ray batch.

    Returns the permutation (argsort) ordering rays by a Morton code of
    the quantized origin, with the quantized direction appended as the
    low-order tie-breaking bits - the combined origin+direction key used
    in ray-reordering work the paper builds on.

    Args:
        rays: the batch to sort.
        origin_bits: bits per axis for the origin grid.
        direction_bits: bits per axis for the direction grid.

    Returns:
        int64 permutation such that ``rays.subset(perm)`` is sorted.
    """
    lo = rays.origins.min(axis=0)
    hi = rays.origins.max(axis=0)
    origin_code = morton_codes(rays.origins, lo, hi, bits=origin_bits)

    direction_code = morton_codes(
        rays.directions, np.full(3, -1.0), np.full(3, 1.0), bits=direction_bits
    )
    key = (origin_code.astype(np.uint64) << np.uint64(3 * direction_bits)) | (
        direction_code.astype(np.uint64)
    )
    return np.argsort(key, kind="stable")
