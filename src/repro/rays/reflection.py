"""Reflection-ray generation (used by the Figure 11 correlation study).

The paper correlates its simulated RT unit against hardware using
primary and reflection rays.  Reflection rays are spawned at primary hit
points by mirroring the incoming direction about the surface normal -
the classic incoherent workload.
"""

from __future__ import annotations

import numpy as np

from repro.bvh.nodes import FlatBVH
from repro.geometry.ray import RayBatch, validate_ray_batch
from repro.rays.camera import PinholeCamera
from repro.scenes.scene import Scene
from repro.trace.traversal import DEFAULT_ENGINE, trace_closest_batch

_SURFACE_EPSILON = 1e-4


def generate_reflection_rays(
    scene: Scene,
    bvh: FlatBVH,
    width: int = 64,
    height: int = 64,
    engine: str = DEFAULT_ENGINE,
) -> RayBatch:
    """One specular reflection ray per primary-hit pixel.

    Rays are unbounded (``t_max = inf``); pixels whose primary ray missed
    produce no reflection ray.
    """
    camera = PinholeCamera(scene.camera, width, height)
    primary = camera.primary_rays()
    ts, tris = trace_closest_batch(bvh, primary, engine=engine)
    hit_idx = np.nonzero(tris >= 0)[0]
    if hit_idx.size == 0:
        return RayBatch(np.zeros((0, 3)), np.zeros((0, 3)))

    points = primary.origins[hit_idx] + primary.directions[hit_idx] * ts[hit_idx][:, None]
    mesh = bvh.mesh
    hit_tris = tris[hit_idx]
    e1 = mesh.v1[hit_tris] - mesh.v0[hit_tris]
    e2 = mesh.v2[hit_tris] - mesh.v0[hit_tris]
    normals = np.cross(e1, e2)
    norms = np.linalg.norm(normals, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    normals /= norms
    incoming = primary.directions[hit_idx]
    facing = np.einsum("ij,ij->i", normals, incoming)
    normals[facing > 0.0] *= -1.0
    facing = np.einsum("ij,ij->i", normals, incoming)

    reflected = incoming - 2.0 * facing[:, None] * normals
    lengths = np.linalg.norm(reflected, axis=1, keepdims=True)
    lengths[lengths == 0.0] = 1.0
    reflected /= lengths
    origins = points + _SURFACE_EPSILON * normals
    rays = RayBatch(origins, reflected, t_min=0.0, t_max=np.inf)
    # Input boundary guard, same as the AO generator: degenerate normals
    # give NaN or zero-length reflection directions.
    rays, _ = validate_ray_batch(rays, mode="filter")
    return rays
