"""Ambient-occlusion workload generation (Section 5.2 of the paper).

The recipe: trace one primary ray per pixel from the scene camera, then
spawn ``spp`` AO rays at every primary hit point by cosine-sampling the
upper hemisphere around the surface normal.  AO ray lengths are drawn
uniformly from 25-40 % of the scene bounding-box diagonal, "to represent
relevant areas near the point that could potentially block ambient
light".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro import telemetry
from repro.bvh.nodes import FlatBVH
from repro.geometry.ray import RayBatch, RayBatchValidation, validate_ray_batch
from repro.rays.camera import PinholeCamera
from repro.rays.sampling import cosine_hemisphere_batch
from repro.scenes.scene import Scene
from repro.trace.traversal import DEFAULT_ENGINE, trace_closest_batch

#: Offset applied along the normal to avoid self-intersection.
_SURFACE_EPSILON = 1e-4
#: AO ray length bounds as fractions of the scene bbox diagonal (paper 5.2).
AO_LENGTH_MIN_FRACTION = 0.25
AO_LENGTH_MAX_FRACTION = 0.40


@dataclass
class AOWorkload:
    """A generated AO workload.

    Attributes:
        rays: the occlusion rays, in generation order (pixel-major,
            ``spp`` consecutive rays per hit pixel).
        pixel_index: flat pixel index of each AO ray's primary hit.
        num_primary: primary rays traced (width * height).
        num_primary_hits: primary rays that hit geometry.
        width, height, spp: the viewport parameters used.
        validation: input-screening counters for the generated rays
            (degenerate surface normals can yield zero-length AO
            directions; such rays are filtered out, and the counters
            record how many).
    """

    rays: RayBatch
    pixel_index: np.ndarray
    num_primary: int
    num_primary_hits: int
    width: int
    height: int
    spp: int
    validation: Optional[RayBatchValidation] = None

    def __len__(self) -> int:
        return len(self.rays)


def generate_ao_rays(
    scene: Scene,
    bvh: FlatBVH,
    hit_points: np.ndarray,
    normals: np.ndarray,
    spp: int,
    rng: np.random.Generator,
) -> RayBatch:
    """Spawn ``spp`` cosine-sampled AO rays per surface point.

    Args:
        scene: provides the bounding-box diagonal for ray lengths.
        bvh: unused by generation itself; kept so future variants can
            consult the tree (e.g. to seed per-leaf statistics).
        hit_points: surface points, shape ``(n, 3)``.
        normals: unit surface normals, shape ``(n, 3)``.
        spp: samples (AO rays) per point.
        rng: seeded generator for deterministic workloads.
    """
    if spp < 1:
        raise ValueError("spp must be >= 1")
    del bvh  # reserved for future use
    n = hit_points.shape[0]
    points = np.repeat(hit_points, spp, axis=0)
    reps = np.repeat(normals, spp, axis=0)
    directions = cosine_hemisphere_batch(reps, rng)
    origins = points + _SURFACE_EPSILON * reps

    diagonal = scene.aabb().diagonal_length()
    lengths = rng.uniform(
        AO_LENGTH_MIN_FRACTION * diagonal, AO_LENGTH_MAX_FRACTION * diagonal, n * spp
    )
    return RayBatch(origins, directions, t_min=0.0, t_max=lengths)


def generate_ao_workload(
    scene: Scene,
    bvh: FlatBVH,
    width: int = 64,
    height: int = 64,
    spp: int = 2,
    seed: int = 0,
    engine: str = DEFAULT_ENGINE,
) -> AOWorkload:
    """Full Section 5.2 pipeline: primary pass then AO ray generation.

    The paper uses 1024x1024 at 4 spp (about four million AO rays); the
    defaults here are scaled for a pure-Python simulator but the knobs are
    identical.  ``engine`` selects the traversal engine for the primary
    pass; both engines yield bit-identical hits, so the generated
    workload does not depend on the choice.
    """
    with telemetry.span(
        "workload.generate", width=width, height=height, spp=spp,
        engine=engine,
    ) as sp:
        workload = _generate_ao_workload(
            scene, bvh, width, height, spp, seed, engine
        )
        sp.add(
            rays=len(workload.rays),
            primary_hits=workload.num_primary_hits,
        )
    telemetry.inc_counter("workload.ao_rays", len(workload.rays), engine=engine)
    return workload


def _generate_ao_workload(
    scene: Scene,
    bvh: FlatBVH,
    width: int,
    height: int,
    spp: int,
    seed: int,
    engine: str,
) -> AOWorkload:
    rng = np.random.default_rng(seed)
    camera = PinholeCamera(scene.camera, width, height)
    primary = camera.primary_rays()
    ts, tris = trace_closest_batch(bvh, primary, engine=engine)

    hit_mask = tris >= 0
    hit_idx = np.nonzero(hit_mask)[0]
    hit_points = primary.origins[hit_idx] + primary.directions[hit_idx] * ts[hit_idx][:, None]

    # Geometric normals of the hit triangles, flipped toward the viewer.
    mesh = bvh.mesh
    hit_tris = tris[hit_idx]
    e1 = mesh.v1[hit_tris] - mesh.v0[hit_tris]
    e2 = mesh.v2[hit_tris] - mesh.v0[hit_tris]
    normals = np.cross(e1, e2)
    norms = np.linalg.norm(normals, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    normals /= norms
    facing = np.einsum("ij,ij->i", normals, primary.directions[hit_idx])
    normals[facing > 0.0] *= -1.0

    rays = generate_ao_rays(scene, bvh, hit_points, normals, spp, rng)
    pixel_index = np.repeat(hit_idx, spp)
    # Input boundary guard: drop NaN/inf/zero-direction rays (possible
    # with degenerate geometry) so downstream traversal never sees them.
    rays, validation = validate_ray_batch(rays, mode="filter")
    if not validation.ok:
        pixel_index = pixel_index[validation.kept]
    return AOWorkload(
        rays=rays,
        pixel_index=pixel_index,
        num_primary=len(primary),
        num_primary_hits=int(hit_idx.size),
        width=width,
        height=height,
        spp=spp,
        validation=validation,
    )
