"""Stackless BVH traversal with a restart trail (Laine 2010).

Section 2.4 notes that depth-first traversal needs a per-thread stack
"or potentially a bit trail for binary trees".  Hardware units often
prefer the trail: it needs a couple of machine words per ray instead of
an 8-entry stack with spill handling.  This module implements a restart
trail for occlusion rays so the two schemes can be compared.

Formulation: each full descent from the root records, per level, whether
*both* children were hit (``pending`` bit) and whether this descent must
take the *far* child at that level (``taken`` bit).  A descent always
visits the near child at levels with no direction yet.  When a path dead
-ends without an intersection, the deepest level whose far side is still
owed (``pending & ~taken``) becomes the next restart point: its taken
bit is set, all deeper state is cleared, and traversal restarts from the
root.  Because the ray's interval never shrinks during occlusion
traversal, the re-descent reproduces the same box results, so the
enumeration visits exactly the leaves a stack would.

Restart descents re-fetch the interior nodes along the path, so the
trail performs strictly more node fetches than the stack - that is the
hardware tradeoff; the test suite asserts hit-result equivalence and
the access overhead's sign.
"""

from __future__ import annotations

from typing import Optional

from repro.bvh.nodes import FlatBVH
from repro.geometry.intersect import ray_aabb_intersect, ray_triangle_intersect
from repro.geometry.ray import Ray
from repro.trace.counters import TraversalStats

#: Safety bound on tree depth supported by the trail.
_MAX_LEVELS = 128


def occlusion_any_hit_stackless(
    bvh: FlatBVH,
    ray: Ray,
    stats: Optional[TraversalStats] = None,
) -> bool:
    """Any-hit occlusion traversal using a restart trail (no stack).

    Produces exactly the same hit/miss answer as
    :func:`repro.trace.traversal.occlusion_any_hit`; only the
    memory-access pattern differs (restarts re-fetch path nodes).
    """
    if stats is None:
        stats = TraversalStats()
    hot = bvh.hot()
    ox, oy, oz = ray.origin
    dx, dy, dz = ray.direction
    ix, iy, iz = ray.inv_direction()
    t_min = ray.t_min
    t_max = ray.t_max

    lo_x, lo_y, lo_z = hot.lo_x, hot.lo_y, hot.lo_z
    hi_x, hi_y, hi_z = hot.hi_x, hot.hi_y, hot.hi_z
    left, right = hot.left, hot.right
    first_tri, tri_count = hot.first_tri, hot.tri_count
    tv0, tv1, tv2 = hot.tri_v0, hot.tri_v1, hot.tri_v2

    stats.rays += 1
    stats.box_tests += 1
    hit_root, _ = ray_aabb_intersect(
        ox, oy, oz, ix, iy, iz, t_min, t_max,
        lo_x[0], lo_y[0], lo_z[0], hi_x[0], hi_y[0], hi_z[0],
    )
    if not hit_root:
        return False

    pending = 0  # levels where both children were hit on this path
    taken = 0    # levels where this descent must take the far child
    while True:
        node = 0
        level = 0
        dead_end = False
        while left[node] >= 0:
            child = left[node]
            other = right[node]
            stats.node_fetches += 1
            stats.box_tests += 2
            hit_l, t_l = ray_aabb_intersect(
                ox, oy, oz, ix, iy, iz, t_min, t_max,
                lo_x[child], lo_y[child], lo_z[child],
                hi_x[child], hi_y[child], hi_z[child],
            )
            hit_r, t_r = ray_aabb_intersect(
                ox, oy, oz, ix, iy, iz, t_min, t_max,
                lo_x[other], lo_y[other], lo_z[other],
                hi_x[other], hi_y[other], hi_z[other],
            )
            bit = 1 << level
            if hit_l and hit_r:
                near, far = (child, other) if t_l <= t_r else (other, child)
                pending |= bit
                node = far if taken & bit else near
            elif hit_l or hit_r:
                # One live side only; the trail never points here.
                node = child if hit_l else other
            else:
                dead_end = True
                break
            level += 1
            if level >= _MAX_LEVELS:
                raise RuntimeError("tree deeper than the trail supports")

        if not dead_end:
            start = first_tri[node]
            for tri in range(start, start + tri_count[node]):
                stats.tri_fetches += 1
                stats.tri_tests += 1
                t = ray_triangle_intersect(
                    ox, oy, oz, dx, dy, dz, t_min, t_max,
                    tv0[tri], tv1[tri], tv2[tri],
                )
                if t is not None:
                    stats.hits += 1
                    return True

        # Advance to the next unexplored path: the deepest owed far side.
        owed = pending & ~taken
        if owed == 0:
            return False
        deepest = owed.bit_length() - 1
        keep = (1 << deepest) - 1
        taken = (taken & keep) | (1 << deepest)
        pending &= keep | (1 << deepest)
