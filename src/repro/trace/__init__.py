"""Reference BVH traversal (Algorithm 1) and traversal statistics.

These kernels are the functional ground truth: the predictor and the
RT-unit timing model are validated against them, and the limit study
(Figure 2) uses their all-hits variant to compute oracle predictions.
"""

from repro.trace.counters import TraversalStats
from repro.trace.packets import occlusion_packet, trace_occlusion_packets
from repro.trace.stackless import occlusion_any_hit_stackless
from repro.trace.traversal import (
    DEFAULT_ENGINE,
    closest_hit,
    occlusion_all_hit_leaves,
    occlusion_any_hit,
    occlusion_any_hit_tri,
    occlusion_from_nodes,
    trace_closest_batch,
    trace_occlusion_batch,
)
from repro.trace.wavefront import (
    ENGINES,
    PerRayCounters,
    as_ray_batch,
    resolve_engine,
    wavefront_closest_batch,
    wavefront_occlusion_batch,
    wavefront_occlusion_tri_batch,
    wavefront_verify_batch,
)

__all__ = [
    "DEFAULT_ENGINE",
    "ENGINES",
    "PerRayCounters",
    "TraversalStats",
    "as_ray_batch",
    "closest_hit",
    "occlusion_all_hit_leaves",
    "occlusion_any_hit",
    "occlusion_any_hit_stackless",
    "occlusion_any_hit_tri",
    "occlusion_from_nodes",
    "occlusion_packet",
    "resolve_engine",
    "trace_closest_batch",
    "trace_occlusion_batch",
    "trace_occlusion_packets",
    "wavefront_closest_batch",
    "wavefront_occlusion_batch",
    "wavefront_occlusion_tri_batch",
    "wavefront_verify_batch",
]
