"""Deprecated shim: :class:`TraversalStats` moved to the telemetry layer.

The canonical home is :mod:`repro.telemetry.stats`, where the counters
gained a :meth:`~repro.telemetry.stats.TraversalStats.publish` method
folding finished accumulations into the global metrics registry
(``repro.telemetry.get_registry()``).  This module re-exports the same
public name so existing imports keep working unchanged:

    from repro.trace.counters import TraversalStats   # still fine

New code should import from :mod:`repro.trace` (or
:mod:`repro.telemetry.stats` directly) instead.
"""

from __future__ import annotations

from repro.telemetry.stats import TraversalStats

__all__ = ["TraversalStats"]
