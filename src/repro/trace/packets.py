"""Ray-packet traversal (Section 2.5 / Related Work).

The coherence techniques the paper positions itself against - Aila &
Laine's packets, Garanzha & Loop's sorted packets - amortize node
fetches across a group of rays traversing together: a node is fetched
once for the whole packet, and every member tests it.  The paper argues
prediction is *orthogonal* to packetization; this kernel lets the
benchmark harness quantify the packet side of that comparison.

Semantics: a packet of occlusion rays traverses the BVH with an active
mask; a node is visited if *any* active ray's slab test hits it.  Rays
deactivate as soon as they find an intersection.  Hit results are
bit-identical to tracing each ray alone; only the fetch pattern differs
(fewer node fetches per ray for coherent packets, potentially more box
tests, since every active ray tests every visited node).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.bvh.nodes import FlatBVH
from repro.geometry.intersect import ray_aabb_intersect, ray_triangle_intersect
from repro.geometry.ray import RayBatch
from repro.trace.counters import TraversalStats


def occlusion_packet(
    bvh: FlatBVH,
    rays: RayBatch,
    indices: Sequence[int],
    stats: Optional[TraversalStats] = None,
) -> np.ndarray:
    """Trace the rays at ``indices`` as one packet; returns hit booleans.

    Node fetches are counted once per visited node (the packet shares
    the fetch); box tests are counted per active ray per visited node.
    """
    if stats is None:
        stats = TraversalStats()
    hot = bvh.hot()
    left, right = hot.left, hot.right
    lo_x, lo_y, lo_z = hot.lo_x, hot.lo_y, hot.lo_z
    hi_x, hi_y, hi_z = hot.hi_x, hot.hi_y, hot.hi_z
    first_tri, tri_count = hot.first_tri, hot.tri_count
    tv0, tv1, tv2 = hot.tri_v0, hot.tri_v1, hot.tri_v2

    members = []
    for i in indices:
        ray = rays[int(i)]
        members.append(
            (
                ray.origin,
                ray.direction,
                ray.inv_direction(),
                ray.t_min,
                ray.t_max,
            )
        )
    n = len(members)
    stats.rays += n
    hit = [False] * n
    if n == 0:
        return np.zeros(0, dtype=bool)

    def any_active_hits_box(node: int, active: List[int]) -> List[int]:
        """Members of ``active`` whose slab test hits ``node``'s box."""
        survivors = []
        blo_x, blo_y, blo_z = lo_x[node], lo_y[node], lo_z[node]
        bhi_x, bhi_y, bhi_z = hi_x[node], hi_y[node], hi_z[node]
        for m in active:
            (ox, oy, oz), _, (ix, iy, iz), t_min, t_max = members[m]
            stats.box_tests += 1
            ok, _ = ray_aabb_intersect(
                ox, oy, oz, ix, iy, iz, t_min, t_max,
                blo_x, blo_y, blo_z, bhi_x, bhi_y, bhi_z,
            )
            if ok:
                survivors.append(m)
        return survivors

    root_active = any_active_hits_box(0, [m for m in range(n)])
    stack: List[tuple] = [(0, root_active)] if root_active else []
    while stack:
        node, active = stack.pop()
        active = [m for m in active if not hit[m]]
        if not active:
            continue
        if left[node] < 0:
            # Leaf: the packet shares the triangle fetches.
            start = first_tri[node]
            for tri in range(start, start + tri_count[node]):
                stats.tri_fetches += 1
                v0, v1, v2 = tv0[tri], tv1[tri], tv2[tri]
                for m in active:
                    if hit[m]:
                        continue
                    (ox, oy, oz), (dx, dy, dz), _, t_min, t_max = members[m]
                    stats.tri_tests += 1
                    if ray_triangle_intersect(
                        ox, oy, oz, dx, dy, dz, t_min, t_max, v0, v1, v2
                    ) is not None:
                        hit[m] = True
            continue

        # Interior: one fetch for the packet, per-ray box tests on both
        # children; children are visited if any member survives.
        stats.node_fetches += 1
        child, other = left[node], right[node]
        active_l = any_active_hits_box(child, active)
        active_r = any_active_hits_box(other, active)
        if active_r:
            stack.append((other, active_r))
        if active_l:
            stack.append((child, active_l))

    stats.hits += sum(hit)
    return np.asarray(hit, dtype=bool)


def trace_occlusion_packets(
    bvh: FlatBVH,
    rays: RayBatch,
    packet_size: int = 32,
    stats: Optional[TraversalStats] = None,
) -> np.ndarray:
    """Trace a whole batch in consecutive packets of ``packet_size``."""
    if packet_size < 1:
        raise ValueError("packet_size must be >= 1")
    if stats is None:
        stats = TraversalStats()
    results = np.zeros(len(rays), dtype=bool)
    for start in range(0, len(rays), packet_size):
        indices = range(start, min(start + packet_size, len(rays)))
        results[list(indices)] = occlusion_packet(bvh, rays, indices, stats=stats)
    return results
