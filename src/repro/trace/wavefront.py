"""Vectorized wavefront (ray-stream) BVH traversal.

The scalar kernels in :mod:`repro.trace.traversal` walk the tree one ray
at a time with a per-ray stack; every node visit pays Python interpreter
overhead.  This engine instead processes an entire
:class:`~repro.geometry.ray.RayBatch` against the flat BVH *level by
level*: the frontier is a flat list of ``(node, ray)`` *entries* (the
wavefront), and each level runs **one** gathered slab test over every
interior entry and **one** gathered Moeller-Trumbore test over every
(leaf-ray, triangle) pair, using the numpy-batched kernels of
:mod:`repro.geometry.intersect` with per-entry boxes and triangles
(ray-stream tracing in the spirit of Grauer-Gray et al.'s "Minimizing
Ray Tracing Memory Traffic through Quantized Structures and Ray Stream
Tracing").

The number of vectorized kernel launches is therefore bounded by the
*tree depth* - two slab gathers and one triangle gather per level - not
by the ray count or even the node count, which is where the speedup
over the scalar loop comes from.

Equivalence contract
--------------------
Hit *results* are bit-identical to the scalar engine: both engines
evaluate the same IEEE-754 double-precision slab and Moeller-Trumbore
arithmetic against the same ``[t_min, t_max]`` intervals, and whether a
ray intersects any in-range triangle (occlusion) or what its minimum hit
parameter is (closest hit) does not depend on traversal order.
Order-*dependent* quantities - which triangle satisfied an any-hit query
first, or how many nodes were fetched before early termination - may
legitimately differ; :class:`~repro.trace.counters.TraversalStats`
counters keep their exact scalar semantics (one node fetch per ray per
interior-node visit, one triangle fetch per ray-triangle test) but count
the wavefront's visit order.

Speculation safety
------------------
The engine preserves both traversal-side guards of the predictor
pipeline: batch-wide ``start_nodes`` are validated through the same
checked-entry path as the scalar engine (raising
:class:`~repro.errors.TraversalError` on a corrupt index), and the
per-ray verification entry point :func:`wavefront_verify_batch` degrades
a ray with a corrupt predicted node to "verification failed" (the
caller's full-traversal fallback) instead of poisoning the whole batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import telemetry
from repro.bvh.nodes import FlatBVH
from repro.geometry.intersect import (
    ray_aabb_intersect_batch,
    ray_triangle_intersect_batch,
)
from repro.geometry.ray import Ray, RayBatch
from repro.trace.counters import TraversalStats

#: Engine identifiers accepted by the batch entry points.
ENGINES: Tuple[str, ...] = ("wavefront", "scalar")

#: A frontier: parallel ``(nodes, ray_ids)`` entry arrays, one entry per
#: (node, active ray) pair, processed level by level.
Frontier = Tuple[np.ndarray, np.ndarray]

#: Sentinel for ``np.minimum.at`` triangle reductions (no triangle hit).
_NO_TRI = np.iinfo(np.int64).max


def resolve_engine(engine: str) -> str:
    """Validate an engine name, returning it unchanged.

    Raises:
        ValueError: if ``engine`` is not one of :data:`ENGINES`.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown traversal engine {engine!r}; expected one of {ENGINES}")
    return engine


def as_ray_batch(rays: Union[RayBatch, Iterable[Ray]]) -> RayBatch:
    """Coerce an iterable of :class:`Ray` into a :class:`RayBatch`.

    A :class:`RayBatch` passes through untouched - the wavefront engine
    consumes its arrays directly, never materializing per-ray objects.
    """
    if isinstance(rays, RayBatch):
        return rays
    ray_list = list(rays)
    if not ray_list:
        return RayBatch(np.zeros((0, 3)), np.zeros((0, 3)))
    origins = np.array([r.origin for r in ray_list], dtype=np.float64)
    directions = np.array([r.direction for r in ray_list], dtype=np.float64)
    t_min = np.array([r.t_min for r in ray_list], dtype=np.float64)
    t_max = np.array([r.t_max for r in ray_list], dtype=np.float64)
    return RayBatch(origins, directions, t_min, t_max)


@dataclass
class PerRayCounters:
    """Per-ray traversal traffic, attributable ray by ray.

    The wavefront engine amortizes node *work*, but each ray active at a
    node still accounts for one simulated node fetch - the same
    memory-access denomination the paper's figures use - so per-ray
    attribution survives batching.  :mod:`repro.core.simulate` consumes
    these to fill :class:`~repro.core.simulate.PredictionOutcome`.
    """

    node_fetches: np.ndarray
    tri_fetches: np.ndarray
    box_tests: np.ndarray

    @classmethod
    def zeros(cls, n: int) -> "PerRayCounters":
        return cls(
            node_fetches=np.zeros(n, dtype=np.int64),
            tri_fetches=np.zeros(n, dtype=np.int64),
            box_tests=np.zeros(n, dtype=np.int64),
        )


def _inv_directions(directions: np.ndarray) -> np.ndarray:
    """Reciprocal directions; zero components become signed infinities.

    Matches the scalar :meth:`Ray.inv_direction` convention: IEEE
    division of 1.0 by a (signed) zero yields the correspondingly signed
    infinity, which makes the slab test degenerate cleanly.
    """
    with np.errstate(divide="ignore"):
        return 1.0 / directions


def _checked_frontier(
    start_nodes: Sequence[int], num_nodes: int, ids: np.ndarray
) -> Frontier:
    """Batch-wide start nodes -> frontier, with the speculation guard.

    Delegates validation to the scalar engine's checked-entry helper so
    both engines raise the identical structured
    :class:`~repro.errors.TraversalError` on a corrupt index.
    """
    from repro.trace.traversal import _checked_start_nodes

    checked = np.asarray(
        list(_checked_start_nodes(start_nodes, num_nodes)), dtype=np.int64
    )
    nodes = np.repeat(checked, ids.size)
    rids = np.tile(ids, checked.size)
    return nodes, rids


def _leaf_pairs(
    lnodes: np.ndarray,
    lrids: np.ndarray,
    first_tri: np.ndarray,
    tri_count: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Expand leaf entries into flat (ray, triangle) test pairs.

    Each leaf entry ``(node, ray)`` becomes ``tri_count[node]`` pairs
    covering the leaf's triangle range, so one gathered kernel call can
    test every pair at a level at once.
    """
    counts = tri_count[lnodes].astype(np.int64, copy=False)
    pair_rids = np.repeat(lrids, counts)
    base = np.repeat(first_tri[lnodes].astype(np.int64, copy=False), counts)
    # Within-leaf offsets 0..count-1 for each entry, fully vectorized.
    ends = np.cumsum(counts)
    within = np.arange(int(ends[-1]) if counts.size else 0, dtype=np.int64)
    within -= np.repeat(ends - counts, counts)
    return pair_rids, base + within


def _any_hit_pass(
    bvh: FlatBVH,
    rays: RayBatch,
    frontier: Frontier,
    hit_tri: np.ndarray,
    counters: PerRayCounters,
) -> int:
    """Run one any-hit wavefront to completion, retiring rays on first hit.

    ``frontier`` seeds the pass; ``hit_tri`` (-1 = no hit yet) and the
    per-ray ``counters`` are updated in place.  Each level runs one
    gathered triangle kernel over every (leaf-ray, triangle) pair and
    one gathered slab kernel over every interior entry.  Rays whose
    ``hit_tri`` turns non-negative are retired: their remaining entries
    are dropped before the next level expands, the wavefront analog of
    the scalar engine's early-return.  When several triangles occlude a
    ray at the same level, the lowest triangle index is recorded
    (deterministic; any-hit callers only rely on *some* in-range hit).

    Returns:
        The number of levels (vectorized iterations) the pass ran.
    """
    origins = rays.origins
    directions = rays.directions
    inv_d = _inv_directions(directions)
    t_min = rays.t_min
    t_max = rays.t_max
    lo, hi = bvh.lo, bvh.hi
    left, right = bvh.left, bvh.right
    first_tri, tri_count = bvh.first_tri, bvh.tri_count
    v0, v1, v2 = bvh.mesh.v0, bvh.mesh.v1, bvh.mesh.v2
    n = len(rays)

    levels = 0
    nodes, rids = frontier
    while nodes.size:
        levels += 1
        alive = hit_tri[rids] < 0
        if not alive.all():
            nodes, rids = nodes[alive], rids[alive]
            if nodes.size == 0:
                break
        is_leaf = left[nodes] < 0

        if is_leaf.any():
            pair_rids, pair_tris = _leaf_pairs(
                nodes[is_leaf], rids[is_leaf], first_tri, tri_count
            )
            # A ray can reach several leaves per level: unbuffered add.
            np.add.at(counters.tri_fetches, pair_rids, 1)
            t = ray_triangle_intersect_batch(
                origins[pair_rids], directions[pair_rids],
                t_min[pair_rids], t_max[pair_rids],
                v0[pair_tris], v1[pair_tris], v2[pair_tris],
            )
            hit = np.isfinite(t)
            if hit.any():
                cand = np.full(n, _NO_TRI, dtype=np.int64)
                np.minimum.at(cand, pair_rids[hit], pair_tris[hit])
                newly = cand != _NO_TRI
                hit_tri[newly] = cand[newly]

        inodes, irids = nodes[~is_leaf], rids[~is_leaf]
        if inodes.size == 0:
            break
        still = hit_tri[irids] < 0
        inodes, irids = inodes[still], irids[still]
        if inodes.size == 0:
            break
        np.add.at(counters.node_fetches, irids, 1)
        np.add.at(counters.box_tests, irids, 2)
        lchild = left[inodes].astype(np.int64, copy=False)
        rchild = right[inodes].astype(np.int64, copy=False)
        o = origins[irids]
        inv = inv_d[irids]
        tn = t_min[irids]
        tx = t_max[irids]
        hit_l = ray_aabb_intersect_batch(o, inv, tn, tx, lo[lchild], hi[lchild])
        hit_r = ray_aabb_intersect_batch(o, inv, tn, tx, lo[rchild], hi[rchild])
        nodes = np.concatenate([lchild[hit_l], rchild[hit_r]])
        rids = np.concatenate([irids[hit_l], irids[hit_r]])
    return levels


def _root_frontier(
    bvh: FlatBVH, rays: RayBatch, counters: PerRayCounters, t_max: np.ndarray
) -> Frontier:
    """Box-test every ray against the root (scalar pre-descent test)."""
    n = len(rays)
    empty = np.zeros(0, dtype=np.int64)
    if n == 0:
        return empty, empty
    ids = np.arange(n, dtype=np.int64)
    counters.box_tests[ids] += 1
    mask = ray_aabb_intersect_batch(
        rays.origins, _inv_directions(rays.directions),
        rays.t_min, t_max, bvh.lo[0], bvh.hi[0],
    )
    ids = ids[mask]
    if ids.size == 0:
        return empty, empty
    return np.zeros(ids.size, dtype=np.int64), ids


def _accumulate(
    stats: TraversalStats, counters: PerRayCounters, rays: int, hits: int
) -> None:
    """Fold per-ray counters into an aggregate :class:`TraversalStats`."""
    stats.node_fetches += int(counters.node_fetches.sum())
    stats.tri_fetches += int(counters.tri_fetches.sum())
    stats.box_tests += int(counters.box_tests.sum())
    # Every simulated triangle fetch performs exactly one test (scalar
    # convention), so the two counters advance in lockstep.
    stats.tri_tests += int(counters.tri_fetches.sum())
    stats.rays += rays
    stats.hits += hits


#: Bucket edges for the per-pass level-count histogram (tree depths).
_LEVEL_BUCKETS = (4, 8, 12, 16, 20, 24, 32, 48, 64)


def _publish_counters(
    counters: PerRayCounters, rays: int, stage: str, levels: int,
    hits: int = 0,
) -> None:
    """Record one wavefront pass into the global telemetry registry."""
    if not telemetry.enabled():
        return
    telemetry.inc_counter("trace.rays", rays, engine="wavefront", stage=stage)
    telemetry.inc_counter("trace.hits", hits, engine="wavefront", stage=stage)
    telemetry.inc_counter(
        "trace.node_fetches", int(counters.node_fetches.sum()),
        engine="wavefront", stage=stage,
    )
    telemetry.inc_counter(
        "trace.tri_fetches", int(counters.tri_fetches.sum()),
        engine="wavefront", stage=stage,
    )
    telemetry.inc_counter(
        "trace.box_tests", int(counters.box_tests.sum()),
        engine="wavefront", stage=stage,
    )
    # Simulated triangle fetch == one test (scalar convention).
    telemetry.inc_counter(
        "trace.tri_tests", int(counters.tri_fetches.sum()),
        engine="wavefront", stage=stage,
    )
    telemetry.observe(
        "wavefront.levels", levels, buckets=_LEVEL_BUCKETS, stage=stage
    )


def wavefront_occlusion_tri_batch(
    bvh: FlatBVH,
    rays: Union[RayBatch, Iterable[Ray]],
    stats: Optional[TraversalStats] = None,
    start_nodes: Optional[Sequence[int]] = None,
    per_ray: bool = False,
) -> Union[np.ndarray, Tuple[np.ndarray, PerRayCounters]]:
    """Any-hit occlusion over a whole batch, returning hit triangles.

    The wavefront counterpart of
    :func:`repro.trace.traversal.occlusion_any_hit_tri`.

    Args:
        bvh: the acceleration structure.
        rays: the occlusion rays (a :class:`RayBatch`, or any iterable of
            :class:`Ray` - coerced without per-ray tracing).
        stats: aggregate counters to accumulate into.
        start_nodes: traverse only from these nodes (all rays share the
            list), instead of the root.  Validated by the same
            speculation guard as the scalar engine.
        per_ray: also return the :class:`PerRayCounters`.

    Returns:
        Array of intersected triangle indices (-1 = miss), shape
        ``(n,)``; with ``per_ray=True``, a ``(hit_tri, counters)`` pair.

    Raises:
        TraversalError: if any ``start_nodes`` entry is outside the BVH.
    """
    batch = as_ray_batch(rays)
    n = len(batch)
    counters = PerRayCounters.zeros(n)
    hit_tri = np.full(n, -1, dtype=np.int64)

    if start_nodes is None:
        frontier = _root_frontier(bvh, batch, counters, batch.t_max)
    else:
        frontier = _checked_frontier(
            start_nodes, bvh.num_nodes, np.arange(n, dtype=np.int64)
        )
    with telemetry.span(
        "wavefront.occlusion", rays=n, seeded=start_nodes is not None
    ) as sp:
        levels = _any_hit_pass(bvh, batch, frontier, hit_tri, counters)
        sp.add(levels=levels)
    hits = int((hit_tri >= 0).sum())
    _publish_counters(counters, n, "occlusion", levels, hits)

    if stats is not None:
        _accumulate(stats, counters, n, hits)
    if per_ray:
        return hit_tri, counters
    return hit_tri


def wavefront_occlusion_batch(
    bvh: FlatBVH,
    rays: Union[RayBatch, Iterable[Ray]],
    stats: Optional[TraversalStats] = None,
    start_nodes: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """Any-hit occlusion over a whole batch; boolean hit array."""
    return (
        wavefront_occlusion_tri_batch(bvh, rays, stats=stats, start_nodes=start_nodes)
        >= 0
    )


def wavefront_closest_batch(
    bvh: FlatBVH,
    rays: Union[RayBatch, Iterable[Ray]],
    stats: Optional[TraversalStats] = None,
    per_ray: bool = False,
) -> Union[
    Tuple[np.ndarray, np.ndarray], Tuple[np.ndarray, np.ndarray, PerRayCounters]
]:
    """Closest-hit traversal over a whole batch.

    The per-ray best-so-far ``t`` doubles as the slab-test upper bound,
    so subtrees provably farther than the current best are pruned - the
    same bound the scalar engine tightens, applied level by level.  In
    almost all cases the final ``t`` is bit-identical to the scalar
    engine's; the exception is a ray grazing a node face, where the slab
    entry ``t`` rounds a ULP above the true intersection parameter and
    the best-``t``-bounded box test culls a subtree one traversal order
    visited before tightening and the other after.  Both engines then
    report genuine intersections within a ULP of each other (the
    property suite pins down exactly this contract).  On an exact ``t``
    tie between triangles of one level the lowest triangle index wins;
    across levels the earliest level keeps the slot, so the reported
    triangle can differ from the scalar engine's on a genuine tie
    (the scalar kernel reports the lowest index it visited).

    Returns:
        ``(t, tri)`` arrays (``inf`` / ``-1`` on miss); with
        ``per_ray=True`` the :class:`PerRayCounters` as a third element.
    """
    batch = as_ray_batch(rays)
    n = len(batch)
    counters = PerRayCounters.zeros(n)
    best_t = batch.t_max.copy()
    best_tri = np.full(n, -1, dtype=np.int64)

    origins = batch.origins
    directions = batch.directions
    inv_d = _inv_directions(directions)
    t_min = batch.t_min
    lo, hi = bvh.lo, bvh.hi
    left, right = bvh.left, bvh.right
    first_tri, tri_count = bvh.first_tri, bvh.tri_count
    v0, v1, v2 = bvh.mesh.v0, bvh.mesh.v1, bvh.mesh.v2

    levels = 0
    with telemetry.span("wavefront.closest", rays=n) as sp:
        nodes, rids = _root_frontier(bvh, batch, counters, best_t)
        while nodes.size:
            levels += 1
            is_leaf = left[nodes] < 0

            if is_leaf.any():
                pair_rids, pair_tris = _leaf_pairs(
                    nodes[is_leaf], rids[is_leaf], first_tri, tri_count
                )
                np.add.at(counters.tri_fetches, pair_rids, 1)
                t = ray_triangle_intersect_batch(
                    origins[pair_rids], directions[pair_rids],
                    t_min[pair_rids], best_t[pair_rids],
                    v0[pair_tris], v1[pair_tris], v2[pair_tris],
                )
                # Per-ray minimum over this level's pairs (t is inf on miss).
                cand_t = np.full(n, np.inf)
                np.minimum.at(cand_t, pair_rids, t)
                improved = cand_t < best_t
                if improved.any():
                    at_best = np.isfinite(t) & (t == cand_t[pair_rids])
                    cand_tri = np.full(n, _NO_TRI, dtype=np.int64)
                    np.minimum.at(cand_tri, pair_rids[at_best], pair_tris[at_best])
                    best_t[improved] = cand_t[improved]
                    best_tri[improved] = cand_tri[improved]

            inodes, irids = nodes[~is_leaf], rids[~is_leaf]
            if inodes.size == 0:
                break
            np.add.at(counters.node_fetches, irids, 1)
            np.add.at(counters.box_tests, irids, 2)
            lchild = left[inodes].astype(np.int64, copy=False)
            rchild = right[inodes].astype(np.int64, copy=False)
            o = origins[irids]
            inv = inv_d[irids]
            tn = t_min[irids]
            tx = best_t[irids]
            hit_l = ray_aabb_intersect_batch(o, inv, tn, tx, lo[lchild], hi[lchild])
            hit_r = ray_aabb_intersect_batch(o, inv, tn, tx, lo[rchild], hi[rchild])
            nodes = np.concatenate([lchild[hit_l], rchild[hit_r]])
            rids = np.concatenate([irids[hit_l], irids[hit_r]])
        sp.add(levels=levels)

    hits = best_tri >= 0
    num_hits = int(hits.sum())
    ts = np.where(hits, best_t, np.inf)
    _publish_counters(counters, n, "closest", levels, num_hits)
    if stats is not None:
        _accumulate(stats, counters, n, num_hits)
    if per_ray:
        return ts, best_tri, counters
    return ts, best_tri


def _array_seed_frontier(
    nodes: np.ndarray, counts: np.ndarray, num_nodes: int, n: int
) -> Tuple[Frontier, np.ndarray]:
    """Vectorized seed construction from ``(nodes, counts)`` arrays.

    Applies the same per-ray speculation guard as the sequence form: a
    ray whose *active* slots contain any out-of-range node is flagged
    for guard fallback and contributes no seeds.  Inactive (padding)
    slots are ignored.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    if nodes.shape[0] != n or counts.shape[0] != n:
        raise ValueError(
            f"seed arrays cover {nodes.shape[0]} rays, batch has {n}"
        )
    slots = nodes.shape[1] if nodes.ndim == 2 else 0
    active = np.arange(slots)[None, :] < counts[:, None]
    ok = (nodes >= 0) & (nodes < num_nodes)
    guard_fallback = (active & ~ok).any(axis=1)
    use = active & ok & ~guard_fallback[:, None]
    seed_rids, _ = np.nonzero(use)
    return (nodes[use], seed_rids.astype(np.int64)), guard_fallback


def wavefront_verify_batch(
    bvh: FlatBVH,
    rays: RayBatch,
    start_nodes_per_ray: Union[
        Sequence[Optional[Sequence[int]]], Tuple[np.ndarray, np.ndarray]
    ],
    stats: Optional[TraversalStats] = None,
) -> Tuple[np.ndarray, PerRayCounters, np.ndarray]:
    """Batched predictor verification with per-ray entry points.

    Each ray traverses only the subtree(s) named by its own
    ``start_nodes_per_ray`` entry (``None`` or empty = not predicted, the
    ray does not traverse at all).  This is the wavefront form of the
    verification step in :mod:`repro.core.simulate`: rays predicted to
    the *same* node share one active list, so a popular predicted node is
    fetched once per window instead of once per ray.

    ``start_nodes_per_ray`` is either a per-ray sequence of node lists,
    or - the fully vectorized form produced by
    :meth:`~repro.core.predictor.RayPredictor.predict_batch` - a
    ``(nodes, counts)`` pair of arrays where ``nodes`` is ``(n, slots)``
    int64 (left-packed, ``-1`` padded) and ``counts`` the number of
    active slots per ray (0 = not predicted).  Both forms apply the
    identical per-ray speculation guard.

    Speculation guard (degraded fallback): a ray whose entry list
    contains an out-of-range node index - a corrupted table entry driven
    past the predictor's own range check - is flagged in the returned
    ``guard_fallback`` mask and skipped, never traversed.  The caller
    treats it exactly like a failed verification (full traversal from the
    root), so corruption costs cycles, not correctness.  This mirrors the
    scalar path, where the per-ray :class:`~repro.errors.TraversalError`
    is caught ray by ray.

    Returns:
        ``(hit_tri, counters, guard_fallback)``: intersected triangle per
        ray (-1 = verification failed or not attempted), per-ray traffic,
        and the guard mask.
    """
    n = len(rays)
    if (
        isinstance(start_nodes_per_ray, tuple)
        and len(start_nodes_per_ray) == 2
        and isinstance(start_nodes_per_ray[0], np.ndarray)
    ):
        frontier, guard_fallback = _array_seed_frontier(
            start_nodes_per_ray[0], start_nodes_per_ray[1], bvh.num_nodes, n
        )
        counters = PerRayCounters.zeros(n)
        hit_tri = np.full(n, -1, dtype=np.int64)
        seed_rids_size = int(frontier[1].size)
    else:
        if len(start_nodes_per_ray) != n:
            raise ValueError(
                f"start_nodes_per_ray has {len(start_nodes_per_ray)} entries "
                f"for {n} rays"
            )
        counters = PerRayCounters.zeros(n)
        hit_tri = np.full(n, -1, dtype=np.int64)
        guard_fallback = np.zeros(n, dtype=bool)

        num_nodes = bvh.num_nodes
        seed_nodes: List[int] = []
        seed_rids: List[int] = []
        for i, nodes in enumerate(start_nodes_per_ray):
            if not nodes:
                continue
            entry: List[int] = []
            ok = True
            for raw in nodes:
                node = int(raw)
                if 0 <= node < num_nodes:
                    entry.append(node)
                else:
                    ok = False
                    break
            if not ok:
                guard_fallback[i] = True
                continue
            seed_nodes.extend(entry)
            seed_rids.extend([i] * len(entry))

        frontier = (
            np.asarray(seed_nodes, dtype=np.int64),
            np.asarray(seed_rids, dtype=np.int64),
        )
        seed_rids_size = len(seed_rids)
    with telemetry.span(
        "wavefront.verify", rays=n, seeded=seed_rids_size,
        guarded=int(guard_fallback.sum()),
    ) as sp:
        levels = _any_hit_pass(bvh, rays, frontier, hit_tri, counters)
        sp.add(levels=levels)
    hits = int((hit_tri >= 0).sum())
    _publish_counters(counters, n, "verify", levels, hits)

    if stats is not None:
        _accumulate(stats, counters, n, hits)
    return hit_tri, counters, guard_fallback
