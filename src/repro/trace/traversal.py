"""While-while BVH traversal kernels (Algorithm 1 of the paper).

All kernels share the same conventions:

* an interior-node visit fetches one 64-byte node record (the record
  holds both children's boxes, Aila-Laine layout) and performs two
  ray-box tests;
* a leaf visit fetches one triangle record per triangle tested;
* occlusion rays terminate on the first intersection in ``[t_min, t_max]``;
* children are visited near-to-far (the stack receives the farther
  child first).

The scalar hot loops run on :class:`repro.bvh.nodes.HotBVH` plain lists;
per-call numpy overhead would otherwise dominate simulation time.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro import telemetry
from repro.bvh.nodes import FlatBVH
from repro.errors import TraversalError
from repro.geometry.intersect import ray_aabb_intersect, ray_triangle_intersect
from repro.geometry.ray import Ray
from repro.geometry.ray import RayBatch
from repro.trace.counters import TraversalStats


def _checked_start_nodes(start_nodes: Sequence[int], num_nodes: int) -> List[int]:
    """Validate speculative entry points before traversal indexes them.

    The predictor's verification traversal starts at table-provided node
    indices; a corrupted entry must surface as a structured
    :class:`~repro.errors.TraversalError` here, never as a raw
    ``IndexError`` (or, worse, a silently wrong negative index) inside
    the hot loop.
    """
    checked: List[int] = []
    bad: List[int] = []
    for raw in start_nodes:
        node = int(raw)
        if 0 <= node < num_nodes:
            checked.append(node)
        else:
            bad.append(node)
    if bad:
        raise TraversalError(
            f"start node(s) {bad} outside BVH [0, {num_nodes})",
            bad_nodes=bad,
            num_nodes=num_nodes,
        )
    return checked


def occlusion_any_hit(
    bvh: FlatBVH,
    ray: Ray,
    stats: Optional[TraversalStats] = None,
    record_trace: bool = False,
    start_nodes: Optional[Sequence[int]] = None,
) -> bool:
    """Any-hit occlusion traversal (Algorithm 1).

    Args:
        bvh: the acceleration structure.
        ray: the occlusion ray.
        stats: counters to accumulate into (created if omitted but then
            discarded; pass one to observe counts).
        record_trace: log every memory access into ``stats.trace``.
        start_nodes: traverse only from these nodes instead of the root
            (used to verify predictor predictions).  ``None`` means a
            normal full traversal from the root.

    Returns:
        True if the ray intersects any triangle within its interval.

    Raises:
        TraversalError: if any ``start_nodes`` entry is outside the BVH
            (the speculation boundary guard; a full traversal never
            raises).
    """
    return (
        occlusion_any_hit_tri(
            bvh, ray, stats=stats, record_trace=record_trace, start_nodes=start_nodes
        )
        >= 0
    )


def occlusion_any_hit_tri(
    bvh: FlatBVH,
    ray: Ray,
    stats: Optional[TraversalStats] = None,
    record_trace: bool = False,
    start_nodes: Optional[Sequence[int]] = None,
) -> int:
    """Any-hit occlusion traversal returning the intersected triangle.

    Identical to :func:`occlusion_any_hit` but returns the (reordered)
    index of the first intersected triangle, or ``-1`` on a miss.  The
    predictor trains on the *leaf containing this triangle* (its Go Up
    Level ancestor, precisely), so the index matters.
    """
    if stats is None:
        stats = TraversalStats()
    hot = bvh.hot()
    ox, oy, oz = ray.origin
    dx, dy, dz = ray.direction
    ix, iy, iz = ray.inv_direction()
    t_min = ray.t_min
    t_max = ray.t_max

    lo_x, lo_y, lo_z = hot.lo_x, hot.lo_y, hot.lo_z
    hi_x, hi_y, hi_z = hot.hi_x, hot.hi_y, hot.hi_z
    left, right = hot.left, hot.right
    first_tri, tri_count = hot.first_tri, hot.tri_count
    tv0, tv1, tv2 = hot.tri_v0, hot.tri_v1, hot.tri_v2
    trace = stats.trace if record_trace else None

    stats.rays += 1
    if start_nodes is None:
        # A full traversal still box-tests the root before descending.
        stats.box_tests += 1
        hit_root, _ = ray_aabb_intersect(
            ox, oy, oz, ix, iy, iz, t_min, t_max,
            lo_x[0], lo_y[0], lo_z[0], hi_x[0], hi_y[0], hi_z[0],
        )
        stack: List[int] = [0] if hit_root else []
    else:
        stack = _checked_start_nodes(start_nodes, len(left))

    while stack:
        node = stack.pop()
        child = left[node]
        if child < 0:
            # Leaf: test triangles until the first hit.
            start = first_tri[node]
            for tri in range(start, start + tri_count[node]):
                stats.tri_fetches += 1
                stats.tri_tests += 1
                if trace is not None:
                    trace.append(("tri", tri))
                t = ray_triangle_intersect(
                    ox, oy, oz, dx, dy, dz, t_min, t_max, tv0[tri], tv1[tri], tv2[tri]
                )
                if t is not None:
                    stats.hits += 1
                    return tri
            continue

        # Interior: one node fetch yields both children's boxes.
        stats.node_fetches += 1
        if trace is not None:
            trace.append(("node", node))
        other = right[node]
        stats.box_tests += 2
        hit_l, t_l = ray_aabb_intersect(
            ox, oy, oz, ix, iy, iz, t_min, t_max,
            lo_x[child], lo_y[child], lo_z[child],
            hi_x[child], hi_y[child], hi_z[child],
        )
        hit_r, t_r = ray_aabb_intersect(
            ox, oy, oz, ix, iy, iz, t_min, t_max,
            lo_x[other], lo_y[other], lo_z[other],
            hi_x[other], hi_y[other], hi_z[other],
        )
        if hit_l and hit_r:
            # Visit the nearer child first: push the farther one below it.
            if t_l <= t_r:
                stack.append(other)
                stack.append(child)
            else:
                stack.append(child)
                stack.append(other)
        elif hit_l:
            stack.append(child)
        elif hit_r:
            stack.append(other)
    return -1


def occlusion_from_nodes(
    bvh: FlatBVH,
    ray: Ray,
    start_nodes: Sequence[int],
    stats: Optional[TraversalStats] = None,
    record_trace: bool = False,
) -> bool:
    """Verify a prediction: traverse only the subtrees under ``start_nodes``.

    Mirrors the predictor's verification step (Section 3): the ray tests
    the predicted subtree(s) with full-precision intersection tests; a
    hit verifies the prediction, a miss means the ray must restart from
    the root (the caller decides that).
    """
    return occlusion_any_hit(
        bvh, ray, stats=stats, record_trace=record_trace, start_nodes=start_nodes
    )


def closest_hit(
    bvh: FlatBVH,
    ray: Ray,
    stats: Optional[TraversalStats] = None,
    record_trace: bool = False,
) -> Tuple[float, int]:
    """Closest-hit traversal.

    Returns:
        ``(t, tri_index)`` of the nearest intersection, or
        ``(inf, -1)`` on a miss.  ``tri_index`` refers to the reordered
        mesh stored in the BVH.
    """
    if stats is None:
        stats = TraversalStats()
    hot = bvh.hot()
    ox, oy, oz = ray.origin
    dx, dy, dz = ray.direction
    ix, iy, iz = ray.inv_direction()
    t_min = ray.t_min
    best_t = ray.t_max
    best_tri = -1

    lo_x, lo_y, lo_z = hot.lo_x, hot.lo_y, hot.lo_z
    hi_x, hi_y, hi_z = hot.hi_x, hot.hi_y, hot.hi_z
    left, right = hot.left, hot.right
    first_tri, tri_count = hot.first_tri, hot.tri_count
    tv0, tv1, tv2 = hot.tri_v0, hot.tri_v1, hot.tri_v2
    trace = stats.trace if record_trace else None

    stats.rays += 1
    stats.box_tests += 1
    hit_root, _ = ray_aabb_intersect(
        ox, oy, oz, ix, iy, iz, t_min, best_t,
        lo_x[0], lo_y[0], lo_z[0], hi_x[0], hi_y[0], hi_z[0],
    )
    stack: List[int] = [0] if hit_root else []

    while stack:
        node = stack.pop()
        child = left[node]
        if child < 0:
            start = first_tri[node]
            for tri in range(start, start + tri_count[node]):
                stats.tri_fetches += 1
                stats.tri_tests += 1
                if trace is not None:
                    trace.append(("tri", tri))
                t = ray_triangle_intersect(
                    ox, oy, oz, dx, dy, dz, t_min, best_t, tv0[tri], tv1[tri], tv2[tri]
                )
                # On an exact t tie the lowest triangle index wins — the
                # same convention as the wavefront engine, so the reported
                # triangle is traversal-order independent.
                if t is not None and (t < best_t or (t == best_t and tri < best_tri)):
                    best_t = t
                    best_tri = tri
            continue

        stats.node_fetches += 1
        if trace is not None:
            trace.append(("node", node))
        other = right[node]
        stats.box_tests += 2
        hit_l, t_l = ray_aabb_intersect(
            ox, oy, oz, ix, iy, iz, t_min, best_t,
            lo_x[child], lo_y[child], lo_z[child],
            hi_x[child], hi_y[child], hi_z[child],
        )
        hit_r, t_r = ray_aabb_intersect(
            ox, oy, oz, ix, iy, iz, t_min, best_t,
            lo_x[other], lo_y[other], lo_z[other],
            hi_x[other], hi_y[other], hi_z[other],
        )
        if hit_l and hit_r:
            if t_l <= t_r:
                stack.append(other)
                stack.append(child)
            else:
                stack.append(child)
                stack.append(other)
        elif hit_l:
            stack.append(child)
        elif hit_r:
            stack.append(other)

    if best_tri >= 0:
        stats.hits += 1
        return best_t, best_tri
    return float("inf"), -1


def occlusion_all_hit_leaves(bvh: FlatBVH, ray: Ray) -> Set[int]:
    """All leaf nodes holding a triangle the ray intersects in-range.

    Oracle studies (Figure 2) need the complete set of satisfiable
    predictions for a ray: a predicted node verifies iff its subtree
    contains one of these leaves.  No statistics are collected; oracles
    are cost-free by definition.
    """
    hot = bvh.hot()
    ox, oy, oz = ray.origin
    dx, dy, dz = ray.direction
    ix, iy, iz = ray.inv_direction()
    t_min = ray.t_min
    t_max = ray.t_max

    lo_x, lo_y, lo_z = hot.lo_x, hot.lo_y, hot.lo_z
    hi_x, hi_y, hi_z = hot.hi_x, hot.hi_y, hot.hi_z
    left, right = hot.left, hot.right
    first_tri, tri_count = hot.first_tri, hot.tri_count
    tv0, tv1, tv2 = hot.tri_v0, hot.tri_v1, hot.tri_v2

    leaves: Set[int] = set()
    hit_root, _ = ray_aabb_intersect(
        ox, oy, oz, ix, iy, iz, t_min, t_max,
        lo_x[0], lo_y[0], lo_z[0], hi_x[0], hi_y[0], hi_z[0],
    )
    stack: List[int] = [0] if hit_root else []
    while stack:
        node = stack.pop()
        child = left[node]
        if child < 0:
            start = first_tri[node]
            for tri in range(start, start + tri_count[node]):
                t = ray_triangle_intersect(
                    ox, oy, oz, dx, dy, dz, t_min, t_max, tv0[tri], tv1[tri], tv2[tri]
                )
                if t is not None:
                    leaves.add(node)
                    break
            continue
        other = right[node]
        hit_l, _ = ray_aabb_intersect(
            ox, oy, oz, ix, iy, iz, t_min, t_max,
            lo_x[child], lo_y[child], lo_z[child],
            hi_x[child], hi_y[child], hi_z[child],
        )
        hit_r, _ = ray_aabb_intersect(
            ox, oy, oz, ix, iy, iz, t_min, t_max,
            lo_x[other], lo_y[other], lo_z[other],
            hi_x[other], hi_y[other], hi_z[other],
        )
        if hit_l:
            stack.append(child)
        if hit_r:
            stack.append(other)
    return leaves


#: Engine used by the batch entry points when none is requested.  The
#: wavefront engine is bit-identical on hit results (see
#: :mod:`repro.trace.wavefront`) and an order of magnitude faster, so it
#: is the default; pass ``engine="scalar"`` to force the reference loop.
DEFAULT_ENGINE = "wavefront"


def _materialize_rays(rays: RayBatch | Iterable[Ray]) -> Sequence[Ray] | RayBatch:
    """A sized, indexable view of ``rays`` for the scalar per-ray loop."""
    if isinstance(rays, (RayBatch, list, tuple)):
        return rays
    return list(rays)


def trace_occlusion_batch(
    bvh: FlatBVH,
    rays: RayBatch | Iterable[Ray],
    stats: Optional[TraversalStats] = None,
    engine: str = DEFAULT_ENGINE,
) -> np.ndarray:
    """Trace a batch of occlusion rays; returns a boolean hit array.

    Args:
        bvh: the acceleration structure.
        rays: a :class:`RayBatch` (consumed directly, without
            materializing per-ray :class:`Ray` objects, when the
            wavefront engine is selected) or any iterable of rays.
        stats: counters to accumulate into.
        engine: ``"wavefront"`` (vectorized, default) or ``"scalar"``
            (the reference per-ray loop).  Hit results are bit-identical.
    """
    from repro.trace.wavefront import resolve_engine, wavefront_occlusion_batch

    if stats is None:
        stats = TraversalStats()
    if resolve_engine(engine) == "wavefront":
        # The wavefront entry point carries its own span + counters.
        return wavefront_occlusion_batch(bvh, rays, stats=stats)
    batch = _materialize_rays(rays)
    hits = np.empty(len(batch), dtype=bool)
    local = TraversalStats()
    with telemetry.span("trace.occlusion", engine="scalar", rays=len(batch)):
        for i, ray in enumerate(batch):
            hits[i] = occlusion_any_hit(bvh, ray, stats=local)
    local.publish(engine="scalar", stage="occlusion")
    stats.merge(local)
    return hits


def trace_closest_batch(
    bvh: FlatBVH,
    rays: RayBatch | Iterable[Ray],
    stats: Optional[TraversalStats] = None,
    engine: str = DEFAULT_ENGINE,
) -> Tuple[np.ndarray, np.ndarray]:
    """Trace a batch of closest-hit rays.

    Args:
        engine: ``"wavefront"`` (vectorized, default) or ``"scalar"``.

    Returns:
        ``(t, tri)`` arrays; ``t`` is ``inf`` and ``tri`` is ``-1`` on miss.
    """
    from repro.trace.wavefront import resolve_engine, wavefront_closest_batch

    if stats is None:
        stats = TraversalStats()
    if resolve_engine(engine) == "wavefront":
        # The wavefront entry point carries its own span + counters.
        return wavefront_closest_batch(bvh, rays, stats=stats)
    batch = _materialize_rays(rays)
    ts = np.empty(len(batch), dtype=np.float64)
    tris = np.empty(len(batch), dtype=np.int64)
    local = TraversalStats()
    with telemetry.span("trace.closest", engine="scalar", rays=len(batch)):
        for i, ray in enumerate(batch):
            ts[i], tris[i] = closest_hit(bvh, ray, stats=local)
    local.publish(engine="scalar", stage="closest")
    stats.merge(local)
    return ts, tris
