"""Procedural mesh primitives.

Building blocks for the seven stand-in benchmark scenes: tessellated
quads, boxes, UV spheres, cylinders (columns), and heightfields.  All
functions return a :class:`TriangleMesh`; scenes concatenate them.
"""

from __future__ import annotations

import math
from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.geometry.triangle import TriangleMesh

Vec3 = Tuple[float, float, float]


def quad(
    p0: Sequence[float],
    p1: Sequence[float],
    p2: Sequence[float],
    p3: Sequence[float],
    subdiv: int = 1,
) -> TriangleMesh:
    """Tessellated quad with corners ``p0..p3`` in order (2*subdiv^2 tris).

    The quad is bilinear: interior vertices are interpolated, so slightly
    non-planar corner sets produce curved patches (used for draperies).
    """
    if subdiv < 1:
        raise ValueError("subdiv must be >= 1")
    p0 = np.asarray(p0, dtype=np.float64)
    p1 = np.asarray(p1, dtype=np.float64)
    p2 = np.asarray(p2, dtype=np.float64)
    p3 = np.asarray(p3, dtype=np.float64)

    us = np.linspace(0.0, 1.0, subdiv + 1)
    vs = np.linspace(0.0, 1.0, subdiv + 1)
    grid = np.empty((subdiv + 1, subdiv + 1, 3))
    for i, u in enumerate(us):
        bottom = p0 * (1 - u) + p1 * u
        top = p3 * (1 - u) + p2 * u
        for j, v in enumerate(vs):
            grid[i, j] = bottom * (1 - v) + top * v

    v0: List[np.ndarray] = []
    v1: List[np.ndarray] = []
    v2: List[np.ndarray] = []
    for i in range(subdiv):
        for j in range(subdiv):
            a = grid[i, j]
            b = grid[i + 1, j]
            c = grid[i + 1, j + 1]
            d = grid[i, j + 1]
            v0.extend([a, a])
            v1.extend([b, c])
            v2.extend([c, d])
    return TriangleMesh(np.asarray(v0), np.asarray(v1), np.asarray(v2))


def box(lo: Sequence[float], hi: Sequence[float], subdiv: int = 1) -> TriangleMesh:
    """Axis-aligned box with all six faces tessellated ``subdiv`` times."""
    x0, y0, z0 = lo
    x1, y1, z1 = hi
    faces = [
        # bottom (y0) and top (y1)
        ((x0, y0, z0), (x1, y0, z0), (x1, y0, z1), (x0, y0, z1)),
        ((x0, y1, z0), (x0, y1, z1), (x1, y1, z1), (x1, y1, z0)),
        # front (z0) and back (z1)
        ((x0, y0, z0), (x0, y1, z0), (x1, y1, z0), (x1, y0, z0)),
        ((x0, y0, z1), (x1, y0, z1), (x1, y1, z1), (x0, y1, z1)),
        # left (x0) and right (x1)
        ((x0, y0, z0), (x0, y0, z1), (x0, y1, z1), (x0, y1, z0)),
        ((x1, y0, z0), (x1, y1, z0), (x1, y1, z1), (x1, y0, z1)),
    ]
    return TriangleMesh.concatenate([quad(*f, subdiv=subdiv) for f in faces])


def open_room(lo: Sequence[float], hi: Sequence[float], subdiv: int = 2) -> TriangleMesh:
    """Interior of a room: floor, ceiling and four walls facing inward."""
    # Geometrically identical to a box; occlusion rays do not care about
    # winding, so reuse the box tessellation.
    return box(lo, hi, subdiv=subdiv)


def uv_sphere(
    center: Sequence[float], radius: float, lat: int = 8, lon: int = 12
) -> TriangleMesh:
    """UV sphere with ``lat`` latitude bands and ``lon`` longitude segments."""
    if lat < 2 or lon < 3:
        raise ValueError("need lat >= 2 and lon >= 3")
    cx, cy, cz = center
    ring_points = []
    for i in range(lat + 1):
        theta = math.pi * i / lat
        ring = []
        for j in range(lon):
            phi = 2.0 * math.pi * j / lon
            ring.append(
                (
                    cx + radius * math.sin(theta) * math.cos(phi),
                    cy + radius * math.cos(theta),
                    cz + radius * math.sin(theta) * math.sin(phi),
                )
            )
        ring_points.append(ring)

    v0: List[Vec3] = []
    v1: List[Vec3] = []
    v2: List[Vec3] = []
    for i in range(lat):
        for j in range(lon):
            jn = (j + 1) % lon
            a = ring_points[i][j]
            b = ring_points[i + 1][j]
            c = ring_points[i + 1][jn]
            d = ring_points[i][jn]
            if i != 0:
                v0.append(a)
                v1.append(b)
                v2.append(d)
            if i != lat - 1:
                v0.append(b)
                v1.append(c)
                v2.append(d)
    return TriangleMesh(np.asarray(v0), np.asarray(v1), np.asarray(v2))


def cylinder(
    center: Sequence[float],
    radius: float,
    height: float,
    segments: int = 10,
    rings: int = 1,
    capped: bool = True,
) -> TriangleMesh:
    """Vertical cylinder (column) centred at ``center`` (base at center y)."""
    if segments < 3:
        raise ValueError("segments must be >= 3")
    cx, cy, cz = center
    meshes: List[TriangleMesh] = []
    ys = np.linspace(cy, cy + height, rings + 1)
    angles = [2.0 * math.pi * j / segments for j in range(segments)]
    circle = [(math.cos(a), math.sin(a)) for a in angles]

    v0: List[Vec3] = []
    v1: List[Vec3] = []
    v2: List[Vec3] = []
    for r in range(rings):
        y_lo, y_hi = ys[r], ys[r + 1]
        for j in range(segments):
            jn = (j + 1) % segments
            ax, az = circle[j]
            bx, bz = circle[jn]
            a = (cx + radius * ax, y_lo, cz + radius * az)
            b = (cx + radius * bx, y_lo, cz + radius * bz)
            c = (cx + radius * bx, y_hi, cz + radius * bz)
            d = (cx + radius * ax, y_hi, cz + radius * az)
            v0.extend([a, a])
            v1.extend([b, c])
            v2.extend([c, d])
    meshes.append(TriangleMesh(np.asarray(v0), np.asarray(v1), np.asarray(v2)))

    if capped:
        for y in (float(ys[0]), float(ys[-1])):
            cv0: List[Vec3] = []
            cv1: List[Vec3] = []
            cv2: List[Vec3] = []
            for j in range(segments):
                jn = (j + 1) % segments
                ax, az = circle[j]
                bx, bz = circle[jn]
                cv0.append((cx, y, cz))
                cv1.append((cx + radius * ax, y, cz + radius * az))
                cv2.append((cx + radius * bx, y, cz + radius * bz))
            meshes.append(TriangleMesh(np.asarray(cv0), np.asarray(cv1), np.asarray(cv2)))
    return TriangleMesh.concatenate(meshes)


def heightfield(
    x0: float,
    z0: float,
    x1: float,
    z1: float,
    nx: int,
    nz: int,
    height_fn: Callable[[float, float], float],
) -> TriangleMesh:
    """Triangulated heightfield ``y = height_fn(x, z)`` over a grid."""
    xs = np.linspace(x0, x1, nx + 1)
    zs = np.linspace(z0, z1, nz + 1)
    heights = np.asarray([[height_fn(x, z) for z in zs] for x in xs])

    v0: List[Vec3] = []
    v1: List[Vec3] = []
    v2: List[Vec3] = []
    for i in range(nx):
        for j in range(nz):
            a = (xs[i], heights[i, j], zs[j])
            b = (xs[i + 1], heights[i + 1, j], zs[j])
            c = (xs[i + 1], heights[i + 1, j + 1], zs[j + 1])
            d = (xs[i], heights[i, j + 1], zs[j + 1])
            v0.extend([a, a])
            v1.extend([b, c])
            v2.extend([c, d])
    return TriangleMesh(np.asarray(v0), np.asarray(v1), np.asarray(v2))


def voxel_terrain(
    x0: float,
    z0: float,
    x1: float,
    z1: float,
    nx: int,
    nz: int,
    height_fn: Callable[[float, float], float],
    block_height: float = 0.5,
) -> TriangleMesh:
    """Minecraft-style quantized terrain: one box per grid cell.

    Heights are quantized to multiples of ``block_height``, producing the
    stepped silhouettes of the Lost Empire scene.
    """
    xs = np.linspace(x0, x1, nx + 1)
    zs = np.linspace(z0, z1, nz + 1)
    meshes: List[TriangleMesh] = []
    for i in range(nx):
        for j in range(nz):
            cx = 0.5 * (xs[i] + xs[i + 1])
            cz = 0.5 * (zs[j] + zs[j + 1])
            h = max(block_height, round(height_fn(cx, cz) / block_height) * block_height)
            meshes.append(box((xs[i], 0.0, zs[j]), (xs[i + 1], h, zs[j + 1]), subdiv=1))
    return TriangleMesh.concatenate(meshes)


def table(center: Sequence[float], width: float, depth: float, height: float) -> TriangleMesh:
    """Simple four-legged table."""
    cx, cy, cz = center
    top_thickness = 0.06 * height
    leg = 0.08 * min(width, depth)
    parts = [
        box(
            (cx - width / 2, cy + height - top_thickness, cz - depth / 2),
            (cx + width / 2, cy + height, cz + depth / 2),
        )
    ]
    for sx in (-1, 1):
        for sz in (-1, 1):
            lx = cx + sx * (width / 2 - leg)
            lz = cz + sz * (depth / 2 - leg)
            parts.append(box((lx - leg / 2, cy, lz - leg / 2), (lx + leg / 2, cy + height, lz + leg / 2)))
    return TriangleMesh.concatenate(parts)


def chair(center: Sequence[float], size: float, height: float) -> TriangleMesh:
    """Simple chair: seat, four legs, and a back rest."""
    cx, cy, cz = center
    seat_h = 0.45 * height
    leg = 0.1 * size
    parts = [
        box(
            (cx - size / 2, cy + seat_h - 0.05 * height, cz - size / 2),
            (cx + size / 2, cy + seat_h, cz + size / 2),
        ),
        box(
            (cx - size / 2, cy + seat_h, cz + size / 2 - leg),
            (cx + size / 2, cy + height, cz + size / 2),
        ),
    ]
    for sx in (-1, 1):
        for sz in (-1, 1):
            lx = cx + sx * (size / 2 - leg / 2)
            lz = cz + sz * (size / 2 - leg / 2)
            parts.append(
                box((lx - leg / 2, cy, lz - leg / 2), (lx + leg / 2, cy + seat_h, lz + leg / 2))
            )
    return TriangleMesh.concatenate(parts)


def floor_field(
    rng: np.random.Generator,
    region_lo: Sequence[float],
    region_hi: Sequence[float],
    nx: int,
    nz: int,
    height_range: Tuple[float, float] = (0.4, 2.0),
    size_range: Tuple[float, float] = (0.25, 0.7),
    fill: float = 0.85,
) -> TriangleMesh:
    """A jittered grid of floor-standing boxes and columns.

    This is the workhorse that gives stand-in scenes the *short ambient
    occlusion hit distances* of the real benchmark assets: AO rays leaving
    a surface in Sponza or the Bistro almost immediately meet a column,
    plant, chair or counter.  Without nearby occluders, same-hash rays
    disperse before hitting anything and the predictor's verified rate
    collapses; with them, the paper's behaviour reproduces.

    Args:
        rng: seeded generator.
        region_lo, region_hi: the (x, y, z) region; objects stand on
            ``region_lo[1]``.
        nx, nz: grid resolution.
        height_range, size_range: object dimensions.
        fill: probability that a grid cell holds an object.
    """
    x0, y0, z0 = region_lo
    x1, _, z1 = region_hi
    meshes: List[TriangleMesh] = []
    for i in range(nx):
        for j in range(nz):
            if rng.random() > fill:
                continue
            cx = x0 + (i + 0.3 + 0.4 * rng.random()) * (x1 - x0) / nx
            cz = z0 + (j + 0.3 + 0.4 * rng.random()) * (z1 - z0) / nz
            h = height_range[0] + rng.random() * (height_range[1] - height_range[0])
            s = size_range[0] + rng.random() * (size_range[1] - size_range[0])
            roll = rng.random()
            if roll < 0.55:
                meshes.append(box((cx - s / 2, y0, cz - s / 2), (cx + s / 2, y0 + h, cz + s / 2)))
            elif roll < 0.85:
                meshes.append(cylinder((cx, y0, cz), s / 2, h, segments=6))
            else:
                meshes.append(uv_sphere((cx, y0 + s / 2, cz), s / 2, lat=4, lon=6))
    if not meshes:
        return TriangleMesh(np.zeros((0, 3)), np.zeros((0, 3)), np.zeros((0, 3)))
    return TriangleMesh.concatenate(meshes)


def clutter(
    rng: np.random.Generator,
    count: int,
    region_lo: Sequence[float],
    region_hi: Sequence[float],
    size_range: Tuple[float, float] = (0.05, 0.25),
) -> TriangleMesh:
    """Random small boxes and spheres scattered in a region.

    Gives the stand-in scenes the geometric irregularity of real assets so
    BVH traversal (and therefore the predictor) sees realistic variety.
    """
    lo = np.asarray(region_lo, dtype=np.float64)
    hi = np.asarray(region_hi, dtype=np.float64)
    meshes: List[TriangleMesh] = []
    for _ in range(count):
        pos = lo + rng.random(3) * (hi - lo)
        size = size_range[0] + rng.random() * (size_range[1] - size_range[0])
        if rng.random() < 0.5:
            meshes.append(box(pos - size / 2, pos + size / 2))
        else:
            meshes.append(uv_sphere(tuple(pos), size / 2, lat=4, lon=6))
    if not meshes:
        return TriangleMesh(np.zeros((0, 3)), np.zeros((0, 3)), np.zeros((0, 3)))
    return TriangleMesh.concatenate(meshes)
