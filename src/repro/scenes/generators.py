"""Generators for the seven stand-in benchmark scenes.

Each generator mirrors the *character* of the paper's Table 1 scene -
indoor architecture with columns and dense object clutter, a voxel
terrain for Lost Empire - at a triangle budget controlled by ``detail``
(1.0 gives a few thousand triangles, enough that the BVH working set
exceeds a scaled L1 while keeping pure-Python simulation tractable).

A property that matters for reproducing the paper: the real assets are
*dense* - an AO ray leaving a surface usually meets an occluder within a
small fraction of the scene diagonal, so rays with similar hashes hit
similar subtrees.  Every interior scene therefore carries a
:func:`repro.scenes.procedural.floor_field` of floor-standing occluders
in the camera's view, in addition to its identifying architecture.
All scenes are deterministic for a given ``detail``.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.geometry.triangle import TriangleMesh
from repro.scenes import procedural as P
from repro.scenes.scene import CameraSpec, Scene


def _scaled(value: int, detail: float, minimum: int = 1) -> int:
    """Scale an instance/tessellation count by ``detail``."""
    return max(minimum, int(round(value * detail)))


def _subdiv(value: int, detail: float) -> int:
    """Scale a quad subdivision level by ``sqrt(detail)`` (tris ~ subdiv^2)."""
    return max(1, int(round(value * math.sqrt(detail))))


def _grid(value: int, detail: float, minimum: int = 2) -> int:
    """Scale a 2D grid dimension by ``sqrt(detail)`` (cells ~ detail)."""
    return max(minimum, int(round(value * math.sqrt(detail))))


def sibenik(detail: float = 1.0) -> Scene:
    """Cathedral-like hall: nave with colonnades, pew rows, floor clutter."""
    rng = np.random.default_rng(11)
    parts: List[TriangleMesh] = [
        P.open_room((0, 0, 0), (20, 8, 10), subdiv=_subdiv(4, detail))
    ]
    n_cols = _scaled(6, detail, minimum=3)
    for i in range(n_cols):
        x = 2.5 + i * (15.0 / max(1, n_cols - 1))
        for z in (2.0, 8.0):
            parts.append(P.cylinder((x, 0.0, z), 0.4, 6.5, segments=_scaled(8, detail, 6)))
            parts.append(P.uv_sphere((x, 7.0, z), 0.6, lat=4, lon=8))
    # Pew rows fill the nave: the dense near-surface occluders.
    parts.append(
        P.floor_field(
            rng, (2.0, 0.0, 2.8), (18.0, 0.0, 7.2),
            nx=_grid(9, detail), nz=_grid(5, detail),
            height_range=(0.5, 1.4), size_range=(0.35, 0.8),
        )
    )
    parts.append(P.clutter(rng, _scaled(20, detail, 5), (1, 0, 1), (19, 1.6, 9)))
    mesh = TriangleMesh.concatenate(parts)
    return Scene(
        name="Sibenik",
        code="SB",
        mesh=mesh,
        camera=CameraSpec(eye=(1.5, 3.5, 5.0), look_at=(16.0, 0.8, 5.0)),
        description="Procedural stand-in for the Sibenik cathedral interior.",
    )


def crytek_sponza(detail: float = 1.0) -> Scene:
    """Two-story atrium: perimeter colonnades, draperies, plant clutter."""
    rng = np.random.default_rng(22)
    parts: List[TriangleMesh] = [
        P.open_room((0, 0, 0), (24, 12, 12), subdiv=_subdiv(5, detail))
    ]
    n_cols = _scaled(8, detail, minimum=4)
    for y0 in (0.0, 6.0):
        for i in range(n_cols):
            x = 2.0 + i * (20.0 / max(1, n_cols - 1))
            for z in (2.0, 10.0):
                parts.append(
                    P.cylinder((x, y0, z), 0.35, 5.0, segments=_scaled(8, detail, 6))
                )
        parts.append(P.box((1.0, y0 + 5.0, 1.0), (23.0, y0 + 5.4, 3.0)))
        parts.append(P.box((1.0, y0 + 5.0, 9.0), (23.0, y0 + 5.4, 11.0)))
    # Draperies: curved quads hanging into the atrium.
    n_drapes = _scaled(5, detail, minimum=2)
    for i in range(n_drapes):
        x = 3.0 + i * (18.0 / max(1, n_drapes - 1))
        parts.append(
            P.quad(
                (x, 10.5, 3.2), (x + 2.5, 10.5, 3.2), (x + 2.5, 4.0, 4.6), (x, 4.0, 4.6),
                subdiv=_subdiv(4, detail),
            )
        )
    # Plant pots and market clutter across the atrium floor.
    parts.append(
        P.floor_field(
            rng, (2.5, 0.0, 3.0), (21.5, 0.0, 9.0),
            nx=_grid(10, detail), nz=_grid(4, detail),
            height_range=(0.5, 2.2), size_range=(0.3, 0.8),
        )
    )
    parts.append(P.clutter(rng, _scaled(25, detail, 8), (1, 0, 1), (23, 2.0, 11)))
    mesh = TriangleMesh.concatenate(parts)
    return Scene(
        name="Crytek Sponza",
        code="SP",
        mesh=mesh,
        camera=CameraSpec(eye=(2.0, 3.0, 6.0), look_at=(20.0, 0.8, 6.0)),
        description="Procedural stand-in for the Crytek Sponza atrium.",
    )


def lost_empire(detail: float = 1.0) -> Scene:
    """Voxel terrain with stepped towers (Minecraft-style Lost Empire)."""

    def height(x: float, z: float) -> float:
        base = 2.0 + 1.5 * math.sin(0.45 * x) * math.cos(0.38 * z)
        tower = 5.0 * max(0.0, math.sin(0.9 * x) * math.sin(0.8 * z)) ** 3
        return base + tower

    n = _scaled(16, math.sqrt(detail), minimum=8)
    mesh = P.voxel_terrain(0.0, 0.0, 26.0, 26.0, n, n, height, block_height=0.5)
    return Scene(
        name="Lost Empire",
        code="LE",
        mesh=mesh,
        camera=CameraSpec(eye=(2.0, 7.0, 2.0), look_at=(14.0, 2.0, 14.0)),
        description="Procedural voxel terrain stand-in for Lost Empire.",
    )


def living_room(detail: float = 1.0) -> Scene:
    """Furnished living room: sofa, tables, shelving, dense floor objects."""
    rng = np.random.default_rng(44)
    parts: List[TriangleMesh] = [
        P.open_room((0, 0, 0), (10, 4, 8), subdiv=_subdiv(6, detail))
    ]
    # Sofa: seat, back, two arm rests.
    parts.append(P.box((1.0, 0.0, 2.0), (2.2, 0.9, 6.0), subdiv=_subdiv(2, detail)))
    parts.append(P.box((1.0, 0.9, 2.0), (1.4, 1.7, 6.0), subdiv=_subdiv(2, detail)))
    parts.append(P.box((1.0, 0.9, 1.6), (2.2, 1.3, 2.0)))
    parts.append(P.box((1.0, 0.9, 6.0), (2.2, 1.3, 6.4)))
    parts.append(P.table((4.5, 0.0, 4.0), 1.8, 1.0, 0.5))
    for z in (2.5, 5.5):
        parts.append(P.chair((6.5, 0.0, z), 0.8, 1.4))
    # Shelving wall with books.
    n_books = _scaled(30, detail, minimum=8)
    for i in range(n_books):
        y = 0.4 + (i % 4) * 0.8
        z = 0.5 + (i // 4) * (6.5 / max(1, (n_books - 1) // 4 + 1))
        parts.append(P.box((8.6, y, z), (8.9, y + 0.6, z + 0.15)))
    parts.append(P.cylinder((8.0, 0.0, 7.0), 0.08, 1.6, segments=6))
    parts.append(P.uv_sphere((8.0, 1.8, 7.0), 0.35, lat=5, lon=8))
    # Dense floor objects: toys, baskets, ottomans.
    parts.append(
        P.floor_field(
            rng, (2.5, 0.0, 1.0), (8.2, 0.0, 7.0),
            nx=_grid(6, detail), nz=_grid(6, detail),
            height_range=(0.2, 0.9), size_range=(0.2, 0.55), fill=0.7,
        )
    )
    parts.append(P.clutter(rng, _scaled(30, detail, 10), (0.5, 0, 0.5), (9.5, 1.2, 7.5)))
    mesh = TriangleMesh.concatenate(parts)
    return Scene(
        name="Living Room",
        code="LR",
        mesh=mesh,
        camera=CameraSpec(eye=(9.0, 2.4, 1.0), look_at=(3.0, 0.6, 5.5)),
        description="Procedural stand-in for the Living Room scene.",
    )


def fireplace_room(detail: float = 1.0) -> Scene:
    """Room with a fireplace alcove, armchairs, rug and floor clutter."""
    rng = np.random.default_rng(55)
    parts: List[TriangleMesh] = [
        P.open_room((0, 0, 0), (9, 4, 7), subdiv=_subdiv(5, detail))
    ]
    parts.append(P.box((3.4, 0.0, 0.0), (5.6, 4.0, 0.6), subdiv=_subdiv(3, detail)))
    parts.append(P.box((3.8, 0.0, 0.0), (5.2, 1.2, 0.7)))
    parts.append(P.box((3.2, 1.5, 0.0), (5.8, 1.7, 0.9)))
    for x in (2.5, 6.5):
        parts.append(P.chair((x, 0.0, 2.5), 1.0, 1.5))
    parts.append(P.table((4.5, 0.0, 3.2), 1.2, 0.8, 0.45))
    parts.append(
        P.quad((2.5, 0.02, 1.5), (6.5, 0.02, 1.5), (6.5, 0.02, 4.5), (2.5, 0.02, 4.5),
               subdiv=_subdiv(6, detail))
    )
    # Log baskets, stools and hearth tools spread on the floor.
    parts.append(
        P.floor_field(
            rng, (1.0, 0.0, 1.0), (8.0, 0.0, 6.0),
            nx=_grid(6, detail), nz=_grid(5, detail),
            height_range=(0.25, 1.0), size_range=(0.2, 0.6), fill=0.7,
        )
    )
    parts.append(P.clutter(rng, _scaled(20, detail, 6), (0.5, 0, 0.5), (8.5, 1.4, 6.5)))
    mesh = TriangleMesh.concatenate(parts)
    return Scene(
        name="Fireplace Room",
        code="FR",
        mesh=mesh,
        camera=CameraSpec(eye=(7.8, 2.2, 6.2), look_at=(3.5, 0.6, 1.5)),
        description="Procedural stand-in for the Fireplace Room scene.",
    )


def bistro_interior(detail: float = 1.0) -> Scene:
    """Restaurant interior: table/chair grid, bar counter, hanging lamps."""
    rng = np.random.default_rng(66)
    parts: List[TriangleMesh] = [
        P.open_room((0, 0, 0), (16, 5, 12), subdiv=_subdiv(5, detail))
    ]
    nx = _grid(4, detail, minimum=3)
    nz = _grid(3, detail, minimum=2)
    for i in range(nx):
        for j in range(nz):
            cx = 3.0 + i * (10.0 / max(1, nx - 1))
            cz = 2.5 + j * (6.0 / max(1, nz - 1))
            parts.append(P.table((cx, 0.0, cz), 1.2, 1.2, 0.75))
            for dx, dz in ((-1.0, 0.0), (1.0, 0.0), (0.0, -1.0), (0.0, 1.0)):
                parts.append(P.chair((cx + dx, 0.0, cz + dz), 0.5, 1.0))
            parts.append(P.cylinder((cx, 3.8, cz), 0.03, 1.2, segments=4, capped=False))
            parts.append(P.uv_sphere((cx, 3.6, cz), 0.25, lat=4, lon=8))
    parts.append(P.box((0.5, 0.0, 10.0), (12.0, 1.1, 11.2), subdiv=_subdiv(2, detail)))
    n_stools = _scaled(6, detail, minimum=3)
    for i in range(n_stools):
        x = 1.5 + i * (9.5 / max(1, n_stools - 1))
        parts.append(P.cylinder((x, 0.0, 9.3), 0.18, 0.8, segments=8))
    # Crates, plants and service carts between the tables.
    parts.append(
        P.floor_field(
            rng, (1.0, 0.0, 1.0), (15.0, 0.0, 9.0),
            nx=_grid(7, detail), nz=_grid(4, detail),
            height_range=(0.3, 1.2), size_range=(0.25, 0.6), fill=0.6,
        )
    )
    parts.append(P.clutter(rng, _scaled(40, detail, 12), (0.5, 0, 0.5), (15.5, 1.6, 11.5)))
    mesh = TriangleMesh.concatenate(parts)
    return Scene(
        name="Bistro Interior",
        code="BI",
        mesh=mesh,
        camera=CameraSpec(eye=(1.0, 2.4, 1.0), look_at=(11.0, 0.7, 8.0)),
        description="Procedural stand-in for the Amazon Bistro interior.",
    )


def country_kitchen(detail: float = 1.0) -> Scene:
    """Kitchen: wall counters, island, cabinets, dense small-object clutter."""
    rng = np.random.default_rng(77)
    parts: List[TriangleMesh] = [
        P.open_room((0, 0, 0), (12, 4, 9), subdiv=_subdiv(5, detail))
    ]
    parts.append(P.box((0.0, 0.0, 0.0), (12.0, 0.95, 0.7), subdiv=_subdiv(3, detail)))
    parts.append(P.box((0.0, 0.0, 0.7), (0.7, 0.95, 9.0), subdiv=_subdiv(3, detail)))
    n_cabinets = _scaled(6, detail, minimum=3)
    for i in range(n_cabinets):
        x0 = 0.5 + i * (10.5 / n_cabinets)
        parts.append(P.box((x0, 2.2, 0.0), (x0 + 10.5 / n_cabinets - 0.1, 3.2, 0.45)))
    parts.append(P.box((4.5, 0.0, 3.5), (8.0, 1.0, 5.5), subdiv=_subdiv(2, detail)))
    for x in (5.0, 6.2, 7.4):
        parts.append(P.cylinder((x, 0.0, 6.2), 0.18, 0.75, segments=8))
    # Dense counter-top clutter: pots, jars, bowls.
    n_objects = _scaled(40, detail, minimum=10)
    for _ in range(n_objects):
        x = 0.4 + rng.random() * 11.0
        z = 0.15 + rng.random() * 0.4
        r = 0.06 + rng.random() * 0.12
        if rng.random() < 0.5:
            parts.append(P.cylinder((x, 0.95, z), r, 2.5 * r, segments=7))
        else:
            parts.append(P.uv_sphere((x, 0.95 + r, z), r, lat=4, lon=7))
    # Crocks, baskets and stools across the kitchen floor.
    parts.append(
        P.floor_field(
            rng, (1.0, 0.0, 1.2), (11.0, 0.0, 8.2),
            nx=_grid(6, detail), nz=_grid(5, detail),
            height_range=(0.25, 1.0), size_range=(0.2, 0.55), fill=0.7,
        )
    )
    parts.append(P.clutter(rng, _scaled(35, detail, 10), (0.8, 0, 0.8), (11.5, 1.4, 8.5)))
    mesh = TriangleMesh.concatenate(parts)
    return Scene(
        name="Country Kitchen",
        code="CK",
        mesh=mesh,
        camera=CameraSpec(eye=(10.5, 2.4, 8.0), look_at=(3.0, 0.7, 2.0)),
        description="Procedural stand-in for the Country Kitchen scene.",
    )
