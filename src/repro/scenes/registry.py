"""Scene registry: look scenes up by code or name.

``get_scene("SP")`` (or ``"crytek_sponza"``) returns the stand-in scene;
the ``detail`` knob scales triangle counts, so experiments can trade
fidelity for simulation time uniformly across all seven scenes.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.scenes import generators
from repro.scenes.scene import Scene

#: Scene codes in the order the paper's figures list them.
SCENE_CODES: List[str] = ["SB", "SP", "LE", "LR", "FR", "BI", "CK"]

_GENERATORS: Dict[str, Callable[[float], Scene]] = {
    "SB": generators.sibenik,
    "SP": generators.crytek_sponza,
    "LE": generators.lost_empire,
    "LR": generators.living_room,
    "FR": generators.fireplace_room,
    "BI": generators.bistro_interior,
    "CK": generators.country_kitchen,
}

_ALIASES: Dict[str, str] = {
    "sibenik": "SB",
    "crytek_sponza": "SP",
    "sponza": "SP",
    "lost_empire": "LE",
    "living_room": "LR",
    "fireplace_room": "FR",
    "bistro_interior": "BI",
    "bistro": "BI",
    "country_kitchen": "CK",
    "kitchen": "CK",
}


def available_scenes() -> List[str]:
    """Scene codes known to the registry, in paper order."""
    return list(SCENE_CODES)


def get_scene(name: str, detail: float = 1.0) -> Scene:
    """Build the scene identified by code (``"SP"``) or name (``"sponza"``).

    Args:
        name: scene code or alias, case-insensitive.
        detail: triangle-budget multiplier (1.0 = default few-thousand tris).

    Raises:
        KeyError: if the scene is unknown.
    """
    if detail <= 0.0:
        raise ValueError("detail must be positive")
    code = name.upper()
    if code not in _GENERATORS:
        code = _ALIASES.get(name.lower(), "")
    if code not in _GENERATORS:
        raise KeyError(
            f"unknown scene {name!r}; available: {SCENE_CODES} "
            f"or aliases {sorted(_ALIASES)}"
        )
    return _GENERATORS[code](detail)
