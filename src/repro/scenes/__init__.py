"""Benchmark scenes.

The paper evaluates on seven standard graphics scenes (Table 1): Sibenik,
Crytek Sponza, Lost Empire, Living Room, Fireplace Room, Bistro Interior
and Country Kitchen.  Those .obj assets are not redistributable here, so
this package provides deterministic *procedural stand-ins* with matching
character (indoor architectural interiors of varying complexity; a voxel
terrain for Lost Empire) at configurable triangle budgets, plus a Wavefront
OBJ loader so the original models can be dropped in unchanged.
"""

from repro.scenes.obj import ObjParseReport, load_obj, load_obj_with_report, save_obj
from repro.scenes.registry import SCENE_CODES, available_scenes, get_scene
from repro.scenes.scene import CameraSpec, Scene

__all__ = [
    "SCENE_CODES",
    "CameraSpec",
    "Scene",
    "available_scenes",
    "get_scene",
    "ObjParseReport",
    "load_obj",
    "load_obj_with_report",
    "save_obj",
]
