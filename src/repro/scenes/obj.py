"""Minimal Wavefront OBJ reader/writer.

The paper's artifact ships the original seven scenes as .obj files; this
loader lets users drop those assets in and run every experiment against
the real geometry.  Only vertex (``v``) and face (``f``) records are
consumed; faces with more than three vertices are fan-triangulated and
negative (relative) indices are supported per the OBJ specification.
"""

from __future__ import annotations

import os
from typing import List

import numpy as np

from repro.geometry.triangle import TriangleMesh
from repro.scenes.scene import CameraSpec, Scene


def load_obj(path: str | os.PathLike, name: str | None = None) -> Scene:
    """Load a Wavefront OBJ file into a :class:`Scene`.

    The default camera is placed on the bounding-box diagonal looking at
    the scene center, which is serviceable for AO workloads.
    """
    vertices: List[List[float]] = []
    faces: List[List[int]] = []
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            tag = parts[0]
            if tag == "v" and len(parts) >= 4:
                vertices.append([float(parts[1]), float(parts[2]), float(parts[3])])
            elif tag == "f" and len(parts) >= 4:
                indices = [_parse_face_index(tok, len(vertices)) for tok in parts[1:]]
                for i in range(1, len(indices) - 1):
                    faces.append([indices[0], indices[i], indices[i + 1]])

    if not faces:
        raise ValueError(f"OBJ file {path!r} contains no faces")
    mesh = TriangleMesh.from_vertices_faces(
        np.asarray(vertices, dtype=np.float64), np.asarray(faces, dtype=np.int64)
    )
    aabb = mesh.scene_aabb()
    center = aabb.center()
    eye = (
        aabb.hi[0] + 0.25 * (aabb.hi[0] - aabb.lo[0] + 1e-9),
        center[1],
        aabb.hi[2] + 0.25 * (aabb.hi[2] - aabb.lo[2] + 1e-9),
    )
    scene_name = name or os.path.splitext(os.path.basename(str(path)))[0]
    return Scene(
        name=scene_name,
        code=scene_name[:2].upper(),
        mesh=mesh,
        camera=CameraSpec(eye=eye, look_at=center),
        description=f"Loaded from OBJ file {path}",
    )


def save_obj(scene: Scene, path: str | os.PathLike) -> None:
    """Write a scene's triangle soup as an OBJ file (one vertex per corner)."""
    mesh = scene.mesh
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# {scene.name} ({len(mesh)} triangles)\n")
        for i in range(len(mesh)):
            for v in (mesh.v0[i], mesh.v1[i], mesh.v2[i]):
                handle.write(f"v {v[0]:.9g} {v[1]:.9g} {v[2]:.9g}\n")
        for i in range(len(mesh)):
            base = 3 * i
            handle.write(f"f {base + 1} {base + 2} {base + 3}\n")


def _parse_face_index(token: str, num_vertices: int) -> int:
    """Parse one ``f`` token (``v``, ``v/vt``, ``v//vn``, ``v/vt/vn``)."""
    raw = token.split("/")[0]
    index = int(raw)
    if index < 0:
        index = num_vertices + index
    else:
        index -= 1
    if index < 0 or index >= num_vertices:
        raise ValueError(f"face index {token!r} out of range")
    return index
