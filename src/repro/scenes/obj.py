"""Minimal Wavefront OBJ reader/writer.

The paper's artifact ships the original seven scenes as .obj files; this
loader lets users drop those assets in and run every experiment against
the real geometry.  Only vertex (``v``) and face (``f``) records are
consumed; faces with more than three vertices are fan-triangulated and
negative (relative) indices are supported per the OBJ specification.

Robustness: real OBJ exports are messy - non-numeric tokens, truncated
records, dangling face indices.  By default the loader *skips* malformed
``v``/``f`` lines and collects them into an :class:`ObjParseReport`
(see :func:`load_obj_with_report`); ``strict=True`` restores
fail-on-first-error behavior for pipelines that prefer loud inputs.
Either way, a file that yields no usable faces raises
:class:`~repro.errors.SceneLoadError`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.errors import SceneLoadError
from repro.geometry.triangle import TriangleMesh
from repro.scenes.scene import CameraSpec, Scene


@dataclass(frozen=True)
class ObjLineWarning:
    """One skipped malformed line."""

    line_no: int
    line: str
    reason: str


@dataclass
class ObjParseReport:
    """Collected diagnostics from one lenient OBJ parse.

    Attributes:
        path: the file parsed.
        num_vertices / num_faces: records successfully consumed
            (faces counted after fan triangulation).
        warnings: every malformed line skipped, in file order.
    """

    path: str
    num_vertices: int = 0
    num_faces: int = 0
    warnings: List[ObjLineWarning] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no line was skipped."""
        return not self.warnings

    def summary(self) -> str:
        """One-line report; details stay in ``warnings``."""
        base = (
            f"{self.path}: {self.num_vertices} vertices, "
            f"{self.num_faces} triangles"
        )
        if self.ok:
            return base
        head = "; ".join(
            f"line {w.line_no}: {w.reason}" for w in self.warnings[:3]
        )
        more = f" (+{len(self.warnings) - 3} more)" if len(self.warnings) > 3 else ""
        return f"{base}, {len(self.warnings)} malformed lines skipped [{head}{more}]"


def load_obj(path: str | os.PathLike, name: str | None = None, strict: bool = False) -> Scene:
    """Load a Wavefront OBJ file into a :class:`Scene`.

    The default camera is placed on the bounding-box diagonal looking at
    the scene center, which is serviceable for AO workloads.

    Args:
        path: the OBJ file.
        name: scene name (defaults to the file stem).
        strict: raise on the first malformed ``v``/``f`` line instead of
            skipping it.

    Raises:
        SceneLoadError: if no usable faces remain (or, with
            ``strict=True``, on the first malformed line).  Subclasses
            :class:`ValueError` for backward compatibility.
    """
    scene, _ = load_obj_with_report(path, name=name, strict=strict)
    return scene


def load_obj_with_report(
    path: str | os.PathLike, name: str | None = None, strict: bool = False
) -> Tuple[Scene, ObjParseReport]:
    """Like :func:`load_obj`, but also return the parse diagnostics."""
    report = ObjParseReport(path=str(path))
    vertices: List[List[float]] = []
    faces: List[List[int]] = []
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        for line_no, raw_line in enumerate(handle, start=1):
            line = raw_line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            tag = parts[0]
            if tag == "v" and len(parts) >= 4:
                try:
                    vertices.append(
                        [float(parts[1]), float(parts[2]), float(parts[3])]
                    )
                except ValueError:
                    _malformed(report, line_no, line, "non-numeric vertex", strict)
            elif tag == "f" and len(parts) >= 4:
                try:
                    indices = [
                        _parse_face_index(tok, len(vertices)) for tok in parts[1:]
                    ]
                except ValueError as exc:
                    _malformed(report, line_no, line, str(exc), strict)
                    continue
                for i in range(1, len(indices) - 1):
                    faces.append([indices[0], indices[i], indices[i + 1]])
            elif tag in ("v", "f"):
                # Short record: today's strict behavior silently ignores
                # it (the length guard), so only the lenient path warns.
                if not strict:
                    _malformed(
                        report, line_no, line,
                        f"short {tag!r} record ({len(parts) - 1} fields)", strict,
                    )

    report.num_vertices = len(vertices)
    report.num_faces = len(faces)
    if not faces:
        raise SceneLoadError(f"OBJ file {path!r} contains no faces")
    mesh = TriangleMesh.from_vertices_faces(
        np.asarray(vertices, dtype=np.float64), np.asarray(faces, dtype=np.int64)
    )
    aabb = mesh.scene_aabb()
    center = aabb.center()
    eye = (
        aabb.hi[0] + 0.25 * (aabb.hi[0] - aabb.lo[0] + 1e-9),
        center[1],
        aabb.hi[2] + 0.25 * (aabb.hi[2] - aabb.lo[2] + 1e-9),
    )
    scene_name = name or os.path.splitext(os.path.basename(str(path)))[0]
    scene = Scene(
        name=scene_name,
        code=scene_name[:2].upper(),
        mesh=mesh,
        camera=CameraSpec(eye=eye, look_at=center),
        description=f"Loaded from OBJ file {path}",
    )
    return scene, report


def _malformed(
    report: ObjParseReport, line_no: int, line: str, reason: str, strict: bool
) -> None:
    """Record (or, in strict mode, raise on) one malformed line."""
    if strict:
        raise SceneLoadError(f"{report.path}: line {line_no}: {reason}: {line!r}")
    report.warnings.append(ObjLineWarning(line_no=line_no, line=line, reason=reason))


def save_obj(scene: Scene, path: str | os.PathLike) -> None:
    """Write a scene's triangle soup as an OBJ file (one vertex per corner)."""
    mesh = scene.mesh
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# {scene.name} ({len(mesh)} triangles)\n")
        for i in range(len(mesh)):
            for v in (mesh.v0[i], mesh.v1[i], mesh.v2[i]):
                handle.write(f"v {v[0]:.9g} {v[1]:.9g} {v[2]:.9g}\n")
        for i in range(len(mesh)):
            base = 3 * i
            handle.write(f"f {base + 1} {base + 2} {base + 3}\n")


def _parse_face_index(token: str, num_vertices: int) -> int:
    """Parse one ``f`` token (``v``, ``v/vt``, ``v//vn``, ``v/vt/vn``)."""
    raw = token.split("/")[0]
    index = int(raw)
    if index < 0:
        index = num_vertices + index
    else:
        index -= 1
    if index < 0 or index >= num_vertices:
        raise ValueError(f"face index {token!r} out of range")
    return index
