"""Scene container and camera description."""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.aabb import AABB
from repro.geometry.triangle import TriangleMesh
from repro.geometry.vec import Vec3


@dataclass(frozen=True)
class CameraSpec:
    """A pinhole camera pose: where it sits, what it looks at, and its FOV."""

    eye: Vec3
    look_at: Vec3
    up: Vec3 = (0.0, 1.0, 0.0)
    fov_degrees: float = 60.0


@dataclass
class Scene:
    """A named triangle scene with a default camera.

    Attributes:
        name: short human-readable name.
        code: two-letter code used in the paper's figures (e.g. ``"SP"``).
        mesh: the triangle soup.
        camera: default camera used by ray generation and the renderers.
        description: provenance note (procedural stand-in vs. loaded asset).
    """

    name: str
    code: str
    mesh: TriangleMesh
    camera: CameraSpec
    description: str = ""

    @property
    def num_triangles(self) -> int:
        """Number of triangles in the scene."""
        return len(self.mesh)

    def aabb(self) -> AABB:
        """Scene bounding box (the predictor's Grid Hash quantizes to it)."""
        return self.mesh.scene_aabb()
