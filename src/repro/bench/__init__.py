"""Benchmark harness: timed scalar-vs-wavefront runs with JSON artifacts.

The harness is the measured half of the wavefront engine's contract: the
engines are proven bit-identical by the differential tests, and proven
*faster* by :mod:`repro.bench.harness`, which times both engines on
pinned seeds and emits machine-readable ``BENCH_<name>.json`` artifacts.
CI's benchmark-smoke job replays the quick preset and fails the build on
a >20 % regression against the committed baselines (see
``docs/BENCHMARKING.md``).
"""

from repro.bench.harness import (
    ACCEPTED_SCHEMAS,
    BENCH_SCHEMA,
    BUILD_PRESET,
    FULL_PRESET,
    PREDICTOR_PRESET,
    PRESETS,
    QUICK_PRESET,
    TIMING_PRESET,
    BenchPreset,
    BenchRecord,
    compare_payloads,
    load_payload,
    run_benchmarks,
    sweep_fingerprint,
    write_payload,
)

__all__ = [
    "ACCEPTED_SCHEMAS",
    "BENCH_SCHEMA",
    "BUILD_PRESET",
    "FULL_PRESET",
    "PREDICTOR_PRESET",
    "PRESETS",
    "QUICK_PRESET",
    "TIMING_PRESET",
    "BenchPreset",
    "BenchRecord",
    "compare_payloads",
    "load_payload",
    "run_benchmarks",
    "sweep_fingerprint",
    "write_payload",
]
