"""Timed scalar-vs-wavefront benchmarks emitting ``BENCH_<name>.json``.

Three benchmarks run per scene, each once per engine on identical
pinned-seed workloads:

* ``occlusion_trace`` - batch any-hit tracing of the scene's AO rays
  (the paper's headline workload and the wavefront engine's target);
* ``closest_trace``   - batch closest-hit tracing of the same rays;
* ``predictor_sim``   - the functional predictor simulation
  (:func:`repro.core.simulate.simulate_predictor`) over a capped prefix.

The JSON artifact (schema ``repro-bench/6``, documented in
``docs/BENCHMARKING.md``; older ``repro-bench/*`` artifacts are still
read) records wall time, rays/second, and the deterministic traversal
counters, plus derived wavefront-over-scalar speedups and a
``predictor_throughput`` section (per-scene simulation rates, counters,
and engine speedups for the predictor pipeline).  When telemetry
is switched on (``repro --telemetry bench`` or ``REPRO_TELEMETRY=1``)
the artifact gains a ``telemetry`` section: the labeled metrics
snapshot and per-stage span summaries collected during the timed runs
(see ``docs/OBSERVABILITY.md``).  Regression checking intentionally gates on *machine
independent* quantities - the speedup ratios (both engines time on the
same host, so the ratio transfers) and the traversal counters (exact
functions of seed + scene) - because absolute rays/second differs
across CI hosts; absolute numbers are recorded for trend-watching only.

Resilient sweeps: passing :class:`~repro.resilience.ResilienceOptions`
(CLI ``--resume`` / ``--max-retries`` / ``--unit-timeout`` /
``--no-degrade``) runs each scene as a supervised unit with
checkpoint/resume, retry with backoff, and the degradation ladder; the
artifact then gains a ``resilience`` section (attempts, degradations,
checkpoint hits, and the partial-results manifest).  See
``docs/ROBUSTNESS.md``.

Parallel sweeps: ``jobs > 1`` (CLI ``--jobs N``) shards the scene units
across worker processes.  Every unit is a pure function of the pinned
preset, so the payload is byte-identical to a serial run modulo the
timing fields (``wall_time_s`` / ``rays_per_sec``); checkpoints are
written by the parent as workers complete, so ``--jobs`` composes with
``--resume`` after a mid-sweep kill.  With telemetry enabled, each
worker ships its metrics/span snapshot back on the result path and the
parent merges them in scene order (:mod:`repro.telemetry.distributed`),
so the artifact's ``telemetry`` section matches a serial run's.  The opt-in BVH artifact cache
(``--artifact-cache DIR``, :mod:`repro.bvh.cache`) lets those workers -
and repeated sweeps - skip redundant SAH builds; when enabled, its
identity joins the checkpoint fingerprint so cached and uncached runs
can never be mixed by ``--resume``.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import telemetry
from repro.bvh.cache import cached_build_bvh, configure_artifact_cache, get_artifact_cache
from repro.errors import TelemetryAggregationError
from repro.core.simulate import simulate_baseline, simulate_predictor
from repro.faults.injector import UnitFaultPlan
from repro.rays import generate_ao_workload
from repro.resilience import (
    PartialResultsManifest,
    ResilienceOptions,
    RunSupervisor,
    SweepCheckpoint,
    UnitEntry,
)
from repro.scenes import get_scene
from repro.telemetry import distributed
from repro.trace import TraversalStats, trace_closest_batch, trace_occlusion_batch
from repro.trace.wavefront import ENGINES

#: Artifact schema identifier; bump on incompatible layout changes.
#: 2 added the optional ``telemetry`` section; 3 added the optional
#: ``resilience`` section; 4 added the derived ``predictor_throughput``
#: section and the preset's ``benchmarks`` selector; 5 added the
#: ``rt_timing`` benchmark (RT-unit cycle simulation, scalar vs vector
#: engines) with its derived section and timing-preset knobs; 6 added
#: the ``bvh_build``/``bvh_refit`` benchmarks (level-synchronous vector
#: builders vs the scalar oracles) with the derived ``bvh_build``
#: section and build-preset knobs (all additive - older artifacts
#: remain readable, see :data:`ACCEPTED_SCHEMAS`).
BENCH_SCHEMA = "repro-bench/6"

#: Schema tags :func:`load_payload` accepts.  Baselines written before
#: the telemetry/resilience sections existed stay valid.
ACCEPTED_SCHEMAS = (
    "repro-bench/1", "repro-bench/2", "repro-bench/3", "repro-bench/4",
    "repro-bench/5", "repro-bench/6",
)

#: Benchmarks gated by the regression check, in artifact order.
BENCHMARKS = ("occlusion_trace", "closest_trace", "predictor_sim")

#: Allowed relative regression before the check fails (satellite spec: 20%).
DEFAULT_TOLERANCE = 0.20


@dataclass(frozen=True)
class BenchPreset:
    """A pinned benchmark configuration.

    Everything that shapes the workload is recorded here and embedded in
    the artifact, so a baseline is reproducible from its JSON alone.
    """

    name: str
    scenes: Tuple[str, ...]
    width: int
    height: int
    spp: int
    seed: int
    detail: float
    sim_rays: int
    in_flight: int = 32
    repeats: int = 2
    #: Which benchmarks to run (subset of :data:`BENCHMARKS` plus
    #: ``rt_timing``); the predictor preset times only the simulation
    #: pipeline, the timing preset only the RT-unit cycle simulator.
    benchmarks: Tuple[str, ...] = BENCHMARKS
    #: RT-unit shape for ``rt_timing`` runs.  The wide-SIMT defaults
    #: (one 1024-thread warp per SM, iteration barrier) maximize the
    #: per-step thread density the vectorized engine batches over;
    #: cycle counts are machine-independent for any fixed shape.
    timing_warp_size: int = 1024
    timing_max_warps: int = 1
    timing_warp_barrier: bool = True
    timing_num_sms: int = 2
    #: Also run the predictor-enabled configuration (gated on
    #: equivalence and counters; its wall-clock speedup is recorded but
    #: not held to the baseline-config floor - the per-retire predictor
    #: training is inherently scalar in both engines).
    timing_predictor: bool = True
    #: Build methods timed by the ``bvh_build`` benchmark, each once
    #: per build engine (vector frontier builder + scalar oracle).
    build_methods: Tuple[str, ...] = ("sah", "median", "lbvh")
    #: Per-triangle jitter magnitude for the ``bvh_refit`` benchmark's
    #: deformed mesh (same ``seed`` as the workload).
    build_jitter: float = 0.05

    def describe(self) -> str:
        return (
            f"{self.name}: scenes={','.join(self.scenes)} "
            f"{self.width}x{self.height}@{self.spp}spp seed={self.seed} "
            f"detail={self.detail} sim_rays={self.sim_rays}"
        )


#: CI smoke preset: tiny scenes, fixed seeds, well under a minute.
QUICK_PRESET = BenchPreset(
    name="quick",
    scenes=("SB", "SP", "CK"),
    width=16,
    height=16,
    spp=2,
    seed=1,
    detail=0.4,
    sim_rays=256,
)

#: Full preset: all seven scenes at the default AO workload knobs.
FULL_PRESET = BenchPreset(
    name="wavefront",
    scenes=("SB", "SP", "LE", "LR", "FR", "BI", "CK"),
    width=64,
    height=64,
    spp=2,
    seed=1,
    detail=1.0,
    sim_rays=2048,
)

#: Predictor-throughput preset: all seven scenes, simulation only.
#: This seeds the ``BENCH_predictor.json`` trajectory - the committed
#: baseline future PRs regress the vectorized predictor pipeline
#: against (counters and engine speedups, both machine-independent).
PREDICTOR_PRESET = BenchPreset(
    name="predictor",
    scenes=("SB", "SP", "LE", "LR", "FR", "BI", "CK"),
    width=48,
    height=48,
    spp=2,
    seed=1,
    detail=0.7,
    sim_rays=1024,
    benchmarks=("predictor_sim",),
    # Best-of-5: the gated speedup ratio sits near 2-4x since the
    # scalar engine's table probes were optimized, so run-to-run jitter
    # is a larger fraction of the band; extra repeats keep the minimum
    # estimator stable on small CI runners.
    repeats=5,
)

#: RT-unit timing preset: all seven scenes through the discrete-event
#: cycle simulator, once per engine (vector + scalar oracle) per
#: configuration (baseline + predictor).  This seeds the
#: ``BENCH_timing.json`` trajectory: cycles, cache hit rates and DRAM
#: row-buffer hit rates are exact functions of seed + scene + config
#: and gate exactly; the vector-over-scalar wall speedup gates with the
#: usual tolerance floor.
TIMING_PRESET = BenchPreset(
    name="timing",
    scenes=("SB", "SP", "LE", "LR", "FR", "BI", "CK"),
    width=32,
    height=32,
    spp=2,
    seed=1,
    detail=0.6,
    sim_rays=2048,
    benchmarks=("rt_timing",),
)

#: BVH-construction preset: all seven scenes through the level-
#: synchronous vector builders and the scalar oracle builders, once per
#: (method, engine), plus a refit pass per engine on a jittered mesh.
#: This seeds the ``BENCH_build.json`` trajectory: node counts, tree
#: depths and SAH costs are exact functions of scene + build parameters
#: and gate exactly; ``engines_agree`` asserts the vector trees were
#: array-identical to the scalar oracle's in *this* run; the
#: vector-over-scalar build and refit speedups gate against the usual
#: tolerance floor.
BUILD_PRESET = BenchPreset(
    name="build",
    scenes=("SB", "SP", "LE", "LR", "FR", "BI", "CK"),
    width=16,
    height=16,
    spp=1,
    seed=1,
    detail=1.0,
    sim_rays=0,
    benchmarks=("bvh_build",),
    # Builds finish in milliseconds, so run-to-run jitter is a larger
    # fraction of the wall time than for the trace benchmarks; best-of
    # extra repeats keeps the gated speedup ratios stable on CI hosts.
    repeats=3,
)

#: Presets addressable from the CLI (``repro bench --preset NAME``).
PRESETS = {
    "quick": QUICK_PRESET,
    "full": FULL_PRESET,
    "predictor": PREDICTOR_PRESET,
    "timing": TIMING_PRESET,
    "build": BUILD_PRESET,
}


@dataclass
class BenchRecord:
    """One timed run of one benchmark on one scene with one engine."""

    benchmark: str
    scene: str
    engine: str
    rays: int
    wall_time_s: float
    rays_per_sec: float
    node_fetches: int
    tri_fetches: int
    extra: Dict[str, float] = field(default_factory=dict)


def _timed(fn, repeats: int) -> Tuple[float, object]:
    """Best-of-``repeats`` wall time for ``fn()`` (minimum damps noise)."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _trace_record(
    benchmark: str, scene_code: str, engine: str, bvh, rays, repeats: int
) -> BenchRecord:
    stats = TraversalStats()
    if benchmark == "occlusion_trace":
        def run():
            return trace_occlusion_batch(bvh, rays, stats=stats, engine=engine)
    else:
        def run():
            return trace_closest_batch(bvh, rays, stats=stats, engine=engine)
    wall, _ = _timed(run, repeats)
    n = len(rays)
    # Counters accumulated across repeats; report the per-run share.
    runs = max(1, repeats)
    return BenchRecord(
        benchmark=benchmark,
        scene=scene_code,
        engine=engine,
        rays=n,
        wall_time_s=round(wall, 6),
        rays_per_sec=round(n / wall, 1) if wall > 0 else float("inf"),
        node_fetches=stats.node_fetches // runs,
        tri_fetches=stats.tri_fetches // runs,
    )


def _sim_record(
    scene_code: str, engine: str, bvh, rays, preset: BenchPreset,
    predictor_enabled: bool = True,
) -> BenchRecord:
    sub = rays.subset(np.arange(min(preset.sim_rays, len(rays))))

    if predictor_enabled:
        def run():
            return simulate_predictor(
                bvh, sub, in_flight=preset.in_flight, engine=engine
            )
    else:
        # The ``predictor_off`` ladder rung: exact occlusion and
        # traversal traffic from plain full traversal, no table.
        def run():
            return simulate_baseline(bvh, sub, engine=engine)

    # The simulation trains a fresh table per call, so repeats are
    # independent; time a single run per repeat and keep the best.
    wall, result = _timed(run, preset.repeats)
    n = len(sub)
    extra = {
        "verified_rate": round(result.verified_rate, 6),
        "memory_savings": round(result.memory_savings, 6),
        "predicted_rate": round(result.predicted_rate, 6),
        "baseline_node_fetches": float(result.baseline_node_fetches),
    }
    if not predictor_enabled:
        extra["predictor_disabled"] = 1.0
    return BenchRecord(
        benchmark="predictor_sim",
        scene=scene_code,
        engine=engine,
        rays=n,
        wall_time_s=round(wall, 6),
        rays_per_sec=round(n / wall, 1) if wall > 0 else float("inf"),
        node_fetches=result.predictor_node_fetches,
        tri_fetches=result.predictor_tri_fetches,
        extra=extra,
    )


def _timing_config(preset: BenchPreset, predictor: bool):
    """The pinned GPU configuration for ``rt_timing`` runs."""
    from repro.core.predictor import PredictorConfig
    from repro.gpu.config import GPUConfig, RTUnitConfig

    return GPUConfig(
        num_sms=preset.timing_num_sms,
        rt_unit=RTUnitConfig(
            warp_size=preset.timing_warp_size,
            max_warps=preset.timing_max_warps,
            warp_barrier=preset.timing_warp_barrier,
        ),
        predictor=PredictorConfig() if predictor else None,
    )


def _timing_record(
    scene_code: str, engine: str, bvh, rays, preset: BenchPreset,
    predictor_enabled: bool,
) -> BenchRecord:
    """One RT-unit cycle-simulation run (``rt_timing`` benchmark).

    ``engine`` is an RT-unit timing engine (``vector``/``scalar``), not
    a traversal engine.  Cycles, fetch counters and hit rates are exact
    functions of seed + scene + config and identical across engines;
    wall time is what the vectorized engine buys.
    """
    from repro.gpu.simulator import simulate_workload

    sub = rays.subset(np.arange(min(preset.sim_rays, len(rays))))
    config = _timing_config(preset, predictor_enabled)

    def run():
        return simulate_workload(bvh, sub, config, engine=engine)

    wall, out = _timed(run, preset.repeats)
    n = len(sub)
    extra = {
        "cycles": float(out.cycles),
        "l1_hit_rate": round(out.l1_hit_rate, 6),
        "l2_hit_rate": round(out.l2_hit_rate, 6),
        "dram_row_hits": float(out.dram_row_hits),
        "dram_row_hit_rate": round(out.dram_row_hit_rate, 6),
        "hit_rate": round(out.hit_rate, 6),
    }
    if predictor_enabled:
        extra["predicted_rate"] = round(out.predicted_rate, 6)
        extra["verified_rate"] = round(out.verified_rate, 6)
    return BenchRecord(
        benchmark="rt_timing_predictor" if predictor_enabled else "rt_timing",
        scene=scene_code,
        engine=engine,
        rays=n,
        wall_time_s=round(wall, 6),
        rays_per_sec=round(n / wall, 1) if wall > 0 else float("inf"),
        node_fetches=out.node_fetches,
        tri_fetches=out.tri_fetches,
        extra=extra,
    )


def _build_records(
    preset: BenchPreset, code: str, engines: Sequence[str], say, scene
) -> List[BenchRecord]:
    """Timed BVH construction + refit for one scene (``bvh_build``).

    Every method in ``preset.build_methods`` builds once per build
    engine; the vector tree is compared array-for-array against the
    scalar oracle's and the verdict rides in the vector record's extras
    (``agrees_with_scalar``).  A refit pass then times both refit
    engines on a jittered copy of the SAH tree's mesh.  ``rays`` holds
    the triangle count, so ``rays_per_sec`` reads as build throughput
    in triangles/second.
    """
    from repro.bvh.builder import build_bvh
    from repro.bvh.refit import jitter_mesh, refit_bvh
    from repro.bvh.stats import compute_stats
    from repro.bvh.vector import trees_identical

    # Engine pair follows the degradation rung like ``rt_timing``: the
    # full rung times vector against the scalar oracle; degraded rungs
    # keep scalar only, dropping the speedup but keeping the tree stats.
    build_engines = (
        ("vector", "scalar") if "wavefront" in engines else ("scalar",)
    )
    n = len(scene.mesh)
    records: List[BenchRecord] = []
    refit_base = None
    for method in preset.build_methods:
        trees: Dict[str, object] = {}
        method_records: Dict[str, BenchRecord] = {}
        for engine in build_engines:
            def run(method=method, engine=engine):
                return build_bvh(scene.mesh, method=method, engine=engine)

            wall, tree = _timed(run, preset.repeats)
            trees[engine] = tree
            stats = compute_stats(tree)
            rec = BenchRecord(
                benchmark=f"bvh_build_{method}",
                scene=code,
                engine=engine,
                rays=n,
                wall_time_s=round(wall, 6),
                rays_per_sec=round(n / wall, 1) if wall > 0 else float("inf"),
                node_fetches=0,
                tri_fetches=0,
                extra={
                    "nodes": float(tree.num_nodes),
                    "max_depth": float(stats.max_depth),
                    "sah_cost": round(stats.sah_cost, 6),
                    "levels": float(len(tree.levels())),
                },
            )
            records.append(rec)
            method_records[engine] = rec
            say(
                f"[{code}] {'bvh_build_' + method:16s} {engine:9s} "
                f"{rec.wall_time_s * 1e3:8.1f} ms  "
                f"{rec.rays_per_sec:>12,.0f} tris/s"
            )
        if "vector" in trees and "scalar" in trees:
            agree = trees_identical(trees["vector"], trees["scalar"])
            method_records["vector"].extra["agrees_with_scalar"] = float(agree)
        if method == "sah" or refit_base is None:
            refit_base = trees[build_engines[0]]

    deformed = jitter_mesh(refit_base.mesh, preset.build_jitter, seed=preset.seed)
    refitted: Dict[str, object] = {}
    refit_records: Dict[str, BenchRecord] = {}
    for engine in build_engines:
        def run_refit(engine=engine):
            return refit_bvh(refit_base, deformed, engine=engine)

        wall, out = _timed(run_refit, preset.repeats)
        refitted[engine] = out
        rec = BenchRecord(
            benchmark="bvh_refit",
            scene=code,
            engine=engine,
            rays=n,
            wall_time_s=round(wall, 6),
            rays_per_sec=round(n / wall, 1) if wall > 0 else float("inf"),
            node_fetches=0,
            tri_fetches=0,
            extra={"nodes": float(refit_base.num_nodes)},
        )
        records.append(rec)
        refit_records[engine] = rec
        say(
            f"[{code}] {'bvh_refit':16s} {engine:9s} "
            f"{rec.wall_time_s * 1e3:8.1f} ms  "
            f"{rec.rays_per_sec:>12,.0f} tris/s"
        )
    if "vector" in refitted and "scalar" in refitted:
        agree = np.array_equal(
            refitted["vector"].lo, refitted["scalar"].lo
        ) and np.array_equal(refitted["vector"].hi, refitted["scalar"].hi)
        refit_records["vector"].extra["agrees_with_scalar"] = float(agree)
    return records


def _scene_records(
    preset: BenchPreset,
    code: str,
    engines: Sequence[str],
    say,
    predictor_enabled: bool = True,
) -> List[BenchRecord]:
    """Run the full benchmark matrix for one scene (one sweep *unit*)."""
    records: List[BenchRecord] = []
    selected = tuple(getattr(preset, "benchmarks", BENCHMARKS))
    # The build benchmark times its own construction, so a unit that
    # runs nothing else skips the cached BVH and the AO workload.
    needs_workload = any(b != "bvh_build" for b in selected)
    say(f"[{code}] building scene (detail={preset.detail})")
    with telemetry.label_context(scene=code):
        scene = get_scene(code, detail=preset.detail)
        if "bvh_build" in selected:
            records.extend(_build_records(preset, code, engines, say, scene))
        if not needs_workload:
            return records
        bvh = cached_build_bvh(scene.mesh)
        workload = generate_ao_workload(
            scene,
            bvh,
            width=preset.width,
            height=preset.height,
            spp=preset.spp,
            seed=preset.seed,
        )
        rays = workload.rays
        say(f"[{code}] {len(rays)} AO rays")
        for benchmark in ("occlusion_trace", "closest_trace"):
            if benchmark not in selected:
                continue
            for engine in engines:
                rec = _trace_record(
                    benchmark, code, engine, bvh, rays, preset.repeats
                )
                records.append(rec)
                say(
                    f"[{code}] {benchmark:16s} {engine:9s} "
                    f"{rec.wall_time_s * 1e3:8.1f} ms  {rec.rays_per_sec:>12,.0f} rays/s"
                )
        if "predictor_sim" in selected:
            for engine in engines:
                rec = _sim_record(
                    code, engine, bvh, rays, preset,
                    predictor_enabled=predictor_enabled,
                )
                records.append(rec)
                say(
                    f"[{code}] {'predictor_sim':16s} {engine:9s} "
                    f"{rec.wall_time_s * 1e3:8.1f} ms  {rec.rays_per_sec:>12,.0f} rays/s"
                )
        if "rt_timing" in selected:
            # Engine pair follows the degradation rung: the full rung
            # ("wavefront" in the traversal-engine set) times vector
            # against the scalar oracle; degraded rungs keep scalar
            # only, dropping the speedup but preserving the counters.
            timing_engines = (
                ("vector", "scalar") if "wavefront" in engines else ("scalar",)
            )
            variants = [False]
            if preset.timing_predictor and predictor_enabled:
                variants.append(True)
            for with_predictor in variants:
                for engine in timing_engines:
                    rec = _timing_record(
                        code, engine, bvh, rays, preset,
                        predictor_enabled=with_predictor,
                    )
                    records.append(rec)
                    say(
                        f"[{code}] {rec.benchmark:16s} {engine:9s} "
                        f"{rec.wall_time_s * 1e3:8.1f} ms  "
                        f"cycles={int(rec.extra['cycles'])}"
                    )
    return records


def _plain_unit_worker(
    preset: BenchPreset,
    code: str,
    engines: Tuple[str, ...],
    cache_root: Optional[str],
    telemetry_on: bool = False,
    ambient_labels: Optional[Dict[str, str]] = None,
) -> dict:
    """One fail-fast scene unit in a ``--jobs`` worker process.

    Returns the unit's records plus the worker's telemetry snapshot
    (``None`` with telemetry off), which rides the normal result path
    back to the parent for :func:`distributed.absorb_snapshot`.
    """
    if cache_root:
        configure_artifact_cache(cache_root)
    distributed.init_worker(telemetry_on, ambient_labels)
    quiet = lambda msg: None  # noqa: E731 - workers report via the parent
    records = [asdict(rec) for rec in _scene_records(preset, code, engines, quiet)]
    return {
        "records": records,
        "telemetry": distributed.capture_snapshot(unit=code),
    }


def _supervised_unit_worker(
    preset: BenchPreset,
    code: str,
    engines: Tuple[str, ...],
    options: ResilienceOptions,
    fault_plan: Optional[UnitFaultPlan],
    cache_root: Optional[str],
    telemetry_on: bool = False,
    ambient_labels: Optional[Dict[str, str]] = None,
) -> dict:
    """One supervised scene unit in a ``--jobs`` worker process.

    The worker owns the retry/degradation decisions for its unit (a
    fresh single-unit :class:`RunSupervisor` built from the same
    options, so backoff schedules stay seeded per unit and independent
    of sharding); the parent owns the checkpoint and the manifest.
    The telemetry snapshot is captured *after* the supervisor settles,
    so a unit that degraded or was skipped still ships whatever partial
    metrics and spans its attempts recorded.
    """
    if cache_root:
        configure_artifact_cache(cache_root)
    distributed.init_worker(telemetry_on, ambient_labels)
    supervisor = RunSupervisor.from_options(options)

    def make_fn(rung: str):
        plan = _rung_plan(engines, rung)
        if plan is None:
            return None
        use_engines, predictor_enabled = plan

        def run() -> List[BenchRecord]:
            if fault_plan is not None:
                fault_plan.check(code)
            return _scene_records(
                preset, code, use_engines, lambda msg: None,
                predictor_enabled=predictor_enabled,
            )

        return run

    outcome = supervisor.run_unit(code, make_fn)
    return {
        "records": [asdict(rec) for rec in (outcome.value or [])],
        "entry": outcome.entry.to_dict(),
        "supervisor": supervisor.describe(),
        "telemetry": distributed.capture_snapshot(unit=code),
    }


def _rung_plan(
    engines: Sequence[str], rung: str
) -> Optional[Tuple[Tuple[str, ...], bool]]:
    """(engines, predictor_enabled) for a bench unit at ``rung``."""
    if rung == "wavefront":
        return tuple(engines), True
    if rung == "scalar":
        return ("scalar",), True
    if rung == "predictor_off":
        return ("scalar",), False
    return None  # pragma: no cover - supervisor never asks for "skip"


def run_benchmarks(
    preset: BenchPreset,
    engines: Sequence[str] = ENGINES,
    scenes: Optional[Sequence[str]] = None,
    progress=None,
    resilience: Optional[ResilienceOptions] = None,
    fault_plan: Optional[UnitFaultPlan] = None,
    jobs: int = 1,
    aggregate_telemetry: bool = True,
) -> dict:
    """Run the full benchmark matrix for ``preset``.

    Args:
        preset: the pinned configuration to run.
        engines: traversal engines to time (default: both).
        scenes: optional scene-code override (subset runs for quick
            local iteration; the artifact records what actually ran).
        progress: optional callable receiving one-line status strings.
        resilience: run each scene as a supervised unit with
            checkpoint/resume, retry, and the degradation ladder; the
            artifact gains a ``resilience`` section.  None keeps the
            classic fail-fast behavior.
        fault_plan: chaos mode - deterministic synthetic unit failures
            (implies supervision even when ``resilience`` is None).
        jobs: worker processes sharding the scene units (1 = in
            process).  Results are deterministic, so the payload matches
            a serial run except for the timing fields.  With telemetry
            enabled, each worker ships its metrics/span snapshot back on
            the result path and the parent merges them
            (:mod:`repro.telemetry.distributed`), so the artifact's
            ``telemetry`` section equals the label-wise sum of the
            per-worker snapshots - identical in shape to a serial run.
        aggregate_telemetry: merge worker telemetry snapshots into the
            parent registry (the default).  Setting this ``False`` on a
            sharded run with telemetry enabled raises
            :class:`~repro.errors.TelemetryAggregationError` - worker
            metrics must never be dropped silently.

    Returns:
        The artifact payload (JSON-serializable dict).
    """
    say = progress or (lambda msg: None)
    scene_codes = tuple(scenes) if scenes else preset.scenes
    if not aggregate_telemetry and telemetry.enabled() and jobs > 1:
        raise TelemetryAggregationError(
            "telemetry is enabled and the sweep is sharded "
            f"(--jobs {jobs}), but telemetry aggregation is disabled; "
            "worker-side metrics would be dropped silently - re-enable "
            "aggregation, run serially, or disable telemetry"
        )
    if resilience is None and fault_plan is None:
        if jobs > 1 and len(scene_codes) > 1:
            records = _run_plain_parallel(
                preset, engines, scene_codes, say, jobs
            )
        else:
            records = []
            for code in scene_codes:
                records.extend(_scene_records(preset, code, engines, say))
        return _build_payload(preset, scene_codes, records)
    return _run_resilient(
        preset, engines, scene_codes, say,
        resilience or ResilienceOptions(), fault_plan, jobs,
    )


def _run_plain_parallel(
    preset: BenchPreset,
    engines: Sequence[str],
    scene_codes: Sequence[str],
    say,
    jobs: int,
) -> List[BenchRecord]:
    """Fail-fast sweep sharded across processes, aggregated in order."""
    cache = get_artifact_cache()
    cache_root = cache.root if cache else None
    telemetry_on = telemetry.enabled()
    ambient = telemetry.current_labels() if telemetry_on else None
    workers = min(jobs, len(scene_codes))
    say(f"sharding {len(scene_codes)} scene unit(s) across {workers} workers")
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {
            code: pool.submit(
                _plain_unit_worker, preset, code, tuple(engines), cache_root,
                telemetry_on, ambient,
            )
            for code in scene_codes
        }
        records: List[BenchRecord] = []
        # Aggregate in scene order regardless of completion order, so
        # the artifact - including the merged telemetry registry, whose
        # gauges are last-write-wins - is identical to a serial run's.
        for code in scene_codes:
            outcome = futures[code].result()
            unit = [BenchRecord(**rec) for rec in outcome["records"]]
            records.extend(unit)
            distributed.absorb_snapshot(outcome["telemetry"])
            say(f"[{code}] {len(unit)} record(s) from worker")
    return records


def sweep_fingerprint(
    preset: BenchPreset,
    scene_codes: Sequence[str],
    engines: Sequence[str],
) -> dict:
    """The configuration identity a checkpoint pins a sweep to.

    When the BVH artifact cache is active its identity (enablement +
    on-disk format version, the key space every content address lives
    in) is part of the fingerprint: a checkpoint written with the cache
    on refuses to resume with it off, and vice versa.
    """
    fingerprint = {
        "kind": "bench",
        "preset": asdict(preset),
        "scenes": list(scene_codes),
        "engines": list(engines),
    }
    cache = get_artifact_cache()
    if cache is not None:
        fingerprint["artifact_cache"] = cache.fingerprint()
    return fingerprint


def _run_resilient(
    preset: BenchPreset,
    engines: Sequence[str],
    scene_codes: Sequence[str],
    say,
    options: ResilienceOptions,
    fault_plan: Optional[UnitFaultPlan],
    jobs: int = 1,
) -> dict:
    """Supervised sweep: each scene is a unit on the degradation ladder.

    Rung semantics for a bench unit:

    * ``wavefront``     - the requested engine set, predictor sim on;
    * ``scalar``        - scalar engine only (lower peak memory);
    * ``predictor_off`` - scalar engine, predictor-disabled baseline
      simulation (:func:`repro.core.simulate.simulate_baseline`);
    * ``skip``          - no records; the manifest carries the
      diagnostic.

    With ``jobs > 1``, units that survive the resume check are sharded
    across worker processes; each worker supervises its own unit (same
    ladder, same per-unit seeded backoff), while the parent records
    checkpoints as workers complete - so a mid-sweep kill still resumes
    with only the unfinished units.
    """
    supervisor = RunSupervisor.from_options(options)
    manifest = PartialResultsManifest()
    checkpoint: Optional[SweepCheckpoint] = None
    if options.checkpoint_path:
        checkpoint = SweepCheckpoint(
            options.checkpoint_path,
            sweep_fingerprint(preset, scene_codes, engines),
            bench_schema=BENCH_SCHEMA,
        )
        if checkpoint.load(resume=options.resume):
            say(
                f"resuming from {checkpoint.path} "
                f"({len(checkpoint.completed)} unit(s) already complete)"
            )

    unit_records: Dict[str, List[BenchRecord]] = {}
    unit_entries: Dict[str, UnitEntry] = {}
    pending: List[str] = []
    for code in scene_codes:
        if checkpoint is not None and checkpoint.has(code):
            stored = checkpoint.get(code)
            unit_records[code] = [
                BenchRecord(**rec) for rec in stored.get("records", [])
            ]
            prior = stored.get("entry", {})
            unit_entries[code] = UnitEntry(
                unit=code, status="resumed",
                rung=prior.get("rung", "wavefront"), attempts=0,
            )
            telemetry.inc_counter("supervisor.checkpoint_hits", unit=code)
            say(f"[{code}] resumed from checkpoint (not re-run)")
            continue
        pending.append(code)

    if jobs > 1 and len(pending) > 1:
        cache = get_artifact_cache()
        cache_root = cache.root if cache else None
        telemetry_on = telemetry.enabled()
        ambient = telemetry.current_labels() if telemetry_on else None
        workers = min(jobs, len(pending))
        say(f"sharding {len(pending)} scene unit(s) across {workers} workers")
        unit_snapshots: Dict[str, Optional[dict]] = {}
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(
                    _supervised_unit_worker, preset, code, tuple(engines),
                    options, fault_plan, cache_root, telemetry_on, ambient,
                ): code
                for code in pending
            }
            for future in as_completed(futures):
                code = futures[future]
                outcome = future.result()
                unit_records[code] = [
                    BenchRecord(**rec) for rec in outcome["records"]
                ]
                unit_entries[code] = UnitEntry(**outcome["entry"])
                unit_snapshots[code] = outcome.get("telemetry")
                for counter, value in outcome["supervisor"].items():
                    if counter in supervisor.counters:
                        supervisor.counters[counter] += value
                supervisor.total_backoff_s += (
                    outcome["supervisor"]["total_backoff_s"]
                )
                # Persist as each worker finishes, not in scene order:
                # a kill between completions loses only unfinished units.
                if checkpoint is not None:
                    checkpoint.record(code, {
                        "records": outcome["records"],
                        "entry": outcome["entry"],
                    })
                say(f"[{code}] unit complete ({unit_entries[code].status})")
        # Merge worker telemetry in scene order (not completion order):
        # counter addition commutes but gauge last-write-wins does not,
        # and scene order is what a serial run would have produced.
        for code in scene_codes:
            distributed.absorb_snapshot(unit_snapshots.get(code))
    else:
        for code in pending:
            def make_fn(rung: str, code: str = code):
                plan = _rung_plan(engines, rung)
                if plan is None:
                    return None
                use_engines, predictor_enabled = plan

                def run() -> List[BenchRecord]:
                    if fault_plan is not None:
                        fault_plan.check(code)
                    return _scene_records(
                        preset, code, use_engines, say,
                        predictor_enabled=predictor_enabled,
                    )

                return run

            outcome = supervisor.run_unit(code, make_fn, progress=say)
            unit_entries[code] = outcome.entry
            unit_records[code] = list(outcome.value or [])
            if checkpoint is not None:
                checkpoint.record(code, {
                    "records": [asdict(rec) for rec in unit_records[code]],
                    "entry": outcome.entry.to_dict(),
                })

    records: List[BenchRecord] = []
    for code in scene_codes:
        records.extend(unit_records.get(code, []))
        if code in unit_entries:
            manifest.add(unit_entries[code])

    payload = _build_payload(preset, scene_codes, records)
    payload["resilience"] = {
        "enabled": True,
        "options": options.describe(),
        "supervisor": supervisor.describe(),
        "manifest": manifest.to_dict(),
        "checkpoint": checkpoint.describe() if checkpoint else None,
        "chaos": fault_plan.describe() if fault_plan else None,
    }
    say(manifest.summary())
    return payload


def _build_payload(
    preset: BenchPreset, scene_codes: Sequence[str], records: List[BenchRecord]
) -> dict:
    by_key = {(r.benchmark, r.scene, r.engine): r for r in records}
    speedups: Dict[str, Dict[str, float]] = {}
    for benchmark in BENCHMARKS:
        per_scene: Dict[str, float] = {}
        for code in scene_codes:
            scalar = by_key.get((benchmark, code, "scalar"))
            wave = by_key.get((benchmark, code, "wavefront"))
            if scalar and wave and wave.wall_time_s > 0:
                per_scene[code] = round(scalar.wall_time_s / wave.wall_time_s, 3)
        if per_scene:
            speedups[benchmark] = per_scene
    payload = {
        "schema": BENCH_SCHEMA,
        "name": preset.name,
        "preset": asdict(preset),
        "scenes": list(scene_codes),
        "results": [asdict(r) for r in records],
        "derived": {
            "speedup_wavefront_over_scalar": speedups,
            "predictor_throughput": _predictor_throughput(
                by_key, scene_codes
            ),
            "rt_timing": _rt_timing_section(by_key, scene_codes),
            "bvh_build": _bvh_build_section(by_key, scene_codes),
        },
    }
    if telemetry.enabled():
        section = {
            "metrics": telemetry.get_registry().snapshot(),
            "spans": distributed.merged_span_summary(),
            "dropped_events": distributed.total_dropped_events(),
        }
        workers = distributed.worker_summary()
        if workers:
            section["workers"] = workers
        payload["telemetry"] = section
    return payload


def _predictor_throughput(
    by_key: Dict[Tuple[str, str, str], BenchRecord],
    scene_codes: Sequence[str],
) -> Dict[str, dict]:
    """Per-scene predictor-simulation summary (schema 4).

    ``rays_per_sec`` is machine-dependent and recorded for
    trend-watching; the regression gate uses the engine speedup (both
    engines time on the same host) and the deterministic rates and
    counters copied from the simulation's extras.
    """
    section: Dict[str, dict] = {}
    for code in scene_codes:
        scalar = by_key.get(("predictor_sim", code, "scalar"))
        wave = by_key.get(("predictor_sim", code, "wavefront"))
        row: Dict[str, object] = {}
        if wave is not None:
            row["rays_per_sec"] = wave.rays_per_sec
            row["rates"] = {
                key: wave.extra[key]
                for key in ("predicted_rate", "verified_rate",
                            "memory_savings")
                if key in wave.extra
            }
            row["node_fetches"] = wave.node_fetches
        if scalar is not None and wave is not None and wave.wall_time_s > 0:
            row["speedup_wavefront_over_scalar"] = round(
                scalar.wall_time_s / wave.wall_time_s, 3
            )
        if row:
            section[code] = row
    return section


def _rt_timing_section(
    by_key: Dict[Tuple[str, str, str], BenchRecord],
    scene_codes: Sequence[str],
) -> Dict[str, dict]:
    """Per-scene RT-unit timing summary (schema 5).

    ``cycles`` (and the hit rates) are machine-independent and gate
    exactly; ``engines_agree`` asserts the vector engine matched the
    scalar oracle's cycles and counters in *this* run;
    ``speedup_vector_over_scalar`` is the wall-clock ratio on the
    baseline (no-predictor) configuration, gated against a tolerance
    floor like the traversal speedups.
    """
    section: Dict[str, dict] = {}
    for code in scene_codes:
        base_v = by_key.get(("rt_timing", code, "vector"))
        base_s = by_key.get(("rt_timing", code, "scalar"))
        pred_v = by_key.get(("rt_timing_predictor", code, "vector"))
        pred_s = by_key.get(("rt_timing_predictor", code, "scalar"))
        row: Dict[str, object] = {}
        primary = base_v or base_s
        if primary is not None:
            row["cycles"] = primary.extra["cycles"]
            for key in ("l1_hit_rate", "l2_hit_rate", "dram_row_hit_rate"):
                row[key] = primary.extra[key]
        pred_primary = pred_v or pred_s
        if pred_primary is not None:
            row["cycles_predictor"] = pred_primary.extra["cycles"]
            if primary is not None and pred_primary.extra["cycles"]:
                row["cycle_speedup_predictor"] = round(
                    primary.extra["cycles"] / pred_primary.extra["cycles"], 4
                )
        pairs = [(base_v, base_s), (pred_v, pred_s)]
        checked = [(v, s) for v, s in pairs if v is not None and s is not None]
        if checked:
            row["engines_agree"] = all(
                v.extra["cycles"] == s.extra["cycles"]
                and v.node_fetches == s.node_fetches
                and v.tri_fetches == s.tri_fetches
                for v, s in checked
            )
        if base_v is not None and base_s is not None and base_v.wall_time_s > 0:
            row["speedup_vector_over_scalar"] = round(
                base_s.wall_time_s / base_v.wall_time_s, 3
            )
        if pred_v is not None and pred_s is not None and pred_v.wall_time_s > 0:
            row["speedup_vector_over_scalar_predictor"] = round(
                pred_s.wall_time_s / pred_v.wall_time_s, 3
            )
        if row:
            section[code] = row
    return section


def _bvh_build_section(
    by_key: Dict[Tuple[str, str, str], BenchRecord],
    scene_codes: Sequence[str],
) -> Dict[str, dict]:
    """Per-scene BVH-construction summary (schema 6).

    Reconstructable from the records alone: ``nodes`` / ``max_depth`` /
    ``sah_cost`` per method are exact functions of scene + build
    parameters and gate exactly; ``engines_agree`` asserts every vector
    tree (and the refit bounds) matched the scalar oracle array-for-
    array in *this* run; the vector-over-scalar speedups gate against a
    tolerance floor like the other engine pairs.
    """
    methods = sorted({
        key[0][len("bvh_build_"):]
        for key in by_key
        if key[0].startswith("bvh_build_")
    })
    section: Dict[str, dict] = {}
    for code in scene_codes:
        per_method: Dict[str, dict] = {}
        agree_flags: List[bool] = []
        for method in methods:
            bench = f"bvh_build_{method}"
            vec = by_key.get((bench, code, "vector"))
            sca = by_key.get((bench, code, "scalar"))
            primary = vec or sca
            if primary is None:
                continue
            row = {
                "nodes": int(primary.extra["nodes"]),
                "max_depth": int(primary.extra["max_depth"]),
                "sah_cost": primary.extra["sah_cost"],
            }
            if vec is not None and "agrees_with_scalar" in vec.extra:
                agree_flags.append(bool(vec.extra["agrees_with_scalar"]))
            if vec is not None and sca is not None and vec.wall_time_s > 0:
                row["speedup_vector_over_scalar"] = round(
                    sca.wall_time_s / vec.wall_time_s, 3
                )
            per_method[method] = row
        scene_row: Dict[str, object] = {}
        if per_method:
            scene_row["methods"] = per_method
        refit_v = by_key.get(("bvh_refit", code, "vector"))
        refit_s = by_key.get(("bvh_refit", code, "scalar"))
        if refit_v is not None and "agrees_with_scalar" in refit_v.extra:
            agree_flags.append(bool(refit_v.extra["agrees_with_scalar"]))
        if refit_v is not None and refit_s is not None and refit_v.wall_time_s > 0:
            scene_row["refit_speedup_vector_over_scalar"] = round(
                refit_s.wall_time_s / refit_v.wall_time_s, 3
            )
        if agree_flags:
            scene_row["engines_agree"] = all(agree_flags)
        if scene_row:
            section[code] = scene_row
    return section


def write_payload(payload: dict, out_dir: str) -> str:
    """Write ``BENCH_<name>.json`` under ``out_dir``; returns the path."""
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{payload['name']}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_payload(path: str) -> dict:
    """Load a ``BENCH_*.json`` artifact, validating its schema tag."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    schema = payload.get("schema")
    if schema not in ACCEPTED_SCHEMAS:
        raise ValueError(
            f"{path}: unsupported benchmark schema {schema!r} "
            f"(expected one of {', '.join(ACCEPTED_SCHEMAS)})"
        )
    return payload


def compare_payloads(
    current: dict, baseline: dict, tolerance: float = DEFAULT_TOLERANCE
) -> List[str]:
    """Regression check: current run vs. a committed baseline.

    Gated quantities (see module docstring for why):

    * each wavefront-over-scalar **speedup** may not fall more than
      ``tolerance`` below its baseline value;
    * each record's **node/tri fetch counters** may not drift more than
      ``tolerance`` from the baseline (they are deterministic for a
      pinned seed, so any drift is an algorithm change - new traversal
      logic should re-baseline deliberately, not silently);
    * each scene's **predictor-simulation rates** (predicted / verified
      / memory savings, from the ``predictor_throughput`` section) may
      not drift more than ``tolerance`` relative - like the counters,
      they are exact functions of seed + scene, so this is a
      correctness gate on the predictor pipeline that transfers across
      machines.

    Returns:
        Human-readable regression messages; empty means the gate passes.
    """
    problems: List[str] = []
    base_speed = baseline.get("derived", {}).get("speedup_wavefront_over_scalar", {})
    cur_speed = current.get("derived", {}).get("speedup_wavefront_over_scalar", {})
    for benchmark, scenes in base_speed.items():
        for code, base_value in scenes.items():
            cur_value = cur_speed.get(benchmark, {}).get(code)
            if cur_value is None:
                problems.append(
                    f"{benchmark}/{code}: speedup missing from current run "
                    f"(baseline {base_value}x)"
                )
                continue
            floor = base_value * (1.0 - tolerance)
            if cur_value < floor:
                problems.append(
                    f"{benchmark}/{code}: speedup regressed to {cur_value}x "
                    f"(baseline {base_value}x, floor {floor:.2f}x)"
                )

    base_pred = baseline.get("derived", {}).get("predictor_throughput", {})
    cur_pred = current.get("derived", {}).get("predictor_throughput", {})
    for code, base_row in base_pred.items():
        cur_row = cur_pred.get(code)
        if cur_row is None:
            problems.append(
                f"predictor_throughput/{code}: scene missing from current run"
            )
            continue
        for rate, base_value in base_row.get("rates", {}).items():
            cur_value = cur_row.get("rates", {}).get(rate)
            if cur_value is None:
                problems.append(
                    f"predictor_throughput/{code}: {rate} missing from "
                    f"current run (baseline {base_value})"
                )
                continue
            if base_value == 0:
                continue
            drift = abs(cur_value - base_value) / abs(base_value)
            if drift > tolerance:
                problems.append(
                    f"predictor_throughput/{code}: {rate} drifted "
                    f"{drift:.1%} ({base_value} -> {cur_value})"
                )

    base_rt = baseline.get("derived", {}).get("rt_timing", {})
    cur_rt = current.get("derived", {}).get("rt_timing", {})
    for code, base_row in base_rt.items():
        cur_row = cur_rt.get(code)
        if cur_row is None:
            problems.append(f"rt_timing/{code}: scene missing from current run")
            continue
        # Cycle counts are exact functions of seed + scene + config:
        # any drift is an algorithm change and must re-baseline.
        for key in ("cycles", "cycles_predictor"):
            if key not in base_row:
                continue
            cur_value = cur_row.get(key)
            if cur_value is None:
                problems.append(
                    f"rt_timing/{code}: {key} missing from current run "
                    f"(baseline {int(base_row[key])})"
                )
            elif cur_value != base_row[key]:
                problems.append(
                    f"rt_timing/{code}: {key} changed "
                    f"{int(base_row[key])} -> {int(cur_value)} "
                    "(cycle counts gate exactly)"
                )
        # The vector engine must agree with the scalar oracle *in the
        # current run* - this is the differential gate, not a drift one.
        if base_row.get("engines_agree") and cur_row.get("engines_agree") is not True:
            problems.append(
                f"rt_timing/{code}: vector engine no longer matches the "
                "scalar oracle (engines_agree is "
                f"{cur_row.get('engines_agree')!r})"
            )
        for key in ("l1_hit_rate", "l2_hit_rate", "dram_row_hit_rate"):
            base_value = base_row.get(key)
            if base_value is None:
                continue
            cur_value = cur_row.get(key)
            if cur_value is None:
                problems.append(
                    f"rt_timing/{code}: {key} missing from current run"
                )
                continue
            if base_value == 0:
                continue
            drift = abs(cur_value - base_value) / abs(base_value)
            if drift > tolerance:
                problems.append(
                    f"rt_timing/{code}: {key} drifted {drift:.1%} "
                    f"({base_value} -> {cur_value})"
                )
        base_speedup = base_row.get("speedup_vector_over_scalar")
        cur_speedup = cur_row.get("speedup_vector_over_scalar")
        if base_speedup is not None:
            if cur_speedup is None:
                problems.append(
                    f"rt_timing/{code}: vector speedup missing from current "
                    f"run (baseline {base_speedup}x)"
                )
            else:
                floor = base_speedup * (1.0 - tolerance)
                if cur_speedup < floor:
                    problems.append(
                        f"rt_timing/{code}: vector speedup regressed to "
                        f"{cur_speedup}x (baseline {base_speedup}x, "
                        f"floor {floor:.2f}x)"
                    )

    base_build = baseline.get("derived", {}).get("bvh_build", {})
    cur_build = current.get("derived", {}).get("bvh_build", {})
    for code, base_row in base_build.items():
        cur_row = cur_build.get(code)
        if cur_row is None:
            problems.append(f"bvh_build/{code}: scene missing from current run")
            continue
        for method, base_m in base_row.get("methods", {}).items():
            cur_m = cur_row.get("methods", {}).get(method)
            if cur_m is None:
                problems.append(
                    f"bvh_build/{code}: method {method} missing from "
                    "current run"
                )
                continue
            # Node counts, tree depth and SAH cost are exact functions
            # of scene + build parameters: any drift is an algorithm
            # change and must re-baseline deliberately.
            for key in ("nodes", "max_depth", "sah_cost"):
                if key not in base_m:
                    continue
                cur_value = cur_m.get(key)
                if cur_value is None:
                    problems.append(
                        f"bvh_build/{code}/{method}: {key} missing from "
                        f"current run (baseline {base_m[key]})"
                    )
                elif cur_value != base_m[key]:
                    problems.append(
                        f"bvh_build/{code}/{method}: {key} changed "
                        f"{base_m[key]} -> {cur_value} "
                        "(tree shape gates exactly)"
                    )
            base_speedup = base_m.get("speedup_vector_over_scalar")
            if base_speedup is not None:
                cur_speedup = cur_m.get("speedup_vector_over_scalar")
                if cur_speedup is None:
                    problems.append(
                        f"bvh_build/{code}/{method}: vector speedup missing "
                        f"from current run (baseline {base_speedup}x)"
                    )
                else:
                    floor = base_speedup * (1.0 - tolerance)
                    if cur_speedup < floor:
                        problems.append(
                            f"bvh_build/{code}/{method}: vector speedup "
                            f"regressed to {cur_speedup}x (baseline "
                            f"{base_speedup}x, floor {floor:.2f}x)"
                        )
        # The vector builders must match the scalar oracles *in the
        # current run* - the differential gate, not a drift one.
        if base_row.get("engines_agree") and cur_row.get("engines_agree") is not True:
            problems.append(
                f"bvh_build/{code}: vector trees no longer match the "
                "scalar oracle (engines_agree is "
                f"{cur_row.get('engines_agree')!r})"
            )
        base_refit = base_row.get("refit_speedup_vector_over_scalar")
        if base_refit is not None:
            cur_refit = cur_row.get("refit_speedup_vector_over_scalar")
            if cur_refit is None:
                problems.append(
                    f"bvh_build/{code}: refit speedup missing from current "
                    f"run (baseline {base_refit}x)"
                )
            else:
                floor = base_refit * (1.0 - tolerance)
                if cur_refit < floor:
                    problems.append(
                        f"bvh_build/{code}: refit speedup regressed to "
                        f"{cur_refit}x (baseline {base_refit}x, "
                        f"floor {floor:.2f}x)"
                    )

    cur_records = {
        (r["benchmark"], r["scene"], r["engine"]): r
        for r in current.get("results", [])
    }
    for base_rec in baseline.get("results", []):
        key = (base_rec["benchmark"], base_rec["scene"], base_rec["engine"])
        cur_rec = cur_records.get(key)
        if cur_rec is None:
            problems.append(f"{'/'.join(key)}: record missing from current run")
            continue
        for counter in ("node_fetches", "tri_fetches"):
            base_value = base_rec[counter]
            cur_value = cur_rec[counter]
            if base_value == 0:
                continue
            drift = abs(cur_value - base_value) / base_value
            if drift > tolerance:
                problems.append(
                    f"{'/'.join(key)}: {counter} drifted {drift:.1%} "
                    f"({base_value} -> {cur_value})"
                )
    return problems


def check_against_baselines(
    payload: dict, baseline_dir: str, tolerance: float = DEFAULT_TOLERANCE
) -> List[str]:
    """Compare ``payload`` with its committed baseline, if one exists.

    A missing baseline is reported as a problem: the gate must never
    silently pass because someone forgot to commit the artifact.
    """
    path = os.path.join(baseline_dir, f"BENCH_{payload['name']}.json")
    if not os.path.exists(path):
        return [f"no committed baseline at {path}"]
    return compare_payloads(payload, load_payload(path), tolerance=tolerance)


def summarize(payload: dict) -> str:
    """Short human-readable summary of an artifact (CLI output)."""
    lines = [f"benchmark artifact: {payload['name']} ({payload['schema']})"]
    speed = payload.get("derived", {}).get("speedup_wavefront_over_scalar", {})
    for benchmark in BENCHMARKS:
        per_scene = speed.get(benchmark)
        if not per_scene:
            continue
        rendered = "  ".join(f"{code}={value}x" for code, value in per_scene.items())
        lines.append(f"  {benchmark:16s} wavefront speedup: {rendered}")
    throughput = payload.get("derived", {}).get("predictor_throughput", {})
    for code, row in throughput.items():
        rates = row.get("rates", {})
        lines.append(
            f"  predictor {code}: {row.get('rays_per_sec', 0):,.0f} rays/s  "
            f"verified {rates.get('verified_rate', 0.0):.1%}  "
            f"memory {rates.get('memory_savings', 0.0):+.1%}"
        )
    rt = payload.get("derived", {}).get("rt_timing", {})
    for code, row in rt.items():
        speedup = row.get("speedup_vector_over_scalar")
        speedup_txt = f"{speedup}x" if speedup is not None else "-"
        lines.append(
            f"  rt_timing {code}: cycles={int(row.get('cycles', 0))}  "
            f"vector/scalar {speedup_txt}  "
            f"agree={row.get('engines_agree', '-')}  "
            f"row-hit {row.get('dram_row_hit_rate', 0.0):.1%}"
        )
    build = payload.get("derived", {}).get("bvh_build", {})
    for code, row in build.items():
        methods = row.get("methods", {})
        rendered = "  ".join(
            f"{method}={info.get('speedup_vector_over_scalar', '-')}x"
            for method, info in methods.items()
        )
        refit = row.get("refit_speedup_vector_over_scalar", "-")
        lines.append(
            f"  bvh_build {code}: {rendered}  refit={refit}x  "
            f"agree={row.get('engines_agree', '-')}"
        )
    return "\n".join(lines)
