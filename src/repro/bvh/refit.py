"""BVH refitting for dynamic scenes.

The paper's conclusion names dynamic scenes and animation as the
compelling next step for ray prediction: the predictor table stores node
*indices*, so if the tree's topology is preserved while geometry moves -
exactly what refitting does - stale predictions degrade gracefully
instead of breaking.  ``refit_bvh`` updates every node's bounds
bottom-up for a deformed copy of the original mesh, keeping indices,
parents and leaf ranges identical.
"""

from __future__ import annotations

import numpy as np

from repro.bvh.nodes import FlatBVH
from repro.geometry.triangle import TriangleMesh


def refit_bvh(bvh: FlatBVH, mesh: TriangleMesh) -> FlatBVH:
    """Return a copy of ``bvh`` refitted to a deformed ``mesh``.

    ``mesh`` must contain the same triangles in the same (reordered)
    order as ``bvh.mesh``; only vertex positions may differ.  The
    returned tree shares topology (indices, parents, leaf ranges) with
    the input, so predictor tables trained on the old tree remain
    index-compatible.

    Raises:
        ValueError: if the mesh's triangle count differs.
    """
    if len(mesh) != bvh.num_triangles:
        raise ValueError(
            f"mesh has {len(mesh)} triangles, BVH expects {bvh.num_triangles}"
        )

    tri_lo = np.minimum(np.minimum(mesh.v0, mesh.v1), mesh.v2)
    tri_hi = np.maximum(np.maximum(mesh.v0, mesh.v1), mesh.v2)

    lo = bvh.lo.copy()
    hi = bvh.hi.copy()
    # Children are always emitted after their parent, so a reverse pass
    # sees every node's children (or triangles) before the node itself.
    for node in range(bvh.num_nodes - 1, -1, -1):
        left = bvh.left[node]
        if left < 0:
            start = int(bvh.first_tri[node])
            stop = start + int(bvh.tri_count[node])
            lo[node] = tri_lo[start:stop].min(axis=0)
            hi[node] = tri_hi[start:stop].max(axis=0)
        else:
            right = bvh.right[node]
            lo[node] = np.minimum(lo[left], lo[right])
            hi[node] = np.maximum(hi[left], hi[right])

    return FlatBVH(
        lo=lo,
        hi=hi,
        left=bvh.left,
        right=bvh.right,
        first_tri=bvh.first_tri,
        tri_count=bvh.tri_count,
        parent=bvh.parent,
        mesh=mesh,
        tri_indices=bvh.tri_indices,
    )


def jitter_mesh(
    mesh: TriangleMesh, magnitude: float, seed: int = 0
) -> TriangleMesh:
    """Deform a mesh by a smooth per-triangle offset (animation stand-in).

    Each triangle translates rigidly by a bounded pseudo-random offset,
    preserving triangle shapes - the kind of incremental motion a
    per-frame refit is designed for.
    """
    rng = np.random.default_rng(seed)
    offsets = rng.uniform(-magnitude, magnitude, (len(mesh), 3))
    return TriangleMesh(mesh.v0 + offsets, mesh.v1 + offsets, mesh.v2 + offsets)
