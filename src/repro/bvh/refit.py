"""BVH refitting for dynamic scenes.

The paper's conclusion names dynamic scenes and animation as the
compelling next step for ray prediction: the predictor table stores node
*indices*, so if the tree's topology is preserved while geometry moves -
exactly what refitting does - stale predictions degrade gracefully
instead of breaking.  ``refit_bvh`` updates every node's bounds
bottom-up for a deformed copy of the original mesh, keeping indices,
parents and leaf ranges identical.

Two engines are provided behind ``refit_bvh(..., engine=...)``:

* ``"vector"`` (default) - level-synchronous: all leaves fold their
  triangle ranges in one gather + ``reduceat``, then interior bounds
  propagate one depth per pass over the precomputed
  :meth:`~repro.bvh.nodes.FlatBVH.levels` schedule, so the whole refit
  is O(depth) numpy kernels.
* ``"scalar"`` - the original reverse per-node loop, kept as the
  differential oracle (``tests/test_refit_interframe.py`` asserts exact
  bound equality between the two).
"""

from __future__ import annotations

import numpy as np

from repro.bvh.nodes import FlatBVH
from repro.geometry.triangle import TriangleMesh

#: Engines accepted by :func:`refit_bvh` (first is the default).
REFIT_ENGINES = ("vector", "scalar")


def refit_bvh(
    bvh: FlatBVH, mesh: TriangleMesh, engine: str = "vector"
) -> FlatBVH:
    """Return a copy of ``bvh`` refitted to a deformed ``mesh``.

    ``mesh`` must contain the same triangles in the same (reordered)
    order as ``bvh.mesh``; only vertex positions may differ.  The
    returned tree shares topology (indices, parents, leaf ranges) with
    the input, so predictor tables trained on the old tree remain
    index-compatible.  Both engines produce bit-identical bounds.

    Raises:
        ValueError: if the mesh's triangle count differs, or ``engine``
            is unknown.
    """
    if len(mesh) != bvh.num_triangles:
        raise ValueError(
            f"mesh has {len(mesh)} triangles, BVH expects {bvh.num_triangles}"
        )
    if engine not in REFIT_ENGINES:
        raise ValueError(f"unknown refit engine: {engine!r}")

    tri_lo = np.minimum(np.minimum(mesh.v0, mesh.v1), mesh.v2)
    tri_hi = np.maximum(np.maximum(mesh.v0, mesh.v1), mesh.v2)

    if engine == "vector":
        lo, hi = _refit_vector(bvh, tri_lo, tri_hi)
    else:
        lo, hi = _refit_scalar(bvh, tri_lo, tri_hi)

    from repro import telemetry

    if telemetry.enabled():
        telemetry.inc_counter(
            "bvh.refit_nodes", bvh.num_nodes, engine=engine
        )

    return FlatBVH(
        lo=lo,
        hi=hi,
        left=bvh.left,
        right=bvh.right,
        first_tri=bvh.first_tri,
        tri_count=bvh.tri_count,
        parent=bvh.parent,
        mesh=mesh,
        tri_indices=bvh.tri_indices,
    )


def _refit_scalar(bvh: FlatBVH, tri_lo: np.ndarray, tri_hi: np.ndarray):
    """Reverse per-node reference loop (the differential oracle)."""
    lo = bvh.lo.copy()
    hi = bvh.hi.copy()
    # Children are always emitted after their parent, so a reverse pass
    # sees every node's children (or triangles) before the node itself.
    for node in range(bvh.num_nodes - 1, -1, -1):
        left = bvh.left[node]
        if left < 0:
            start = int(bvh.first_tri[node])
            stop = start + int(bvh.tri_count[node])
            lo[node] = tri_lo[start:stop].min(axis=0)
            hi[node] = tri_hi[start:stop].max(axis=0)
        else:
            right = bvh.right[node]
            lo[node] = np.minimum(lo[left], lo[right])
            hi[node] = np.maximum(hi[left], hi[right])
    return lo, hi


def _refit_vector(bvh: FlatBVH, tri_lo: np.ndarray, tri_hi: np.ndarray):
    """Level-synchronous refit: O(depth) segmented reductions."""
    from repro.bvh.vector import concat_ranges

    lo = bvh.lo.copy()
    hi = bvh.hi.copy()
    leaves = bvh.leaf_nodes()
    if leaves.size:
        starts = bvh.first_tri[leaves]
        counts = bvh.tri_count[leaves]
        if np.any(counts <= 0):
            bad = leaves[int(np.argmax(counts <= 0))]
            raise ValueError(f"leaf {int(bad)} holds no triangles")
        positions, _, _, seg_offsets = concat_ranges(starts, starts + counts)
        lo[leaves] = np.minimum.reduceat(tri_lo[positions], seg_offsets, axis=0)
        hi[leaves] = np.maximum.reduceat(tri_hi[positions], seg_offsets, axis=0)
    for nodes in reversed(bvh.levels()):
        parents = nodes[bvh.left[nodes] >= 0]
        if parents.size:
            left = bvh.left[parents]
            right = bvh.right[parents]
            lo[parents] = np.minimum(lo[left], lo[right])
            hi[parents] = np.maximum(hi[left], hi[right])
    return lo, hi


def jitter_mesh(
    mesh: TriangleMesh, magnitude: float, seed: int = 0
) -> TriangleMesh:
    """Deform a mesh by a smooth per-triangle offset (animation stand-in).

    Each triangle translates rigidly by a bounded pseudo-random offset,
    preserving triangle shapes - the kind of incremental motion a
    per-frame refit is designed for.
    """
    rng = np.random.default_rng(seed)
    offsets = rng.uniform(-magnitude, magnitude, (len(mesh), 3))
    return TriangleMesh(mesh.v0 + offsets, mesh.v1 + offsets, mesh.v2 + offsets)


__all__ = ["REFIT_ENGINES", "jitter_mesh", "refit_bvh"]
