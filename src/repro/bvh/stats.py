"""BVH statistics.

Feeds Table 1 (tree depth per scene), the correlation proxy of Figure 11
(rays/s tracks tree quality), and DESIGN.md's working-set arguments (the
node buffer must exceed the L1 for Figure 1's motivation to hold).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bvh.nodes import NODE_SIZE_BYTES, TRIANGLE_SIZE_BYTES, FlatBVH
from repro.geometry.aabb import aabb_surface_area


@dataclass(frozen=True)
class BVHStats:
    """Summary statistics of a built BVH."""

    num_nodes: int
    num_interior: int
    num_leaves: int
    num_triangles: int
    max_depth: int
    avg_leaf_depth: float
    avg_tris_per_leaf: float
    max_tris_per_leaf: int
    sah_cost: float
    node_bytes: int
    triangle_bytes: int

    @property
    def total_bytes(self) -> int:
        """Total simulated memory footprint (nodes + triangles)."""
        return self.node_bytes + self.triangle_bytes


def compute_stats(bvh: FlatBVH) -> BVHStats:
    """Compute :class:`BVHStats` for ``bvh``.

    The SAH cost is the classic estimate: sum over nodes of
    ``SA(node) / SA(root)`` weighted by 1 for interior nodes and by the
    triangle count for leaves.
    """
    leaves = bvh.leaf_nodes()
    interior = bvh.interior_nodes()
    # Depths come back from the level-synchronous pointer-jumping pass
    # in FlatBVH.depths(); everything below is whole-array reductions,
    # so stats cost O(depth) kernels + O(n) arithmetic, no Python loop.
    depths = bvh.depths()
    root_area = aabb_surface_area(tuple(bvh.lo[0]), tuple(bvh.hi[0]))

    areas = 2.0 * _half_areas(bvh.hi - bvh.lo)
    if root_area > 0.0:
        rel = areas / root_area
        sah = float(rel[interior].sum() + (rel[leaves] * bvh.tri_count[leaves]).sum())
    else:
        sah = float("nan")

    leaf_counts = bvh.tri_count[leaves]
    return BVHStats(
        num_nodes=bvh.num_nodes,
        num_interior=int(interior.size),
        num_leaves=int(leaves.size),
        num_triangles=bvh.num_triangles,
        max_depth=int(depths.max()) if bvh.num_nodes else 0,
        avg_leaf_depth=float(depths[leaves].mean()) if leaves.size else 0.0,
        avg_tris_per_leaf=float(leaf_counts.mean()) if leaves.size else 0.0,
        max_tris_per_leaf=int(leaf_counts.max()) if leaves.size else 0,
        sah_cost=sah,
        node_bytes=NODE_SIZE_BYTES * bvh.num_nodes,
        triangle_bytes=TRIANGLE_SIZE_BYTES * bvh.num_triangles,
    )


def _half_areas(extent: np.ndarray) -> np.ndarray:
    """Half surface areas for an ``(n, 3)`` array of box extents."""
    ex, ey, ez = extent[:, 0], extent[:, 1], extent[:, 2]
    return ex * ey + ey * ez + ez * ex
