"""BVH serialization.

Building a SAH tree over a large OBJ asset dominates start-up time for
repeated experiments; ``save_bvh``/``load_bvh`` round-trip the flat
arrays through a single ``.npz`` file so a tree is built once per scene.
The format stores only the arrays of :class:`FlatBVH` (including the
reordered mesh), is endian-safe via numpy, and validates on load.
"""

from __future__ import annotations

import os

import numpy as np

from repro.bvh.nodes import FlatBVH
from repro.geometry.triangle import TriangleMesh

#: Format marker stored in every file; bump on incompatible changes.
FORMAT_VERSION = 1


def save_bvh(bvh: FlatBVH, path: str | os.PathLike) -> None:
    """Write ``bvh`` (nodes + reordered mesh) to a ``.npz`` file."""
    np.savez_compressed(
        path,
        format_version=np.int64(FORMAT_VERSION),
        lo=bvh.lo,
        hi=bvh.hi,
        left=bvh.left,
        right=bvh.right,
        first_tri=bvh.first_tri,
        tri_count=bvh.tri_count,
        parent=bvh.parent,
        tri_indices=bvh.tri_indices,
        v0=bvh.mesh.v0,
        v1=bvh.mesh.v1,
        v2=bvh.mesh.v2,
    )


def load_bvh(path: str | os.PathLike) -> FlatBVH:
    """Load a BVH previously written by :func:`save_bvh`.

    Raises:
        ValueError: on a missing or incompatible format marker.
    """
    with np.load(path) as data:
        if "format_version" not in data:
            raise ValueError(f"{path!r} is not a saved BVH")
        version = int(data["format_version"])
        if version != FORMAT_VERSION:
            raise ValueError(
                f"unsupported BVH format version {version} "
                f"(expected {FORMAT_VERSION})"
            )
        mesh = TriangleMesh(data["v0"], data["v1"], data["v2"])
        return FlatBVH(
            lo=data["lo"],
            hi=data["hi"],
            left=data["left"],
            right=data["right"],
            first_tri=data["first_tri"],
            tri_count=data["tri_count"],
            parent=data["parent"],
            mesh=mesh,
            tri_indices=data["tri_indices"],
        )
