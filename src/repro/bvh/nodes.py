"""Flat BVH node storage.

The layout mirrors the Aila-Laine node of Figure 8: a 64-byte record per
node holding the two children's bounding boxes, the child (or triangle)
indices, and - in the otherwise padded space - a precomputed ancestor
index used by the predictor's Go Up Level.  We store the tree in
structure-of-arrays form; addresses are synthesized as
``node_base + 64 * index`` so the cache/DRAM models see a realistic
access stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.geometry.aabb import AABB
from repro.geometry.triangle import TriangleMesh

#: Size of one BVH node record (Aila-Laine node: 4 x 16 bytes).
NODE_SIZE_BYTES = 64
#: Size of one triangle record (Woop-transform triangle: 3 x 16 bytes).
TRIANGLE_SIZE_BYTES = 48
#: Base address of the node buffer in the simulated address space.
NODE_BASE_ADDRESS = 0x1000_0000
#: Base address of the triangle buffer in the simulated address space.
TRIANGLE_BASE_ADDRESS = 0x4000_0000


@dataclass
class HotBVH:
    """Plain-Python-list mirror of the arrays used by traversal inner loops.

    Indexing numpy arrays element-wise from Python is several times slower
    than list indexing; the traversal kernels run millions of iterations,
    so :meth:`FlatBVH.hot` materializes this view once per BVH.
    """

    lo_x: List[float]
    lo_y: List[float]
    lo_z: List[float]
    hi_x: List[float]
    hi_y: List[float]
    hi_z: List[float]
    left: List[int]
    right: List[int]
    first_tri: List[int]
    tri_count: List[int]
    tri_v0: List[Tuple[float, float, float]]
    tri_v1: List[Tuple[float, float, float]]
    tri_v2: List[Tuple[float, float, float]]


class FlatBVH:
    """A binary BVH stored as flat arrays.

    Node ``i`` is a leaf iff ``left[i] < 0``; leaves reference the
    contiguous triangle range ``[first_tri[i], first_tri[i] + tri_count[i])``
    in the *reordered* triangle mesh (``tri_indices`` maps back to the
    original order).  Node 0 is always the root.
    """

    def __init__(
        self,
        lo: np.ndarray,
        hi: np.ndarray,
        left: np.ndarray,
        right: np.ndarray,
        first_tri: np.ndarray,
        tri_count: np.ndarray,
        parent: np.ndarray,
        mesh: TriangleMesh,
        tri_indices: np.ndarray,
    ) -> None:
        self.lo = np.asarray(lo, dtype=np.float64)
        self.hi = np.asarray(hi, dtype=np.float64)
        self.left = np.asarray(left, dtype=np.int64)
        self.right = np.asarray(right, dtype=np.int64)
        self.first_tri = np.asarray(first_tri, dtype=np.int64)
        self.tri_count = np.asarray(tri_count, dtype=np.int64)
        self.parent = np.asarray(parent, dtype=np.int64)
        self.mesh = mesh
        self.tri_indices = np.asarray(tri_indices, dtype=np.int64)
        self._depth: np.ndarray | None = None
        self._ancestors: Dict[int, np.ndarray] = {}
        self._hot: HotBVH | None = None
        self._tri_to_leaf: np.ndarray | None = None
        self._levels: List[np.ndarray] | None = None

    # ------------------------------------------------------------------
    # Pickling (``sm_jobs`` worker processes)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Drop derived caches so worker-process pickles stay small.

        The hot layout, ancestor tables, depth and triangle-to-leaf maps
        are all recomputed on demand from the flat arrays; shipping them
        to ``simulate_workload(..., sm_jobs=N)`` workers only inflates
        IPC payloads.
        """
        state = self.__dict__.copy()
        state["_depth"] = None
        state["_ancestors"] = {}
        state["_hot"] = None
        state["_tri_to_leaf"] = None
        state["_levels"] = None
        return state

    # ------------------------------------------------------------------
    # Basic structure
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Total number of nodes (interior + leaf)."""
        return self.lo.shape[0]

    @property
    def num_triangles(self) -> int:
        """Number of triangles referenced by the tree."""
        return len(self.mesh)

    def is_leaf(self, node: int) -> bool:
        """True if ``node`` is a leaf."""
        return self.left[node] < 0

    def root_aabb(self) -> AABB:
        """Bounding box of the whole tree (the scene AABB)."""
        return AABB(tuple(self.lo[0]), tuple(self.hi[0]))

    def depths(self) -> np.ndarray:
        """Per-node depth (root = 0), computed once and cached.

        Level-synchronous: each pass advances every node's ancestor
        pointer one hop at once, so the work is O(depth) numpy kernels
        instead of a Python loop over nodes.
        """
        if self._depth is None:
            depth = np.zeros(self.num_nodes, dtype=np.int64)
            ancestor = self.parent.copy()
            live = np.nonzero(ancestor >= 0)[0]
            while live.size:
                depth[live] += 1
                ancestor[live] = self.parent[ancestor[live]]
                live = live[ancestor[live] >= 0]
            self._depth = depth
        return self._depth

    def max_depth(self) -> int:
        """Depth of the deepest node; Table 1 reports this per scene."""
        return int(self.depths().max()) if self.num_nodes else 0

    def leaf_nodes(self) -> np.ndarray:
        """Indices of all leaf nodes."""
        return np.nonzero(self.left < 0)[0]

    def interior_nodes(self) -> np.ndarray:
        """Indices of all interior nodes."""
        return np.nonzero(self.left >= 0)[0]

    def levels(self) -> List[np.ndarray]:
        """Node indices bucketed by depth (``levels()[d]`` sorted).

        The depth-ordered schedule the vectorized refit folds over:
        a bottom-up sweep touches ``levels()[-1]`` first and reaches the
        root last, one segmented reduction per depth.  Computed once and
        cached (dropped on pickle like the other derived views).
        """
        if self._levels is None:
            depth = self.depths()
            by_depth = np.argsort(depth, kind="stable")
            counts = np.bincount(depth)
            bounds = np.concatenate(([0], np.cumsum(counts)))
            self._levels = [
                by_depth[bounds[d]:bounds[d + 1]]
                for d in range(counts.size)
            ]
        return self._levels

    def leaf_of_triangle(self) -> np.ndarray:
        """Map from reordered triangle index to its containing leaf node."""
        if self._tri_to_leaf is None:
            mapping = np.full(self.num_triangles, -1, dtype=np.int64)
            leaves = self.leaf_nodes()
            starts = self.first_tri[leaves]
            counts = self.tri_count[leaves]
            seg = np.repeat(np.arange(leaves.size, dtype=np.int64), counts)
            offsets = np.zeros(leaves.size, dtype=np.int64)
            np.cumsum(counts[:-1], out=offsets[1:])
            within = np.arange(int(counts.sum()), dtype=np.int64) - offsets[seg]
            mapping[starts[seg] + within] = leaves[seg]
            self._tri_to_leaf = mapping
        return self._tri_to_leaf

    # ------------------------------------------------------------------
    # Go Up Level support (Section 4.3)
    # ------------------------------------------------------------------
    def ancestor(self, node: int, level: int) -> int:
        """The ``level``-th ancestor of ``node`` (clamped at the root).

        Level 0 returns the node itself, level 1 its parent, and so on;
        this matches the paper's Go Up Level definition (Figure 7).
        """
        current = node
        for _ in range(level):
            up = self.parent[current]
            if up < 0:
                break
            current = int(up)
        return current

    def ancestors(self, level: int) -> np.ndarray:
        """Precomputed ``level``-th ancestor of every node.

        In hardware this value is stored in the node's padded space at
        build time (Figure 8); here we cache the array per level so a Go
        Up Level sweep does not pay the walk repeatedly.
        """
        if level not in self._ancestors:
            if level == 0:
                table = np.arange(self.num_nodes, dtype=np.int64)
            else:
                below = self.ancestors(level - 1)
                table = np.where(self.parent[below] >= 0, self.parent[below], below)
                # Root's parent is -1; keep the clamped node index instead.
                table = table.astype(np.int64)
            self._ancestors[level] = table
        return self._ancestors[level]

    def subtree_depth_from(self, node: int) -> int:
        """Height of the subtree rooted at ``node`` (leaf = 0)."""
        stack = [(node, 0)]
        best = 0
        while stack:
            current, d = stack.pop()
            if self.is_leaf(current):
                best = max(best, d)
            else:
                stack.append((int(self.left[current]), d + 1))
                stack.append((int(self.right[current]), d + 1))
        return best

    # ------------------------------------------------------------------
    # Simulated address space
    # ------------------------------------------------------------------
    def node_address(self, node: int) -> int:
        """Byte address of node ``node`` in the simulated address space."""
        return NODE_BASE_ADDRESS + NODE_SIZE_BYTES * node

    def triangle_address(self, tri: int) -> int:
        """Byte address of (reordered) triangle ``tri``."""
        return TRIANGLE_BASE_ADDRESS + TRIANGLE_SIZE_BYTES * tri

    def memory_footprint_bytes(self) -> int:
        """Bytes occupied by nodes plus triangle records."""
        return (
            NODE_SIZE_BYTES * self.num_nodes
            + TRIANGLE_SIZE_BYTES * self.num_triangles
        )

    # ------------------------------------------------------------------
    # Hot path
    # ------------------------------------------------------------------
    def hot(self) -> HotBVH:
        """Materialize (once) the plain-list view used by traversal loops."""
        if self._hot is None:
            v0 = self.mesh.v0
            v1 = self.mesh.v1
            v2 = self.mesh.v2
            self._hot = HotBVH(
                lo_x=self.lo[:, 0].tolist(),
                lo_y=self.lo[:, 1].tolist(),
                lo_z=self.lo[:, 2].tolist(),
                hi_x=self.hi[:, 0].tolist(),
                hi_y=self.hi[:, 1].tolist(),
                hi_z=self.hi[:, 2].tolist(),
                left=self.left.tolist(),
                right=self.right.tolist(),
                first_tri=self.first_tri.tolist(),
                tri_count=self.tri_count.tolist(),
                tri_v0=[tuple(row) for row in v0],
                tri_v1=[tuple(row) for row in v1],
                tri_v2=[tuple(row) for row in v2],
            )
        return self._hot
