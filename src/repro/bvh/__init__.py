"""Bounding Volume Hierarchy construction and flat storage.

The paper uses Aila-Laine style BVH trees (binary, axis-aligned boxes,
triangles in leaves) with one addition: the k-th ancestor of each node is
precomputed at build time and stored in the node's padded space so the
predictor's Go Up Level needs no extra memory accesses (Section 4.3,
Figure 8).  :class:`FlatBVH` mirrors that layout in structure-of-arrays
form and exposes :meth:`FlatBVH.ancestors` for any Go Up Level.
"""

from repro.bvh.builder import BinnedSAHBuilder, MedianSplitBuilder, build_bvh
from repro.bvh.cache import (
    BVHArtifactCache,
    cached_build_bvh,
    configure_artifact_cache,
    get_artifact_cache,
)
from repro.bvh.io import load_bvh, save_bvh
from repro.bvh.lbvh import LBVHBuilder
from repro.bvh.nodes import NODE_SIZE_BYTES, TRIANGLE_SIZE_BYTES, FlatBVH
from repro.bvh.refit import REFIT_ENGINES, jitter_mesh, refit_bvh
from repro.bvh.stats import BVHStats, compute_stats
from repro.bvh.validate import validate_bvh
from repro.bvh.vector import (
    BUILD_ENGINES,
    VectorBinnedSAHBuilder,
    VectorLBVHBuilder,
    VectorMedianSplitBuilder,
)

__all__ = [
    "BUILD_ENGINES",
    "NODE_SIZE_BYTES",
    "REFIT_ENGINES",
    "TRIANGLE_SIZE_BYTES",
    "BVHArtifactCache",
    "BVHStats",
    "BinnedSAHBuilder",
    "FlatBVH",
    "LBVHBuilder",
    "MedianSplitBuilder",
    "VectorBinnedSAHBuilder",
    "VectorLBVHBuilder",
    "VectorMedianSplitBuilder",
    "build_bvh",
    "cached_build_bvh",
    "compute_stats",
    "configure_artifact_cache",
    "get_artifact_cache",
    "jitter_mesh",
    "load_bvh",
    "refit_bvh",
    "save_bvh",
    "validate_bvh",
]
