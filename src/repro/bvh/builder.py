"""Top-down BVH builders.

Two classic strategies are provided:

* :class:`MedianSplitBuilder` - split the triangle set at the centroid
  median of the longest axis.  Fast, balanced, predictable memory use
  (the paper cites balance/predictability as a reason to choose BVHs).
* :class:`BinnedSAHBuilder` - greedy surface-area-heuristic split over a
  fixed number of centroid bins; the standard high-quality builder used
  by Aila-Laine style tracers.

Both emit nodes parent-before-children into a :class:`FlatBVH` and reorder
the triangle mesh so every leaf references a contiguous range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.bvh.nodes import FlatBVH
from repro.geometry.aabb import aabb_surface_area
from repro.geometry.triangle import TriangleMesh


@dataclass
class _BuildArrays:
    """Mutable node arrays accumulated during construction."""

    lo: List[Tuple[float, float, float]]
    hi: List[Tuple[float, float, float]]
    left: List[int]
    right: List[int]
    first_tri: List[int]
    tri_count: List[int]
    parent: List[int]

    def add_node(self, lo, hi, parent) -> int:
        """Append a placeholder node and return its index."""
        self.lo.append(tuple(lo))
        self.hi.append(tuple(hi))
        self.left.append(-1)
        self.right.append(-1)
        self.first_tri.append(0)
        self.tri_count.append(0)
        self.parent.append(parent)
        return len(self.lo) - 1


class _TopDownBuilder:
    """Shared machinery for top-down builders.

    Subclasses implement :meth:`_choose_split`, returning the index at
    which the (already ordered) triangle id slice should be partitioned,
    or ``None`` to make a leaf.
    """

    def __init__(self, max_leaf_size: int = 4) -> None:
        if max_leaf_size < 1:
            raise ValueError("max_leaf_size must be >= 1")
        self.max_leaf_size = max_leaf_size

    def build(self, mesh: TriangleMesh) -> FlatBVH:
        """Build a :class:`FlatBVH` over ``mesh``."""
        n = len(mesh)
        if n == 0:
            raise ValueError("cannot build a BVH over an empty mesh")
        tri_lo, tri_hi = mesh.bounds()
        centroids = mesh.centroids()
        order = np.arange(n, dtype=np.int64)
        arrays = _BuildArrays([], [], [], [], [], [], [])

        # Each work item: (node index, start, end) over `order`.
        root = arrays.add_node(
            tri_lo.min(axis=0), tri_hi.max(axis=0), -1
        )
        stack = [(root, 0, n)]
        while stack:
            node, start, end = stack.pop()
            count = end - start
            ids = order[start:end]
            split = None
            if count > self.max_leaf_size:
                split = self._choose_split(ids, centroids, tri_lo, tri_hi, order, start, end)
            if split is None:
                arrays.first_tri[node] = start
                arrays.tri_count[node] = count
                continue
            mid = split
            left_ids = order[start:mid]
            right_ids = order[mid:end]
            left_node = arrays.add_node(
                tri_lo[left_ids].min(axis=0), tri_hi[left_ids].max(axis=0), node
            )
            right_node = arrays.add_node(
                tri_lo[right_ids].min(axis=0), tri_hi[right_ids].max(axis=0), node
            )
            arrays.left[node] = left_node
            arrays.right[node] = right_node
            stack.append((right_node, mid, end))
            stack.append((left_node, start, mid))

        reordered = TriangleMesh(mesh.v0[order], mesh.v1[order], mesh.v2[order])
        return FlatBVH(
            lo=np.asarray(arrays.lo),
            hi=np.asarray(arrays.hi),
            left=np.asarray(arrays.left),
            right=np.asarray(arrays.right),
            first_tri=np.asarray(arrays.first_tri),
            tri_count=np.asarray(arrays.tri_count),
            parent=np.asarray(arrays.parent),
            mesh=reordered,
            tri_indices=order,
        )

    def _choose_split(
        self,
        ids: np.ndarray,
        centroids: np.ndarray,
        tri_lo: np.ndarray,
        tri_hi: np.ndarray,
        order: np.ndarray,
        start: int,
        end: int,
    ):
        raise NotImplementedError


class MedianSplitBuilder(_TopDownBuilder):
    """Split at the centroid median of the longest centroid-extent axis."""

    def _choose_split(self, ids, centroids, tri_lo, tri_hi, order, start, end):
        cents = centroids[ids]
        extent = cents.max(axis=0) - cents.min(axis=0)
        axis = int(np.argmax(extent))
        if extent[axis] <= 0.0:
            # All centroids coincide: split the id list in half anyway so
            # degenerate clusters still terminate.
            mid = start + (end - start) // 2
            return mid if mid > start and mid < end else None
        local = np.argsort(cents[:, axis], kind="stable")
        order[start:end] = ids[local]
        mid = start + (end - start) // 2
        return mid


class BinnedSAHBuilder(_TopDownBuilder):
    """Greedy binned surface-area-heuristic builder.

    Evaluates ``num_bins`` candidate splits per axis using the standard
    SAH cost ``SA_L * N_L + SA_R * N_R`` and falls back to a median split
    when binning degenerates.  ``traversal_cost``/``intersect_cost`` steer
    the leaf-creation decision.
    """

    def __init__(
        self,
        max_leaf_size: int = 4,
        num_bins: int = 16,
        traversal_cost: float = 1.0,
        intersect_cost: float = 1.0,
    ) -> None:
        super().__init__(max_leaf_size=max_leaf_size)
        if num_bins < 2:
            raise ValueError("num_bins must be >= 2")
        self.num_bins = num_bins
        self.traversal_cost = traversal_cost
        self.intersect_cost = intersect_cost

    def _choose_split(self, ids, centroids, tri_lo, tri_hi, order, start, end):
        cents = centroids[ids]
        c_lo = cents.min(axis=0)
        c_hi = cents.max(axis=0)
        extent = c_hi - c_lo

        best_cost = np.inf
        best_axis = -1
        best_bin = -1
        for axis in range(3):
            if extent[axis] <= 0.0:
                continue
            scale = self.num_bins / extent[axis]
            bins = np.minimum(
                ((cents[:, axis] - c_lo[axis]) * scale).astype(np.int64),
                self.num_bins - 1,
            )
            counts = np.bincount(bins, minlength=self.num_bins)
            # Accumulate bin bounds.
            bin_lo = np.full((self.num_bins, 3), np.inf)
            bin_hi = np.full((self.num_bins, 3), -np.inf)
            np.minimum.at(bin_lo, bins, tri_lo[ids])
            np.maximum.at(bin_hi, bins, tri_hi[ids])

            # Sweep left-to-right and right-to-left for prefix areas.
            left_counts = np.cumsum(counts)[:-1]
            right_counts = left_counts[-1] + counts[-1] - left_counts
            left_area = _prefix_areas(bin_lo, bin_hi)
            right_area = _prefix_areas(bin_lo[::-1], bin_hi[::-1])[::-1]
            with np.errstate(invalid="ignore"):
                cost = left_area[:-1] * left_counts + right_area[1:] * right_counts
            cost = np.where((left_counts == 0) | (right_counts == 0), np.inf, cost)
            idx = int(np.argmin(cost))
            if cost[idx] < best_cost:
                best_cost = cost[idx]
                best_axis = axis
                best_bin = idx

        count = end - start
        if best_axis < 0:
            # Binning degenerated (flat centroid cloud); force a median split.
            mid = start + count // 2
            return mid if count > self.max_leaf_size else None

        # Leaf test: compare split cost against testing all triangles here.
        parent_area = aabb_surface_area(tri_lo[ids].min(axis=0), tri_hi[ids].max(axis=0))
        if parent_area > 0.0:
            split_cost = self.traversal_cost + (
                self.intersect_cost * best_cost / parent_area
            )
            leaf_cost = self.intersect_cost * count
            if split_cost >= leaf_cost and count <= 2 * self.max_leaf_size:
                return None

        scale = self.num_bins / extent[best_axis]
        bins = np.minimum(
            ((cents[:, best_axis] - c_lo[best_axis]) * scale).astype(np.int64),
            self.num_bins - 1,
        )
        go_left = bins <= best_bin
        left_ids = ids[go_left]
        right_ids = ids[~go_left]
        if len(left_ids) == 0 or len(right_ids) == 0:
            mid = start + count // 2
            local = np.argsort(cents[:, best_axis], kind="stable")
            order[start:end] = ids[local]
            return mid
        order[start : start + len(left_ids)] = left_ids
        order[start + len(left_ids) : end] = right_ids
        return start + len(left_ids)


def _prefix_areas(bin_lo: np.ndarray, bin_hi: np.ndarray) -> np.ndarray:
    """Surface areas of the running unions of bins, front to back."""
    run_lo = np.minimum.accumulate(bin_lo, axis=0)
    run_hi = np.maximum.accumulate(bin_hi, axis=0)
    extent = run_hi - run_lo
    empty = np.any(extent < 0.0, axis=1)
    ex, ey, ez = extent[:, 0], extent[:, 1], extent[:, 2]
    area = 2.0 * (ex * ey + ey * ez + ez * ex)
    return np.where(empty, 0.0, area)


def _make_builder(method: str, engine: str, max_leaf_size: int, **kwargs):
    """Instantiate the builder for ``(method, engine)``."""
    if engine == "vector":
        from repro.bvh import vector

        classes = {
            "sah": vector.VectorBinnedSAHBuilder,
            "median": vector.VectorMedianSplitBuilder,
            "lbvh": vector.VectorLBVHBuilder,
        }
    elif engine == "scalar":
        from repro.bvh.lbvh import LBVHBuilder

        classes = {
            "sah": BinnedSAHBuilder,
            "median": MedianSplitBuilder,
            "lbvh": LBVHBuilder,
        }
    else:
        raise ValueError(f"unknown BVH build engine: {engine!r}")
    if method not in classes:
        raise ValueError(f"unknown BVH build method: {method!r}")
    return classes[method](max_leaf_size=max_leaf_size, **kwargs)


def build_bvh(
    mesh: TriangleMesh,
    method: str = "sah",
    max_leaf_size: int = 4,
    validate: bool = False,
    engine: str = "vector",
    **kwargs,
) -> FlatBVH:
    """Build a BVH over ``mesh`` using a named strategy.

    Args:
        mesh: the triangle soup.
        method: ``"sah"``, ``"median"``, or ``"lbvh"``.
        max_leaf_size: maximum triangles per leaf.
        validate: run the full structural invariant check
            (:func:`repro.bvh.validate.validate_bvh`) on the result -
            worth the O(n) pass before long experiments or when the
            input mesh is untrusted.
        engine: ``"vector"`` (default) runs the level-synchronous
            frontier builders in :mod:`repro.bvh.vector`; ``"scalar"``
            runs the per-node reference builders.  Both engines produce
            array-identical trees (asserted by the differential suite
            and the ``bvh_build`` benchmark gate), so the choice is
            purely a speed/debuggability trade.
        **kwargs: forwarded to the selected builder.

    Raises:
        BVHValidationError: with ``validate=True``, if the built tree
            violates a structural invariant.
    """
    from repro import telemetry
    from repro.telemetry.publish import publish_bvh

    with telemetry.span(
        "bvh.build", method=method, engine=engine, triangles=len(mesh)
    ) as sp:
        builder = _make_builder(method, engine, max_leaf_size, **kwargs)
        bvh = builder.build(mesh)
        sp.add(nodes=bvh.num_nodes)
    publish_bvh(bvh, method=method)
    if telemetry.enabled():
        levels = getattr(builder, "levels_built", 0)
        if levels:
            telemetry.inc_counter(
                "bvh.build_levels", levels, method=method, engine=engine
            )
    if validate:
        from repro.bvh.validate import validate_bvh

        validate_bvh(bvh)
    return bvh
