"""Linear BVH (Morton-order) builder.

Triangles are sorted by the Morton code of their centroid, then the
hierarchy is formed by recursively splitting the sorted sequence at the
highest differing code bit.  This is the classic LBVH construction; it
trades tree quality for build speed and gives the test suite a third,
structurally different builder to validate traversal against.
"""

from __future__ import annotations

import numpy as np

from repro.bvh.builder import _TopDownBuilder
from repro.geometry.morton import morton_codes
from repro.geometry.triangle import TriangleMesh


class LBVHBuilder(_TopDownBuilder):
    """Morton-code split builder."""

    def __init__(self, max_leaf_size: int = 4, bits: int = 10) -> None:
        super().__init__(max_leaf_size=max_leaf_size)
        self.bits = bits
        self._codes: np.ndarray | None = None

    def build(self, mesh: TriangleMesh):
        """Build: compute Morton codes, then run the top-down machinery."""
        lo, hi = mesh.bounds()
        self._codes = morton_codes(
            mesh.centroids(), lo.min(axis=0), hi.max(axis=0), bits=self.bits
        )
        return super().build(mesh)

    def _choose_split(self, ids, centroids, tri_lo, tri_hi, order, start, end):
        codes = self._codes[ids]
        local = np.argsort(codes, kind="stable")
        ids_sorted = ids[local]
        codes_sorted = codes[local]
        order[start:end] = ids_sorted

        first = int(codes_sorted[0])
        last = int(codes_sorted[-1])
        if first == last:
            # Identical codes: fall back to an object-median split.
            mid = start + (end - start) // 2
            return mid
        # Split where the highest differing bit flips.
        diff_bit = (first ^ last).bit_length() - 1
        mask = 1 << diff_bit
        prefix = first & ~((mask << 1) - 1)
        threshold = prefix | mask
        split_local = int(np.searchsorted(codes_sorted, threshold, side="left"))
        split = start + split_local
        if split <= start or split >= end:
            split = start + (end - start) // 2
        return split
