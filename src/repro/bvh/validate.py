"""Structural validation of a :class:`FlatBVH`.

Used by tests and by :func:`repro.bvh.build_bvh` callers that want a
hard guarantee before running long experiments.  Validation checks the
invariants traversal and the predictor rely on:

* node 0 is the root and every other node has a consistent parent link;
* all node bounds are finite (no NaN/inf coordinates);
* interior nodes have exactly two in-range children and bound them
  (parent-AABB containment);
* leaves use a consistent encoding (both child slots negative) and
  reference an in-range triangle span;
* leaves partition the triangle range exactly once;
* every triangle's AABB is contained in its leaf's AABB.

The fault-injection suite relies on this checker as its trusted
invariant source: a tree that passes here is safe for the traversal and
speculation guards to assume in-range child links.

Every check runs as whole-array numpy predicates (the per-node Python
loop this replaces dominated ``build_bvh(validate=True)`` on small
scenes); on failure the first offending node - lowest index - is
reported, matching the scan order of the original loop.
"""

from __future__ import annotations

import numpy as np

from repro.bvh.nodes import FlatBVH
from repro.errors import ReproError


class BVHValidationError(ReproError, AssertionError):
    """Raised when a BVH violates a structural invariant.

    Subclasses :class:`AssertionError` for backward compatibility and
    :class:`~repro.errors.ReproError` so the CLI maps it to an exit
    code.
    """


def _first(mask: np.ndarray, nodes: np.ndarray) -> int:
    """Lowest node index flagged by ``mask`` over ``nodes`` (ascending)."""
    return int(nodes[int(np.argmax(mask))])


def validate_bvh(bvh: FlatBVH, eps: float = 1e-9) -> None:
    """Check all structural invariants of ``bvh``.

    Raises:
        BVHValidationError: on the first violated invariant.
    """
    n = bvh.num_nodes
    if n == 0:
        raise BVHValidationError("BVH has no nodes")
    if bvh.parent[0] != -1:
        raise BVHValidationError("node 0 must be the root (parent == -1)")

    lo = bvh.lo
    hi = bvh.hi
    non_finite = ~(
        np.isfinite(lo).all(axis=1) & np.isfinite(hi).all(axis=1)
    )
    if non_finite.any():
        raise BVHValidationError(
            f"node {int(np.argmax(non_finite))} has non-finite bounds"
        )
    inverted = (lo > hi + eps).any(axis=1)
    if inverted.any():
        raise BVHValidationError(
            f"node {int(np.argmax(inverted))} has inverted bounds"
        )

    leaf_mask = bvh.left < 0
    bad_encoding = leaf_mask & (bvh.right >= 0)
    if bad_encoding.any():
        node = int(np.argmax(bad_encoding))
        raise BVHValidationError(
            f"leaf {node} has inconsistent child encoding "
            f"(left={int(bvh.left[node])}, right={int(bvh.right[node])})"
        )

    leaves = np.nonzero(leaf_mask)[0]
    starts = bvh.first_tri[leaves]
    counts = bvh.tri_count[leaves]
    empty = counts <= 0
    if empty.any():
        raise BVHValidationError(
            f"leaf {_first(empty, leaves)} holds no triangles"
        )
    out_of_range = (starts < 0) | (starts + counts > bvh.num_triangles)
    if out_of_range.any():
        raise BVHValidationError(
            f"leaf {_first(out_of_range, leaves)} triangle range out of bounds"
        )

    # Per-leaf triangle containment: fold each leaf's triangle bounds
    # with one gather + segmented reduction instead of a slice per leaf.
    tri_lo = np.minimum(np.minimum(bvh.mesh.v0, bvh.mesh.v1), bvh.mesh.v2)
    tri_hi = np.maximum(np.maximum(bvh.mesh.v0, bvh.mesh.v1), bvh.mesh.v2)
    if leaves.size:
        from repro.bvh.vector import concat_ranges

        positions, _, _, seg_offsets = concat_ranges(starts, starts + counts)
        span_lo = np.minimum.reduceat(tri_lo[positions], seg_offsets, axis=0)
        span_hi = np.maximum.reduceat(tri_hi[positions], seg_offsets, axis=0)
        unbounded = (
            (span_lo < lo[leaves] - eps).any(axis=1)
            | (span_hi > hi[leaves] + eps).any(axis=1)
        )
        if unbounded.any():
            raise BVHValidationError(
                f"leaf {_first(unbounded, leaves)} does not bound its triangles"
            )

    interior = np.nonzero(~leaf_mask)[0]
    left = bvh.left[interior]
    right = bvh.right[interior]
    bad_left = (left <= interior) | (left >= n)
    bad_right = (right <= interior) | (right >= n)
    bad_child = bad_left | bad_right
    if bad_child.any():
        at = int(np.argmax(bad_child))
        child = int(left[at]) if bad_left[at] else int(right[at])
        raise BVHValidationError(
            f"node {int(interior[at])} has invalid child index {child}"
        )

    referenced = np.bincount(np.concatenate((left, right)), minlength=n)
    shared = referenced > 1
    if shared.any():
        raise BVHValidationError(
            f"node {int(np.argmax(shared))} has two parents"
        )

    bad_parent_left = bvh.parent[left] != interior
    bad_parent_right = bvh.parent[right] != interior
    bad_parent = bad_parent_left | bad_parent_right
    if bad_parent.any():
        at = int(np.argmax(bad_parent))
        child = int(left[at]) if bad_parent_left[at] else int(right[at])
        raise BVHValidationError(
            f"child {child} parent link does not point to {int(interior[at])}"
        )

    escapes_left = (
        (lo[left] < lo[interior] - eps).any(axis=1)
        | (hi[left] > hi[interior] + eps).any(axis=1)
    )
    escapes_right = (
        (lo[right] < lo[interior] - eps).any(axis=1)
        | (hi[right] > hi[interior] + eps).any(axis=1)
    )
    escapes = escapes_left | escapes_right
    if escapes.any():
        at = int(np.argmax(escapes))
        child = int(left[at]) if escapes_left[at] else int(right[at])
        raise BVHValidationError(
            f"node {int(interior[at])} does not bound child {child}"
        )

    # Leaves must tile the triangle range exactly once; a difference
    # array turns the per-leaf interval sum into two scatters + cumsum.
    boundary = np.zeros(bvh.num_triangles + 1, dtype=np.int64)
    np.add.at(boundary, starts, 1)
    np.add.at(boundary, starts + counts, -1)
    covered = np.cumsum(boundary[:-1])
    if np.any(covered != 1):
        bad = int(np.argmax(covered != 1))
        raise BVHValidationError(
            f"triangle {bad} referenced {int(covered[bad])} times (expected once)"
        )

    orphans = np.nonzero(referenced == 0)[0]
    orphans = orphans[orphans != 0]
    if orphans.size:
        raise BVHValidationError(f"node {int(orphans[0])} is unreachable")

    # The permutation must be a bijection over the original triangles.
    perm = np.sort(bvh.tri_indices)
    if not np.array_equal(perm, np.arange(bvh.num_triangles)):
        raise BVHValidationError("tri_indices is not a permutation")
