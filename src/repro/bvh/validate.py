"""Structural validation of a :class:`FlatBVH`.

Used by tests and by :func:`repro.bvh.build_bvh` callers that want a
hard guarantee before running long experiments.  Validation checks the
invariants traversal and the predictor rely on:

* node 0 is the root and every other node has a consistent parent link;
* all node bounds are finite (no NaN/inf coordinates);
* interior nodes have exactly two in-range children and bound them
  (parent-AABB containment);
* leaves use a consistent encoding (both child slots negative) and
  reference an in-range triangle span;
* leaves partition the triangle range exactly once;
* every triangle's AABB is contained in its leaf's AABB.

The fault-injection suite relies on this checker as its trusted
invariant source: a tree that passes here is safe for the traversal and
speculation guards to assume in-range child links.
"""

from __future__ import annotations

import numpy as np

from repro.bvh.nodes import FlatBVH
from repro.errors import ReproError


class BVHValidationError(ReproError, AssertionError):
    """Raised when a BVH violates a structural invariant.

    Subclasses :class:`AssertionError` for backward compatibility and
    :class:`~repro.errors.ReproError` so the CLI maps it to an exit
    code.
    """


def validate_bvh(bvh: FlatBVH, eps: float = 1e-9) -> None:
    """Check all structural invariants of ``bvh``.

    Raises:
        BVHValidationError: on the first violated invariant.
    """
    n = bvh.num_nodes
    if n == 0:
        raise BVHValidationError("BVH has no nodes")
    if bvh.parent[0] != -1:
        raise BVHValidationError("node 0 must be the root (parent == -1)")

    seen_children = np.zeros(n, dtype=bool)
    covered = np.zeros(bvh.num_triangles, dtype=np.int64)
    for node in range(n):
        lo = bvh.lo[node]
        hi = bvh.hi[node]
        if not (np.all(np.isfinite(lo)) and np.all(np.isfinite(hi))):
            raise BVHValidationError(f"node {node} has non-finite bounds")
        if np.any(lo > hi + eps):
            raise BVHValidationError(f"node {node} has inverted bounds")
        if bvh.is_leaf(node):
            if int(bvh.left[node]) >= 0 or int(bvh.right[node]) >= 0:
                raise BVHValidationError(
                    f"leaf {node} has inconsistent child encoding "
                    f"(left={int(bvh.left[node])}, right={int(bvh.right[node])})"
                )
            start = int(bvh.first_tri[node])
            count = int(bvh.tri_count[node])
            if count <= 0:
                raise BVHValidationError(f"leaf {node} holds no triangles")
            if start < 0 or start + count > bvh.num_triangles:
                raise BVHValidationError(f"leaf {node} triangle range out of bounds")
            covered[start : start + count] += 1
            tri_slice = slice(start, start + count)
            tri_lo = np.minimum(
                np.minimum(bvh.mesh.v0[tri_slice], bvh.mesh.v1[tri_slice]),
                bvh.mesh.v2[tri_slice],
            )
            tri_hi = np.maximum(
                np.maximum(bvh.mesh.v0[tri_slice], bvh.mesh.v1[tri_slice]),
                bvh.mesh.v2[tri_slice],
            )
            if np.any(tri_lo < lo - eps) or np.any(tri_hi > hi + eps):
                raise BVHValidationError(f"leaf {node} does not bound its triangles")
        else:
            left = int(bvh.left[node])
            right = int(bvh.right[node])
            for child in (left, right):
                if child <= node or child >= n:
                    raise BVHValidationError(
                        f"node {node} has invalid child index {child}"
                    )
                if seen_children[child]:
                    raise BVHValidationError(f"node {child} has two parents")
                seen_children[child] = True
                if bvh.parent[child] != node:
                    raise BVHValidationError(
                        f"child {child} parent link does not point to {node}"
                    )
                if np.any(bvh.lo[child] < lo - eps) or np.any(bvh.hi[child] > hi + eps):
                    raise BVHValidationError(
                        f"node {node} does not bound child {child}"
                    )

    if np.any(covered != 1):
        bad = int(np.nonzero(covered != 1)[0][0])
        raise BVHValidationError(
            f"triangle {bad} referenced {int(covered[bad])} times (expected once)"
        )
    orphans = np.nonzero(~seen_children)[0]
    orphans = orphans[orphans != 0]
    if orphans.size:
        raise BVHValidationError(f"node {int(orphans[0])} is unreachable")

    # The permutation must be a bijection over the original triangles.
    perm = np.sort(bvh.tri_indices)
    if not np.array_equal(perm, np.arange(bvh.num_triangles)):
        raise BVHValidationError("tri_indices is not a permutation")
