"""Level-synchronous vectorized BVH construction.

The scalar builders in :mod:`repro.bvh.builder` process one node per
Python iteration; this module processes the *entire frontier* of open
nodes at one depth per pass, so the number of kernel launches is bounded
by tree depth rather than node count - the same ray-stream discipline
:mod:`repro.trace.wavefront` and :mod:`repro.gpu.vec_rt_unit` apply to
traversal and timing.

Per level, for all open segments of the shared triangle ``order`` array
at once:

* segment geometry (centroid/tri bounds) is gathered once and reduced
  with ``np.minimum.reduceat``/``np.maximum.reduceat`` at segment
  offsets;
* binned SAH evaluates every ``(segment, axis, bin)`` candidate through
  one ``np.bincount`` over ``segment * num_bins + bin`` keys plus one
  stable argsort per axis for the segmented bin bounds;
* partitioning is a single stable ``np.lexsort`` on
  ``(segment, go-right)`` keys (centroid or Morton keys for the
  median/LBVH paths), so each segment is permuted exactly as the scalar
  builder's per-node stable argsort would;
* children are emitted in BFS order and then renumbered to the scalar
  builders' DFS pre-order via interior-subtree counts, making the
  output :class:`~repro.bvh.nodes.FlatBVH` *array-identical* to the
  scalar oracle (topology, triangle order, and bit-for-bit bounds).

Every floating-point expression mirrors the scalar code exactly: min/max
reductions are exact, the SAH cost uses the same product/sum ordering,
and all sorts are stable, so equality is bitwise rather than
approximate.  The differential tests in ``tests/test_vector_build.py``
assert this on all seven scenes and under Hypothesis-generated meshes.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.bvh.nodes import FlatBVH
from repro.geometry.morton import morton_codes
from repro.geometry.triangle import TriangleMesh

#: Engines accepted by :func:`repro.bvh.build_bvh` (first is the default).
BUILD_ENGINES = ("vector", "scalar")


def concat_ranges(
    starts: np.ndarray, ends: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Flatten ``[starts[i], ends[i])`` ranges into one gather index.

    Returns ``(positions, seg_of, counts, seg_offsets)`` where
    ``positions`` enumerates every index of every range segment-major,
    ``seg_of[j]`` is the segment owning ``positions[j]``, and
    ``seg_offsets[i]`` is where segment ``i`` begins in the flattened
    array (the offsets a ``reduceat`` over the gathered values wants).
    """
    counts = ends - starts
    total = int(counts.sum())
    seg_of = np.repeat(np.arange(starts.size, dtype=np.int64), counts)
    seg_offsets = np.zeros(starts.size, dtype=np.int64)
    np.cumsum(counts[:-1], out=seg_offsets[1:])
    within = np.arange(total, dtype=np.int64) - seg_offsets[seg_of]
    positions = starts[seg_of] + within
    return positions, seg_of, counts, seg_offsets


def _segment_surface_areas(extent: np.ndarray) -> np.ndarray:
    """``aabb_surface_area`` for an ``(n, 3)`` extent array (non-empty)."""
    ex, ey, ez = extent[:, 0], extent[:, 1], extent[:, 2]
    return 2.0 * (ex * ey + ey * ez + ez * ex)


def _prefix_areas_2d(bin_lo: np.ndarray, bin_hi: np.ndarray) -> np.ndarray:
    """Running-union surface areas per segment, front to back.

    ``bin_lo``/``bin_hi`` are ``(k, num_bins, 3)``; empty prefixes (all
    bins so far empty) come out as 0.0 exactly like the scalar
    ``_prefix_areas``.
    """
    run_lo = np.minimum.accumulate(bin_lo, axis=1)
    run_hi = np.maximum.accumulate(bin_hi, axis=1)
    extent = run_hi - run_lo
    empty = np.any(extent < 0.0, axis=2)
    ex, ey, ez = extent[..., 0], extent[..., 1], extent[..., 2]
    area = 2.0 * (ex * ey + ey * ez + ez * ex)
    return np.where(empty, 0.0, area)


def _high_bit(x: np.ndarray) -> np.ndarray:
    """Index of the highest set bit per element (``x`` uint64, > 0).

    Branch-free shift ladder; entries that are 0 return 0 (callers mask
    them out).  Exact for the full 63-bit Morton range - a float ``log2``
    would misplace bits above 2**52.
    """
    out = np.zeros(x.shape, dtype=np.uint64)
    v = x.copy()
    for shift in (32, 16, 8, 4, 2, 1):
        s = np.uint64(shift)
        big = v >= (np.uint64(1) << s)
        out[big] += s
        v[big] >>= s
    return out


class _LevelPlan:
    """One level's split decisions for every candidate segment.

    ``keys`` is the per-triangle stable-sort key (constant within a
    segment means "do not reorder"); ``leaf`` marks candidate segments
    that become leaves anyway (SAH cost says stop); ``split_abs`` is the
    absolute partition index into ``order`` for segments that do split.
    """

    __slots__ = ("keys", "leaf", "split_abs")

    def __init__(self, keys: np.ndarray, leaf: np.ndarray,
                 split_abs: np.ndarray) -> None:
        self.keys = keys
        self.leaf = leaf
        self.split_abs = split_abs


class _VectorFrontierBuilder:
    """Shared level-synchronous machinery for the vector builders.

    Subclasses implement :meth:`_plan_level`, which decides - for the
    whole frontier at once - which candidate segments become leaves,
    where the rest split, and what key orders their triangles.
    """

    def __init__(self, max_leaf_size: int = 4) -> None:
        if max_leaf_size < 1:
            raise ValueError("max_leaf_size must be >= 1")
        self.max_leaf_size = max_leaf_size
        #: Frontier passes executed by the last :meth:`build` call
        #: (== max tree depth + 1); feeds the ``bvh.build_levels``
        #: telemetry counter.
        self.levels_built = 0

    def build(self, mesh: TriangleMesh) -> FlatBVH:
        """Build a :class:`FlatBVH` over ``mesh``, one level per pass."""
        n = len(mesh)
        if n == 0:
            raise ValueError("cannot build a BVH over an empty mesh")
        tri_lo, tri_hi = mesh.bounds()
        cents = mesh.centroids()
        order = np.arange(n, dtype=np.int64)
        self._prepare(mesh, tri_lo, tri_hi)

        # BFS node arrays accumulate as per-level chunks; within a level
        # children appear in frontier order, so concatenation order ==
        # BFS id order.
        lo_chunks = [tri_lo.min(axis=0)[None, :]]
        hi_chunks = [tri_hi.max(axis=0)[None, :]]
        parent_chunks = [np.full(1, -1, dtype=np.int64)]
        level_chunks = [np.zeros(1, dtype=np.int64)]
        left_chunks, right_chunks = [], []
        first_chunks, count_chunks = [], []

        starts = np.zeros(1, dtype=np.int64)
        ends = np.full(1, n, dtype=np.int64)
        bfs_ids = np.zeros(1, dtype=np.int64)
        total_nodes = 1
        self.levels_built = 0

        while starts.size:
            self.levels_built += 1
            k = starts.size
            counts = ends - starts
            leaf = counts <= self.max_leaf_size
            cand = np.nonzero(~leaf)[0]
            split_abs = np.zeros(k, dtype=np.int64)
            if cand.size:
                pos, seg, _, seg_off = concat_ranges(starts[cand], ends[cand])
                ids = order[pos]
                plan = self._plan_level(
                    ids, cents, tri_lo, tri_hi, seg, seg_off,
                    starts[cand], counts[cand],
                )
                # Segments the plan turned into leaves must not reorder:
                # zero their keys so the stable sort is the identity.
                keys = plan.keys
                leaf_tris = plan.leaf[seg]
                if leaf_tris.any():
                    keys = keys.copy()
                    keys[leaf_tris] = 0
                # One stable sort partitions/permutes every splitting
                # segment exactly as the scalar per-node argsort would.
                perm = np.lexsort((keys, seg))
                order[pos] = ids[perm]
                leaf[cand[plan.leaf]] = True
                split_abs[cand] = plan.split_abs

            split_rows = np.nonzero(~leaf)[0]
            s = split_rows.size

            first_chunk = np.where(leaf, starts, 0)
            count_chunk = np.where(leaf, counts, 0)
            left_chunk = np.full(k, -1, dtype=np.int64)
            right_chunk = np.full(k, -1, dtype=np.int64)
            if s:
                left_ids = total_nodes + 2 * np.arange(s, dtype=np.int64)
                left_chunk[split_rows] = left_ids
                right_chunk[split_rows] = left_ids + 1
            first_chunks.append(first_chunk)
            count_chunks.append(count_chunk)
            left_chunks.append(left_chunk)
            right_chunks.append(right_chunk)

            if not s:
                break

            # Emit children: bounds from one gather + segmented
            # reduction over the freshly permuted order.
            s_starts = starts[split_rows]
            s_ends = ends[split_rows]
            s_mids = split_abs[split_rows]
            pos2, _, s_counts, seg_off2 = concat_ranges(s_starts, s_ends)
            ids2 = order[pos2]
            mids_rel = s_mids - s_starts
            child_off = np.stack(
                (seg_off2, seg_off2 + mids_rel), axis=1
            ).reshape(-1)
            child_lo = np.minimum.reduceat(tri_lo[ids2], child_off, axis=0)
            child_hi = np.maximum.reduceat(tri_hi[ids2], child_off, axis=0)

            lo_chunks.append(child_lo)
            hi_chunks.append(child_hi)
            parent_chunks.append(np.repeat(bfs_ids[split_rows], 2))
            level_chunks.append(
                np.full(2 * s, self.levels_built, dtype=np.int64)
            )

            starts = np.stack((s_starts, s_mids), axis=1).reshape(-1)
            ends = np.stack((s_mids, s_ends), axis=1).reshape(-1)
            bfs_ids = total_nodes + np.arange(2 * s, dtype=np.int64)
            total_nodes += 2 * s

        lo = np.concatenate(lo_chunks, axis=0)
        hi = np.concatenate(hi_chunks, axis=0)
        parent = np.concatenate(parent_chunks)
        level = np.concatenate(level_chunks)
        left = np.concatenate(left_chunks)
        right = np.concatenate(right_chunks)
        first_tri = np.concatenate(first_chunks)
        tri_count = np.concatenate(count_chunks)

        new_idx = _dfs_preorder_renumber(left, right, level)
        inv = np.empty(total_nodes, dtype=np.int64)
        inv[new_idx] = np.arange(total_nodes, dtype=np.int64)

        old_left = left[inv]
        old_right = right[inv]
        old_parent = parent[inv]
        left_f = np.where(
            old_left >= 0, new_idx[np.maximum(old_left, 0)], -1
        )
        right_f = np.where(
            old_right >= 0, new_idx[np.maximum(old_right, 0)], -1
        )
        parent_f = np.where(
            old_parent >= 0, new_idx[np.maximum(old_parent, 0)], -1
        )

        reordered = TriangleMesh(mesh.v0[order], mesh.v1[order], mesh.v2[order])
        return FlatBVH(
            lo=lo[inv],
            hi=hi[inv],
            left=left_f,
            right=right_f,
            first_tri=first_tri[inv],
            tri_count=tri_count[inv],
            parent=parent_f,
            mesh=reordered,
            tri_indices=order,
        )

    # ------------------------------------------------------------------
    def _prepare(self, mesh: TriangleMesh, tri_lo: np.ndarray,
                 tri_hi: np.ndarray) -> None:
        """Per-build precomputation hook (LBVH computes Morton codes)."""

    def _plan_level(self, ids, cents, tri_lo, tri_hi, seg, seg_off,
                    starts, counts) -> _LevelPlan:
        raise NotImplementedError


def _dfs_preorder_renumber(left: np.ndarray, right: np.ndarray,
                           level: np.ndarray) -> np.ndarray:
    """Map BFS node ids to the scalar builders' DFS pre-order numbering.

    The scalar ``_TopDownBuilder`` pops work left-first, allocating the
    child pair of the ``k``-th interior node it pops (DFS pre-order) at
    indices ``2k+1``/``2k+2``.  Reproduce that with two level passes:
    a bottom-up pass counts interior nodes per subtree, a top-down pass
    propagates each interior node's pre-order rank
    (``rank(l) = rank(v) + 1``,
    ``rank(r) = rank(v) + 1 + interior_count(l)``), and children then
    renumber directly off their parent's rank.
    """
    n = left.size
    new_idx = np.zeros(n, dtype=np.int64)
    if n == 1:
        return new_idx
    interior = left >= 0
    by_level = np.argsort(level, kind="stable")
    level_counts = np.bincount(level)
    level_ends = np.cumsum(level_counts)
    max_level = level_counts.size - 1

    icount = np.zeros(n, dtype=np.int64)
    rank = np.zeros(n, dtype=np.int64)
    for d in range(max_level, -1, -1):
        nodes = by_level[level_ends[d] - level_counts[d]:level_ends[d]]
        ints = nodes[interior[nodes]]
        if ints.size:
            icount[ints] = 1 + icount[left[ints]] + icount[right[ints]]
    for d in range(max_level):
        nodes = by_level[level_ends[d] - level_counts[d]:level_ends[d]]
        ints = nodes[interior[nodes]]
        if ints.size:
            le = left[ints]
            ri = right[ints]
            rank[le] = rank[ints] + 1
            rank[ri] = rank[ints] + 1 + icount[le]
            new_idx[le] = 2 * rank[ints] + 1
            new_idx[ri] = 2 * rank[ints] + 2
    return new_idx


class VectorMedianSplitBuilder(_VectorFrontierBuilder):
    """Level-synchronous twin of :class:`~repro.bvh.builder.MedianSplitBuilder`."""

    def _plan_level(self, ids, cents, tri_lo, tri_hi, seg, seg_off,
                    starts, counts):
        c = cents[ids]
        c_lo = np.minimum.reduceat(c, seg_off, axis=0)
        c_hi = np.maximum.reduceat(c, seg_off, axis=0)
        extent = c_hi - c_lo
        k = starts.size
        axis = np.argmax(extent, axis=1)
        spread = extent[np.arange(k), axis] > 0.0
        keys = np.zeros(ids.size, dtype=np.float64)
        live = spread[seg]
        # Degenerate segments (coincident centroids) keep their order
        # and still split at the median, exactly like the scalar path.
        keys[live] = c[live, axis[seg[live]]]
        leaf = np.zeros(k, dtype=bool)
        split_abs = starts + counts // 2
        return _LevelPlan(keys, leaf, split_abs)


class VectorBinnedSAHBuilder(_VectorFrontierBuilder):
    """Level-synchronous twin of :class:`~repro.bvh.builder.BinnedSAHBuilder`.

    Evaluates every ``(segment, axis, bin)`` split candidate of the
    frontier in one cost tensor; the flat C-order ``argmin`` reproduces
    the scalar cross-axis strict-``<`` tie-breaking exactly.
    """

    def __init__(
        self,
        max_leaf_size: int = 4,
        num_bins: int = 16,
        traversal_cost: float = 1.0,
        intersect_cost: float = 1.0,
    ) -> None:
        super().__init__(max_leaf_size=max_leaf_size)
        if num_bins < 2:
            raise ValueError("num_bins must be >= 2")
        self.num_bins = num_bins
        self.traversal_cost = traversal_cost
        self.intersect_cost = intersect_cost

    def _plan_level(self, ids, cents, tri_lo, tri_hi, seg, seg_off,
                    starts, counts):
        nb = self.num_bins
        k = starts.size
        t = ids.size
        c = cents[ids]
        tl = tri_lo[ids]
        th = tri_hi[ids]
        c_lo = np.minimum.reduceat(c, seg_off, axis=0)
        c_hi = np.maximum.reduceat(c, seg_off, axis=0)
        extent = c_hi - c_lo

        cost = np.full((k, 3, nb - 1), np.inf)
        axis_bins = np.zeros((3, t), dtype=np.int64)
        for axis in range(3):
            live = extent[:, axis] > 0.0
            scale = np.zeros(k)
            scale[live] = nb / extent[live, axis]
            bins = np.minimum(
                ((c[:, axis] - c_lo[seg, axis]) * scale[seg]).astype(np.int64),
                nb - 1,
            )
            axis_bins[axis] = bins
            flat_bin = seg * nb + bins
            bin_counts = np.bincount(
                flat_bin, minlength=k * nb
            ).reshape(k, nb)
            # Segmented bin bounds: one stable argsort groups each
            # (segment, bin) run, reduceat folds it, and the result is
            # scattered into a dense (k, nb) grid (absent bins keep the
            # +/-inf identities the scalar np.minimum.at starts from).
            grouped = np.argsort(flat_bin, kind="stable")
            sorted_bins = flat_bin[grouped]
            run_starts = np.flatnonzero(
                np.concatenate(([True], sorted_bins[1:] != sorted_bins[:-1]))
            )
            present = sorted_bins[run_starts]
            bin_lo = np.full((k * nb, 3), np.inf)
            bin_hi = np.full((k * nb, 3), -np.inf)
            bin_lo[present] = np.minimum.reduceat(
                tl[grouped], run_starts, axis=0
            )
            bin_hi[present] = np.maximum.reduceat(
                th[grouped], run_starts, axis=0
            )
            bin_lo = bin_lo.reshape(k, nb, 3)
            bin_hi = bin_hi.reshape(k, nb, 3)

            left_counts = np.cumsum(bin_counts, axis=1)[:, :-1]
            right_counts = counts[:, None] - left_counts
            left_area = _prefix_areas_2d(bin_lo, bin_hi)
            right_area = _prefix_areas_2d(
                bin_lo[:, ::-1], bin_hi[:, ::-1]
            )[:, ::-1]
            with np.errstate(invalid="ignore"):
                axis_cost = (
                    left_area[:, :-1] * left_counts
                    + right_area[:, 1:] * right_counts
                )
            axis_cost = np.where(
                (left_counts == 0) | (right_counts == 0), np.inf, axis_cost
            )
            axis_cost[~live] = np.inf
            cost[:, axis, :] = axis_cost

        flat_cost = cost.reshape(k, -1)
        best_flat = np.argmin(flat_cost, axis=1)
        best_cost = flat_cost[np.arange(k), best_flat]
        has_split = np.isfinite(best_cost)
        best_axis = best_flat // (nb - 1)
        best_bin = best_flat % (nb - 1)

        # Leaf test against the cost of intersecting everything here.
        p_lo = np.minimum.reduceat(tl, seg_off, axis=0)
        p_hi = np.maximum.reduceat(th, seg_off, axis=0)
        parent_area = _segment_surface_areas(p_hi - p_lo)
        leaf = np.zeros(k, dtype=bool)
        measurable = has_split & (parent_area > 0.0)
        if measurable.any():
            split_cost = self.traversal_cost + (
                self.intersect_cost * best_cost[measurable]
                / parent_area[measurable]
            )
            leaf_cost = self.intersect_cost * counts[measurable]
            leaf[measurable] = (split_cost >= leaf_cost) & (
                counts[measurable] <= 2 * self.max_leaf_size
            )

        bins_best = axis_bins[best_axis[seg], np.arange(t)]
        go_left = bins_best <= best_bin[seg]
        n_left = np.bincount(seg[go_left], minlength=k)
        splitting = has_split & ~leaf
        one_sided = splitting & ((n_left == 0) | (n_left == counts))
        binned = splitting & ~one_sided

        keys = np.zeros(t, dtype=np.float64)
        on_binned = binned[seg]
        keys[on_binned] = (~go_left[on_binned]).astype(np.float64)
        on_sided = one_sided[seg]
        # Every candidate landed in one bin: fall back to the scalar
        # path's stable centroid sort + median split.
        keys[on_sided] = c[on_sided, best_axis[seg[on_sided]]]
        # ~has_split (flat centroid cloud): keys stay 0 -> no reorder,
        # forced median split, again matching the scalar fallback.

        mid = starts + counts // 2
        split_abs = np.where(binned, starts + n_left, mid)
        return _LevelPlan(keys, leaf, split_abs)


class VectorLBVHBuilder(_VectorFrontierBuilder):
    """Level-synchronous twin of :class:`~repro.bvh.lbvh.LBVHBuilder`.

    Keys every segment by raw uint64 Morton codes (never cast to float:
    codes reach ``3 * bits`` bits and would lose exactness past 2**52)
    and finds each segment's highest differing bit with a shift ladder.
    """

    def __init__(self, max_leaf_size: int = 4, bits: int = 10) -> None:
        super().__init__(max_leaf_size=max_leaf_size)
        self.bits = bits
        self._codes: np.ndarray | None = None

    def _prepare(self, mesh: TriangleMesh, tri_lo: np.ndarray,
                 tri_hi: np.ndarray) -> None:
        self._codes = morton_codes(
            mesh.centroids(), tri_lo.min(axis=0), tri_hi.max(axis=0),
            bits=self.bits,
        )

    def _plan_level(self, ids, cents, tri_lo, tri_hi, seg, seg_off,
                    starts, counts):
        codes = self._codes[ids]
        k = starts.size
        first = np.minimum.reduceat(codes, seg_off)
        last = np.maximum.reduceat(codes, seg_off)
        distinct = first != last

        diff_bit = _high_bit(first ^ last)
        mask = np.uint64(1) << diff_bit
        one = np.uint64(1)
        prefix = first & ~((mask << one) - one)
        threshold = prefix | mask
        below = codes < threshold[seg]
        n_below = np.bincount(seg[below], minlength=k)

        mid = starts + counts // 2
        split_abs = np.where(distinct, starts + n_below, mid)
        # A split falling on a segment edge (possible when one code
        # dominates) degrades to the object median, like the scalar
        # clamp.
        edge = (split_abs <= starts) | (split_abs >= starts + counts)
        split_abs = np.where(edge, mid, split_abs)
        leaf = np.zeros(k, dtype=bool)
        return _LevelPlan(codes, leaf, split_abs)


def trees_identical(a, b) -> bool:
    """True iff two :class:`~repro.bvh.nodes.FlatBVH` trees are
    array-identical - every node array, the reordered mesh, and the
    triangle permutation.  This is the engine-equivalence contract the
    differential suite and the ``bvh_build`` benchmark gate check.
    """
    return (
        np.array_equal(a.lo, b.lo)
        and np.array_equal(a.hi, b.hi)
        and np.array_equal(a.left, b.left)
        and np.array_equal(a.right, b.right)
        and np.array_equal(a.first_tri, b.first_tri)
        and np.array_equal(a.tri_count, b.tri_count)
        and np.array_equal(a.parent, b.parent)
        and np.array_equal(a.tri_indices, b.tri_indices)
        and np.array_equal(a.mesh.v0, b.mesh.v0)
        and np.array_equal(a.mesh.v1, b.mesh.v1)
        and np.array_equal(a.mesh.v2, b.mesh.v2)
    )


__all__ = [
    "BUILD_ENGINES",
    "VectorBinnedSAHBuilder",
    "VectorLBVHBuilder",
    "VectorMedianSplitBuilder",
    "concat_ranges",
    "trees_identical",
]
