"""Content-addressed on-disk cache of built BVHs.

A sweep rebuilds the same BVH for every process that touches a scene:
``repro bench --jobs N`` workers, resumed sweeps, and repeated ablation
runs all pay the SAH build again even though its inputs have not
changed.  This cache keys a built tree by a digest of everything that
determines it - the mesh content, the builder configuration, and the
on-disk :data:`~repro.bvh.io.FORMAT_VERSION` - so a repeated build is a
single ``.npz`` load and a *stale* hit is structurally impossible: any
change to the inputs changes the key, and a key collision would require
a SHA-256 collision.

Crash consistency uses the same write-temp-then-rename dance as
:class:`~repro.resilience.checkpoint.SweepCheckpoint`: entries are
written to a unique temp file in the cache directory and atomically
swapped into place with ``os.replace``, so concurrent workers racing on
the same key each produce a complete file and the last rename wins
(both wrote identical bytes' worth of arrays).  An unreadable entry is
treated as a miss, deleted, and rebuilt.

The cache is opt-in: pass ``--artifact-cache DIR`` to ``repro bench`` /
``repro simulate`` (or set ``REPRO_ARTIFACT_CACHE=DIR``) to enable it.
Resumable sweeps embed :meth:`BVHArtifactCache.fingerprint` in their
checkpoint fingerprint, so a checkpoint written with the cache enabled
can never be silently resumed without it (or vice versa, or across a
format-version bump).
"""

from __future__ import annotations

import hashlib
import os
from typing import Optional

import numpy as np

from repro import telemetry
from repro.bvh.builder import build_bvh
from repro.bvh.io import FORMAT_VERSION, load_bvh, save_bvh
from repro.bvh.nodes import FlatBVH
from repro.geometry.triangle import TriangleMesh

#: Environment variable naming the cache directory (opt-in).
ARTIFACT_CACHE_ENV = "REPRO_ARTIFACT_CACHE"


def mesh_digest(mesh: TriangleMesh) -> str:
    """SHA-256 of the mesh's vertex content (the build input)."""
    h = hashlib.sha256()
    for arr in (mesh.v0, mesh.v1, mesh.v2):
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


class BVHArtifactCache:
    """Content-addressed store of built BVHs under one directory.

    Attributes:
        root: cache directory (created on first write).
        hits / misses / invalidated: per-process counters for the
            artifact's cache section.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        self.hits = 0
        self.misses = 0
        self.invalidated = 0

    # ------------------------------------------------------------------
    def key(self, mesh: TriangleMesh, method: str = "sah",
            max_leaf_size: int = 4) -> str:
        """The content address of the BVH these inputs determine.

        The build *engine* is deliberately absent: the vector and
        scalar builders are contractually array-identical (enforced by
        the differential suite and the ``bvh_build`` benchmark gate),
        so both resolve to the same artifact.
        """
        material = (
            f"bvh/{FORMAT_VERSION}/{method}/{max_leaf_size}/"
            f"{mesh_digest(mesh)}"
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.npz")

    # ------------------------------------------------------------------
    def load(self, key: str) -> Optional[FlatBVH]:
        """The cached BVH for ``key``, or None on a miss.

        A present-but-unreadable entry (torn by a crash predating the
        atomic-rename scheme, or bit-rotted) counts as a miss and is
        deleted so the rebuilt tree replaces it.
        """
        path = self.path(key)
        if not os.path.exists(path):
            return None
        try:
            bvh = load_bvh(path)
        except Exception:
            self.invalidated += 1
            telemetry.inc_counter("artifact_cache.invalidated")
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        return bvh

    def store(self, key: str, bvh: FlatBVH) -> str:
        """Persist ``bvh`` under ``key`` atomically; returns the path.

        The temp file carries the writer's PID so concurrent workers
        never collide on it; ``os.replace`` makes the final swap atomic
        within the cache filesystem.
        """
        os.makedirs(self.root, exist_ok=True)
        path = self.path(key)
        tmp_path = os.path.join(self.root, f".{key}.{os.getpid()}.tmp.npz")
        try:
            save_bvh(bvh, tmp_path)
            os.replace(tmp_path, path)
        finally:
            if os.path.exists(tmp_path):
                os.remove(tmp_path)
        return path

    def get_or_build(self, mesh: TriangleMesh, method: str = "sah",
                     max_leaf_size: int = 4, engine: str = "vector") -> FlatBVH:
        """The cached BVH for ``mesh``, building and storing on a miss."""
        key = self.key(mesh, method, max_leaf_size)
        bvh = self.load(key)
        if bvh is not None:
            self.hits += 1
            telemetry.inc_counter("artifact_cache.hits")
            return bvh
        self.misses += 1
        telemetry.inc_counter("artifact_cache.misses")
        bvh = build_bvh(
            mesh, method=method, max_leaf_size=max_leaf_size, engine=engine
        )
        self.store(key, bvh)
        return bvh

    # ------------------------------------------------------------------
    def fingerprint(self) -> dict:
        """The cache identity a resumable sweep pins its checkpoint to.

        The entry key space is fully determined by the BVH format
        version (plus per-entry content digests, which the fingerprinted
        preset already determines), so this is what a resume must agree
        on.  The root path is deliberately excluded: moving the cache
        directory does not change what any key resolves to.
        """
        return {"enabled": True, "format_version": FORMAT_VERSION}

    def describe(self) -> dict:
        """JSON-safe counter snapshot for artifact cache sections."""
        return {
            "root": self.root,
            "hits": self.hits,
            "misses": self.misses,
            "invalidated": self.invalidated,
        }


_ACTIVE: Optional[BVHArtifactCache] = None


def configure_artifact_cache(root: Optional[str]) -> Optional[BVHArtifactCache]:
    """Set (or clear, with None) the process-wide artifact cache.

    Also mirrors the directory into :data:`ARTIFACT_CACHE_ENV` so worker
    processes spawned by ``--jobs`` inherit the setting regardless of
    the multiprocessing start method.
    """
    global _ACTIVE
    if root:
        _ACTIVE = BVHArtifactCache(root)
        os.environ[ARTIFACT_CACHE_ENV] = root
    else:
        _ACTIVE = None
        os.environ.pop(ARTIFACT_CACHE_ENV, None)
    return _ACTIVE


def get_artifact_cache() -> Optional[BVHArtifactCache]:
    """The active cache: explicit configuration first, then the env var."""
    if _ACTIVE is not None:
        return _ACTIVE
    root = os.environ.get(ARTIFACT_CACHE_ENV)
    if root:
        return configure_artifact_cache(root)
    return None


def cached_build_bvh(mesh: TriangleMesh, method: str = "sah",
                     max_leaf_size: int = 4,
                     engine: str = "vector") -> FlatBVH:
    """``build_bvh`` through the active cache (plain build when none).

    ``engine`` selects the builder for a miss only; cache keys ignore it
    because both engines are array-identical by contract.
    """
    cache = get_artifact_cache()
    if cache is None:
        return build_bvh(
            mesh, method=method, max_leaf_size=max_leaf_size, engine=engine
        )
    return cache.get_or_build(
        mesh, method=method, max_leaf_size=max_leaf_size, engine=engine
    )


__all__ = [
    "ARTIFACT_CACHE_ENV",
    "BVHArtifactCache",
    "cached_build_bvh",
    "configure_artifact_cache",
    "get_artifact_cache",
    "mesh_digest",
]
