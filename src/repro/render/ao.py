"""Ambient-occlusion rendering (Section 2.3).

The AO value of a surface point is the fraction of cosine-sampled
hemisphere rays that escape without hitting geometry within the ray
length; crevices receive less ambient light and render darker.  This is
the workload all of the paper's headline results are measured on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bvh.nodes import FlatBVH
from repro.rays.aogen import AOWorkload, generate_ao_workload
from repro.scenes.scene import Scene
from repro.trace.counters import TraversalStats
from repro.trace.traversal import DEFAULT_ENGINE, trace_occlusion_batch


@dataclass
class AOImage:
    """Result of an AO render.

    Attributes:
        image: per-pixel ambient visibility in [0, 1], shape ``(h, w)``;
            pixels whose primary ray missed the scene are fully lit (1).
        workload: the generated AO rays (reusable by the simulators).
        hits: per-AO-ray boolean occlusion results.
        stats: traversal counters for the AO pass.
    """

    image: np.ndarray
    workload: AOWorkload
    hits: np.ndarray
    stats: TraversalStats


def render_ao(
    scene: Scene,
    bvh: FlatBVH,
    width: int = 64,
    height: int = 64,
    spp: int = 4,
    seed: int = 0,
    engine: str = DEFAULT_ENGINE,
) -> AOImage:
    """Render an ambient-occlusion image of ``scene``.

    Traces one primary ray per pixel, then ``spp`` occlusion rays per
    primary hit (Section 5.2's recipe), and averages visibility.
    ``engine`` selects the traversal engine for both passes; the image is
    bit-identical either way.
    """
    workload = generate_ao_workload(
        scene, bvh, width=width, height=height, spp=spp, seed=seed, engine=engine
    )
    stats = TraversalStats()
    hits = trace_occlusion_batch(bvh, workload.rays, stats=stats, engine=engine)

    visibility = np.ones(width * height, dtype=np.float64)
    if len(workload):
        occluded = np.zeros(width * height, dtype=np.float64)
        counts = np.zeros(width * height, dtype=np.float64)
        np.add.at(occluded, workload.pixel_index, hits.astype(np.float64))
        np.add.at(counts, workload.pixel_index, 1.0)
        sampled = counts > 0
        visibility[sampled] = 1.0 - occluded[sampled] / counts[sampled]
    return AOImage(
        image=visibility.reshape(height, width),
        workload=workload,
        hits=hits,
        stats=stats,
    )
