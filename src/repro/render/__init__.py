"""Renderers built on the traced substrate.

* :mod:`repro.render.ao` - ambient-occlusion rendering (the paper's
  primary workload): per-pixel occlusion from hemisphere-sampled rays.
* :mod:`repro.render.gi` - the Section 6.4 extension: a small path
  tracer whose closest-hit rays use the predictor to *trim t_max* before
  traversal (rather than predicting the final hit point).
* :mod:`repro.render.image` - minimal PPM image output.
"""

from repro.render.ao import AOImage, render_ao
from repro.render.gi import GIResult, PredictedClosestHitTracer, render_gi
from repro.render.image import tonemap, write_ppm

__all__ = [
    "AOImage",
    "GIResult",
    "PredictedClosestHitTracer",
    "render_ao",
    "render_gi",
    "tonemap",
    "write_ppm",
]
