"""Minimal image output: grayscale/RGB PPM files.

PPM needs no external dependencies and every viewer opens it; the
examples write their renders this way.
"""

from __future__ import annotations

import os

import numpy as np


def tonemap(image: np.ndarray, gamma: float = 2.2) -> np.ndarray:
    """Clamp to [0, 1] and gamma-encode; returns uint8 values."""
    clipped = np.clip(np.nan_to_num(image, nan=0.0), 0.0, 1.0)
    encoded = clipped ** (1.0 / gamma)
    return (encoded * 255.0 + 0.5).astype(np.uint8)


def write_ppm(path: str | os.PathLike, image: np.ndarray, gamma: float = 2.2) -> None:
    """Write an image as binary PPM (P6).

    Args:
        path: output file path.
        image: float array of shape ``(h, w)`` (grayscale) or
            ``(h, w, 3)`` (RGB), values nominally in [0, 1].
        gamma: display gamma used for encoding.
    """
    data = np.asarray(image, dtype=np.float64)
    if data.ndim == 2:
        data = np.repeat(data[:, :, None], 3, axis=2)
    if data.ndim != 3 or data.shape[2] != 3:
        raise ValueError("image must have shape (h, w) or (h, w, 3)")
    pixels = tonemap(data, gamma)
    height, width = pixels.shape[:2]
    with open(path, "wb") as handle:
        handle.write(f"P6\n{width} {height}\n255\n".encode("ascii"))
        handle.write(pixels.tobytes())
