"""Global illumination with predicted t-max trimming (Section 6.4).

Closest-hit rays cannot simply skip traversal - every candidate must be
checked to find the nearest.  The paper's GI extension instead uses the
predictor to find a *candidate* intersection quickly, then runs the full
traversal with ``t_max`` trimmed to that candidate: every subtree beyond
the candidate is culled by the slab test, cutting node fetches.  The
paper reports a modest (4 %) average speedup for three-bounce GI.

:class:`PredictedClosestHitTracer` implements that flow; ``render_gi``
is a small cosine-sampled path tracer (sky-lit Lambertian) driving it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.bvh.nodes import FlatBVH
from repro.core.predictor import PredictorConfig, RayPredictor
from repro.geometry.ray import Ray
from repro.geometry.vec import vec_normalize
from repro.rays.camera import PinholeCamera
from repro.rays.sampling import cosine_sample_hemisphere
from repro.scenes.scene import Scene
from repro.trace.counters import TraversalStats
from repro.trace.traversal import closest_hit

#: Offset along the surface normal to avoid self-intersection.
_SURFACE_EPSILON = 1e-4


class PredictedClosestHitTracer:
    """Closest-hit tracing with predictor-driven ``t_max`` trimming.

    ``trace`` returns the exact closest hit (identical to a plain
    traversal - trimming never changes the answer, only the work), while
    ``stats`` accumulates the node/triangle fetch counts so the saving
    can be measured against an untrimmed baseline.
    """

    def __init__(
        self, bvh: FlatBVH, config: Optional[PredictorConfig] = None
    ) -> None:
        self.bvh = bvh
        self.predictor = RayPredictor(bvh, config)
        self.stats = TraversalStats()
        self.predicted = 0
        self.trimmed = 0

    def trace(self, ray: Ray) -> Tuple[float, int]:
        """Closest hit of ``ray``: returns ``(t, tri)`` (``inf, -1`` miss)."""
        ray_hash = self.predictor.hash_ray(ray.origin, ray.direction)
        nodes = self.predictor.predict(ray_hash)

        t_limit = ray.t_max
        candidate_t = float("inf")
        candidate_tri = -1
        if nodes:
            self.predicted += 1
            for node in nodes:
                t, tri = _closest_in_subtree(
                    self.bvh, ray, node, min(t_limit, candidate_t), self.stats
                )
                if tri >= 0 and t < candidate_t:
                    candidate_t = t
                    candidate_tri = tri
            if candidate_tri >= 0:
                self.trimmed += 1
                # The candidate is a genuine intersection, so the true
                # closest hit is at most candidate_t: trim the interval.
                t_limit = candidate_t

        trimmed_ray = Ray(ray.origin, ray.direction, ray.t_min, t_limit)
        t, tri = closest_hit(self.bvh, trimmed_ray, stats=self.stats)
        if tri < 0 and candidate_tri >= 0:
            # Nothing strictly closer than the candidate exists: the
            # candidate itself is the closest hit.
            t, tri = candidate_t, candidate_tri
        if tri >= 0:
            self.predictor.train(ray_hash, tri)
        return t, tri


def _closest_in_subtree(
    bvh: FlatBVH, ray: Ray, root: int, t_max: float, stats: TraversalStats
) -> Tuple[float, int]:
    """Closest hit restricted to the subtree under ``root``."""
    limited = Ray(ray.origin, ray.direction, ray.t_min, t_max)
    # Reuse the main closest-hit kernel by pushing only the subtree root.
    from repro.trace.traversal import occlusion_any_hit_tri  # local import: cycle-free

    # For candidate search a first-hit in the subtree suffices: any
    # intersection gives a valid upper bound for trimming.
    tri = occlusion_any_hit_tri(bvh, limited, stats=stats, start_nodes=[root])
    if tri < 0:
        return float("inf"), -1
    # Recover the t of that triangle to use as the trim bound.
    from repro.geometry.intersect import ray_triangle_intersect

    mesh = bvh.mesh
    t = ray_triangle_intersect(
        ray.origin[0], ray.origin[1], ray.origin[2],
        ray.direction[0], ray.direction[1], ray.direction[2],
        ray.t_min, t_max,
        tuple(mesh.v0[tri]), tuple(mesh.v1[tri]), tuple(mesh.v2[tri]),
    )
    return (t if t is not None else float("inf")), tri


@dataclass
class GIResult:
    """Output of a GI render.

    Attributes:
        image: grayscale radiance image, shape ``(h, w)``.
        stats: traversal counters of the predicted tracer (or the plain
            baseline when prediction is disabled).
        rays_traced: total closest-hit rays traced (all bounces).
        predicted / trimmed: predictor engagement counters (0 when off).
    """

    image: np.ndarray
    stats: TraversalStats
    rays_traced: int
    predicted: int
    trimmed: int


def render_gi(
    scene: Scene,
    bvh: FlatBVH,
    width: int = 32,
    height: int = 32,
    bounces: int = 3,
    seed: int = 0,
    predictor_config: Optional[PredictorConfig] = None,
    use_predictor: bool = True,
) -> GIResult:
    """Path-trace ``scene`` with cosine-sampled bounces and sky lighting.

    Every surface is Lambertian with fixed albedo; paths that escape the
    scene collect sky radiance.  With ``use_predictor`` the closest-hit
    rays run through :class:`PredictedClosestHitTracer` (Section 6.4).
    """
    if bounces < 1:
        raise ValueError("bounces must be >= 1")
    rng = np.random.default_rng(seed)
    camera = PinholeCamera(scene.camera, width, height)
    primary = camera.primary_rays()

    tracer = PredictedClosestHitTracer(bvh, predictor_config) if use_predictor else None
    stats = tracer.stats if tracer else TraversalStats()
    albedo = 0.7
    sky = 1.0
    mesh = bvh.mesh
    # Indoor scenes are closed, so paths would never see the sky; treat
    # the top few percent of the scene (the ceiling) as an emissive
    # panel, the standard stand-in for interior lighting.
    aabb = scene.aabb()
    ceiling_y = aabb.hi[1] - 0.02 * max(aabb.extent()[1], 1e-9)
    emissive = 1.0

    radiance = np.zeros(width * height, dtype=np.float64)
    rays_traced = 0
    for pixel in range(len(primary)):
        ray = primary[pixel]
        throughput = 1.0
        value = 0.0
        for _ in range(bounces + 1):
            rays_traced += 1
            if tracer:
                t, tri = tracer.trace(ray)
            else:
                t, tri = closest_hit(bvh, ray, stats=stats)
            if tri < 0:
                value += throughput * sky
                break
            point = ray.at(t)
            if point[1] >= ceiling_y:
                value += throughput * emissive
                break
            throughput *= albedo
            normal = _facing_normal(mesh, tri, ray)
            direction = cosine_sample_hemisphere(normal, rng.random(), rng.random())
            origin = (
                point[0] + _SURFACE_EPSILON * normal[0],
                point[1] + _SURFACE_EPSILON * normal[1],
                point[2] + _SURFACE_EPSILON * normal[2],
            )
            ray = Ray(origin, direction, 0.0, float("inf"))
        radiance[pixel] = value

    return GIResult(
        image=radiance.reshape(height, width),
        stats=stats,
        rays_traced=rays_traced,
        predicted=tracer.predicted if tracer else 0,
        trimmed=tracer.trimmed if tracer else 0,
    )


def _facing_normal(mesh, tri: int, ray: Ray):
    """Unit geometric normal of ``tri`` flipped toward the ray origin."""
    v0 = mesh.v0[tri]
    e1 = mesh.v1[tri] - v0
    e2 = mesh.v2[tri] - v0
    n = np.cross(e1, e2)
    normal = vec_normalize(tuple(n))
    d = ray.direction
    if normal[0] * d[0] + normal[1] * d[1] + normal[2] * d[2] > 0.0:
        normal = (-normal[0], -normal[1], -normal[2])
    return normal
