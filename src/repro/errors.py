"""Structured exception hierarchy and CLI exit codes.

Everything the library raises on *anticipated* failure derives from
:class:`ReproError`, so callers (and the ``python -m repro`` CLI) can
distinguish "your input is bad" from "the simulator is broken" without
string-matching messages.  Speculation-related errors carry enough
context to reproduce the failure: the offending node indices, the cycle
the watchdog fired at, the rays whose occlusion results diverged.

The predictor's safety contract (Section 3 of the paper) is that a
wrong - even corrupted - prediction may only cost cycles, never change
which rays report occlusion.  Guard code that *enforces* that contract
degrades silently (a bad prediction becomes "no prediction"); these
exceptions are reserved for the boundaries where degrading is impossible
or would hide a real bug (corrupted traversal state, a stalled
simulation, a differential-oracle mismatch).

Exit-code map (``EXIT_*`` constants, used by ``repro.__main__``):

====  =============================================
code  meaning
====  =============================================
0     success
2     usage error (argparse)
3     scene / asset loading failed
4     invalid input (rays, configuration, arguments)
5     traversal integrity violation
6     simulation watchdog fired (stall / cycle cap)
7     differential oracle found a mismatch
8     checkpoint invalid, incompatible, or corrupt
9     unit wall-clock deadline exceeded
10    unit memory budget exceeded
11    injected (synthetic) fault escaped the supervisor
12    sweep failed with degradation disabled
70    unexpected internal error
====  =============================================
"""

from __future__ import annotations

from typing import Optional, Sequence

EXIT_OK = 0
EXIT_USAGE = 2
EXIT_SCENE = 3
EXIT_INPUT = 4
EXIT_TRAVERSAL = 5
EXIT_WATCHDOG = 6
EXIT_ORACLE = 7
EXIT_CHECKPOINT = 8
EXIT_TIMEOUT = 9
EXIT_MEMORY = 10
EXIT_INJECTED = 11
EXIT_SWEEP = 12
EXIT_INTERNAL = 70


class ReproError(Exception):
    """Base class for all structured errors raised by this package."""

    exit_code: int = EXIT_INTERNAL


class SceneLoadError(ReproError, ValueError):
    """A scene asset (OBJ file, registry entry) could not be loaded.

    Subclasses :class:`ValueError` so pre-existing callers that caught
    ``ValueError`` from the OBJ loader keep working.
    """

    exit_code = EXIT_SCENE


class InputValidationError(ReproError, ValueError):
    """User-supplied input (rays, meshes, config values) is invalid."""

    exit_code = EXIT_INPUT


class RayValidationError(InputValidationError):
    """A ray batch contains non-finite or degenerate rays.

    Raised only in ``mode="raise"`` validation; the default pipeline
    filters bad rays and reports counters instead.
    """


class TraversalError(ReproError):
    """Traversal was asked to index outside the BVH.

    This is the hard guard at the speculation boundary: a corrupted
    predicted node index must become either "no prediction" (the soft
    guards upstream) or this structured error - never a raw
    ``IndexError`` from indexing the node arrays.

    Attributes:
        bad_nodes: the offending node indices.
        num_nodes: the BVH's node count at the time of the check.
    """

    exit_code = EXIT_TRAVERSAL

    def __init__(
        self,
        message: str,
        bad_nodes: Optional[Sequence[int]] = None,
        num_nodes: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.bad_nodes = list(bad_nodes) if bad_nodes is not None else []
        self.num_nodes = num_nodes


class SimulationStallError(ReproError):
    """The GPU simulator's watchdog aborted a non-progressing run.

    Attributes:
        cycles: simulated cycle the watchdog fired at.
        diagnostics: free-form state snapshot (resident warps, buffer
            occupancy, retired/total rays, ...), rendered into the
            message for CLI users and kept structured for tests.
    """

    exit_code = EXIT_WATCHDOG

    def __init__(self, message: str, cycles: int = 0, diagnostics: Optional[dict] = None) -> None:
        super().__init__(message)
        self.cycles = cycles
        self.diagnostics = dict(diagnostics or {})


class OracleMismatchError(ReproError):
    """The differential oracle found per-ray occlusion divergence.

    If this fires, speculation changed correctness - the one thing the
    predictor architecture promises cannot happen.

    Attributes:
        mismatched_rays: indices of rays whose occlusion result differed
            between the baseline and predictor-under-faults runs.
    """

    exit_code = EXIT_ORACLE

    def __init__(self, message: str, mismatched_rays: Optional[Sequence[int]] = None) -> None:
        super().__init__(message)
        self.mismatched_rays = list(mismatched_rays) if mismatched_rays is not None else []


class CheckpointError(ReproError):
    """A sweep checkpoint could not be loaded or does not match the run.

    Raised when ``--resume`` points at a file that is corrupt, carries
    an unknown schema, or was written by a sweep with a different
    fingerprint (preset, scenes, seed) - resuming it would silently mix
    incompatible results.

    Attributes:
        path: the checkpoint file involved.
    """

    exit_code = EXIT_CHECKPOINT

    def __init__(self, message: str, path: Optional[str] = None) -> None:
        super().__init__(message)
        self.path = path


class UnitTimeoutError(ReproError):
    """A supervised unit of work exceeded its wall-clock deadline.

    The supervisor classifies this as *retryable* (a loaded host can
    transiently starve a unit) and, once attempts are exhausted, as
    *degradable*; it only escapes to the CLI when degradation is
    disabled.

    Attributes:
        unit: the unit's name.
        deadline_s: the deadline that expired.
    """

    exit_code = EXIT_TIMEOUT

    def __init__(
        self, message: str, unit: str = "?", deadline_s: float = 0.0
    ) -> None:
        super().__init__(message)
        self.unit = unit
        self.deadline_s = deadline_s


class MemoryBudgetError(ReproError):
    """A supervised unit of work allocated past its memory budget.

    Classified as *degradable*, never retryable: the same unit at the
    same rung will allocate the same frontier again, so the only useful
    response is a lighter configuration (see the degradation ladder).

    Attributes:
        unit: the unit's name.
        peak_mb: observed peak traced allocation in MiB.
        budget_mb: the configured budget in MiB.
    """

    exit_code = EXIT_MEMORY

    def __init__(
        self,
        message: str,
        unit: str = "?",
        peak_mb: float = 0.0,
        budget_mb: float = 0.0,
    ) -> None:
        super().__init__(message)
        self.unit = unit
        self.peak_mb = peak_mb
        self.budget_mb = budget_mb


class InjectedFaultError(ReproError):
    """A synthetic fault planted by the chaos machinery (``repro.faults``).

    Exists so chaos runs exercise the *real* retry/degrade paths with an
    error that is unambiguously synthetic; it reaching the CLI means the
    supervisor failed to absorb a fault it was explicitly being tested
    against.

    Attributes:
        unit: the unit the fault was planted in.
        attempt: the attempt number the fault fired on.
    """

    exit_code = EXIT_INJECTED

    def __init__(self, message: str, unit: str = "?", attempt: int = 0) -> None:
        super().__init__(message)
        self.unit = unit
        self.attempt = attempt


class SweepFailedError(ReproError):
    """A resilient sweep could not produce a result for some unit.

    Raised only when degradation is disabled (``--no-degrade``): with the
    ladder active a failing unit always terminates in ``skip`` with a
    manifest entry instead.

    Attributes:
        failed_units: names of the units that failed.
    """

    exit_code = EXIT_SWEEP

    def __init__(
        self, message: str, failed_units: Optional[Sequence[str]] = None
    ) -> None:
        super().__init__(message)
        self.failed_units = list(failed_units) if failed_units is not None else []


class TelemetryAggregationError(ReproError, ValueError):
    """A sharded run would silently drop worker-side telemetry.

    Raised when telemetry is enabled, the sweep is sharded across
    worker processes, and cross-process aggregation has been switched
    off (``aggregate_telemetry=False``): the only honest outcomes are
    "merge the worker snapshots" or "refuse to run" - losing the
    metrics quietly is how the pre-distributed harness misled people
    (see ``docs/OBSERVABILITY.md``).
    """

    exit_code = EXIT_USAGE


def exit_code_for(exc: BaseException) -> int:
    """Map an exception to the CLI exit code documented above."""
    if isinstance(exc, ReproError):
        return exc.exit_code
    if isinstance(exc, (KeyError, ValueError)):
        return EXIT_INPUT
    return EXIT_INTERNAL
