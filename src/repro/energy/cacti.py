"""CACTI-like SRAM energy estimates.

CACTI models SRAM access energy from detailed circuit geometry; for the
small structures the predictor adds (kilobytes), access energy grows
roughly with the square root of capacity (bitline/wordline lengths) and
linearly with access width.  The constants below are fitted to published
45 nm CACTI data points (a few pJ for KB-scale arrays, tens of pJ for
64 KB caches) - the same technology node the paper uses.
"""

from __future__ import annotations

import math

#: Base dynamic energy of a minimal SRAM access at 45 nm (pJ).
_BASE_ACCESS_PJ = 0.6
#: Capacity scaling coefficient (pJ per sqrt(byte)).
_CAPACITY_COEFF = 0.11
#: Energy per bit of access width (pJ/bit) - sense amps and drivers.
_WIDTH_COEFF = 0.012
#: Leakage power per KB at 45 nm (mW/KB).
_LEAKAGE_MW_PER_KB = 0.008


def sram_access_energy_pj(size_bytes: int, width_bits: int = 64) -> float:
    """Dynamic energy of one access to an SRAM of ``size_bytes``.

    Args:
        size_bytes: array capacity.
        width_bits: bits read or written per access.

    Returns:
        Energy in picojoules.
    """
    if size_bytes <= 0:
        raise ValueError("size_bytes must be positive")
    if width_bits <= 0:
        raise ValueError("width_bits must be positive")
    return (
        _BASE_ACCESS_PJ
        + _CAPACITY_COEFF * math.sqrt(size_bytes)
        + _WIDTH_COEFF * width_bits
    )


def sram_leakage_mw(size_bytes: int) -> float:
    """Static leakage power of an SRAM array in milliwatts."""
    if size_bytes <= 0:
        raise ValueError("size_bytes must be positive")
    return _LEAKAGE_MW_PER_KB * size_bytes / 1024.0
