"""Per-ray energy breakdown (Table 4).

Composes:

* *Base GPU* - core pipeline + cache + DRAM energy, modeled as a
  per-cycle constant (GPUWattch's role) plus per-access L1/L2/DRAM
  energies.  DRAM dominates, as in the paper.
* *Predictor table* - lookups and updates against a
  :func:`~repro.energy.cacti.sram_access_energy_pj`-costed array.
* *Warp repacking* - partial-warp-collector pushes/flushes and the
  additional ray-buffer index updates repacking performs.
* *Traversal stack* - one push/pop pair per node visited.
* *Ray buffer* - one access per warp-step per active thread.
* *Ray intersections* - box and triangle tests costed as adder/multiplier
  networks (EIE-style constants).

The absolute numbers are order-of-magnitude calibrated; the reproduced
*shape* is Table 4's: DRAM-dominated totals, a tiny predictor overhead,
and a net saving when the predictor shortens execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.predictor import PredictorConfig
from repro.core.table import NODE_INDEX_BITS, VALID_BITS
from repro.energy.cacti import sram_access_energy_pj
from repro.gpu.simulator import SimOutput

#: Core (non-memory) energy per cycle per SM, nJ.  Covers scheduler,
#: control, register file and static power - the "Base GPU" bucket.
CORE_NJ_PER_CYCLE_PER_SM = 0.55
#: Energy per L1 access (nJ) - 8-64 KB SRAM, 128 B line.
L1_ACCESS_NJ = 0.025
#: Energy per L2 access (nJ).
L2_ACCESS_NJ = 0.09
#: Energy per DRAM access (nJ) - ~15 pJ/bit x 1 Kb line.
DRAM_ACCESS_NJ = 16.0
#: Energy per ray-box test (nJ): ~9 FP adds + 6 FP compares.
BOX_TEST_NJ = 0.012
#: Energy per ray-triangle test (nJ): ~2 dozen FP mul/add.
TRI_TEST_NJ = 0.030
#: Traversal stack entry width (bits): a 27-bit node index padded to 32.
STACK_ENTRY_BITS = 32
#: Ray buffer record width (bits): origin+direction+t-interval+status.
RAY_BUFFER_BITS = 288
#: Partial warp collector: 64 ray IDs x ~8 bits + 5-bit timeout.
COLLECTOR_SIZE_BYTES = 70


@dataclass
class EnergyBreakdown:
    """Per-ray energy by component, in nJ/ray (Table 4's rows)."""

    base_gpu: float
    predictor_table: float
    warp_repacking: float
    traversal_stack: float
    ray_buffer: float
    ray_intersections: float

    @property
    def total(self) -> float:
        """Total nJ/ray."""
        return (
            self.base_gpu
            + self.predictor_table
            + self.warp_repacking
            + self.traversal_stack
            + self.ray_buffer
            + self.ray_intersections
        )

    def as_dict(self) -> Dict[str, float]:
        """Component map, in Table 4 row order."""
        return {
            "Base GPU": self.base_gpu,
            "Predictor table": self.predictor_table,
            "Warp repacking": self.warp_repacking,
            "Traversal stack": self.traversal_stack,
            "Ray buffer": self.ray_buffer,
            "Ray intersections": self.ray_intersections,
            "Total": self.total,
        }

    def delta(self, other: "EnergyBreakdown") -> Dict[str, float]:
        """Per-component change ``other - self`` (Table 4 right column)."""
        mine = self.as_dict()
        theirs = other.as_dict()
        return {key: theirs[key] - mine[key] for key in mine}


class EnergyModel:
    """Turns a :class:`SimOutput` into a Table 4 style breakdown."""

    def __init__(self, predictor_config: PredictorConfig | None = None) -> None:
        self.predictor_config = predictor_config
        config = predictor_config or PredictorConfig()
        entry_bits = VALID_BITS + config.hash_bits + config.nodes_per_entry * NODE_INDEX_BITS
        table_bytes = max(1, config.num_entries * entry_bits // 8)
        self._table_access_nj = (
            sram_access_energy_pj(table_bytes, width_bits=entry_bits) / 1000.0
        )
        self._stack_access_nj = (
            sram_access_energy_pj(8 * STACK_ENTRY_BITS // 8 * 32, STACK_ENTRY_BITS)
            / 1000.0
        )
        self._ray_buffer_access_nj = (
            sram_access_energy_pj(256 * RAY_BUFFER_BITS // 8, RAY_BUFFER_BITS) / 1000.0
        )
        self._collector_access_nj = (
            sram_access_energy_pj(COLLECTOR_SIZE_BYTES, 8) / 1000.0
        )

    def breakdown(self, sim: SimOutput, num_sms: int | None = None) -> EnergyBreakdown:
        """Compute the per-ray energy breakdown for one simulation."""
        rays = max(1, sim.rays)
        sms = num_sms if num_sms is not None else len(sim.per_sm)

        core = CORE_NJ_PER_CYCLE_PER_SM * sim.cycles * sms
        l1 = L1_ACCESS_NJ * sum(r.l1_accesses for r in sim.per_sm)
        l2 = L2_ACCESS_NJ * sum(r.l2_accesses for r in sim.per_sm)
        dram = DRAM_ACCESS_NJ * sim.dram_accesses
        base_gpu = (core + l1 + l2 + dram) / rays

        table_ops = sim.predictor_lookups + sim.predictor_updates
        predictor_table = self._table_access_nj * table_ops / rays

        collector_rays = sum(r.collector_warps * 32 for r in sim.per_sm)
        # Each repacked ray: one collector write, one read, and one
        # ray-buffer index update when it moves warps.
        warp_repacking = (
            (2 * self._collector_access_nj + self._ray_buffer_access_nj)
            * collector_rays
            / rays
        )

        node_visits = sim.node_fetches
        traversal_stack = 2 * self._stack_access_nj * node_visits / rays

        thread_steps = sum(r.active_thread_steps for r in sim.per_sm)
        ray_buffer = self._ray_buffer_access_nj * thread_steps / rays

        box = sum(r.box_tests for r in sim.per_sm)
        tri = sum(r.tri_tests for r in sim.per_sm)
        ray_intersections = (BOX_TEST_NJ * box + TRI_TEST_NJ * tri) / rays

        return EnergyBreakdown(
            base_gpu=base_gpu,
            predictor_table=predictor_table,
            warp_repacking=warp_repacking,
            traversal_stack=traversal_stack,
            ray_buffer=ray_buffer,
            ray_intersections=ray_intersections,
        )
