"""Energy model (Section 5, Table 4).

The paper estimates energy with GPUWattch for the GPU core plus CACTI 7
(45 nm) for the SRAM structures it adds: the predictor table, traversal
stacks, ray buffer and partial warp collector, with intersection tests
costed as adders and multipliers.  This package provides an analytic
equivalent: a CACTI-like SRAM access-energy estimator and a per-ray
energy breakdown with the same component rows as Table 4.
"""

from repro.energy.cacti import sram_access_energy_pj, sram_leakage_mw
from repro.energy.model import EnergyBreakdown, EnergyModel

__all__ = [
    "EnergyBreakdown",
    "EnergyModel",
    "sram_access_energy_pj",
    "sram_leakage_mw",
]
