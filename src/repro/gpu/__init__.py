"""Warp-level timing model of the baseline RT unit (Section 5.1).

The paper extends GPGPU-Sim with an RT unit resembling the NVIDIA RT
Core: a variable-latency function unit that receives ``__traceray()``
queries, holds up to 8 warps (256 rays) in a ray buffer, walks the BVH
with per-ray traversal stacks, coalesces identical node requests within
a warp MSHR-style, schedules memory greedy-then-oldest, and pipes node
and triangle data through 32-wide pipelined intersection units.

This package reproduces that machinery as a discrete-event model at warp
granularity: each warp *step* pops one stack entry per active thread,
coalesces the resulting cache-line requests, charges L1/L2/DRAM latency
(with banked DRAM busy-time), then charges the pipelined intersection
latency.  A warp finishes when all of its rays complete; the RT unit's
total cycle count is the simulated execution time.  The predictor,
partial warp collector and warp repacking plug into the warp entry
stage exactly as in Figure 10.
"""

from repro.gpu.cache import Cache, CacheConfig, CacheStats
from repro.gpu.config import DRAMConfig, GPUConfig, MemoryConfig, RTUnitConfig
from repro.gpu.dram import DRAM, DRAMStats
from repro.gpu.memory import MemoryHierarchy
from repro.gpu.rt_unit import RTUnit, RTUnitResult
from repro.gpu.simulator import SimOutput, simulate_workload
from repro.gpu.vec_rt_unit import RT_ENGINES, VectorRTUnit, make_rt_unit

__all__ = [
    "Cache",
    "CacheConfig",
    "CacheStats",
    "DRAM",
    "DRAMConfig",
    "DRAMStats",
    "GPUConfig",
    "MemoryConfig",
    "MemoryHierarchy",
    "RT_ENGINES",
    "RTUnit",
    "RTUnitConfig",
    "RTUnitResult",
    "SimOutput",
    "VectorRTUnit",
    "make_rt_unit",
    "simulate_workload",
]
