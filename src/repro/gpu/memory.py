"""The memory hierarchy beneath one SM: L1 -> L2 -> banked DRAM.

Latency composition: an access probes the L1 (one cycle on hit); on a
miss it probes the shared L2; on an L2 miss it is serviced by the DRAM
bank model, which adds queueing delay when banks are contended.  Fills
allocate in both caches (no bypass), matching the simple read-only
behaviour of BVH/triangle data in the paper's workloads.

The L1 has a single request port: within a warp step, distinct line
requests issue on consecutive cycles; misses overlap (MSHR-style),
so a step's memory time is ``max_i(issue_i + latency_i)``.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict

from repro import telemetry
from repro.gpu.cache import Cache
from repro.gpu.config import MemoryConfig
from repro.gpu.dram import DRAM

#: Bucket upper bounds for line reuse distances (accesses between
#: touches of the same line).  Power-of-two edges: reuse locality spans
#: orders of magnitude, and the paper's cache behaviour (Section 6.2.3)
#: is about *how far apart* touches are, not their exact spacing.
REUSE_DISTANCE_BUCKETS = (
    0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0,
    1024.0, 4096.0, 16384.0, 65536.0,
)


@dataclass
class AccessResult:
    """Outcome of a single line access."""

    ready_at: int
    l1_hit: bool
    l2_hit: bool


class MemoryHierarchy:
    """L1 + shared L2 + DRAM with per-bank timing.

    One instance per SM for the L1; the L2 and DRAM objects may be shared
    across SMs (pass them in), mirroring Figure 3's clusters connecting
    to a common interconnect and memory.
    """

    def __init__(
        self,
        config: MemoryConfig,
        l2: Cache | None = None,
        dram: DRAM | None = None,
    ) -> None:
        self.config = config
        self.l1 = Cache(config.l1)
        self.l2 = l2 if l2 is not None else Cache(config.l2)
        self.dram = dram if dram is not None else DRAM(config.dram)
        # Hit latencies cached as ints: `access_line` is the hottest
        # scalar path in both timing engines.
        self._l1_latency = config.l1.latency
        self._l2_latency = config.l2.latency
        self._l1_ports = config.l1_ports
        # The SM's L1 request port(s): `l1_ports` line requests per cycle
        # (the RT unit multiplexes with the LDST unit for L1 access,
        # Section 5.1).  Requests from all resident warps serialize here
        # while their *latencies* overlap MSHR-style.
        self._port_cycle = 0
        self._port_slots = 0
        self.port_issues = 0
        self.port_wait_cycles = 0
        # The RT unit's controller services one warp iteration per cycle
        # ("the memory scheduler first selects a warp, then selects the
        # next node", Section 5.1.2), so sparse iterations - a warp with
        # one straggler thread - consume scheduling throughput just like
        # dense ones.  This is the cost that warp repacking recovers.
        self._scheduler_free = 0
        # Reuse-distance introspection (docs/OBSERVABILITY.md): the
        # enablement is sampled once here, not per access, so the
        # disabled hot path pays a single attribute check.  Raw bucket
        # layout mirrors Histogram.observe over REUSE_DISTANCE_BUCKETS;
        # the simulator publishes it at run end via
        # publish_reuse_distances (works across the sm_jobs pickle
        # boundary because the state is plain ints/dicts).
        self._track_reuse = telemetry.enabled()
        self._reuse_last: Dict[int, int] = {}
        self._reuse_index = 0
        self.reuse_counts = [0] * (len(REUSE_DISTANCE_BUCKETS) + 1)
        self.reuse_total = 0
        self.reuse_sum = 0.0
        self.reuse_min = float("inf")
        self.reuse_max = float("-inf")
        self.reuse_cold_lines = 0

    def _note_reuse(self, line_addr: int) -> None:
        """Record one line touch (enabled-telemetry path only)."""
        telemetry.record_hook_activation()
        index = self._reuse_index
        self._reuse_index = index + 1
        last = self._reuse_last.get(line_addr)
        self._reuse_last[line_addr] = index
        if last is None:
            self.reuse_cold_lines += 1
            return
        distance = float(index - last - 1)
        self.reuse_counts[bisect_left(REUSE_DISTANCE_BUCKETS, distance)] += 1
        self.reuse_total += 1
        self.reuse_sum += distance
        if distance < self.reuse_min:
            self.reuse_min = distance
        if distance > self.reuse_max:
            self.reuse_max = distance

    def acquire_scheduler_slot(self, now: int) -> int:
        """Reserve the next warp-iteration slot at or after ``now``."""
        slot = now if now >= self._scheduler_free else self._scheduler_free
        self._scheduler_free = slot + 1
        return slot

    def line_of(self, byte_addr: int) -> int:
        """Line address for a byte address."""
        return byte_addr // self.config.l1.line_bytes

    def access_line(self, line_addr: int, now: int) -> AccessResult:
        """Access one cache line, classifying where it hit.

        Convenience wrapper over :meth:`access_line_time` for callers
        that want per-access hit flags; the timing engines use the
        flag-free fast path directly.
        """
        l1_hits = self.l1.stats.hits
        l2_hits = self.l2.stats.hits
        ready = self.access_line_time(line_addr, now)
        return AccessResult(
            ready_at=ready,
            l1_hit=self.l1.stats.hits > l1_hits,
            l2_hit=self.l2.stats.hits > l2_hits,
        )

    def access_line_time(self, line_addr: int, now: int) -> int:
        """Access one cache line, arriving at cycle ``now``.

        The request first waits for the L1 port (one issue per cycle,
        shared by all warps), then traverses the hierarchy.  Returns the
        cycle at which the data is ready; hit/miss classification lives
        in the cache and DRAM statistics objects.
        """
        if self._track_reuse:
            self._note_reuse(line_addr)
        issue = self._port_cycle
        if now > issue:
            issue = now
            self._port_slots = 1
        elif self._port_slots >= self._l1_ports:
            issue += 1
            self._port_slots = 1
        else:
            self._port_slots += 1
        self._port_cycle = issue
        self.port_issues += 1
        self.port_wait_cycles += issue - now

        if self.l1.access(line_addr):
            return issue + self._l1_latency
        if self.l2.access(line_addr):
            return issue + self._l2_latency
        return self.dram.access(line_addr, issue + self._l2_latency)
