"""Banked DRAM timing model.

Addresses interleave across banks at cache-line granularity.  Each bank
services one request at a time; a request arriving at a busy bank queues
behind it.  This reproduces the first-order behaviour the paper relies
on in Section 6.2.2: repacked warps mix interior- and leaf-node requests,
spreading accesses across banks and raising bank-level parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.config import DRAMConfig


@dataclass
class DRAMStats:
    """DRAM service counters."""

    accesses: int = 0
    stall_cycles: int = 0
    busy_cycles: int = 0
    first_access_time: int = 0
    last_release_time: int = 0
    row_hits: int = 0

    @property
    def row_hit_rate(self) -> float:
        """Fraction of accesses that hit the bank's open row buffer."""
        return self.row_hits / self.accesses if self.accesses else 0.0

    def bank_parallelism(self, num_banks: int) -> float:
        """Average banks busy simultaneously over the active span."""
        span = self.last_release_time - self.first_access_time
        if span <= 0:
            return 0.0
        return min(float(num_banks), self.busy_cycles / span)

    @property
    def avg_queue_delay(self) -> float:
        """Average cycles a request waited for its bank."""
        return self.stall_cycles / self.accesses if self.accesses else 0.0


class DRAM:
    """Per-bank busy-until / open-row bookkeeping (numpy-array backed)."""

    def __init__(self, config: DRAMConfig) -> None:
        self.config = config
        self._busy_until = np.zeros(config.num_banks, dtype=np.int64)
        self._open_row = np.full(config.num_banks, -1, dtype=np.int64)
        self.stats = DRAMStats()

    def bank_of(self, line_addr: int) -> int:
        """Bank servicing ``line_addr`` (line-interleaved)."""
        return line_addr % self.config.num_banks

    def row_of(self, line_addr: int) -> int:
        """DRAM row of ``line_addr`` within its bank.

        With line-interleaved banks, consecutive same-bank lines
        (stride ``num_banks``) map to one row of ``lines_per_row``
        columns.
        """
        return (line_addr // self.config.num_banks) // self.config.lines_per_row

    def access(self, line_addr: int, now: int) -> int:
        """Service a request arriving at cycle ``now``.

        Returns the cycle at which data is available.  The bank is held
        for ``bank_occupancy`` cycles from service start.
        """
        bank = self.bank_of(line_addr)
        start = max(now, int(self._busy_until[bank]))
        stall = start - now
        done = start + self.config.latency
        self._busy_until[bank] = start + self.config.bank_occupancy

        stats = self.stats
        if stats.accesses == 0:
            stats.first_access_time = start
        stats.accesses += 1
        stats.stall_cycles += stall
        stats.busy_cycles += self.config.bank_occupancy
        stats.last_release_time = max(
            stats.last_release_time, start + self.config.bank_occupancy
        )
        row = self.row_of(line_addr)
        if self._open_row[bank] == row:
            stats.row_hits += 1
        self._open_row[bank] = row
        return done

    def reset_timing(self) -> None:
        """Clear bank busy/row state (new kernel) without losing statistics."""
        self._busy_until[:] = 0
        self._open_row[:] = -1
