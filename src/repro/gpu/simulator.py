"""Top-level workload simulation across SMs.

The paper's GPU (Table 2) has two SMs, each with its own RT unit, L1 and
predictor, sharing the L2 and DRAM.  Rays are distributed warp-wise
round-robin across SMs (Section 6.2.5: per-SM predictor tables mean more
SMs see fewer training opportunities).  SMs execute concurrently in
hardware; we simulate them one after another against a *shared* L2 and
DRAM object - an approximation that preserves inter-SM cache sharing and
total traffic while ignoring fine-grained inter-SM port contention -
and take the slowest SM's cycle count as the execution time.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro import telemetry
from repro.bvh.nodes import FlatBVH
from repro.core.predictor import RayPredictor
from repro.geometry.ray import RayBatch
from repro.gpu.cache import Cache
from repro.gpu.config import GPUConfig
from repro.gpu.dram import DRAM
from repro.gpu.memory import MemoryHierarchy
from repro.gpu.rt_unit import RTUnitResult
from repro.gpu.vec_rt_unit import RT_ENGINES, make_rt_unit
from repro.telemetry import distributed
from repro.telemetry.publish import (
    publish_cache_stats,
    publish_dram_stats,
    publish_reuse_distances,
)


@dataclass
class SimOutput:
    """Result of simulating one workload on the modeled GPU."""

    cycles: int
    per_sm: List[RTUnitResult]

    # ------------------------------------------------------------------
    def _sum(self, attr: str) -> int:
        return sum(getattr(r, attr) for r in self.per_sm)

    @property
    def rays(self) -> int:
        """Total rays traced across all SMs."""
        return self._sum("rays")

    @property
    def node_fetches(self) -> int:
        """BVH node records fetched, all SMs."""
        return self._sum("node_fetches")

    @property
    def tri_fetches(self) -> int:
        """Triangle records fetched, all SMs."""
        return self._sum("tri_fetches")

    @property
    def total_accesses(self) -> int:
        """Total memory accesses (nodes + triangles)."""
        return self.node_fetches + self.tri_fetches

    @property
    def misprediction_accesses(self) -> int:
        """Accesses wasted on failed verifications (Figure 13's overhead bar)."""
        return self._sum("misprediction_node_fetches") + self._sum(
            "misprediction_tri_fetches"
        )

    @property
    def predicted_rate(self) -> float:
        """Fraction of rays with a predictor-table hit."""
        return self._sum("predicted") / self.rays if self.rays else 0.0

    @property
    def verified_rate(self) -> float:
        """Fraction of rays whose prediction verified."""
        return self._sum("verified") / self.rays if self.rays else 0.0

    @property
    def hit_rate(self) -> float:
        """Fraction of rays intersecting the scene."""
        return self._sum("hits") / self.rays if self.rays else 0.0

    @property
    def l1_hit_rate(self) -> float:
        """Aggregate L1 hit rate across SMs."""
        accesses = self._sum("l1_accesses")
        return self._sum("l1_hits") / accesses if accesses else 0.0

    @property
    def l2_hit_rate(self) -> float:
        """Aggregate (shared) L2 hit rate."""
        accesses = self._sum("l2_accesses")
        return self._sum("l2_hits") / accesses if accesses else 0.0

    @property
    def dram_accesses(self) -> int:
        """Requests served by DRAM."""
        return self._sum("dram_accesses")

    @property
    def dram_row_hits(self) -> int:
        """DRAM requests that hit an open row buffer, all SMs."""
        return self._sum("dram_row_hits")

    @property
    def dram_row_hit_rate(self) -> float:
        """Aggregate DRAM row-buffer hit rate."""
        accesses = self.dram_accesses
        return self.dram_row_hits / accesses if accesses else 0.0

    @property
    def dram_bank_parallelism(self) -> float:
        """Mean DRAM bank-level parallelism across SM runs."""
        vals = [r.dram_bank_parallelism for r in self.per_sm]
        return sum(vals) / len(vals) if vals else 0.0

    @property
    def guard_restarts(self) -> int:
        """Threads restarted by the speculative-stack guard, all SMs."""
        return self._sum("guard_restarts")

    @property
    def predictor_lookups(self) -> int:
        """Predictor-table lookups issued."""
        return self._sum("predictor_lookups")

    @property
    def predictor_updates(self) -> int:
        """Predictor-table updates committed."""
        return self._sum("predictor_updates")

    @property
    def simt_efficiency(self) -> float:
        """Active threads per warp step / warp width."""
        steps = self._sum("warp_steps")
        if not steps:
            return 0.0
        return self._sum("active_thread_steps") / (steps * 32)

    def rays_per_cycle(self) -> float:
        """Aggregate throughput: all SMs run concurrently."""
        return self.rays / self.cycles if self.cycles else 0.0


def split_rays_across_sms(
    rays: RayBatch, num_sms: int, warp_size: int = 32
) -> List[np.ndarray]:
    """Round-robin warps of rays across SMs, preserving in-SM order."""
    if num_sms < 1:
        raise ValueError("num_sms must be >= 1")
    n = len(rays)
    indices = np.arange(n)
    warp_ids = indices // warp_size
    return [indices[warp_ids % num_sms == sm] for sm in range(num_sms)]


def make_predictors(bvh: FlatBVH, config: GPUConfig) -> List[RayPredictor]:
    """One predictor per SM (Table 2: a predictor table per SM).

    Returned predictors can be passed to :func:`simulate_workload` across
    several frames to study inter-frame table persistence - the future
    direction the paper's conclusion sketches for dynamic scenes.
    """
    if config.predictor is None:
        return []
    return [RayPredictor(bvh, config.predictor) for _ in range(config.num_sms)]


def _simulate_one_sm(
    args: Tuple[FlatBVH, GPUConfig, RayBatch, int, str, bool, Optional[dict]],
) -> Tuple[int, RTUnitResult, MemoryHierarchy, Optional[dict]]:
    """One SM's run in a ``sm_jobs`` worker process.

    Only valid for private-L2 configurations: the worker builds a fresh
    memory hierarchy and (cold) predictor, so its result is bit-identical
    to the same SM's turn in the serial private-L2 loop.  The worker's
    telemetry snapshot (RT-unit spans and counters recorded inside
    ``unit.run``) rides back with the result; cache/DRAM stats are still
    published parent-side from the returned memory object, exactly like
    the serial loop, so nothing is double counted.
    """
    bvh, config, sm_rays, sm, engine, telemetry_on, ambient = args
    distributed.init_worker(telemetry_on, ambient)
    memory = MemoryHierarchy(config.memory)
    predictor = (
        RayPredictor(bvh, config.predictor) if config.predictor is not None else None
    )
    unit = make_rt_unit(engine, bvh, config, memory, predictor=predictor)
    with telemetry.label_context(sm=sm):
        result = unit.run(sm_rays)
    return sm, result, memory, distributed.capture_snapshot(unit=f"sm{sm}")


def simulate_workload(
    bvh: FlatBVH,
    rays: RayBatch,
    config: Optional[GPUConfig] = None,
    predictors: Optional[List[RayPredictor]] = None,
    engine: str = "vector",
    sm_jobs: int = 1,
) -> SimOutput:
    """Simulate tracing ``rays`` on the configured GPU.

    Args:
        bvh: the scene's acceleration structure.
        rays: occlusion rays in issue order.
        config: GPU configuration; ``config.predictor`` enables the
            ray intersection predictor (``None`` = baseline RT unit).
        predictors: optional pre-warmed per-SM predictors (from
            :func:`make_predictors`) to reuse between frames; by default
            each call starts with cold tables.
        engine: timing engine - ``"vector"`` (default, the batched SoA
            stepper) or ``"scalar"`` (the per-thread differential
            oracle).  Both produce identical cycles and counters.
        sm_jobs: shard per-SM runs across up to this many worker
            processes.  Requires ``config.shared_l2=False`` (private
            L2/DRAM per SM, so SM runs are independent) and cold
            predictors; the sharded result is bit-identical to the
            serial private-L2 run.

    Returns:
        :class:`SimOutput` with total cycles (max over SMs) and per-SM
        detailed results.
    """
    config = config or GPUConfig()
    if engine not in RT_ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {RT_ENGINES}")
    if predictors is not None and len(predictors) != config.num_sms:
        raise ValueError(
            f"expected {config.num_sms} predictors, got {len(predictors)}"
        )
    if sm_jobs < 1:
        raise ValueError("sm_jobs must be >= 1")
    sm_jobs = min(sm_jobs, config.num_sms)
    if sm_jobs > 1:
        if config.shared_l2:
            raise ValueError(
                "sm_jobs > 1 requires shared_l2=False: with a shared L2/DRAM "
                "the SM runs serialize through common memory state and "
                "cannot shard across processes"
            )
        if predictors is not None:
            raise ValueError(
                "sm_jobs > 1 cannot reuse pre-warmed predictors: worker "
                "processes cannot reflect table mutations back to the caller"
            )

    assignments = split_rays_across_sms(rays, config.num_sms, config.rt_unit.warp_size)
    with telemetry.span(
        "gpu.simulate", rays=len(rays), sms=config.num_sms,
        predictor=config.predictor is not None,
        engine=engine, sm_jobs=sm_jobs,
    ) as sp:
        if sm_jobs > 1:
            per_sm = _simulate_sharded(bvh, rays, config, assignments, engine, sm_jobs)
        else:
            per_sm = _simulate_serial(bvh, rays, config, predictors, assignments, engine)
        cycles = max((r.cycles for r in per_sm), default=0)
        sp.add(cycles=cycles)
    return SimOutput(cycles=cycles, per_sm=per_sm)


def _simulate_serial(
    bvh: FlatBVH,
    rays: RayBatch,
    config: GPUConfig,
    predictors: Optional[List[RayPredictor]],
    assignments: List[np.ndarray],
    engine: str,
) -> List[RTUnitResult]:
    """SMs one after another, sharing L2/DRAM when configured to."""
    shared_l2 = Cache(config.memory.l2) if config.shared_l2 else None
    shared_dram = DRAM(config.memory.dram) if config.shared_l2 else None

    per_sm: List[RTUnitResult] = []
    for sm, sm_rays in enumerate(assignments):
        if config.shared_l2:
            memory = MemoryHierarchy(config.memory, l2=shared_l2, dram=shared_dram)
            shared_dram.reset_timing()
        else:
            memory = MemoryHierarchy(config.memory)
        predictor = None
        if predictors is not None:
            predictor = predictors[sm]
        elif config.predictor is not None:
            predictor = RayPredictor(bvh, config.predictor)
        unit = make_rt_unit(engine, bvh, config, memory, predictor=predictor)
        with telemetry.label_context(sm=sm):
            per_sm.append(unit.run(rays.subset(sm_rays)))
        publish_cache_stats(memory.l1.stats, level="l1", sm=sm)
        publish_reuse_distances(memory, sm=sm)
        if not config.shared_l2:
            publish_cache_stats(memory.l2.stats, level="l2", sm=sm)
            publish_dram_stats(memory.dram.stats, config.memory.dram.num_banks, sm=sm)

    if config.shared_l2:
        publish_cache_stats(shared_l2.stats, level="l2")
        publish_dram_stats(shared_dram.stats, config.memory.dram.num_banks)
    return per_sm


def _simulate_sharded(
    bvh: FlatBVH,
    rays: RayBatch,
    config: GPUConfig,
    assignments: List[np.ndarray],
    engine: str,
    sm_jobs: int,
) -> List[RTUnitResult]:
    """Private-L2 SM runs fanned out across worker processes."""
    telemetry_on = telemetry.enabled()
    ambient = telemetry.current_labels() if telemetry_on else None
    tasks = [
        (bvh, config, rays.subset(sm_rays), sm, engine, telemetry_on, ambient)
        for sm, sm_rays in enumerate(assignments)
    ]
    per_sm: List[Optional[RTUnitResult]] = [None] * len(tasks)
    with ProcessPoolExecutor(max_workers=sm_jobs) as pool:
        # pool.map yields in SM order, so snapshot absorption is
        # deterministic regardless of which worker finished first.
        for sm, result, memory, snapshot in pool.map(_simulate_one_sm, tasks):
            per_sm[sm] = result
            distributed.absorb_snapshot(snapshot)
            publish_cache_stats(memory.l1.stats, level="l1", sm=sm)
            publish_cache_stats(memory.l2.stats, level="l2", sm=sm)
            publish_dram_stats(memory.dram.stats, config.memory.dram.num_banks, sm=sm)
            publish_reuse_distances(memory, sm=sm)
    return per_sm  # type: ignore[return-value]
