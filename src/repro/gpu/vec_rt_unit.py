"""Vectorized (SoA) implementation of the RT-unit timing model.

:class:`VectorRTUnit` is a drop-in replacement for
:class:`repro.gpu.rt_unit.RTUnit` that keeps per-ray state in flat numpy
arrays and advances every ready thread of a warp iteration with masked
array kernels instead of a Python loop: one exact-order slab kernel per
children of the interior threads, one gathered Moeller-Trumbore kernel
for all leaf triangles, insertion-ordered dict dedup for the MSHR/memory
stage (at warp width a dict beats ``np.unique``), and batched predictor
lookups at warp admission.

Cycle-for-cycle equivalence
---------------------------
The scalar stepper remains the differential oracle; this engine is
*cycle-count- and counter-identical* to it (the contract
``tests/test_vec_rt_unit.py`` pins on all seven scenes).  The details
that make that work:

* The discrete-event loop (heap of ``(ready_time, age)``, admission
  gate, partial-warp collector, watchdog) is shared logic operating on
  warp granularity - only the per-thread step body is vectorized, so
  event order is unchanged.  Warp steps serialize through the shared
  memory-hierarchy state exactly as before.
* The slab kernel reproduces the scalar ``ray_aabb_intersect``
  *operation order*: a compare-and-swap per axis (``np.where(t1 > t2)``
  - NaN compares false, so no swap, like Python) and left-fold
  max/min reductions (``acc = np.where(v > acc, v, acc)``), not
  ``np.maximum``, whose NaN propagation differs from Python's ``max``.
* Leaf threads test all triangles in one gathered kernel
  (:func:`~repro.geometry.intersect.ray_triangle_intersect_batch` is
  bit-identical to the scalar test by contract) and then charge fetches
  and latency only up to the first hit, recovering the scalar engine's
  early-exit counters.
* Per-step cache lines are assembled in exact scalar order (member
  order, each thread's lines in issue order) so the first-occurrence
  dedup, L1 port serialization, LRU updates and DRAM bank timing see
  the same request sequence.
* Predictor lookups batch per warp (``predict_batch`` is
  order-equivalent to sequential lookups - the PR 7 vectable
  contract); training and confirmation stay scalar per retired ray in
  member order, because interleaving them across rays would reorder
  LRU stamps within a table set.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import telemetry
from repro.bvh.nodes import (
    NODE_BASE_ADDRESS,
    NODE_SIZE_BYTES,
    TRIANGLE_BASE_ADDRESS,
    TRIANGLE_SIZE_BYTES,
    FlatBVH,
)
from repro.core.predictor import RayPredictor
from repro.core.repacking import COLLECTOR_CAPACITY, PartialWarpCollector
from repro.errors import SimulationStallError, TraversalError
from repro.geometry.intersect import ray_triangle_intersect_batch
from repro.geometry.ray import RayBatch
from repro.gpu.config import GPUConfig
from repro.gpu.memory import MemoryHierarchy
from repro.gpu.rt_unit import _RESTART_SENTINEL, RTUnit, RTUnitResult, _StepOutcome
from repro.telemetry.publish import (
    LaneHistogram,
    publish_rt_unit_result,
    publish_table_stats,
    table_stats_state,
)

#: Sentinel for "no hit yet" in first-hit reductions.
_NO_HIT = np.int64(1) << 62

#: Selectable RT-unit timing engines (`vector` is the default).
RT_ENGINES = ("vector", "scalar")


def _slab_exact(origins, inv_dirs, t_min, t_max, lo, hi):
    """Slab test with the scalar kernel's exact operation order.

    ``np.minimum``/``np.maximum`` propagate NaN; Python's swap-and-fold
    in :func:`~repro.geometry.intersect.ray_aabb_intersect` keeps the
    accumulator on NaN (comparisons are False).  Degenerate rays with
    ``0 * inf`` slab products therefore need this laddered form to stay
    bit-identical to the oracle.
    """
    with np.errstate(invalid="ignore"):
        t1 = (lo - origins) * inv_dirs
        t2 = (hi - origins) * inv_dirs
    swap = t1 > t2
    near = np.where(swap, t2, t1)
    far = np.where(swap, t1, t2)
    # t_near = max(nx, ny, nz, t_min) as a left fold, like Python's max().
    t_near = near[:, 0]
    for v in (near[:, 1], near[:, 2], t_min):
        t_near = np.where(v > t_near, v, t_near)
    t_far = far[:, 0]
    for v in (far[:, 1], far[:, 2], t_max):
        t_far = np.where(v < t_far, v, t_far)
    return t_near <= t_far, t_near


class _VecState:
    """Per-ray thread state as struct-of-arrays planes."""

    def __init__(self, rays: RayBatch, hashes: Optional[np.ndarray]) -> None:
        n = len(rays)
        self.n = n
        self.origin = np.asarray(rays.origins, dtype=np.float64)
        self.direction = np.asarray(rays.directions, dtype=np.float64)
        # 1/d matches _safe_inverse bit-for-bit: signed zeros give
        # correctly-signed infinities.
        with np.errstate(divide="ignore"):
            self.inv_direction = 1.0 / self.direction
        self.t_min = np.asarray(rays.t_min, dtype=np.float64)
        self.t_max = np.asarray(rays.t_max, dtype=np.float64)
        if hashes is not None:
            self.ray_hash = np.asarray(hashes, dtype=np.uint64)
        else:
            self.ray_hash = np.zeros(n, dtype=np.uint64)
        self.ready_time = np.zeros(n, dtype=np.int64)
        self.done = np.zeros(n, dtype=bool)
        self.trained = np.zeros(n, dtype=bool)
        self.predicted = np.zeros(n, dtype=bool)
        self.verified = np.zeros(n, dtype=bool)
        self.restarted = np.zeros(n, dtype=bool)
        self.hit_tri = np.full(n, -1, dtype=np.int64)
        self.node_fetches = np.zeros(n, dtype=np.int64)
        self.tri_fetches = np.zeros(n, dtype=np.int64)
        self.verify_node_fetches = np.zeros(n, dtype=np.int64)
        self.verify_tri_fetches = np.zeros(n, dtype=np.int64)
        self.spills = np.zeros(n, dtype=np.int64)
        # Traversal stacks: a (rays, capacity) plane plus explicit
        # lengths; every stack starts holding the root.
        self.stack = np.zeros((n, 16), dtype=np.int64)
        self.stack_len = np.ones(n, dtype=np.int64)

    def ensure_stack(self, need: int) -> None:
        """Grow the stack plane to hold at least ``need`` entries."""
        cap = self.stack.shape[1]
        if need <= cap:
            return
        grown = np.zeros((self.n, max(need, 2 * cap)), dtype=np.int64)
        grown[:, :cap] = self.stack
        self.stack = grown


@dataclass
class _VecWarp:
    """A resident warp over SoA state: member ray IDs plus metadata."""

    members: np.ndarray
    age: int
    ready_time: int
    from_collector: bool = False
    inflight: Dict[int, int] = field(default_factory=dict)


class VectorRTUnit:
    """One SM's RT unit, vectorized; equivalent to :class:`RTUnit`."""

    def __init__(
        self,
        bvh: FlatBVH,
        config: GPUConfig,
        memory: MemoryHierarchy,
        predictor: Optional[RayPredictor] = None,
    ) -> None:
        self.bvh = bvh
        self.config = config
        self.rt = config.rt_unit
        self.memory = memory
        self.predictor = predictor
        if config.predictor is not None and predictor is None:
            self.predictor = RayPredictor(bvh, config.predictor)
        self._left = bvh.left
        self._right = bvh.right
        self._first_tri = bvh.first_tri
        self._tri_count = bvh.tri_count
        self._lo = bvh.lo
        self._hi = bvh.hi
        self._v0 = np.asarray(bvh.mesh.v0, dtype=np.float64)
        self._v1 = np.asarray(bvh.mesh.v1, dtype=np.float64)
        self._v2 = np.asarray(bvh.mesh.v2, dtype=np.float64)
        self._num_nodes = bvh.num_nodes
        line_bytes = memory.config.l1.line_bytes
        nodes = np.arange(bvh.num_nodes, dtype=np.int64)
        tris = np.arange(bvh.num_triangles, dtype=np.int64)
        self._node_line = (NODE_BASE_ADDRESS + NODE_SIZE_BYTES * nodes) // line_bytes
        self._tri_line = (
            TRIANGLE_BASE_ADDRESS + TRIANGLE_SIZE_BYTES * tris
        ) // line_bytes
        self._st: Optional[_VecState] = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, rays: RayBatch) -> RTUnitResult:
        """Trace every ray in ``rays`` (in order) and return statistics."""
        table = getattr(self.predictor, "table", None)
        table_base = table_stats_state(table)
        with telemetry.span(
            "rt_unit.run", rays=len(rays),
            predictor=self.predictor is not None, engine="vector",
        ) as sp:
            result = self._run(rays)
            sp.add(cycles=result.cycles, warp_steps=result.warp_steps)
        publish_rt_unit_result(result)
        publish_table_stats(table, since=table_base, engine="vector")
        return result

    # ------------------------------------------------------------------
    # Event loop (mirrors RTUnit._run at warp granularity)
    # ------------------------------------------------------------------
    def _run(self, rays: RayBatch) -> RTUnitResult:
        hashes = None
        if self.predictor is not None:
            hashes = self.predictor.hash_batch(rays.origins, rays.directions)
        st = self._st = _VecState(rays, hashes)
        n = st.n
        warp_size = self.rt.warp_size
        pending = [
            np.arange(i, min(i + warp_size, n), dtype=np.int64)
            for i in range(0, n, warp_size)
        ]
        pending.reverse()  # pop() from the back yields original order

        use_predictor = self.predictor is not None
        repack = use_predictor and self.predictor.config.repack
        extra = self.predictor.config.extra_warps if use_predictor else 0
        buffer_capacity = (self.rt.max_warps + extra) * warp_size
        collector = PartialWarpCollector(
            warp_size=warp_size,
            capacity=max(COLLECTOR_CAPACITY, warp_size),
            timeout_cycles=self.config.collector_timeout,
        )
        collector_last_push = 0
        collector_ready: List[List[int]] = []

        heap: List[Tuple[int, int, _VecWarp]] = []
        counter = itertools.count()
        now = 0
        resident = 0
        buffer_used = 0
        warps_executed = 0
        collector_warps = 0
        warp_steps = 0
        active_thread_steps = 0
        # Divergence introspection: per-iteration active-lane counts,
        # accumulated locally and folded into the registry at run end.
        lane_hist = LaneHistogram() if telemetry.enabled() else None
        mis_nodes = 0
        mis_tris = 0
        box_tests = 0
        tri_tests = 0
        predictor_lookups = 0
        predictor_updates = 0
        guard_restarts = 0
        retired_rays = 0
        steps_since_retire = 0
        watchdog_cycles = self.config.watchdog_cycles
        watchdog_stall_steps = self.config.watchdog_stall_steps
        l1_before = (self.memory.l1.stats.accesses, self.memory.l1.stats.hits)
        l2_before = (self.memory.l2.stats.accesses, self.memory.l2.stats.hits)
        dram_before = self.memory.dram.stats.accesses
        dram_row_before = self.memory.dram.stats.row_hits

        def launch(warp: _VecWarp) -> None:
            nonlocal resident
            resident += 1
            heapq.heappush(heap, (warp.ready_time, warp.age, warp))

        def dispatch_collector_ready(time: int) -> None:
            nonlocal collector_warps
            while collector_ready:
                ids = collector_ready.pop(0)
                collector_warps += 1
                launch(
                    _VecWarp(
                        members=np.asarray(ids, dtype=np.int64),
                        age=next(counter),
                        ready_time=time + self.rt.queue_latency,
                        from_collector=True,
                    )
                )

        def admit_source(time: int) -> None:
            nonlocal buffer_used, warps_executed, collector_last_push
            nonlocal predictor_lookups
            while pending and buffer_used + warp_size <= buffer_capacity:
                group = pending.pop()
                buffer_used += len(group)
                ready = time + self.rt.queue_latency
                if use_predictor:
                    ready += self._predictor_stage(group)
                    predictor_lookups += len(group)
                    if repack:
                        pm = st.predicted[group]
                        predicted = group[pm]
                        group = group[~pm]
                        if len(predicted):
                            for ids in collector.push([int(r) for r in predicted]):
                                collector_ready.append(ids)
                            collector_last_push = ready
                            dispatch_collector_ready(ready)
                        if not len(group):
                            continue
                warps_executed += 1
                launch(_VecWarp(members=group, age=next(counter), ready_time=ready))

        def drain_collector(time: int, force: bool) -> None:
            nonlocal collector_last_push
            if len(collector) == 0:
                return
            if not force and time - collector_last_push < collector.timeout_cycles:
                return
            while len(collector):
                flushed = collector.flush(reason="final" if force else "timeout")
                if not flushed:
                    break
                collector_ready.append(flushed)
                if not force:
                    break
            collector_last_push = time
            dispatch_collector_ready(time)

        admit_source(0)
        while heap or pending or len(collector) or collector_ready:
            if not heap:
                drain_collector(now, force=True)
                dispatch_collector_ready(now)
                admit_source(now)
                if not heap:
                    break
            ready, _, warp = heapq.heappop(heap)
            now = max(now, ready)
            step = self._step_warp(warp, now)
            warp_steps += 1
            active_thread_steps += step.active_threads
            if lane_hist is not None:
                lane_hist.add(step.active_threads)
            mis_nodes += step.mis_node_fetches
            mis_tris += step.mis_tri_fetches
            box_tests += step.box_tests
            tri_tests += step.tri_tests
            predictor_updates += step.updates
            guard_restarts += step.guard_restarts

            retired_rays += step.retired
            steps_since_retire = 0 if step.retired else steps_since_retire + 1
            if (watchdog_cycles is not None and now > watchdog_cycles) or (
                steps_since_retire > watchdog_stall_steps
            ):
                reason = (
                    f"cycle cap {watchdog_cycles} exceeded"
                    if watchdog_cycles is not None and now > watchdog_cycles
                    else f"{steps_since_retire} warp iterations without a ray retiring"
                )
                raise SimulationStallError(
                    f"RT-unit watchdog fired at cycle {now}: {reason} "
                    f"({retired_rays}/{n} rays retired, "
                    f"{resident} resident warps, {len(pending)} source warps pending)",
                    cycles=now,
                    diagnostics={
                        "retired_rays": retired_rays,
                        "total_rays": n,
                        "resident_warps": resident,
                        "pending_source_warps": len(pending),
                        "buffer_used": buffer_used,
                        "warp_steps": warp_steps,
                        "collector_occupancy": len(collector),
                    },
                )

            if step.finished:
                resident -= 1
                buffer_used -= len(warp.members)
                dispatch_collector_ready(step.end_time)
                admit_source(step.end_time)
            else:
                warp.ready_time = step.end_time
                heapq.heappush(heap, (step.end_time, warp.age, warp))

            if repack:
                drain_collector(now, force=False)

        if lane_hist is not None:
            lane_hist.publish(engine="vector")
        l1 = self.memory.l1.stats
        l2 = self.memory.l2.stats
        dram = self.memory.dram.stats
        return RTUnitResult(
            cycles=now,
            rays=n,
            hits=int((st.hit_tri >= 0).sum()),
            predicted=int(st.predicted.sum()),
            verified=int(st.verified.sum()),
            node_fetches=int(st.node_fetches.sum()),
            tri_fetches=int(st.tri_fetches.sum()),
            misprediction_node_fetches=mis_nodes,
            misprediction_tri_fetches=mis_tris,
            box_tests=box_tests,
            tri_tests=tri_tests,
            warps_executed=warps_executed + collector_warps,
            warp_steps=warp_steps,
            active_thread_steps=active_thread_steps,
            stack_spills=int(st.spills.sum()),
            l1_accesses=l1.accesses - l1_before[0],
            l1_hits=l1.hits - l1_before[1],
            l2_accesses=l2.accesses - l2_before[0],
            l2_hits=l2.hits - l2_before[1],
            dram_accesses=dram.accesses - dram_before,
            dram_bank_parallelism=dram.bank_parallelism(
                self.memory.dram.config.num_banks
            ),
            predictor_lookups=predictor_lookups,
            predictor_updates=predictor_updates,
            collector_warps=collector_warps,
            collector_timeout_flushes=collector.stats.timeout_flushes,
            guard_restarts=guard_restarts,
            dram_row_hits=dram.row_hits - dram_row_before,
        )

    # ------------------------------------------------------------------
    # Predictor stage (batched lookups, scalar-equivalent stacks)
    # ------------------------------------------------------------------
    def _predictor_stage(self, group: np.ndarray) -> int:
        assert self.predictor is not None
        st = self._st
        config = self.predictor.config
        if self.predictor.supports_batch:
            nodes, counts = self.predictor.predict_batch(st.ray_hash[group])
            hitm = counts > 0
            rows = group[hitm]
            if len(rows):
                c = counts[hitm]
                st.ensure_stack(int(c.max()) + 1)
                st.predicted[rows] = True
                st.stack[rows, 0] = _RESTART_SENTINEL
                picked = nodes[hitm]
                # Scalar layout: [SENTINEL] + reversed(nodes), so list
                # slot j lands at stack position c - j (position c pops
                # first).
                for j in range(picked.shape[1]):
                    sel = c > j
                    st.stack[rows[sel], (c - j)[sel]] = picked[sel, j]
                st.stack_len[rows] = 1 + c
        else:
            # Fault-injection proxies (FaultyPredictor) have no batch
            # surface; fall back to per-ray lookups in member order.
            for r in group:
                r = int(r)
                nodes = self.predictor.predict(int(st.ray_hash[r]))
                if nodes:
                    k = len(nodes)
                    st.ensure_stack(k + 1)
                    st.predicted[r] = True
                    st.stack[r, 0] = _RESTART_SENTINEL
                    st.stack[r, 1 : k + 1] = nodes[::-1]
                    st.stack_len[r] = k + 1
        ports = max(1, config.ports)
        return (len(group) + ports - 1) // ports + config.lookup_latency

    # ------------------------------------------------------------------
    # One warp iteration, vectorized across ready threads
    # ------------------------------------------------------------------
    def _step_warp(self, warp: _VecWarp, now: int) -> _StepOutcome:
        st = self._st
        rt = self.rt
        members = warp.members
        out = _StepOutcome(end_time=now, finished=False, active_threads=0)

        m_done = st.done[members]
        if rt.warp_barrier:
            considered = ~m_done
        else:
            considered = ~m_done & (st.ready_time[members] <= now + rt.coalesce_window)
        cand = members[considered]
        cand_len = st.stack_len[cand]

        # Threads whose stack drained without a hit retire as scene
        # misses (no predictor interaction: hit_tri stays -1).
        empty = cand_len == 0
        if empty.any():
            rows = cand[empty]
            st.done[rows] = True
            self._retire_rows(rows, out)
            live = ~empty
            parts = cand[live]
            top_pos = cand_len[live] - 1
        else:
            parts = cand
            top_pos = cand_len - 1
        k = len(parts)
        out.active_threads = k
        if not k:
            alive = ~st.done[members]
            if alive.any():
                out.end_time = max(now + 1, int(st.ready_time[members[alive]].min()))
                out.finished = False
            else:
                out.end_time = now + 1
                out.finished = True
            return out

        # Pop one stack entry per participant.
        node = st.stack[parts, top_pos]
        st.stack_len[parts] = top_pos

        neg = node < 0
        if neg.any() or (node >= self._num_nodes).any():
            node = self._recover_bad_pops(parts, node, out)

        # Verification accounting uses post-restart flags; `restarted`
        # was just updated for this step's sentinel/guard threads.
        ver = st.predicted[parts]
        if ver.any():
            ver &= ~st.restarted[parts]
            ver &= ~st.verified[parts]

        is_leaf = self._left[node] < 0
        any_leaf = is_leaf.any()
        im = ~is_leaf

        # ---------------- interior threads ----------------
        rows_i = parts[im] if any_leaf else parts
        k_i = len(rows_i)
        if k_i:
            nodes_i = node[im] if any_leaf else node
            st.node_fetches[rows_i] += 1
            vi = ver[im] if any_leaf else ver
            if vi.any():
                st.verify_node_fetches[rows_i[vi]] += 1
            child = self._left[nodes_i]
            other = self._right[nodes_i]
            # One merged slab call for both children: rows duplicated,
            # left boxes in the first half, right boxes in the second.
            rows2 = np.concatenate([rows_i, rows_i])
            nodes2 = np.concatenate([child, other])
            hit2, t2 = _slab_exact(
                st.origin[rows2],
                st.inv_direction[rows2],
                st.t_min[rows2],
                st.t_max[rows2],
                self._lo[nodes2],
                self._hi[nodes2],
            )
            hit_l, hit_r = hit2[:k_i], hit2[k_i:]
            t_l, t_r = t2[:k_i], t2[k_i:]
            out.box_tests += 2 * k_i

            n_push = hit_l.astype(np.int64)
            n_push += hit_r
            both = hit_l & hit_r
            near_first = t_l <= t_r
            first = np.where(
                both,
                np.where(near_first, other, child),
                np.where(hit_l, child, other),
            )
            base = st.stack_len[rows_i]
            st.ensure_stack(int((base + n_push).max()))
            one = n_push >= 1
            st.stack[rows_i[one], base[one]] = first[one]
            two = n_push == 2
            if two.any():
                second = np.where(near_first, child, other)
                st.stack[rows_i[two], base[two] + 1] = second[two]
            st.stack_len[rows_i] = base + n_push

        # ---------------- leaf threads ----------------
        hrows = ()
        if any_leaf:
            rows_l = parts[is_leaf]
            nodes_l = node[is_leaf]
            counts = self._tri_count[nodes_l]
            starts = self._first_tri[nodes_l]
            vl = ver[is_leaf]
            total = int(counts.sum())
            kl = len(rows_l)
            seg = np.repeat(np.arange(kl), counts)
            pos = np.arange(total, dtype=np.int64) - np.repeat(
                np.cumsum(counts) - counts, counts
            )
            tris = starts[seg] + pos
            rseg = rows_l[seg]
            t = ray_triangle_intersect_batch(
                st.origin[rseg],
                st.direction[rseg],
                st.t_min[rseg],
                st.t_max[rseg],
                self._v0[tris],
                self._v1[tris],
                self._v2[tris],
            )
            hitp = t < np.inf
            first_pos = np.full(kl, _NO_HIT, dtype=np.int64)
            if hitp.any():
                np.minimum.at(first_pos, seg[hitp], pos[hitp])
            hit_any = first_pos < _NO_HIT
            tests = np.where(hit_any, first_pos + 1, counts)

            st.tri_fetches[rows_l] += tests
            if vl.any():
                st.verify_tri_fetches[rows_l[vl]] += tests[vl]
            out.tri_tests += int(tests.sum())
            hrows = rows_l[hit_any]
            if len(hrows):
                st.hit_tri[hrows] = starts[hit_any] + first_pos[hit_any]
                st.done[hrows] = True
                verified_rows = rows_l[hit_any & vl]
                if len(verified_rows):
                    st.verified[verified_rows] = True
        # Per-participant intersection latency and line counts.
        latency = np.full(k, rt.box_test_latency + 1, dtype=np.int64)
        if any_leaf:
            latency[is_leaf] = rt.tri_test_latency + np.maximum(0, tests - 1)

        # Spill penalty applies to the post-push stack depth of every
        # participant (interior or leaf), matching the scalar check.
        spill = st.stack_len[parts] > rt.stack_entries
        if spill.any():
            st.spills[parts[spill]] += 1
            latency[spill] += rt.stack_spill_penalty

        # ---------------- memory stage ----------------
        # Assemble each participant's line requests in exact scalar
        # order (member order; a leaf's lines in triangle order up to
        # its early exit), then dedup by first occurrence - the scalar
        # `dict.setdefault` MSHR sequence.  Only the walk over *unique*
        # lines stays a Python loop: it mutates sequential port, cache
        # and DRAM-bank state line by line.
        if any_leaf:
            nlines = np.ones(k, dtype=np.int64)
            nlines[is_leaf] = tests
            offsets = np.cumsum(nlines) - nlines
            total_lines = int(offsets[-1] + nlines[-1])
            all_lines = np.empty(total_lines, dtype=np.int64)
            if k_i:
                all_lines[offsets[im]] = self._node_line[nodes_i]
            # A leaf's kept lines are triangle positions 0..tests-1 -
            # contiguous - so they scatter to offset + position.
            kept = pos < tests[seg]
            all_lines[offsets[is_leaf][seg[kept]] + pos[kept]] = (
                self._tri_line[tris[kept]]
            )
        else:
            nlines = None
            all_lines = self._node_line[nodes_i]

        uniq, first_idx, inverse = np.unique(
            all_lines, return_index=True, return_inverse=True
        )
        order = np.argsort(first_idx)

        start = self.memory.acquire_scheduler_slot(now)
        inflight = warp.inflight
        access_line = self.memory.access_line_time
        inflight_cap = 4 * rt.warp_size
        uniq_list = uniq.tolist()
        ready_list = [0] * len(uniq_list)
        for j in order.tolist():
            line = uniq_list[j]
            pending = inflight.get(line)
            if pending is not None and pending >= start:
                ready_list[j] = pending
                continue
            ready = access_line(line, start)
            ready_list[j] = ready
            inflight[line] = ready
            if len(inflight) > inflight_cap:
                warp.inflight = {
                    ln: tm for ln, tm in inflight.items() if tm >= start
                }
                inflight = warp.inflight
        ready_by_uniq = np.array(ready_list, dtype=np.int64)

        # max over the thread's line-completion times; `start + 1` only
        # when it requested no lines (a merged in-flight line may have
        # completed at `start` itself, below that default).
        if any_leaf:
            owners = np.repeat(np.arange(k), nlines)
            data_ready = np.full(k, np.iinfo(np.int64).min, dtype=np.int64)
            np.maximum.at(data_ready, owners, ready_by_uniq[inverse])
            data_ready[nlines == 0] = start + 1
        else:
            # Exactly one line per interior thread.
            data_ready = ready_by_uniq[inverse]
        residual = np.maximum(0, st.ready_time[parts] - now)
        st.ready_time[parts] = np.maximum(data_ready, start + residual) + latency

        # Retire freshly-hit leaf threads in member order (train order
        # must match the scalar engine's predictor-stamp sequence).
        if len(hrows):
            self._retire_rows(hrows, out)

        m_done = st.done[members]
        if m_done.all():
            out.end_time = max(now + 1, int(st.ready_time[members].max()))
            out.finished = True
        else:
            rem = st.ready_time[members[~m_done]]
            pick = int(rem.max() if rt.warp_barrier else rem.min())
            out.end_time = max(now + 1, pick)
            out.finished = False
        return out

    def _recover_bad_pops(
        self, parts: np.ndarray, node: np.ndarray, out: _StepOutcome
    ) -> np.ndarray:
        """Handle restart sentinels and guard-invalid popped nodes."""
        st = self._st
        sent = node == _RESTART_SENTINEL
        if sent.any():
            rows = parts[sent]
            out.mis_node_fetches += int(st.verify_node_fetches[rows].sum())
            out.mis_tri_fetches += int(st.verify_tri_fetches[rows].sum())
            st.restarted[rows] = True
            node = np.where(sent, 0, node)
        invalid = ~sent & ((node < 0) | (node >= self._num_nodes))
        if invalid.any():
            rows = parts[invalid]
            already = st.restarted[rows]
            if already.any():
                pos = int(already.argmax())
                raise TraversalError(
                    f"ray {int(rows[pos])} popped invalid node "
                    f"{int(node[invalid][pos])} "
                    "after a guard restart (corrupted traversal state)",
                    bad_nodes=[int(node[invalid][pos])],
                    num_nodes=self._num_nodes,
                )
            out.mis_node_fetches += int(st.verify_node_fetches[rows].sum())
            out.mis_tri_fetches += int(st.verify_tri_fetches[rows].sum())
            out.guard_restarts += len(rows)
            st.restarted[rows] = True
            st.stack_len[rows] = 0
            node = np.where(invalid, 0, node)
        return node

    # ------------------------------------------------------------------
    def _retire_rows(self, rows: np.ndarray, out: _StepOutcome) -> None:
        """Train/confirm per retired ray, in member order (scalar parity)."""
        st = self._st
        predictor = self.predictor
        for r in rows:
            r = int(r)
            if st.trained[r]:
                continue
            st.trained[r] = True
            out.retired += 1
            tri = int(st.hit_tri[r])
            if tri >= 0 and predictor is not None:
                h = int(st.ray_hash[r])
                predictor.train(h, tri)
                out.updates += 1
                if st.verified[r]:
                    predictor.confirm(h, predictor.trained_node_for(tri))


def make_rt_unit(
    engine: str,
    bvh: FlatBVH,
    config: GPUConfig,
    memory: MemoryHierarchy,
    predictor: Optional[RayPredictor] = None,
):
    """Construct an RT-unit timing engine by name.

    ``"vector"`` is the SoA default; ``"scalar"`` is the per-thread
    reference stepper kept as the differential oracle.
    """
    if engine == "vector":
        return VectorRTUnit(bvh, config, memory, predictor=predictor)
    if engine == "scalar":
        return RTUnit(bvh, config, memory, predictor=predictor)
    raise ValueError(
        f"unknown RT-unit engine {engine!r}; expected one of {RT_ENGINES}"
    )


__all__ = ["RT_ENGINES", "VectorRTUnit", "make_rt_unit"]
