"""Warp-level discrete-event model of the RT unit (Figure 10).

Execution model
---------------

Rays arrive grouped into source warps of 32.  The unit holds at most
``max_warps`` resident warps (the 256-slot ray buffer); a new source warp
is admitted whenever a warp slot and 32 ray-buffer slots are free.

On admission a warp (optionally) performs the predictor stage: every
thread hashes its ray and looks the predictor table up through the
table's access ports (4 lookups per cycle by default).  With repacking
enabled, predicted rays leave the warp for the partial warp collector,
which re-emits full 32-ray warps (or flushes on timeout); without
repacking, predicted rays simply have their predicted nodes pushed onto
their traversal stacks in place.  Repacked warps occupy warp slots up to
``max_warps + extra_warps`` (Section 4.4.2).

Each subsequent *step* of a resident warp pops one traversal-stack entry
per active thread:

* an interior node costs one node-record fetch (the record holds both
  children's boxes) and two pipelined box tests, then pushes surviving
  children near-first;
* a leaf costs one triangle-record fetch and test per triangle, stopping
  at the first hit (occlusion semantics).

The step's distinct cache-line requests issue through the single L1 port
on consecutive cycles and overlap MSHR-style, so the memory time is the
max of individual completion times; the pipelined intersection latency
is added on top.  The warp becomes ready again at that completion time;
a heap ordered by (ready time, warp age) realizes greedy-then-oldest
scheduling.  Mispredicted rays restart from the root inside their
thread, which is exactly the "long tail" that warp repacking removes.

Predictor *updates* are applied when a ray completes, so a lookup only
sees training from rays that already finished - the delayed-update
behaviour that makes sorted rays benefit less (Section 6).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import telemetry
from repro.bvh.nodes import FlatBVH
from repro.core.predictor import RayPredictor
from repro.core.repacking import COLLECTOR_CAPACITY, PartialWarpCollector
from repro.errors import SimulationStallError, TraversalError
from repro.geometry.intersect import ray_aabb_intersect, ray_triangle_intersect
from repro.geometry.ray import RayBatch
from repro.gpu.config import GPUConfig
from repro.gpu.memory import MemoryHierarchy
from repro.telemetry.publish import (
    LaneHistogram,
    publish_rt_unit_result,
    publish_table_stats,
    table_stats_state,
)

#: Marker pushed below predicted nodes; popping it means the prediction
#: failed and the ray must restart from the root (misprediction recovery).
_RESTART_SENTINEL = -2


@dataclass
class _ThreadState:
    """One ray resident in the ray buffer."""

    ray_id: int
    origin: Tuple[float, float, float]
    direction: Tuple[float, float, float]
    inv_direction: Tuple[float, float, float]
    t_min: float
    t_max: float
    ray_hash: int = 0
    stack: List[int] = field(default_factory=list)
    ready_time: int = 0
    done: bool = False
    trained: bool = False
    hit_tri: int = -1
    predicted: bool = False
    verified: bool = False
    restarted: bool = False
    node_fetches: int = 0
    tri_fetches: int = 0
    verify_node_fetches: int = 0
    verify_tri_fetches: int = 0
    spills: int = 0


@dataclass
class _Warp:
    """A resident warp: its threads plus scheduling metadata.

    ``inflight`` models MSHR merging plus the data broadcast of Section
    5.1.2: while a line request is outstanding (its data has not returned
    yet), further requests for the same line from this warp merge into it
    for free.  Once the data returned and was broadcast, a later request
    must re-access the memory system (it will usually hit the L1, but
    still costs a port slot) - so threads that fall out of phase with
    their warp-mates stop benefiting, which is the cost warp repacking
    recovers.
    """

    threads: List[_ThreadState]
    age: int
    ready_time: int
    from_collector: bool = False
    inflight: Dict[int, int] = field(default_factory=dict)


@dataclass
class _StepOutcome:
    """Bookkeeping produced by one warp step."""

    end_time: int
    finished: bool
    active_threads: int
    mis_node_fetches: int = 0
    mis_tri_fetches: int = 0
    box_tests: int = 0
    tri_tests: int = 0
    updates: int = 0
    retired: int = 0
    guard_restarts: int = 0


@dataclass
class RTUnitResult:
    """Aggregate output of one RT-unit run."""

    cycles: int
    rays: int
    hits: int
    predicted: int
    verified: int
    node_fetches: int
    tri_fetches: int
    misprediction_node_fetches: int
    misprediction_tri_fetches: int
    box_tests: int
    tri_tests: int
    warps_executed: int
    warp_steps: int
    active_thread_steps: int
    stack_spills: int
    l1_accesses: int
    l1_hits: int
    l2_accesses: int
    l2_hits: int
    dram_accesses: int
    dram_bank_parallelism: float
    predictor_lookups: int
    predictor_updates: int
    collector_warps: int
    collector_timeout_flushes: int
    #: Threads whose speculative stack held an invalid node index and
    #: were restarted from the root by the guard (0 in healthy runs).
    guard_restarts: int = 0
    #: DRAM accesses that hit their bank's open row buffer (pure
    #: observability - row state never changes timing).
    dram_row_hits: int = 0

    @property
    def dram_row_hit_rate(self) -> float:
        """Fraction of this run's DRAM accesses that were row-buffer hits."""
        return self.dram_row_hits / self.dram_accesses if self.dram_accesses else 0.0

    @property
    def total_accesses(self) -> int:
        """Memory accesses at record granularity (nodes + triangles)."""
        return self.node_fetches + self.tri_fetches

    @property
    def predicted_rate(self) -> float:
        """Fraction of rays with a predictor-table hit."""
        return self.predicted / self.rays if self.rays else 0.0

    @property
    def verified_rate(self) -> float:
        """Fraction of rays whose prediction verified."""
        return self.verified / self.rays if self.rays else 0.0

    @property
    def hit_rate(self) -> float:
        """Fraction of rays intersecting the scene."""
        return self.hits / self.rays if self.rays else 0.0

    @property
    def l1_hit_rate(self) -> float:
        """L1 hit rate of this run."""
        return self.l1_hits / self.l1_accesses if self.l1_accesses else 0.0

    @property
    def l2_hit_rate(self) -> float:
        """L2 hit rate seen by this SM's misses."""
        return self.l2_hits / self.l2_accesses if self.l2_accesses else 0.0

    @property
    def simt_efficiency(self) -> float:
        """Active threads per warp step, normalized to the warp width."""
        if not self.warp_steps:
            return 0.0
        return self.active_thread_steps / (self.warp_steps * 32)

    def rays_per_cycle(self) -> float:
        """Throughput of this RT unit."""
        return self.rays / self.cycles if self.cycles else 0.0


class RTUnit:
    """One SM's RT unit, optionally augmented with the predictor."""

    def __init__(
        self,
        bvh: FlatBVH,
        config: GPUConfig,
        memory: MemoryHierarchy,
        predictor: Optional[RayPredictor] = None,
    ) -> None:
        self.bvh = bvh
        self.config = config
        self.rt = config.rt_unit
        self.memory = memory
        self.predictor = predictor
        if config.predictor is not None and predictor is None:
            self.predictor = RayPredictor(bvh, config.predictor)
        self._hot = bvh.hot()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, rays: RayBatch) -> RTUnitResult:
        """Trace every ray in ``rays`` (in order) and return statistics."""
        table = getattr(self.predictor, "table", None)
        table_base = table_stats_state(table)
        with telemetry.span(
            "rt_unit.run", rays=len(rays),
            predictor=self.predictor is not None, engine="scalar",
        ) as sp:
            result = self._run(rays)
            sp.add(cycles=result.cycles, warp_steps=result.warp_steps)
        publish_rt_unit_result(result)
        publish_table_stats(table, since=table_base, engine="scalar")
        return result

    def _run(self, rays: RayBatch) -> RTUnitResult:
        """The discrete-event loop behind :meth:`run`."""
        threads = self._make_threads(rays)
        pending = [
            threads[i : i + self.rt.warp_size]
            for i in range(0, len(threads), self.rt.warp_size)
        ]
        pending.reverse()  # pop() from the back yields original order

        use_predictor = self.predictor is not None
        repack = use_predictor and self.predictor.config.repack
        # The unit's real capacity limit is the ray buffer (8 warps x 32
        # rays); "additional warps" (Section 4.4.2) raise the number of
        # simultaneously executing warps, i.e. buffer-resident rays.
        extra = self.predictor.config.extra_warps if use_predictor else 0
        buffer_capacity = (self.rt.max_warps + extra) * self.rt.warp_size
        # `capacity` is a constructor floor (push() drains at warp_size
        # regardless); widening it for wide-SIMT configs is behaviorally
        # free and keeps warp_size > COLLECTOR_CAPACITY legal.
        collector = PartialWarpCollector(
            warp_size=self.rt.warp_size,
            capacity=max(COLLECTOR_CAPACITY, self.rt.warp_size),
            timeout_cycles=self.config.collector_timeout,
        )
        collector_last_push = 0
        collector_ready: List[List[int]] = []  # flushed warps awaiting a slot

        heap: List[Tuple[int, int, _Warp]] = []
        counter = itertools.count()
        now = 0
        resident = 0
        buffer_used = 0
        warps_executed = 0
        collector_warps = 0
        warp_steps = 0
        active_thread_steps = 0
        # Divergence introspection: per-iteration active-lane counts,
        # accumulated locally and folded into the registry at run end.
        lane_hist = LaneHistogram() if telemetry.enabled() else None
        mis_nodes = 0
        mis_tris = 0
        box_tests = 0
        tri_tests = 0
        predictor_lookups = 0
        predictor_updates = 0
        guard_restarts = 0
        retired_rays = 0
        steps_since_retire = 0
        watchdog_cycles = self.config.watchdog_cycles
        watchdog_stall_steps = self.config.watchdog_stall_steps
        l1_before = (self.memory.l1.stats.accesses, self.memory.l1.stats.hits)
        l2_before = (self.memory.l2.stats.accesses, self.memory.l2.stats.hits)
        dram_before = self.memory.dram.stats.accesses
        dram_row_before = self.memory.dram.stats.row_hits

        def launch(warp: _Warp) -> None:
            nonlocal resident
            resident += 1
            heapq.heappush(heap, (warp.ready_time, warp.age, warp))

        def dispatch_collector_ready(time: int) -> None:
            """Launch flushed repacked warps immediately.

            Their rays already hold ray-buffer slots (only ray IDs moved,
            Section 4.4.1), so no admission gate applies.
            """
            nonlocal collector_warps
            while collector_ready:
                ids = collector_ready.pop(0)
                collector_warps += 1
                launch(
                    _Warp(
                        threads=[threads[r] for r in ids],
                        age=next(counter),
                        ready_time=time + self.rt.queue_latency,
                        from_collector=True,
                    )
                )

        def admit_source(time: int) -> None:
            """Admit pending source warps while ray-buffer space allows."""
            nonlocal buffer_used, warps_executed, collector_last_push
            nonlocal predictor_lookups
            while pending and buffer_used + self.rt.warp_size <= buffer_capacity:
                group = pending.pop()
                buffer_used += len(group)
                ready = time + self.rt.queue_latency
                if use_predictor:
                    ready += self._predictor_stage(group)
                    predictor_lookups += len(group)
                    if repack:
                        predicted = [t for t in group if t.predicted]
                        group = [t for t in group if not t.predicted]
                        if predicted:
                            for ids in collector.push([t.ray_id for t in predicted]):
                                collector_ready.append(ids)
                            collector_last_push = ready
                            dispatch_collector_ready(ready)
                        if not group:
                            continue
                warps_executed += 1
                launch(_Warp(threads=list(group), age=next(counter), ready_time=ready))

        def drain_collector(time: int, force: bool) -> None:
            """Flush the collector on timeout (or unconditionally at the end)."""
            nonlocal collector_last_push
            if len(collector) == 0:
                return
            if not force and time - collector_last_push < collector.timeout_cycles:
                return
            while len(collector):
                flushed = collector.flush(reason="final" if force else "timeout")
                if not flushed:
                    break
                collector_ready.append(flushed)
                if not force:
                    break
            collector_last_push = time
            dispatch_collector_ready(time)

        admit_source(0)
        while heap or pending or len(collector) or collector_ready:
            if not heap:
                # Nothing in flight: force out stragglers, then admit.
                drain_collector(now, force=True)
                dispatch_collector_ready(now)
                admit_source(now)
                if not heap:
                    break
            ready, _, warp = heapq.heappop(heap)
            now = max(now, ready)
            step = self._step_warp(warp, now)
            warp_steps += 1
            active_thread_steps += step.active_threads
            if lane_hist is not None:
                lane_hist.add(step.active_threads)
            mis_nodes += step.mis_node_fetches
            mis_tris += step.mis_tri_fetches
            box_tests += step.box_tests
            tri_tests += step.tri_tests
            predictor_updates += step.updates
            guard_restarts += step.guard_restarts

            # Watchdog: a corrupted state machine must abort with
            # diagnostics, not spin until the host process is killed.
            retired_rays += step.retired
            steps_since_retire = 0 if step.retired else steps_since_retire + 1
            if (watchdog_cycles is not None and now > watchdog_cycles) or (
                steps_since_retire > watchdog_stall_steps
            ):
                reason = (
                    f"cycle cap {watchdog_cycles} exceeded"
                    if watchdog_cycles is not None and now > watchdog_cycles
                    else f"{steps_since_retire} warp iterations without a ray retiring"
                )
                raise SimulationStallError(
                    f"RT-unit watchdog fired at cycle {now}: {reason} "
                    f"({retired_rays}/{len(threads)} rays retired, "
                    f"{resident} resident warps, {len(pending)} source warps pending)",
                    cycles=now,
                    diagnostics={
                        "retired_rays": retired_rays,
                        "total_rays": len(threads),
                        "resident_warps": resident,
                        "pending_source_warps": len(pending),
                        "buffer_used": buffer_used,
                        "warp_steps": warp_steps,
                        "collector_occupancy": len(collector),
                    },
                )

            if step.finished:
                resident -= 1
                buffer_used -= len(warp.threads)
                dispatch_collector_ready(step.end_time)
                admit_source(step.end_time)
            else:
                warp.ready_time = step.end_time
                heapq.heappush(heap, (step.end_time, warp.age, warp))

            if repack:
                drain_collector(now, force=False)

        if lane_hist is not None:
            lane_hist.publish(engine="scalar")
        total_cycles = now
        l1 = self.memory.l1.stats
        l2 = self.memory.l2.stats
        dram = self.memory.dram.stats
        return RTUnitResult(
            cycles=total_cycles,
            rays=len(threads),
            hits=sum(1 for t in threads if t.hit_tri >= 0),
            predicted=sum(1 for t in threads if t.predicted),
            verified=sum(1 for t in threads if t.verified),
            node_fetches=sum(t.node_fetches for t in threads),
            tri_fetches=sum(t.tri_fetches for t in threads),
            misprediction_node_fetches=mis_nodes,
            misprediction_tri_fetches=mis_tris,
            box_tests=box_tests,
            tri_tests=tri_tests,
            warps_executed=warps_executed + collector_warps,
            warp_steps=warp_steps,
            active_thread_steps=active_thread_steps,
            stack_spills=sum(t.spills for t in threads),
            l1_accesses=l1.accesses - l1_before[0],
            l1_hits=l1.hits - l1_before[1],
            l2_accesses=l2.accesses - l2_before[0],
            l2_hits=l2.hits - l2_before[1],
            dram_accesses=dram.accesses - dram_before,
            dram_bank_parallelism=dram.bank_parallelism(
                self.memory.dram.config.num_banks
            ),
            predictor_lookups=predictor_lookups,
            predictor_updates=predictor_updates,
            collector_warps=collector_warps,
            collector_timeout_flushes=collector.stats.timeout_flushes,
            guard_restarts=guard_restarts,
            dram_row_hits=dram.row_hits - dram_row_before,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _make_threads(self, rays: RayBatch) -> List[_ThreadState]:
        threads: List[_ThreadState] = []
        hashes = None
        if self.predictor is not None:
            hashes = self.predictor.hash_batch(rays.origins, rays.directions)
        for i in range(len(rays)):
            ray = rays[i]
            thread = _ThreadState(
                ray_id=i,
                origin=ray.origin,
                direction=ray.direction,
                inv_direction=ray.inv_direction(),
                t_min=ray.t_min,
                t_max=ray.t_max,
                stack=[0],
            )
            if hashes is not None:
                thread.ray_hash = int(hashes[i])
            threads.append(thread)
        return threads

    def _predictor_stage(self, group: Sequence[_ThreadState]) -> int:
        """Run lookups for a warp; returns the stage latency in cycles.

        Lookups drain through the table's access ports; predicted rays
        get their predicted node(s) pushed above a restart sentinel.
        """
        assert self.predictor is not None
        config = self.predictor.config
        for thread in group:
            nodes = self.predictor.predict(thread.ray_hash)
            if nodes:
                thread.predicted = True
                # On verification failure the sentinel triggers a root restart.
                thread.stack = [_RESTART_SENTINEL] + list(reversed(nodes))
        ports = max(1, config.ports)
        return (len(group) + ports - 1) // ports + config.lookup_latency

    def _step_warp(self, warp: _Warp, now: int) -> _StepOutcome:
        """Service every thread of ``warp`` that is ready at cycle ``now``.

        Threads progress semi-independently, as in the paper's RT unit
        (per-warp FIFO, requests merged MSHR-style, results broadcast to
        the ray buffer): each ready thread pops one stack entry, its
        distinct cache lines issue back-to-back through the L1 port, and
        the thread becomes ready again at its own data-return time plus
        the pipelined intersection latency.  The warp re-enters the
        scheduler at the earliest thread-ready time, and only releases
        its warp slot when every thread has completed - so a slow
        (mispredicted) thread still holds the slot, which is precisely
        the cost warp repacking removes.
        """
        hot = self._hot
        left = hot.left
        line_of = self.memory.line_of
        node_base = self.bvh.node_address
        tri_base = self.bvh.triangle_address

        out = _StepOutcome(end_time=now, finished=False, active_threads=0)
        # Gather the threads to service and their memory lines.  Lines are
        # deduplicated across the whole service group (MSHR merging); the
        # coalesce window lets slightly-later threads join the iteration,
        # modeling the per-warp FIFO merge and data broadcast.
        if self.rt.warp_barrier:
            horizon = None  # every active thread joins the iteration
        else:
            horizon = now + self.rt.coalesce_window
        lines: Dict[int, int] = {}  # line -> completion time (filled below)
        participants: List[Tuple[_ThreadState, List[int], int]] = []

        for thread in warp.threads:
            if thread.done or (horizon is not None and thread.ready_time > horizon):
                continue
            if not thread.stack:
                thread.done = True  # traversal exhausted: scene miss
                self._retire_thread(thread, out)
                continue
            node = thread.stack.pop()
            if node == _RESTART_SENTINEL:
                # Prediction exhausted without a hit: misprediction.
                out.mis_node_fetches += thread.verify_node_fetches
                out.mis_tri_fetches += thread.verify_tri_fetches
                thread.restarted = True
                node = 0  # restart the full traversal from the root
            elif not 0 <= node < len(left):
                # Speculative stack entry outside the BVH (a corrupted
                # prediction that bypassed the predictor's range guard).
                # A negative index would *silently* wrap in the Python
                # node arrays - the worst possible failure.  Degrade:
                # discard the speculative stack, charge the verification
                # traffic as a misprediction, restart from the root.
                if thread.restarted:
                    raise TraversalError(
                        f"ray {thread.ray_id} popped invalid node {node} "
                        "after a guard restart (corrupted traversal state)",
                        bad_nodes=[node],
                        num_nodes=len(left),
                    )
                out.mis_node_fetches += thread.verify_node_fetches
                out.mis_tri_fetches += thread.verify_tri_fetches
                out.guard_restarts += 1
                thread.restarted = True
                thread.stack = []
                node = 0

            thread_lines: List[int] = []
            if left[node] < 0:
                tests = self._leaf_step(thread, node, thread_lines, line_of, tri_base)
                out.tri_tests += tests
                latency = self.rt.tri_test_latency + max(0, tests - 1)
            else:
                self._interior_step(thread, node, thread_lines, line_of, node_base)
                out.box_tests += 2
                latency = self.rt.box_test_latency + 1
            if len(thread.stack) > self.rt.stack_entries:
                thread.spills += 1
                latency += self.rt.stack_spill_penalty
            for line in thread_lines:
                lines.setdefault(line, 0)
            participants.append((thread, thread_lines, latency))

        out.active_threads = len(participants)
        if not participants:
            # Popped early relative to thread readiness (or all done).
            remaining = [t.ready_time for t in warp.threads if not t.done]
            if remaining:
                out.end_time = max(now + 1, min(remaining))
                out.finished = False
            else:
                out.end_time = now + 1
                out.finished = True
            return out

        # Each warp iteration first claims a controller slot (one warp is
        # serviced per cycle), then issues its distinct lines through the
        # SM's L1 port; misses overlap MSHR-style, so each line completes
        # independently.  A line whose data is still in flight for this
        # warp merges for free (MSHR + broadcast); once returned, a later
        # request must re-access the memory system.
        start = self.memory.acquire_scheduler_slot(now)
        inflight = warp.inflight
        for line in lines:
            pending = inflight.get(line)
            if pending is not None and pending >= start:
                lines[line] = pending
                continue
            ready = self.memory.access_line_time(line, start)
            lines[line] = ready
            inflight[line] = ready
            if len(inflight) > 4 * self.rt.warp_size:
                # Prune stale entries opportunistically.
                warp.inflight = {
                    l: t for l, t in inflight.items() if t >= start
                }
                inflight = warp.inflight

        for thread, thread_lines, latency in participants:
            data_ready = max((lines[l] for l in thread_lines), default=start + 1)
            # A thread that joined the iteration early (ready later than
            # `now` but within the window) still pays its residual latency.
            residual = max(0, thread.ready_time - now)
            thread.ready_time = max(data_ready, start + residual) + latency
            if thread.done:
                self._retire_thread(thread, out)

        if all(t.done for t in warp.threads):
            out.end_time = max(now + 1, max(t.ready_time for t in warp.threads))
            out.finished = True
        else:
            remaining = [t.ready_time for t in warp.threads if not t.done]
            # Barrier semantics: the next iteration starts when the slowest
            # thread's data returned; otherwise when the fastest is ready.
            pick = max(remaining) if self.rt.warp_barrier else min(remaining)
            out.end_time = max(now + 1, pick)
            out.finished = False
        return out

    def _interior_step(self, thread, node, thread_lines, line_of, node_base) -> None:
        """Fetch an interior node and box-test both children."""
        hot = self._hot
        thread.node_fetches += 1
        if thread.predicted and not thread.restarted and not thread.verified:
            thread.verify_node_fetches += 1
        thread_lines.append(line_of(node_base(node)))

        ox, oy, oz = thread.origin
        ix, iy, iz = thread.inv_direction
        child = hot.left[node]
        other = hot.right[node]
        hit_l, t_l = ray_aabb_intersect(
            ox, oy, oz, ix, iy, iz, thread.t_min, thread.t_max,
            hot.lo_x[child], hot.lo_y[child], hot.lo_z[child],
            hot.hi_x[child], hot.hi_y[child], hot.hi_z[child],
        )
        hit_r, t_r = ray_aabb_intersect(
            ox, oy, oz, ix, iy, iz, thread.t_min, thread.t_max,
            hot.lo_x[other], hot.lo_y[other], hot.lo_z[other],
            hot.hi_x[other], hot.hi_y[other], hot.hi_z[other],
        )
        stack = thread.stack
        if hit_l and hit_r:
            if t_l <= t_r:
                stack.append(other)
                stack.append(child)
            else:
                stack.append(child)
                stack.append(other)
        elif hit_l:
            stack.append(child)
        elif hit_r:
            stack.append(other)

    def _leaf_step(self, thread, node, thread_lines, line_of, tri_base) -> int:
        """Fetch and test a leaf's triangles; returns tests performed."""
        hot = self._hot
        ox, oy, oz = thread.origin
        dx, dy, dz = thread.direction
        start = hot.first_tri[node]
        count = hot.tri_count[node]
        tests = 0
        verifying = thread.predicted and not thread.restarted and not thread.verified
        for tri in range(start, start + count):
            thread.tri_fetches += 1
            if verifying:
                thread.verify_tri_fetches += 1
            thread_lines.append(line_of(tri_base(tri)))
            tests += 1
            t = ray_triangle_intersect(
                ox, oy, oz, dx, dy, dz, thread.t_min, thread.t_max,
                hot.tri_v0[tri], hot.tri_v1[tri], hot.tri_v2[tri],
            )
            if t is not None:
                thread.hit_tri = tri
                thread.done = True
                if verifying:
                    thread.verified = True
                break
        return tests

    def _retire_thread(self, thread: _ThreadState, out: _StepOutcome) -> None:
        """Train the predictor once when a hitting ray completes."""
        if thread.trained:
            return
        thread.trained = True
        out.retired += 1
        if thread.hit_tri >= 0 and self.predictor is not None:
            self.predictor.train(thread.ray_hash, thread.hit_tri)
            out.updates += 1
            if thread.verified:
                self.predictor.confirm(
                    thread.ray_hash, self.predictor.trained_node_for(thread.hit_tri)
                )
