"""Set-associative LRU cache model.

Timing-free hit/miss machinery; latency composition happens in
:class:`repro.gpu.memory.MemoryHierarchy`.  Lines are tracked by line
address (byte address divided by line size); an OrderedDict per set
gives O(1) LRU updates.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List

from repro.gpu.config import CacheConfig


@dataclass
class CacheStats:
    """Hit/miss counters for one cache."""

    accesses: int = 0
    hits: int = 0

    @property
    def misses(self) -> int:
        """Accesses that missed."""
        return self.accesses - self.hits

    @property
    def hit_rate(self) -> float:
        """Hits per access (0 when idle)."""
        return self.hits / self.accesses if self.accesses else 0.0


class Cache:
    """A set-associative cache with LRU replacement."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        # Geometry cached as plain ints: `access` sits on the timing
        # model's innermost loop and property lookups dominate it.
        self._num_sets = config.num_sets
        self._ways = config.ways
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self._num_sets)]
        self.stats = CacheStats()

    def _locate(self, line_addr: int) -> OrderedDict:
        return self._sets[line_addr % self._num_sets]

    def access(self, line_addr: int) -> bool:
        """Access a line; returns True on hit.  Misses allocate (LRU evict)."""
        self.stats.accesses += 1
        bucket = self._sets[line_addr % self._num_sets]
        if line_addr in bucket:
            bucket.move_to_end(line_addr)
            self.stats.hits += 1
            return True
        if len(bucket) >= self._ways:
            bucket.popitem(last=False)
        bucket[line_addr] = True
        return False

    def probe(self, line_addr: int) -> bool:
        """Check residency without updating LRU state or counters."""
        return line_addr in self._locate(line_addr)

    def line_of(self, byte_addr: int) -> int:
        """Line address containing ``byte_addr``."""
        return byte_addr // self.config.line_bytes

    def flush(self) -> None:
        """Invalidate all lines (keeps statistics)."""
        for bucket in self._sets:
            bucket.clear()
