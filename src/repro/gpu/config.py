"""Configuration dataclasses for the GPU/RT-unit timing model.

Defaults are a *scaled* version of Table 2: the paper simulates scenes
whose BVH working sets are tens of megabytes against a 64 KB L1; our
stand-in scenes are ~50-300 KB, so capacities are scaled to preserve the
working-set : cache ratio (the quantity Figures 1 and 16 are about).
The paper's absolute values are recorded in the docstrings.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.predictor import PredictorConfig


@dataclass(frozen=True)
class CacheConfig:
    """A set-associative cache (paper: L1 64 KB fully-assoc, L2 1 MB 16-way).

    Attributes:
        size_bytes: total capacity.
        line_bytes: cache-line size (128 B, Table 2).
        ways: associativity.
        latency: hit latency in cycles.
    """

    size_bytes: int = 4 * 1024
    line_bytes: int = 128
    ways: int = 16
    latency: int = 1

    def __post_init__(self) -> None:
        if self.size_bytes < self.line_bytes:
            raise ValueError("cache smaller than one line")
        num_lines = self.size_bytes // self.line_bytes
        if num_lines % self.ways != 0:
            raise ValueError("lines must divide evenly into ways")

    @property
    def num_lines(self) -> int:
        """Total cache lines."""
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        """Number of sets (lines / ways)."""
        return self.num_lines // self.ways


@dataclass(frozen=True)
class DRAMConfig:
    """Banked DRAM timing (paper: GDDR via GPGPU-Sim; here an abstraction).

    Attributes:
        num_banks: independent banks (addresses interleave line-wise).
        latency: access latency when the bank is idle, in core cycles.
        bank_occupancy: cycles a bank stays busy per access (throughput).
        lines_per_row: cache lines per DRAM row buffer; consecutive
            same-bank lines share a row, and back-to-back accesses to
            the open row are counted as row-buffer hits.  Purely an
            observability counter - row state does not change timing,
            so cycle counts are independent of this value.
    """

    num_banks: int = 8
    latency: int = 120
    bank_occupancy: int = 24
    lines_per_row: int = 32


@dataclass(frozen=True)
class RTUnitConfig:
    """The RT unit proper (Section 5.1).

    Attributes:
        max_warps: resident warps (8; ray buffer = 256 rays).
        warp_size: threads per warp (32).
        stack_entries: hardware traversal-stack depth (8); deeper
            traversals spill to (simulated) thread-local memory.
        stack_spill_penalty: extra cycles per spilled push/pop.
        box_test_latency: pipelined ray-box unit latency (2 cycles).
        tri_test_latency: pipelined ray-triangle unit latency (2 cycles).
        queue_latency: cycles to enter the unit (1).
        coalesce_window: a warp iteration services every thread that
            becomes ready within this many cycles, so identical node
            requests from warp-mates merge into one memory request even
            when their previous latencies differed slightly.  Models the
            per-warp FIFO merge + data broadcast of Section 5.1.2.
    """

    max_warps: int = 8
    warp_size: int = 32
    stack_entries: int = 8
    stack_spill_penalty: int = 4
    box_test_latency: int = 2
    tri_test_latency: int = 2
    queue_latency: int = 1
    coalesce_window: int = 32
    #: True = warp-iteration barrier: every active thread pops one stack
    #: entry per iteration and the warp advances when the slowest
    #: thread's data returns.  False (default) = threads progress
    #: independently between iterations, modeling Section 5.1.2's
    #: per-warp FIFO with data broadcast; the validated configuration.
    warp_barrier: bool = False

    @property
    def ray_buffer_capacity(self) -> int:
        """Ray-buffer slots (32 x 8 = 256 in the paper)."""
        return self.max_warps * self.warp_size


@dataclass(frozen=True)
class MemoryConfig:
    """The memory hierarchy below one SM.

    Attributes:
        l1: per-SM L1 (paper: 64 KB; scaled default 8 KB).
        l2: shared L2 (paper: 1 MB; scaled default 32 KB so that, like
            the paper's configuration, the BVH working set spills to DRAM
            and the system is DRAM-bandwidth-bound).
        dram: banked DRAM timing.
        l1_ports: line requests the L1 accepts per cycle.
    """

    l1: CacheConfig = field(default_factory=CacheConfig)
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=32 * 1024, ways=16, latency=30)
    )
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    l1_ports: int = 2


@dataclass(frozen=True)
class GPUConfig:
    """Top level: SM count, RT unit, memory, and (optionally) a predictor.

    ``predictor=None`` simulates the baseline RT unit.  Table 2 uses two
    SMs with one RT unit and one predictor each; Section 6.2.5 sweeps
    ``num_sms``.
    """

    num_sms: int = 2
    rt_unit: RTUnitConfig = field(default_factory=RTUnitConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    predictor: Optional[PredictorConfig] = None
    collector_timeout: int = 16
    #: True (default, the paper's Table 2 topology): all SMs share one
    #: L2 and DRAM, which serializes the simulation across SMs.  False
    #: gives each SM a private L2/DRAM, making per-SM runs independent
    #: so ``simulate_workload(..., sm_jobs=N)`` can shard them across
    #: processes bit-identically to the serial private-L2 run.
    shared_l2: bool = True
    #: Hard cycle cap per SM run; ``None`` disables it.  When the
    #: simulated clock passes this value the run aborts with a
    #: :class:`repro.errors.SimulationStallError` carrying diagnostics,
    #: instead of spinning until the host process is killed.
    watchdog_cycles: Optional[int] = None
    #: Stall detector: abort if this many consecutive warp iterations
    #: complete without a single ray retiring.  Generous default - legit
    #: runs retire rays orders of magnitude more often.
    watchdog_stall_steps: int = 200_000

    def with_overrides(self, **kwargs) -> "GPUConfig":
        """Copy with selected fields replaced (sweep helper)."""
        return replace(self, **kwargs)

    def baseline(self) -> "GPUConfig":
        """This configuration with the predictor removed."""
        return replace(self, predictor=None)
