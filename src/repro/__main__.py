"""Command-line interface: ``python -m repro <command>``.

Commands:
    scenes            list the benchmark scenes with their statistics
    quick SCENE       baseline-vs-predictor headline numbers for a scene
    limit SCENE       run the Figure 2 limit study on a scene
    faults SCENE      differential fault-injection oracle for a scene
    bench             scalar-vs-wavefront timing, BENCH_*.json artifacts
    simulate          resilient multi-scene predictor sweep, SIM_*.json
    telemetry         instrumented run, telemetry.json + summary
    report            stitch results/*.txt into REPORT.md; --ledger builds
                      a run ledger over BENCH_*/SIM_*.json artifacts and
                      --compare diffs two runs (regression gate)

Resilience (``bench`` and ``simulate``): ``--resume`` continues a sweep
from its checkpoint without re-running completed scenes; ``--supervise``
/ ``--max-retries`` / ``--unit-timeout`` / ``--memory-budget`` run each
scene under the run supervisor (retry with backoff, then the
wavefront -> scalar -> predictor-off -> skip degradation ladder);
``--no-degrade`` fails the sweep instead of degrading; ``--chaos-rate``
/ ``--force-fail`` inject synthetic unit faults for chaos testing.
See docs/ROBUSTNESS.md.

The global ``--telemetry`` flag (or ``REPRO_TELEMETRY=1``) switches on
metric/span collection for any command; the ``telemetry`` subcommand
always collects and writes the artifact (see docs/OBSERVABILITY.md).

The CLI is a thin veneer over the library; the benchmark harness under
``benchmarks/`` regenerates the paper's full tables and figures.

Failures map to distinct exit codes (see :mod:`repro.errors`): 3 scene
loading, 4 invalid input, 5 traversal integrity, 6 watchdog, 7 oracle
mismatch, 8 checkpoint, 9 unit timeout, 10 memory budget, 11 escaped
injected fault, 12 sweep failed, 70 unexpected internal error.
Structured errors print a one-line actionable message instead of a
traceback.
"""

from __future__ import annotations

import argparse
import sys

from repro import telemetry
from repro.analysis.experiments import (
    scaled_gpu_config,
    scaled_predictor_config,
)
from repro.analysis.tables import format_table
from repro.bvh import build_bvh, compute_stats
from repro.errors import EXIT_INTERNAL, ReproError, exit_code_for
from repro.rays import generate_ao_workload
from repro.scenes import SCENE_CODES, get_scene


def _cmd_scenes(args: argparse.Namespace) -> int:
    rows = []
    for code in SCENE_CODES:
        scene = get_scene(code, detail=args.detail)
        stats = compute_stats(build_bvh(scene.mesh))
        rows.append(
            [code, scene.name, scene.num_triangles, stats.num_nodes,
             stats.max_depth, f"{stats.total_bytes / 1024:.0f}KB"]
        )
    print(format_table(
        ["Code", "Name", "Triangles", "BVH nodes", "Depth", "Footprint"], rows
    ))
    return 0


def _cmd_quick(args: argparse.Namespace) -> int:
    from repro.gpu import simulate_workload

    scene = get_scene(args.scene, detail=args.detail)
    bvh = build_bvh(scene.mesh)
    rays = generate_ao_workload(
        scene, bvh, width=args.size, height=args.size, spp=args.spp, seed=1
    ).rays
    baseline = simulate_workload(bvh, rays, scaled_gpu_config())
    predicted = simulate_workload(
        bvh, rays, scaled_gpu_config(scaled_predictor_config())
    )
    print(f"{scene.name}: {len(rays)} AO rays")
    print(f"  baseline : {baseline.cycles} cycles")
    print(f"  predictor: {predicted.cycles} cycles "
          f"(predicted {predicted.predicted_rate:.0%}, "
          f"verified {predicted.verified_rate:.0%})")
    print(f"  speedup  : {baseline.cycles / predicted.cycles:.3f}x")
    print(f"  accesses : {1 - predicted.total_accesses / baseline.total_accesses:+.1%}")
    return 0


def _cmd_limit(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.core import run_limit_study

    scene = get_scene(args.scene, detail=args.detail)
    bvh = build_bvh(scene.mesh)
    rays = generate_ao_workload(
        scene, bvh, width=args.size, height=args.size, spp=args.spp, seed=1
    ).rays
    rays = rays.subset(np.arange(min(args.rays, len(rays))))
    study = run_limit_study(bvh, rays, scaled_predictor_config())
    rows = [
        [kind.value, result.verified_rate, result.memory_savings]
        for kind, result in study.items()
    ]
    print(format_table(["Configuration", "Verified", "Memory savings"], rows,
                       title=f"Limit study: {scene.name} ({len(rays)} rays)"))
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.faults import FaultConfig, run_differential_oracle

    # Validate the fault settings before paying for scene + BVH setup.
    fault_config = FaultConfig(
        seed=args.seed, table_rate=args.rate, ray_rate=args.rate
    )
    scene = get_scene(args.scene, detail=args.detail)
    bvh = build_bvh(scene.mesh, validate=True)
    rays = generate_ao_workload(
        scene, bvh, width=args.size, height=args.size, spp=args.spp, seed=1
    ).rays
    rays = rays.subset(np.arange(min(args.rays, len(rays))))
    report = run_differential_oracle(
        bvh,
        rays,
        fault_config=fault_config,
        in_flight=args.in_flight,
        perturb_rays=args.perturb_rays,
        scene=scene.name,
        engine=args.engine,
    )
    print(report.summary())
    # A mismatch is the one result this command exists to catch; raise
    # the structured error so main() maps it to its exit code.
    report.raise_on_mismatch()
    return 0


def _resilience_from_args(args: argparse.Namespace, default_checkpoint: str):
    """Build (ResilienceOptions | None, UnitFaultPlan | None) from CLI flags.

    Supervision turns on when any resilience flag is present; a plain
    ``repro bench`` keeps the legacy fail-fast path so existing callers
    see identical behaviour.
    """
    from repro.faults import UnitFaultPlan
    from repro.resilience import ResilienceOptions

    fault_plan = None
    if args.chaos_rate > 0.0 or args.force_fail:
        fault_plan = UnitFaultPlan(
            seed=args.chaos_seed,
            rate=args.chaos_rate,
            force_fail=UnitFaultPlan.parse_force_fail(args.force_fail or []),
        )
    requested = (
        args.supervise
        or args.resume
        or args.no_degrade
        or args.checkpoint is not None
        or args.max_retries is not None
        or args.unit_timeout is not None
        or args.memory_budget is not None
        or fault_plan is not None
    )
    if not requested:
        return None, None
    options = ResilienceOptions(
        checkpoint_path=args.checkpoint or default_checkpoint,
        resume=args.resume,
        max_retries=1 if args.max_retries is None else args.max_retries,
        unit_timeout_s=args.unit_timeout,
        memory_budget_mb=args.memory_budget,
        degrade=not args.no_degrade,
        seed=args.chaos_seed,
    )
    return options, fault_plan


def _add_resilience_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group(
        "resilience", "supervised execution, checkpoint/resume, chaos testing"
    )
    group.add_argument("--supervise", action="store_true",
                       help="run each scene under the supervisor with the "
                       "degradation ladder (implied by the flags below)")
    group.add_argument("--resume", action="store_true",
                       help="continue from the sweep checkpoint; completed "
                       "scenes are not re-run")
    group.add_argument("--checkpoint", default=None, metavar="PATH",
                       help="checkpoint file (default: <out>/<artifact>"
                       ".checkpoint.json)")
    group.add_argument("--max-retries", type=int, default=None,
                       dest="max_retries", metavar="N",
                       help="retries per ladder rung for transient failures "
                       "(default 1)")
    group.add_argument("--unit-timeout", type=float, default=None,
                       dest="unit_timeout", metavar="SECONDS",
                       help="wall-clock deadline per scene attempt")
    group.add_argument("--memory-budget", type=float, default=None,
                       dest="memory_budget", metavar="MB",
                       help="peak-allocation budget per scene attempt")
    group.add_argument("--no-degrade", action="store_true", dest="no_degrade",
                       help="fail the sweep (exit 12) instead of walking the "
                       "degradation ladder")
    group.add_argument("--chaos-rate", type=float, default=0.0,
                       dest="chaos_rate", metavar="P",
                       help="per-attempt probability of an injected unit fault")
    group.add_argument("--chaos-seed", type=int, default=0, dest="chaos_seed",
                       help="seed for injected-fault and backoff schedules")
    group.add_argument("--force-fail", action="append", default=None,
                       dest="force_fail", metavar="UNIT[:COUNT]",
                       help="force scene UNIT to fail its first COUNT "
                       "attempts (COUNT omitted = always); repeatable")


def _add_parallel_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group(
        "parallelism", "process-level sweep sharding and artifact caching"
    )
    group.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes sharding the scene units "
                       "(results are deterministic: the artifact matches "
                       "--jobs 1 except for timing fields)")
    group.add_argument("--artifact-cache", default=None, metavar="DIR",
                       dest="artifact_cache",
                       help="content-addressed BVH cache directory "
                       "(also via REPRO_ARTIFACT_CACHE); repeated sweeps "
                       "and --jobs workers skip redundant SAH builds")


def _cmd_bench(args: argparse.Namespace) -> int:
    import os

    from repro.bench import PRESETS, QUICK_PRESET, run_benchmarks, write_payload
    from repro.bench.harness import FULL_PRESET, check_against_baselines, summarize
    from repro.bvh.cache import configure_artifact_cache

    if args.preset:
        preset = PRESETS[args.preset]
        if args.quick and preset.name != "build":
            # CI smoke: keep the preset's pinned workload (so --check
            # compares the same record set against the committed
            # baseline) but time a single run per benchmark.  The build
            # preset keeps its best-of repeats: its timed units finish
            # in milliseconds, so single-repeat ratios are too noisy
            # for the gated speedup floors, and the whole sweep is
            # already well under a minute.
            from dataclasses import replace

            preset = replace(preset, repeats=1)
    else:
        preset = QUICK_PRESET if args.quick else FULL_PRESET
    configure_artifact_cache(args.artifact_cache)
    default_checkpoint = os.path.join(
        args.out, f"BENCH_{preset.name}.checkpoint.json"
    )
    options, fault_plan = _resilience_from_args(args, default_checkpoint)
    payload = run_benchmarks(
        preset,
        scenes=args.scenes,
        progress=print,
        resilience=options,
        fault_plan=fault_plan,
        jobs=args.jobs,
    )
    print(summarize(payload))
    path = write_payload(payload, args.out)
    print(f"wrote {path}")
    if args.trace_out:
        import json

        from repro.telemetry import distributed

        events = distributed.stitched_chrome_trace()
        directory = os.path.dirname(args.trace_out)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            json.dump({"traceEvents": events}, handle)
            handle.write("\n")
        print(f"wrote {args.trace_out} (open in chrome://tracing or Perfetto)")
    if args.check:
        problems = check_against_baselines(
            payload, args.baselines, tolerance=args.tolerance
        )
        if problems:
            for problem in problems:
                print(f"REGRESSION: {problem}", file=sys.stderr)
            return 1
        print(f"regression check passed (tolerance {args.tolerance:.0%})")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    import os

    from repro.bvh.cache import configure_artifact_cache
    from repro.resilience.checkpoint import atomic_write_json
    from repro.resilience.sweep import (
        SimulatePreset,
        run_simulation_sweep,
        summarize_sweep,
    )

    configure_artifact_cache(args.artifact_cache)
    scenes = tuple(args.scenes) if args.scenes else tuple(SCENE_CODES)
    preset = SimulatePreset(
        name=args.name,
        scenes=scenes,
        width=args.size,
        height=args.size,
        spp=args.spp,
        detail=args.detail,
        sim_rays=args.rays,
        in_flight=args.in_flight,
        engine=args.engine,
    )
    default_checkpoint = os.path.join(
        args.out, f"SIM_{preset.name}.checkpoint.json"
    )
    options, fault_plan = _resilience_from_args(args, default_checkpoint)
    payload = run_simulation_sweep(
        preset, options=options, fault_plan=fault_plan, progress=print,
        jobs=args.jobs,
    )
    print(summarize_sweep(payload))
    path = os.path.join(args.out, f"SIM_{preset.name}.json")
    atomic_write_json(path, payload)
    print(f"wrote {path}")
    return 0


def _cmd_telemetry(args: argparse.Namespace) -> int:
    from repro.telemetry.runner import (
        TelemetryPreset,
        run_telemetry_workload,
        summarize_telemetry,
        write_telemetry,
    )
    from repro.telemetry.schema import validate_telemetry

    preset = TelemetryPreset(
        scene=args.scene,
        detail=args.detail,
        width=args.size,
        height=args.size,
        spp=args.spp,
        sim_rays=args.rays,
        rt_rays=args.rays,
        engine=args.engine,
    )
    if args.quick:
        preset = preset.scaled_for_quick()
    payload = run_telemetry_workload(preset, profile=args.profile)
    print(summarize_telemetry(payload))
    path = write_telemetry(payload, args.out)
    print(f"wrote {path}")
    if args.trace_out:
        events = payload["trace_events"]
        import json
        import os

        directory = os.path.dirname(args.trace_out)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            json.dump({"traceEvents": events}, handle)
            handle.write("\n")
        print(f"wrote {args.trace_out} (open in chrome://tracing or Perfetto)")
    if args.check:
        problems = validate_telemetry(payload)
        if problems:
            for problem in problems:
                print(f"INVALID: {problem}", file=sys.stderr)
            return 1
        print("telemetry artifact valid (schema "
              f"{payload['schema']})")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if args.compare:
        from repro.telemetry.ledger import (
            compare_runs,
            counter_deltas,
            load_artifact,
            render_counter_deltas,
        )

        old_path, new_path = args.compare
        old = load_artifact(old_path)
        new = load_artifact(new_path)
        print(f"comparing {old_path} (old) -> {new_path} (new)")
        print(render_counter_deltas(counter_deltas(old, new)))
        problems = compare_runs(old, new, tolerance=args.tolerance)
        if problems:
            for problem in problems:
                print(f"REGRESSION: {problem}", file=sys.stderr)
            return 1
        print(f"regression check passed (tolerance {args.tolerance:.0%})")
        return 0
    if args.ledger:
        from repro.telemetry.ledger import build_ledger, render_trends

        ledger = build_ledger(args.ledger)
        rendered = render_trends(ledger)
        print(rendered)
        if args.ledger_out:
            import json
            import os

            directory = os.path.dirname(args.ledger_out)
            if directory:
                os.makedirs(directory, exist_ok=True)
            with open(args.ledger_out, "w", encoding="utf-8") as handle:
                json.dump(ledger, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"wrote {args.ledger_out}")
        return 0
    from repro.analysis.report import write_report

    write_report(args.results, args.output)
    print(f"wrote {args.output}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and dispatch to a subcommand."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument("--detail", type=float, default=1.0,
                        help="scene triangle-budget multiplier")
    parser.add_argument("--telemetry", action="store_true",
                        help="collect metrics/spans during the command "
                        "(same as REPRO_TELEMETRY=1)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("scenes", help="list benchmark scenes")

    quick = sub.add_parser("quick", help="headline numbers for one scene")
    quick.add_argument("scene", nargs="?", default="SP")
    quick.add_argument("--size", type=int, default=48)
    quick.add_argument("--spp", type=int, default=4)

    limit = sub.add_parser("limit", help="Figure 2 limit study for one scene")
    limit.add_argument("scene", nargs="?", default="SP")
    limit.add_argument("--size", type=int, default=32)
    limit.add_argument("--spp", type=int, default=2)
    limit.add_argument("--rays", type=int, default=2000)

    faults = sub.add_parser(
        "faults",
        help="differential fault-injection oracle for one scene",
        description="Corrupt predictor-table entries while tracing and "
        "assert per-ray occlusion matches the no-predictor baseline.",
    )
    faults.add_argument("scene", nargs="?", default="SP")
    faults.add_argument("--size", type=int, default=24)
    faults.add_argument("--spp", type=int, default=2)
    faults.add_argument("--rays", type=int, default=1500)
    faults.add_argument("--rate", type=float, default=0.1,
                        help="per-lookup table corruption probability")
    faults.add_argument("--seed", type=int, default=0)
    faults.add_argument("--in-flight", type=int, default=32, dest="in_flight",
                        help="delayed-update window (smaller = more predictions)")
    faults.add_argument("--perturb-rays", action="store_true",
                        help="also inject NaN/inf/zero-direction rays")
    faults.add_argument("--engine", default="scalar",
                        help="traversal engine: scalar or wavefront")

    bench = sub.add_parser(
        "bench",
        help="time scalar vs. wavefront engines, emit BENCH_*.json",
        description="Run the benchmark harness (repro.bench) on pinned-seed "
        "workloads and write a BENCH_<preset>.json artifact; with --check, "
        "fail on regression against the committed baselines.",
    )
    bench.add_argument("--quick", action="store_true",
                       help="CI smoke preset (3 scenes, <60s) instead of full")
    bench.add_argument("--preset",
                       choices=("quick", "full", "predictor", "timing",
                                "build"),
                       default=None,
                       help="named preset (overrides --quick); 'predictor' "
                       "times only the predictor simulation on all scenes; "
                       "'build' times BVH construction + refit per engine")
    bench.add_argument("--scenes", nargs="+", metavar="CODE",
                       help="restrict to these scene codes")
    bench.add_argument("--out", default="benchmarks/results",
                       help="directory for the BENCH_*.json artifact")
    bench.add_argument("--baselines", default="benchmarks/baselines",
                       help="directory holding committed baseline artifacts")
    bench.add_argument("--check", action="store_true",
                       help="fail (exit 1) on >tolerance regression vs baseline")
    bench.add_argument("--tolerance", type=float, default=0.2,
                       help="allowed relative regression (default 0.2)")
    # SUPPRESS keeps the global --telemetry value when the per-command
    # flag is absent (subparser defaults would otherwise clobber it).
    bench.add_argument("--telemetry", action="store_true",
                       default=argparse.SUPPRESS,
                       help="collect metrics during the run and embed a "
                       "telemetry section in the BENCH artifact")
    bench.add_argument("--trace-out", default=None, dest="trace_out",
                       help="write the stitched Chrome trace (parent + all "
                       "--jobs workers) to this JSON file; requires "
                       "--telemetry")
    _add_parallel_args(bench)
    _add_resilience_args(bench)

    simulate = sub.add_parser(
        "simulate",
        help="resilient multi-scene predictor sweep, emit SIM_*.json",
        description="Run the functional predictor simulation across scenes "
        "under the run supervisor: per-scene checkpointing, retry with "
        "backoff, and the graceful-degradation ladder.  The SIM_<name>.json "
        "artifact always carries a partial-results manifest.",
    )
    simulate.add_argument("--name", default="simulate",
                          help="sweep name (artifact is SIM_<name>.json)")
    simulate.add_argument("--scenes", nargs="+", metavar="CODE",
                          help="scene codes (default: all scenes)")
    simulate.add_argument("--size", type=int, default=24)
    simulate.add_argument("--spp", type=int, default=2)
    simulate.add_argument("--rays", type=int, default=512,
                          help="rays simulated per scene")
    simulate.add_argument("--in-flight", type=int, default=32,
                          dest="in_flight",
                          help="delayed-update window for the predictor")
    simulate.add_argument("--engine", default="wavefront",
                          help="traversal engine at the top ladder rung")
    simulate.add_argument("--out", default="results",
                          help="directory for the SIM_*.json artifact")
    _add_parallel_args(simulate)
    _add_resilience_args(simulate)

    tele = sub.add_parser(
        "telemetry",
        help="instrumented run: telemetry.json artifact + summary",
        description="Run one scene through the instrumented pipeline with "
        "telemetry enabled and write a repro-telemetry/1 JSON artifact "
        "(metrics snapshot, span summaries, phase timings, Chrome trace).",
    )
    tele.add_argument("--scene", default="SP", help="scene code (default SP)")
    tele.add_argument("--quick", action="store_true",
                      help="CI smoke shape: 16x16, 256 rays")
    tele.add_argument("--size", type=int, default=32)
    tele.add_argument("--spp", type=int, default=2)
    tele.add_argument("--rays", type=int, default=1024,
                      help="rays for the predictor/RT-unit stages")
    tele.add_argument("--engine", default="wavefront",
                      help="traversal engine: scalar or wavefront")
    tele.add_argument("--out", default="results/telemetry.json",
                      help="artifact path")
    tele.add_argument("--trace-out", default=None, dest="trace_out",
                      help="also write a standalone Chrome trace JSON here")
    tele.add_argument("--profile", action="store_true",
                      help="attach the sampling profiler (adds overhead)")
    tele.add_argument("--check", action="store_true",
                      help="validate the artifact against the schema; "
                      "exit 1 on problems")

    report = sub.add_parser(
        "report",
        help="collect results/ into REPORT.md, or index/compare artifacts",
        description="Default mode stitches results/*.txt into REPORT.md. "
        "--ledger indexes BENCH_*.json / SIM_*.json artifacts into a "
        "repro-ledger/1 run ledger with per-scene trend tables; "
        "--compare OLD NEW prints telemetry counter deltas between two "
        "artifacts and exits 1 if the regression gate fires.",
    )
    report.add_argument("--results", default="results")
    report.add_argument("--output", default="REPORT.md")
    report.add_argument("--ledger", nargs="+", metavar="PATH", default=None,
                        help="artifact files or directories to index into "
                        "a run ledger (trend tables, oldest run first)")
    report.add_argument("--ledger-out", default=None, dest="ledger_out",
                        metavar="FILE",
                        help="also write the repro-ledger/1 JSON here")
    report.add_argument("--compare", nargs=2, metavar=("OLD", "NEW"),
                        default=None,
                        help="diff two artifacts: counter deltas plus the "
                        "regression gate (exit 1 on regression)")
    report.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed relative regression for --compare "
                        "(default 0.2)")

    args = parser.parse_args(argv)
    if args.telemetry:
        telemetry.enable()
    handlers = {
        "scenes": _cmd_scenes,
        "quick": _cmd_quick,
        "limit": _cmd_limit,
        "faults": _cmd_faults,
        "bench": _cmd_bench,
        "simulate": _cmd_simulate,
        "telemetry": _cmd_telemetry,
        "report": _cmd_report,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exit_code_for(exc)
    except (KeyError, ValueError) as exc:
        # e.g. an unknown scene code from the registry; keep the message
        # actionable (it lists the valid codes) and skip the traceback.
        detail = exc.args[0] if exc.args else exc
        print(f"error: {detail}", file=sys.stderr)
        return exit_code_for(exc)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_INTERNAL


if __name__ == "__main__":
    sys.exit(main())
