"""Deterministic fault injection for the predictor pipeline.

The injector models three corruption surfaces:

* **Predictor table** (:meth:`FaultInjector.corrupt_table_once`) - the
  table SRAM flips a bit, holds a stale node after a rebuild, or aliases
  a different ray hash.  These are exactly the faults the speculation
  guards must absorb: the paper's verify-then-fallback flow makes any
  *in-range* wrong node merely slow, and the predictor's range guard
  turns out-of-range nodes into "no prediction".
* **Ray batches** (:meth:`FaultInjector.perturb_rays`) - NaN/inf
  origins, NaN or zero-length directions: malformed workload input that
  the :func:`repro.geometry.ray.validate_ray_batch` boundary must
  filter before traversal.
* **Geometry** (:meth:`FaultInjector.degrade_mesh`) - zero-area
  triangles and duplicated vertices, the classic OBJ-export defects a
  builder and traverser must tolerate.

Everything is driven by seeded :class:`numpy.random.Generator` streams
(no legacy ``numpy.random.*`` global state anywhere) and logged as
:class:`InjectionRecord` entries, so any failing schedule replays
exactly from ``FaultConfig(seed=...)``.  Each corruption surface draws
from its own child stream spawned from one ``SeedSequence``, so the
table schedule does not shift when ray or geometry injection also runs
- fault sequences are reproducible across processes, surface mixes,
and numpy versions.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.predictor import RayPredictor
from repro.core.table import NODE_INDEX_BITS, PredictorTable
from repro.errors import InjectedFaultError, InputValidationError
from repro.geometry.ray import RayBatch
from repro.geometry.triangle import TriangleMesh

#: Table-entry fault modes.
FAULT_KINDS: Tuple[str, ...] = (
    "out_of_range",  # node id beyond the BVH (stale after a rebuild)
    "negative",      # sign corruption - would wrap Python list indexing
    "bitflip",       # single bit flip in the stored node id
    "stale",         # a different, valid node id (plausible but wrong)
    "alias_tag",     # tag corruption: entry answers for another ray hash
)

#: Ray-batch fault modes.
RAY_FAULT_KINDS: Tuple[str, ...] = (
    "nan_origin",
    "inf_origin",
    "nan_direction",
    "zero_direction",
)

#: Geometry fault modes.
GEOMETRY_FAULT_KINDS: Tuple[str, ...] = (
    "zero_area",          # all three vertices collapsed to one point
    "duplicate_vertex",   # two corners share one vertex (degenerate edge)
)


@dataclass(frozen=True)
class FaultConfig:
    """Settings for one injection campaign.

    Attributes:
        seed: seeds the injector's private RNG; two injectors with equal
            configs produce identical schedules.
        table_rate: per-lookup probability that one occupied table entry
            is corrupted just before the lookup proceeds.
        table_kinds: table fault modes to draw from (uniformly).
        ray_rate: fraction of rays perturbed by :meth:`perturb_rays`.
        ray_kinds: ray fault modes to draw from.
        geometry_rate: fraction of triangles degraded by
            :meth:`degrade_mesh`.
        geometry_kinds: geometry fault modes to draw from.
    """

    seed: int = 0
    table_rate: float = 0.1
    table_kinds: Tuple[str, ...] = FAULT_KINDS
    ray_rate: float = 0.05
    ray_kinds: Tuple[str, ...] = RAY_FAULT_KINDS
    geometry_rate: float = 0.02
    geometry_kinds: Tuple[str, ...] = GEOMETRY_FAULT_KINDS

    def __post_init__(self) -> None:
        for rate, name in (
            (self.table_rate, "table_rate"),
            (self.ray_rate, "ray_rate"),
            (self.geometry_rate, "geometry_rate"),
        ):
            if not 0.0 <= rate <= 1.0:
                raise InputValidationError(f"{name} must be in [0, 1], got {rate}")
        for kinds, valid, name in (
            (self.table_kinds, FAULT_KINDS, "table_kinds"),
            (self.ray_kinds, RAY_FAULT_KINDS, "ray_kinds"),
            (self.geometry_kinds, GEOMETRY_FAULT_KINDS, "geometry_kinds"),
        ):
            unknown = [k for k in kinds if k not in valid]
            if unknown:
                raise InputValidationError(f"unknown {name}: {unknown}")
            if not kinds:
                raise InputValidationError(f"{name} must not be empty")


@dataclass(frozen=True)
class InjectionRecord:
    """One injected fault, logged for reproducibility.

    Attributes:
        op: monotone sequence number within the injector.
        surface: ``"table"``, ``"rays"`` or ``"geometry"``.
        kind: the fault mode applied.
        location: where it landed (set/way/slot, ray index, triangle).
        before / after: the corrupted value's old and new state.
    """

    op: int
    surface: str
    kind: str
    location: str
    before: object
    after: object


class FaultInjector:
    """Seeded fault source with a complete injection log.

    RNG discipline: one :class:`numpy.random.SeedSequence` per injector,
    spawned into an independent :class:`numpy.random.Generator` child
    stream per corruption surface.  Kind selection draws *indices*
    (``Generator.integers``) rather than ``Generator.choice`` over
    string arrays, keeping schedules byte-stable across numpy versions.
    """

    #: Child-stream order (``SeedSequence.spawn`` is order-sensitive;
    #: this tuple pins it).
    _SURFACES = ("table", "rays", "geometry")

    def __init__(self, config: Optional[FaultConfig] = None, num_nodes: int = 0) -> None:
        self.config = config or FaultConfig()
        self.num_nodes = num_nodes
        children = np.random.SeedSequence(self.config.seed).spawn(
            len(self._SURFACES)
        )
        self._streams: Dict[str, np.random.Generator] = {
            surface: np.random.default_rng(child)
            for surface, child in zip(self._SURFACES, children)
        }
        # The table stream doubles as the injector's primary generator
        # (kept as ``rng`` for back-compat with earlier callers).
        self.rng = self._streams["table"]
        self.log: List[InjectionRecord] = []

    @staticmethod
    def _pick(rng: np.random.Generator, kinds: Tuple[str, ...]) -> str:
        """Uniform kind draw by index (version-stable, pure Generator)."""
        return kinds[int(rng.integers(len(kinds)))]

    # ------------------------------------------------------------------
    def _record(self, surface: str, kind: str, location: str, before, after) -> InjectionRecord:
        rec = InjectionRecord(
            op=len(self.log), surface=surface, kind=kind,
            location=location, before=before, after=after,
        )
        self.log.append(rec)
        return rec

    # ------------------------------------------------------------------
    # Predictor-table faults
    # ------------------------------------------------------------------
    def maybe_corrupt_table(self, table: PredictorTable) -> Optional[InjectionRecord]:
        """With probability ``table_rate``, corrupt one occupied entry."""
        if self.config.table_rate <= 0.0:
            return None
        if self.rng.random() >= self.config.table_rate:
            return None
        return self.corrupt_table_once(table)

    def corrupt_table_once(self, table: PredictorTable) -> Optional[InjectionRecord]:
        """Corrupt one randomly chosen occupied entry (no-op when empty)."""
        slots = table.occupied_slots()
        if not slots:
            return None
        set_index, way = slots[int(self.rng.integers(len(slots)))]
        kind = self._pick(self.rng, self.config.table_kinds)
        location = f"set {set_index} way {way}"

        if kind == "alias_tag":
            old = table.entry_tag(set_index, way)
            new = int(self.rng.integers(1 << table.hash_bits))
            table.corrupt_tag(set_index, way, new)
            return self._record("table", kind, location, old, new)

        nodes = table.entry_nodes(set_index, way)
        if not nodes:
            return None
        slot = int(self.rng.integers(len(nodes)))
        old = int(nodes[slot])
        if kind == "out_of_range":
            new = self.num_nodes + int(self.rng.integers(1, 1 << 16))
        elif kind == "negative":
            new = -int(self.rng.integers(1, 1 << 16))
        elif kind == "bitflip":
            new = old ^ (1 << int(self.rng.integers(NODE_INDEX_BITS)))
        elif kind == "stale":
            new = int(self.rng.integers(max(1, self.num_nodes)))
        else:  # pragma: no cover - guarded by FaultConfig validation
            raise InputValidationError(f"unknown table fault kind {kind!r}")
        table.corrupt_node(set_index, way, slot, new)
        return self._record("table", kind, f"{location} slot {slot}", old, new)

    # ------------------------------------------------------------------
    # Ray-batch faults
    # ------------------------------------------------------------------
    def perturb_rays(self, rays: RayBatch) -> RayBatch:
        """Return a copy of ``rays`` with ``ray_rate`` of them malformed."""
        rng = self._streams["rays"]
        origins = rays.origins.copy()
        directions = rays.directions.copy()
        n = len(rays)
        picked = np.nonzero(rng.random(n) < self.config.ray_rate)[0]
        for i in picked:
            kind = self._pick(rng, self.config.ray_kinds)
            axis = int(rng.integers(3))
            if kind == "nan_origin":
                before = float(origins[i, axis])
                origins[i, axis] = np.nan
            elif kind == "inf_origin":
                before = float(origins[i, axis])
                origins[i, axis] = np.inf
            elif kind == "nan_direction":
                before = float(directions[i, axis])
                directions[i, axis] = np.nan
            else:  # zero_direction
                before = tuple(directions[i])
                directions[i] = 0.0
            self._record("rays", kind, f"ray {int(i)}", before, kind)
        return RayBatch(origins, directions, rays.t_min.copy(), rays.t_max.copy())

    # ------------------------------------------------------------------
    # Geometry faults
    # ------------------------------------------------------------------
    def degrade_mesh(self, mesh: TriangleMesh) -> TriangleMesh:
        """Return a copy of ``mesh`` with ``geometry_rate`` bad triangles."""
        rng = self._streams["geometry"]
        v0 = mesh.v0.copy()
        v1 = mesh.v1.copy()
        v2 = mesh.v2.copy()
        n = len(mesh)
        picked = np.nonzero(rng.random(n) < self.config.geometry_rate)[0]
        for i in picked:
            kind = self._pick(rng, self.config.geometry_kinds)
            if kind == "zero_area":
                v1[i] = v0[i]
                v2[i] = v0[i]
            else:  # duplicate_vertex
                v2[i] = v1[i]
            self._record("geometry", kind, f"triangle {int(i)}", None, kind)
        return TriangleMesh(v0, v1, v2)


class FaultyPredictor:
    """A :class:`RayPredictor` proxy that injects table faults on lookup.

    Before every ``predict`` call the injector may (per its
    ``table_rate``) corrupt one occupied table entry - modeling SRAM
    corruption racing real lookups.  All other attribute access is
    delegated to the wrapped predictor, so the proxy drops into
    :func:`repro.core.simulate.simulate_predictor` (via its
    ``predictor=`` argument) and :class:`repro.gpu.rt_unit.RTUnit`
    unchanged.
    """

    #: The proxy must observe every individual lookup to race corruption
    #: against it, so the batched window pipeline is disabled: the
    #: simulation engines fall back to per-ray ``predict`` calls.
    supports_batch = False

    def __init__(self, predictor: RayPredictor, injector: FaultInjector) -> None:
        self.inner = predictor
        self.injector = injector
        if injector.num_nodes == 0:
            injector.num_nodes = predictor.bvh.num_nodes

    def predict(self, ray_hash: int):
        """Corrupt (maybe), then delegate the guarded lookup."""
        self.injector.maybe_corrupt_table(self.inner.table)
        return self.inner.predict(ray_hash)

    def predict_raw(self, ray_hash: int):
        """Corrupt (maybe), then look up *without* the range guard.

        Exposes what an unguarded pipeline would consume; used by tests
        that exercise the downstream traversal guard directly.
        """
        self.injector.maybe_corrupt_table(self.inner.table)
        return self.inner.table.lookup(ray_hash)

    def __getattr__(self, name: str):
        return getattr(self.inner, name)


@dataclass
class UnitFaultPlan:
    """Deterministic unit-level chaos for resilient sweeps.

    Where :class:`FaultInjector` corrupts *data* (table entries, rays,
    geometry), this plan injects *unit failures*: before a supervised
    unit of sweep work runs, :meth:`check` may raise a structured
    :class:`~repro.errors.InjectedFaultError`, exercising the
    supervisor's real retry/degrade paths.

    Determinism: each unit gets its own ``Generator`` seeded from
    ``(seed, crc32(unit name))``, so whether attempt *k* of unit *u*
    fails is a pure function of the plan's seed - independent of unit
    ordering, process, or numpy version.  ``force_fail`` entries fail a
    unit's first ``count`` attempts unconditionally (``count < 0`` means
    every attempt, driving the unit all the way down the ladder).

    Attributes:
        seed: seeds the per-unit failure draws.
        rate: per-attempt failure probability for non-forced units.
        force_fail: unit name -> number of leading attempts to fail.
    """

    seed: int = 0
    rate: float = 0.0
    force_fail: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise InputValidationError(
                f"chaos rate must be in [0, 1], got {self.rate}"
            )
        self._attempts: Dict[str, int] = {}
        self._rngs: Dict[str, np.random.Generator] = {}
        self.injected = 0

    def check(self, unit: str) -> None:
        """Raise :class:`InjectedFaultError` when this attempt must fail."""
        attempt = self._attempts.get(unit, 0) + 1
        self._attempts[unit] = attempt
        forced = self.force_fail.get(unit)
        if forced is not None and (forced < 0 or attempt <= forced):
            self.injected += 1
            raise InjectedFaultError(
                f"forced fault in unit {unit} (attempt {attempt})",
                unit=unit, attempt=attempt,
            )
        if self.rate <= 0.0:
            return
        rng = self._rngs.get(unit)
        if rng is None:
            rng = np.random.default_rng(
                [self.seed, zlib.crc32(unit.encode("utf-8"))]
            )
            self._rngs[unit] = rng
        if float(rng.random()) < self.rate:
            self.injected += 1
            raise InjectedFaultError(
                f"random fault in unit {unit} (attempt {attempt}, "
                f"rate {self.rate})",
                unit=unit, attempt=attempt,
            )

    def describe(self) -> dict:
        """JSON-safe form for the artifact's resilience section."""
        return {
            "seed": self.seed,
            "rate": self.rate,
            "force_fail": dict(self.force_fail),
            "injected": self.injected,
        }

    @classmethod
    def parse_force_fail(cls, specs: Optional[List[str]]) -> Dict[str, int]:
        """Parse CLI ``UNIT[:COUNT]`` specs (COUNT defaults to -1, always)."""
        plan: Dict[str, int] = {}
        for spec in specs or []:
            unit, _, count = spec.partition(":")
            if not unit:
                raise InputValidationError(
                    f"bad --force-fail spec {spec!r} (expected UNIT[:COUNT])"
                )
            try:
                plan[unit] = int(count) if count else -1
            except ValueError as exc:
                raise InputValidationError(
                    f"bad --force-fail count in {spec!r}: {count!r}"
                ) from exc
        return plan
