"""Fault injection and differential verification for the predictor pipeline.

The paper's architecture is speculative by construction: a predictor
table entry may be wrong - stale after geometry moved, aliased by a
hash collision, or (in hardware) corrupted outright - and the
verify-then-fallback flow of Section 3 must absorb it with nothing worse
than wasted cycles.  This package turns that promise into an executable,
adversarial test:

* :mod:`repro.faults.injector` - a deterministic, seedable
  :class:`FaultInjector` that corrupts predictor-table entries
  (out-of-range / negative / bit-flipped / stale node ids, aliased
  tags), perturbs ray batches (NaN/inf origins, zero directions), and
  degrades geometry (zero-area triangles, duplicated vertices), keeping
  a full injection log for reproducibility.
* :mod:`repro.faults.oracle` - the differential oracle: run the same
  rays through a no-predictor baseline and through the predictor with
  faults being injected, then assert per-ray occlusion results are
  bit-identical.

See ``docs/ROBUSTNESS.md`` for the fault model and guard-point map.
"""

from repro.faults.injector import (
    FAULT_KINDS,
    RAY_FAULT_KINDS,
    FaultConfig,
    FaultInjector,
    FaultyPredictor,
    InjectionRecord,
    UnitFaultPlan,
)
from repro.faults.oracle import (
    DifferentialReport,
    run_differential_oracle,
)

__all__ = [
    "FAULT_KINDS",
    "RAY_FAULT_KINDS",
    "DifferentialReport",
    "FaultConfig",
    "FaultInjector",
    "FaultyPredictor",
    "InjectionRecord",
    "UnitFaultPlan",
    "run_differential_oracle",
]
