"""The differential oracle: speculation must never change correctness.

Runs the same occlusion rays twice - once through the plain traversal
baseline (no predictor), once through the functional predictor
simulation while a :class:`~repro.faults.injector.FaultInjector`
actively corrupts the table - and compares per-ray occlusion results
bit-for-bit.  Any divergence means a guard failed and speculation
leaked into correctness, which :func:`run_differential_oracle` can
surface as a structured :class:`~repro.errors.OracleMismatchError`.

This is the executable form of the paper's Section 3 contract ("a
misprediction is later checked ... and the ray falls back to a full
traversal"), generalized from *mispredicted* to *arbitrarily corrupted*
table state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.bvh.nodes import FlatBVH
from repro.core.predictor import PredictorConfig, RayPredictor
from repro.core.simulate import DEFAULT_IN_FLIGHT, simulate_predictor
from repro.errors import OracleMismatchError
from repro.faults.injector import FaultConfig, FaultInjector, FaultyPredictor
from repro.geometry.ray import RayBatch, validate_ray_batch
from repro.trace.traversal import trace_occlusion_batch
from repro.trace.wavefront import resolve_engine


@dataclass
class DifferentialReport:
    """Outcome of one differential-oracle run.

    Attributes:
        scene: label for reporting (scene code or name).
        num_rays: rays compared (after input screening).
        rays_filtered: malformed rays removed by input screening before
            the comparison (only non-zero when ray perturbation is on).
        faults_injected: table faults actually landed by the injector.
        guard_drops: invalid node ids dropped by the predictor's range
            guard across the run.
        guard_fallbacks: verifications the traversal guard aborted
            (each degraded to a full traversal).
        predicted / verified: predictor statistics under injection.
        mismatches: ray indices whose occlusion result differed from
            the baseline - must be empty.
    """

    scene: str
    num_rays: int
    rays_filtered: int
    faults_injected: int
    guard_drops: int
    guard_fallbacks: int
    predicted: int
    verified: int
    mismatches: List[int] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every ray's occlusion result matched the baseline."""
        return not self.mismatches

    def summary(self) -> str:
        """Human-readable one-paragraph report."""
        status = "OK" if self.ok else f"MISMATCH on {len(self.mismatches)} rays"
        return (
            f"[{self.scene}] differential oracle: {status} | "
            f"{self.num_rays} rays ({self.rays_filtered} filtered at input), "
            f"{self.faults_injected} table faults injected, "
            f"{self.guard_drops} invalid nodes dropped by the predictor guard, "
            f"{self.guard_fallbacks} traversal-guard fallbacks, "
            f"predicted {self.predicted}, verified {self.verified}"
        )

    def raise_on_mismatch(self) -> None:
        """Raise :class:`OracleMismatchError` unless the run was clean."""
        if not self.ok:
            raise OracleMismatchError(self.summary(), mismatched_rays=self.mismatches)


def run_differential_oracle(
    bvh: FlatBVH,
    rays: RayBatch,
    config: Optional[PredictorConfig] = None,
    fault_config: Optional[FaultConfig] = None,
    in_flight: int = DEFAULT_IN_FLIGHT,
    perturb_rays: bool = False,
    scene: str = "?",
    engine: str = "scalar",
) -> DifferentialReport:
    """Compare baseline vs. predictor-under-injected-faults occlusion.

    Args:
        bvh: the acceleration structure.
        rays: occlusion rays (traced in order by both pipelines).
        config: predictor configuration (Table 3 defaults).
        fault_config: injection campaign; the default corrupts one table
            entry per ~10 lookups.
        in_flight: delayed-update window for the functional simulation.
        perturb_rays: additionally run the batch through the injector's
            ray perturbation and the input-validation filter first
            (exercises the full input boundary, not just the table).
        scene: label used in the report.
        engine: traversal engine for both the baseline batch and the
            predictor simulation (``"scalar"`` or ``"wavefront"``).  The
            oracle's contract is engine-independent: corrupted
            speculation must never change per-ray occlusion under either.

    Returns:
        A :class:`DifferentialReport`; check ``report.ok`` or call
        ``report.raise_on_mismatch()``.
    """
    resolve_engine(engine)
    fault_config = fault_config or FaultConfig()
    injector = FaultInjector(fault_config, num_nodes=bvh.num_nodes)

    rays_filtered = 0
    if perturb_rays:
        rays = injector.perturb_rays(rays)
        rays, screening = validate_ray_batch(rays, mode="filter")
        rays_filtered = screening.num_invalid

    # Baseline: per-ray occlusion by plain full traversal.
    baseline = trace_occlusion_batch(bvh, rays, engine=engine)

    # Predictor under fault injection, same rays, same order.
    predictor = RayPredictor(bvh, config)
    faulty = FaultyPredictor(predictor, injector)
    result = simulate_predictor(
        bvh, rays, predictor=faulty, in_flight=in_flight, keep_outcomes=True,
        engine=engine,
    )
    under_faults = np.array([o.hit for o in result.outcomes], dtype=bool)

    mismatches = np.nonzero(baseline != under_faults)[0].tolist()
    table_faults = sum(1 for rec in injector.log if rec.surface == "table")
    return DifferentialReport(
        scene=scene,
        num_rays=len(rays),
        rays_filtered=rays_filtered,
        faults_injected=table_faults,
        guard_drops=predictor.guards.invalid_nodes_dropped,
        guard_fallbacks=result.guard_fallbacks,
        predicted=result.predicted,
        verified=result.verified,
        mismatches=mismatches,
    )
