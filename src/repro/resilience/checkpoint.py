"""Crash-consistent checkpointing of sweep progress.

A sweep (``repro bench``, ``repro simulate``) is a sequence of *units*
(one scene each).  The checkpoint records every completed unit's payload
so a run killed mid-sweep resumes with ``--resume`` and re-runs only the
units that never finished.

Crash consistency comes from the classic write-temp-then-rename dance:
the whole state is serialized to ``<path>.tmp`` in the same directory,
flushed and fsynced, then atomically swapped into place with
``os.replace``.  A crash at any instant leaves either the previous
complete checkpoint or the new complete checkpoint on disk - never a
torn file.

Resume safety: the checkpoint embeds a schema tag, the bench artifact
schema it was written against, and a *fingerprint* of the sweep
configuration (preset/scene/seed knobs).  :meth:`SweepCheckpoint.load`
refuses (with a structured :class:`~repro.errors.CheckpointError`) to
resume a checkpoint whose fingerprint does not match the current run -
silently mixing results from two different configurations is exactly
the kind of wrong-but-plausible output this subsystem exists to prevent.

RNG state: sweeps derive all randomness from seeds recorded in the
fingerprint, so reproducibility across a resume needs no live generator
state - but the fingerprint's ``seed`` entries make that contract
explicit and checkable.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional

from repro.errors import CheckpointError

#: Checkpoint file schema; bump on incompatible layout changes.
CHECKPOINT_SCHEMA = "repro-checkpoint/1"


def atomic_write_json(path: str, payload: dict) -> None:
    """Write ``payload`` to ``path`` atomically (temp file + rename).

    The temp file lives in the target directory so ``os.replace`` is a
    same-filesystem rename, which POSIX guarantees atomic.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp_path = path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)


class SweepCheckpoint:
    """Persistent per-unit progress for one sweep.

    Usage::

        ckpt = SweepCheckpoint(path, fingerprint, bench_schema="repro-bench/3")
        ckpt.load(resume=args.resume)
        for unit in units:
            if ckpt.has(unit):
                reuse(ckpt.get(unit)); continue
            result = run(unit)
            ckpt.record(unit, result)   # atomically persisted
        ckpt.remove()                   # sweep finished cleanly

    Attributes:
        path: checkpoint file location.
        fingerprint: JSON-safe dict pinning the sweep configuration.
        hits: units served from the checkpoint instead of re-running.
    """

    def __init__(
        self,
        path: str,
        fingerprint: Dict[str, object],
        bench_schema: Optional[str] = None,
    ) -> None:
        self.path = path
        self.fingerprint = _canonical(fingerprint)
        self.bench_schema = bench_schema
        self.completed: Dict[str, dict] = {}
        self.hits = 0

    # ------------------------------------------------------------------
    def exists(self) -> bool:
        return os.path.exists(self.path)

    def load(self, resume: bool = True) -> bool:
        """Load prior progress from :attr:`path`.

        Args:
            resume: when False (a fresh run), any stale checkpoint at
                the path is discarded instead of loaded.

        Returns:
            True when prior progress was loaded.

        Raises:
            CheckpointError: the file is corrupt, has an unknown schema,
                or fingerprints a different sweep configuration.
        """
        if not self.exists():
            return False
        if not resume:
            self.remove()
            return False
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                state = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"{self.path}: checkpoint unreadable ({exc}); delete it or "
                "rerun without --resume",
                path=self.path,
            ) from exc
        schema = state.get("schema")
        if schema != CHECKPOINT_SCHEMA:
            raise CheckpointError(
                f"{self.path}: unsupported checkpoint schema {schema!r} "
                f"(expected {CHECKPOINT_SCHEMA})",
                path=self.path,
            )
        theirs = state.get("fingerprint")
        if theirs != self.fingerprint:
            raise CheckpointError(
                f"{self.path}: checkpoint was written by a different sweep "
                f"configuration ({_diff_fingerprints(self.fingerprint, theirs)}); "
                "refusing to mix results - rerun without --resume",
                path=self.path,
            )
        completed = state.get("completed")
        if not isinstance(completed, dict):
            raise CheckpointError(
                f"{self.path}: checkpoint has no completed-unit map",
                path=self.path,
            )
        self.completed = completed
        return True

    # ------------------------------------------------------------------
    def has(self, unit: str) -> bool:
        return unit in self.completed

    def get(self, unit: str) -> dict:
        """Return a completed unit's payload, counting the hit."""
        payload = self.completed[unit]
        self.hits += 1
        return payload

    def record(self, unit: str, payload: dict) -> None:
        """Mark ``unit`` completed and persist the whole state atomically."""
        self.completed[unit] = payload
        self.flush()

    def flush(self) -> None:
        atomic_write_json(
            self.path,
            {
                "schema": CHECKPOINT_SCHEMA,
                "bench_schema": self.bench_schema,
                "fingerprint": self.fingerprint,
                "completed": self.completed,
            },
        )

    def remove(self) -> None:
        """Delete the checkpoint (sweep finished, or fresh run requested)."""
        try:
            os.remove(self.path)
        except FileNotFoundError:
            pass

    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """JSON-safe summary embedded in the artifact's resilience section."""
        return {
            "schema": CHECKPOINT_SCHEMA,
            "path": self.path,
            "hits": self.hits,
            "completed_units": sorted(self.completed),
        }


def _canonical(fingerprint: Dict[str, object]) -> Dict[str, object]:
    """Round-trip through JSON so load-time comparison is type-stable
    (tuples become lists exactly as they will after deserialization)."""
    return json.loads(json.dumps(fingerprint, sort_keys=True))


def _diff_fingerprints(ours: dict, theirs: object) -> str:
    if not isinstance(theirs, dict):
        return "no fingerprint recorded"
    keys = sorted(set(ours) | set(theirs))
    diffs = [
        f"{k}: {theirs.get(k)!r} -> {ours.get(k)!r}"
        for k in keys
        if ours.get(k) != theirs.get(k)
    ]
    return "; ".join(diffs) or "fingerprints differ"


__all__ = ["CHECKPOINT_SCHEMA", "SweepCheckpoint", "atomic_write_json"]
