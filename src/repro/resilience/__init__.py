"""repro.resilience - the resilient execution layer for sweeps.

The paper's predictor is only viable because a bad speculation degrades
to a full BVH traversal instead of a wrong image.  This package applies
the same safety philosophy at *run* granularity so a multi-scene sweep
is never all-or-nothing:

* :mod:`repro.resilience.checkpoint` - crash-consistent checkpointing
  of per-unit sweep progress (atomic write-temp-then-rename), behind
  the CLI's ``--resume``;
* :mod:`repro.resilience.supervisor` - a run supervisor executing each
  unit under a wall-clock deadline and memory budget, classifying
  failures into transient (retry with seeded-jitter exponential
  backoff), degradable, skip-class, and fatal;
* :mod:`repro.resilience.degrade` - the explicit degradation ladder
  (wavefront -> scalar -> predictor-disabled -> skip-with-diagnostic)
  and the partial-results manifest every resilient sweep terminates
  with.

See ``docs/ROBUSTNESS.md`` (ladder, retry semantics, checkpoint format)
and ``docs/BENCHMARKING.md`` (the ``--resume`` workflow).
"""

from repro.resilience.checkpoint import (
    CHECKPOINT_SCHEMA,
    SweepCheckpoint,
    atomic_write_json,
)
from repro.resilience.degrade import (
    LADDER,
    PartialResultsManifest,
    UnitEntry,
    next_rung,
    rungs_from,
)
from repro.resilience.supervisor import (
    ResilienceOptions,
    RetryPolicy,
    RunSupervisor,
    UnitOutcome,
    classify_failure,
)

__all__ = [
    "CHECKPOINT_SCHEMA",
    "LADDER",
    "PartialResultsManifest",
    "ResilienceOptions",
    "RetryPolicy",
    "RunSupervisor",
    "SweepCheckpoint",
    "UnitEntry",
    "UnitOutcome",
    "atomic_write_json",
    "classify_failure",
    "next_rung",
    "rungs_from",
]
