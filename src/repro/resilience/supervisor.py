"""The run supervisor: deadlines, budgets, retries, and the ladder.

Every unit of sweep work (one scene of a bench or simulate sweep) runs
under :class:`RunSupervisor`, which

1. enforces a **wall-clock deadline** (the unit runs in a worker thread;
   when the deadline expires the unit is abandoned - the daemon thread
   can no longer affect the sweep - and a structured
   :class:`~repro.errors.UnitTimeoutError` is recorded);
2. enforces a **memory budget** via :mod:`tracemalloc` (post-hoc by
   necessity: pure Python cannot interrupt a single allocation, so the
   check classifies the unit for degradation rather than pre-empting
   it);
3. **classifies failures** through the :mod:`repro.errors` hierarchy:
   *transient* errors retry at the same rung with seeded-jitter
   exponential backoff and bounded attempts, *degradable* errors drop
   straight down the :data:`~repro.resilience.degrade.LADDER`,
   *skip-class* errors (a corrupt scene asset will not improve at a
   lower rung) jump to the bottom, and *fatal* errors
   (:class:`~repro.errors.OracleMismatchError` - correctness broke -
   and checkpoint corruption) propagate immediately;
4. records every decision as telemetry spans
   (``supervisor.attempt``) and counters (``supervisor.retries``,
   ``supervisor.degradations``, ``supervisor.skips``).

Backoff jitter is drawn from a per-unit ``numpy.random.Generator``
seeded by ``(policy seed, crc32(unit name))``, so retry schedules are
reproducible across processes and independent of unit ordering.
"""

from __future__ import annotations

import threading
import time
import tracemalloc
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro import telemetry
from repro.errors import (
    CheckpointError,
    InjectedFaultError,
    InputValidationError,
    MemoryBudgetError,
    OracleMismatchError,
    SceneLoadError,
    SimulationStallError,
    SweepFailedError,
    TraversalError,
    UnitTimeoutError,
)
from repro.resilience.degrade import LADDER, UnitEntry, rungs_from

#: Failure classes the supervisor acts on.
TRANSIENT, DEGRADE, SKIP, FATAL = "transient", "degrade", "skip", "fatal"


def classify_failure(exc: BaseException) -> str:
    """Map an exception to the supervisor's four failure classes.

    The order matters: :class:`OracleMismatchError` is fatal even though
    it derives from :class:`ReproError` like the degradable errors - a
    correctness violation must never be papered over by the ladder.
    """
    if isinstance(exc, (OracleMismatchError, CheckpointError)):
        return FATAL
    if isinstance(exc, (InjectedFaultError, UnitTimeoutError, OSError)):
        return TRANSIENT
    if isinstance(
        exc,
        (MemoryError, MemoryBudgetError, SimulationStallError, TraversalError),
    ):
        return DEGRADE
    if isinstance(exc, (SceneLoadError, InputValidationError)):
        # Bad input stays bad at every rung; go straight to the diagnostic.
        return SKIP
    # Unknown errors are assumed rung-specific (an engine bug the scalar
    # reference avoids, say); a safer configuration is worth one try.
    return DEGRADE


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with seeded-jitter exponential backoff.

    ``delay(attempt)`` for attempt 1, 2, ... is
    ``min(backoff_max_s, backoff_base_s * backoff_factor**(attempt-1))``
    scaled by a jitter factor uniform in ``[1-jitter, 1+jitter]``.
    """

    max_retries: int = 1
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise InputValidationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise InputValidationError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )

    def delay_s(self, attempt: int, rng: np.random.Generator) -> float:
        base = min(
            self.backoff_max_s,
            self.backoff_base_s * self.backoff_factor ** max(0, attempt - 1),
        )
        return base * (1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0))


@dataclass
class ResilienceOptions:
    """Everything the CLI's resilience flags configure, in one place.

    Attributes:
        checkpoint_path: where sweep progress is persisted (None
            disables checkpointing).
        resume: load prior progress from the checkpoint instead of
            discarding it.
        max_retries: retries per rung for transient failures.
        unit_timeout_s: wall-clock deadline per unit attempt.
        memory_budget_mb: traced-allocation budget per unit attempt.
        degrade: walk the ladder on failure (False = fail the sweep).
        seed: seeds backoff jitter (and nothing else).
        sleep: injectable sleep for tests (defaults to ``time.sleep``).
    """

    checkpoint_path: Optional[str] = None
    resume: bool = False
    max_retries: int = 1
    unit_timeout_s: Optional[float] = None
    memory_budget_mb: Optional[float] = None
    degrade: bool = True
    seed: int = 0
    sleep: Callable[[float], None] = time.sleep

    def retry_policy(self) -> RetryPolicy:
        return RetryPolicy(max_retries=self.max_retries, seed=self.seed)

    def describe(self) -> dict:
        """JSON-safe form for the artifact's resilience section."""
        return {
            "resume": self.resume,
            "max_retries": self.max_retries,
            "unit_timeout_s": self.unit_timeout_s,
            "memory_budget_mb": self.memory_budget_mb,
            "degrade": self.degrade,
            "seed": self.seed,
        }


@dataclass
class UnitOutcome:
    """What the supervisor delivered for one unit.

    ``value`` is the unit function's return value (None for a skipped
    unit); ``entry`` is the manifest record of how it got there.
    """

    value: object
    entry: UnitEntry

    @property
    def produced(self) -> bool:
        return self.entry.status in ("ok", "degraded", "resumed")


class RunSupervisor:
    """Executes units under deadline/budget with retry and degradation.

    One supervisor instance serves a whole sweep; its counters aggregate
    across units and feed the artifact's resilience section.
    """

    def __init__(
        self,
        policy: Optional[RetryPolicy] = None,
        unit_timeout_s: Optional[float] = None,
        memory_budget_mb: Optional[float] = None,
        degrade: bool = True,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if unit_timeout_s is not None and unit_timeout_s <= 0:
            raise InputValidationError(
                f"unit_timeout_s must be positive, got {unit_timeout_s}"
            )
        if memory_budget_mb is not None and memory_budget_mb <= 0:
            raise InputValidationError(
                f"memory_budget_mb must be positive, got {memory_budget_mb}"
            )
        self.policy = policy or RetryPolicy()
        self.unit_timeout_s = unit_timeout_s
        self.memory_budget_mb = memory_budget_mb
        self.degrade = degrade
        self.sleep = sleep
        self.counters: Dict[str, int] = {
            "units": 0, "retries": 0, "degradations": 0, "skips": 0,
            "timeouts": 0, "backoff_sleeps": 0,
        }
        self.total_backoff_s = 0.0

    @classmethod
    def from_options(cls, options: ResilienceOptions) -> "RunSupervisor":
        return cls(
            policy=options.retry_policy(),
            unit_timeout_s=options.unit_timeout_s,
            memory_budget_mb=options.memory_budget_mb,
            degrade=options.degrade,
            sleep=options.sleep,
        )

    # ------------------------------------------------------------------
    def run_unit(
        self,
        unit: str,
        make_fn: Callable[[str], Optional[Callable[[], object]]],
        start_rung: str = LADDER[0],
        progress: Optional[Callable[[str], None]] = None,
    ) -> UnitOutcome:
        """Run one unit, descending the ladder as failures demand.

        Args:
            unit: unit name (manifest key).
            make_fn: rung -> zero-argument work callable, or None when
                the rung is not applicable to this unit (it is stepped
                over without counting as a degradation on its own).
            start_rung: the rung the sweep requested.
            progress: optional one-line status sink.

        Returns:
            A :class:`UnitOutcome`; the entry's status is ``ok`` at the
            start rung, ``degraded`` below it, ``skipped`` at the
            bottom.  With degradation disabled the failing exception is
            re-raised (manifest callers never see a ``failed`` entry
            except through :class:`~repro.errors.SweepFailedError`
            handling).
        """
        say = progress or (lambda msg: None)
        rng = self._unit_rng(unit)
        self.counters["units"] += 1
        attempts = 0
        retries = 0
        errors: List[str] = []

        rungs = rungs_from(start_rung) if self.degrade else (start_rung,)
        for rung in rungs:
            if rung == "skip":
                break
            fn = make_fn(rung)
            if fn is None:
                continue
            value, failure = self._attempt_rung(
                unit, rung, fn, rng, errors, say
            )
            attempts += failure.attempts
            retries += failure.retries
            if failure.ok:
                status = "ok" if rung == start_rung else "degraded"
                if status == "degraded":
                    self.counters["degradations"] += 1
                return UnitOutcome(
                    value,
                    UnitEntry(
                        unit=unit, status=status, rung=rung,
                        attempts=attempts, retries=retries, errors=errors,
                    ),
                )
            if failure.klass == FATAL:
                raise failure.exc
            if not self.degrade:
                entry = UnitEntry(
                    unit=unit, status="failed", rung=rung,
                    attempts=attempts, retries=retries, errors=errors,
                )
                raise SweepFailedError(
                    f"unit {unit} failed at rung {rung} with degradation "
                    f"disabled: {errors[-1] if errors else failure.exc}",
                    failed_units=[unit],
                ) from failure.exc
            if failure.klass == SKIP:
                break
            # DEGRADE (or exhausted TRANSIENT): fall through to next rung.

        self.counters["skips"] += 1
        telemetry.inc_counter("supervisor.skips", unit=unit)
        say(f"[{unit}] skipped after {attempts} attempt(s)")
        return UnitOutcome(
            None,
            UnitEntry(
                unit=unit, status="skipped", rung="skip",
                attempts=attempts, retries=retries, errors=errors,
            ),
        )

    # ------------------------------------------------------------------
    @dataclass
    class _RungFailure:
        ok: bool
        exc: Optional[BaseException] = None
        klass: str = ""
        attempts: int = 0
        retries: int = 0

    def _attempt_rung(
        self,
        unit: str,
        rung: str,
        fn: Callable[[], object],
        rng: np.random.Generator,
        errors: List[str],
        say: Callable[[str], None],
    ) -> Tuple[object, "_RungFailure"]:
        """Attempt one rung up to ``1 + max_retries`` times."""
        failure = self._RungFailure(ok=False)
        for attempt in range(1, self.policy.max_retries + 2):
            failure.attempts += 1
            try:
                with telemetry.span(
                    "supervisor.attempt", unit=unit, rung=rung, attempt=attempt
                ):
                    value = self._execute(unit, fn)
                failure.ok = True
                return value, failure
            except BaseException as exc:  # noqa: BLE001 - classified below
                if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                    raise
                klass = classify_failure(exc)
                errors.append(
                    f"{rung}/attempt {attempt}: {type(exc).__name__}: {exc}"
                )
                if isinstance(exc, UnitTimeoutError):
                    self.counters["timeouts"] += 1
                telemetry.inc_counter(
                    "supervisor.failures", unit=unit, rung=rung,
                    error=type(exc).__name__, klass=klass,
                )
                failure.exc = exc
                failure.klass = klass
                if klass != TRANSIENT or attempt > self.policy.max_retries:
                    if klass == TRANSIENT:
                        # Exhausted retries: hand the unit to the ladder.
                        failure.klass = DEGRADE
                    return None, failure
                delay = self.policy.delay_s(attempt, rng)
                failure.retries += 1
                self.counters["retries"] += 1
                self.counters["backoff_sleeps"] += 1
                self.total_backoff_s += delay
                telemetry.inc_counter("supervisor.retries", unit=unit, rung=rung)
                say(
                    f"[{unit}] {rung} attempt {attempt} failed "
                    f"({type(exc).__name__}); retrying in {delay:.3f}s"
                )
                self.sleep(delay)
        return None, failure  # pragma: no cover - loop always returns

    # ------------------------------------------------------------------
    def _execute(self, unit: str, fn: Callable[[], object]) -> object:
        """One attempt under the deadline and the memory budget."""
        budgeted = self._with_memory_budget(unit, fn)
        if self.unit_timeout_s is None:
            return budgeted()
        return _call_with_deadline(budgeted, self.unit_timeout_s, unit)

    def _with_memory_budget(
        self, unit: str, fn: Callable[[], object]
    ) -> Callable[[], object]:
        if self.memory_budget_mb is None:
            return fn

        def run() -> object:
            started = not tracemalloc.is_tracing()
            if started:
                tracemalloc.start()
            else:
                tracemalloc.reset_peak()
            try:
                value = fn()
                peak_mb = tracemalloc.get_traced_memory()[1] / 2**20
            finally:
                if started:
                    tracemalloc.stop()
            if peak_mb > self.memory_budget_mb:
                raise MemoryBudgetError(
                    f"unit {unit} peaked at {peak_mb:.1f} MiB "
                    f"(budget {self.memory_budget_mb:.1f} MiB)",
                    unit=unit, peak_mb=peak_mb,
                    budget_mb=self.memory_budget_mb,
                )
            return value

        return run

    def _unit_rng(self, unit: str) -> np.random.Generator:
        """Per-unit jitter stream, stable across processes and ordering."""
        return np.random.default_rng(
            [self.policy.seed, zlib.crc32(unit.encode("utf-8"))]
        )

    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """JSON-safe counter snapshot for the resilience section."""
        return {
            **self.counters,
            "total_backoff_s": round(self.total_backoff_s, 6),
            "policy": {
                "max_retries": self.policy.max_retries,
                "backoff_base_s": self.policy.backoff_base_s,
                "backoff_factor": self.policy.backoff_factor,
                "backoff_max_s": self.policy.backoff_max_s,
                "jitter": self.policy.jitter,
                "seed": self.policy.seed,
            },
            "unit_timeout_s": self.unit_timeout_s,
            "memory_budget_mb": self.memory_budget_mb,
            "degrade": self.degrade,
        }


def _call_with_deadline(
    fn: Callable[[], object], deadline_s: float, unit: str
) -> object:
    """Run ``fn`` in a worker thread; abandon it past ``deadline_s``.

    Python cannot kill a thread, so an expired unit keeps running as a
    daemon until the interpreter exits - but it can no longer write into
    the sweep, and the supervisor proceeds down the ladder.  The leak is
    bounded (one thread per timed-out attempt) and reported via the
    structured error.
    """
    box: Dict[str, object] = {}
    error: List[BaseException] = []

    def target() -> None:
        try:
            box["value"] = fn()
        except BaseException as exc:  # noqa: BLE001 - re-raised in caller
            error.append(exc)

    worker = threading.Thread(
        target=target, name=f"repro-unit-{unit}", daemon=True
    )
    worker.start()
    worker.join(deadline_s)
    if worker.is_alive():
        raise UnitTimeoutError(
            f"unit {unit} exceeded its {deadline_s:g}s wall-clock deadline "
            "(worker thread abandoned)",
            unit=unit, deadline_s=deadline_s,
        )
    if error:
        raise error[0]
    return box.get("value")


__all__ = [
    "DEGRADE",
    "FATAL",
    "SKIP",
    "TRANSIENT",
    "ResilienceOptions",
    "RetryPolicy",
    "RunSupervisor",
    "UnitOutcome",
    "classify_failure",
]
