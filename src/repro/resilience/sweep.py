"""Resilient multi-scene predictor-simulation sweeps (``repro simulate``).

``repro bench`` times engines; this sweep runs the *functional*
predictor simulation (:func:`repro.core.simulate.simulate_predictor`)
across scenes and reports the paper's headline rates (predicted /
verified / memory savings) per scene.  Every scene is a supervised unit
on the degradation ladder, progress checkpoints after each scene, and
the emitted ``SIM_<name>.json`` artifact always carries a
partial-results manifest - a sweep with a broken scene still terminates
with an exit status of 0 and an honest account of what happened.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import telemetry
from repro.bvh.cache import cached_build_bvh, configure_artifact_cache, get_artifact_cache
from repro.core.simulate import simulate_baseline, simulate_predictor
from repro.faults.injector import UnitFaultPlan
from repro.rays import generate_ao_workload
from repro.resilience.checkpoint import SweepCheckpoint
from repro.resilience.degrade import PartialResultsManifest, UnitEntry
from repro.resilience.supervisor import ResilienceOptions, RunSupervisor
from repro.scenes import get_scene
from repro.telemetry import distributed

#: Artifact schema for ``SIM_<name>.json``.
SIM_SCHEMA = "repro-sim-sweep/1"


@dataclass(frozen=True)
class SimulatePreset:
    """Pinned configuration of one simulation sweep."""

    name: str = "simulate"
    scenes: Tuple[str, ...] = ("SB", "SP", "CK")
    width: int = 24
    height: int = 24
    spp: int = 2
    seed: int = 1
    detail: float = 0.5
    sim_rays: int = 512
    in_flight: int = 32
    engine: str = "wavefront"


def _scene_result(preset: SimulatePreset, code: str, rung: str) -> dict:
    """Simulate one scene at one ladder rung; returns a JSON-safe row."""
    engine = preset.engine if rung == "wavefront" else "scalar"
    with telemetry.label_context(scene=code):
        scene = get_scene(code, detail=preset.detail)
        bvh = cached_build_bvh(scene.mesh)
        workload = generate_ao_workload(
            scene, bvh,
            width=preset.width, height=preset.height,
            spp=preset.spp, seed=preset.seed,
        )
        rays = workload.rays.subset(
            np.arange(min(preset.sim_rays, len(workload.rays)))
        )
        if rung == "predictor_off":
            result = simulate_baseline(bvh, rays, engine="scalar")
        else:
            result = simulate_predictor(
                bvh, rays, in_flight=preset.in_flight, engine=engine
            )
    return {
        "scene": code,
        "engine": "scalar" if rung != "wavefront" else engine,
        "predictor_enabled": rung != "predictor_off",
        "num_rays": result.num_rays,
        "predicted_rate": round(result.predicted_rate, 6),
        "verified_rate": round(result.verified_rate, 6),
        "hit_rate": round(result.hit_rate, 6),
        "memory_savings": round(result.memory_savings, 6),
        "node_savings": round(result.node_savings, 6),
        "guard_fallbacks": result.guard_fallbacks,
    }


def sim_fingerprint(preset: SimulatePreset) -> dict:
    """The configuration identity a checkpoint pins a sweep to.

    Mirrors :func:`repro.bench.harness.sweep_fingerprint`: when the BVH
    artifact cache is active, its identity joins the fingerprint so
    cached and uncached runs can never be mixed by ``--resume``.
    """
    fingerprint = {"kind": "simulate", "preset": asdict(preset)}
    cache = get_artifact_cache()
    if cache is not None:
        fingerprint["artifact_cache"] = cache.fingerprint()
    return fingerprint


def _supervised_unit_worker(
    preset: SimulatePreset,
    code: str,
    options: ResilienceOptions,
    fault_plan: Optional[UnitFaultPlan],
    cache_root: Optional[str],
    telemetry_on: bool = False,
    ambient_labels: Optional[Dict[str, str]] = None,
) -> dict:
    """One supervised scene unit in a ``--jobs`` worker process.

    The telemetry snapshot is captured after the supervisor settles, so
    a degraded or skipped unit still ships the partial metrics and
    spans its attempts recorded.
    """
    if cache_root:
        configure_artifact_cache(cache_root)
    distributed.init_worker(telemetry_on, ambient_labels)
    supervisor = RunSupervisor.from_options(options)

    def make_fn(rung: str):
        def run() -> dict:
            if fault_plan is not None:
                fault_plan.check(code)
            return _scene_result(preset, code, rung)

        return run

    outcome = supervisor.run_unit(code, make_fn)
    return {
        "row": outcome.value,
        "entry": outcome.entry.to_dict(),
        "supervisor": supervisor.describe(),
        "telemetry": distributed.capture_snapshot(unit=code),
    }


def run_simulation_sweep(
    preset: SimulatePreset,
    options: Optional[ResilienceOptions] = None,
    fault_plan: Optional[UnitFaultPlan] = None,
    progress=None,
    jobs: int = 1,
) -> dict:
    """Run the sweep; always returns a payload with a manifest.

    The ladder for a simulate unit: the requested engine, then the
    scalar reference, then the predictor-disabled baseline, then skip.
    With ``jobs > 1``, non-resumed units shard across worker processes
    (each supervising its own unit); the parent checkpoints them as
    they complete, so ``--jobs`` composes with ``--resume``.
    """
    say = progress or (lambda msg: None)
    options = options or ResilienceOptions()
    supervisor = RunSupervisor.from_options(options)
    manifest = PartialResultsManifest()
    checkpoint: Optional[SweepCheckpoint] = None
    if options.checkpoint_path:
        checkpoint = SweepCheckpoint(
            options.checkpoint_path,
            sim_fingerprint(preset),
            bench_schema=SIM_SCHEMA,
        )
        if checkpoint.load(resume=options.resume):
            say(
                f"resuming from {checkpoint.path} "
                f"({len(checkpoint.completed)} unit(s) already complete)"
            )

    unit_rows: Dict[str, Optional[dict]] = {}
    unit_entries: Dict[str, UnitEntry] = {}
    pending: List[str] = []
    for code in preset.scenes:
        if checkpoint is not None and checkpoint.has(code):
            stored = checkpoint.get(code)
            unit_rows[code] = stored.get("row")
            prior = stored.get("entry", {})
            unit_entries[code] = UnitEntry(
                unit=code, status="resumed",
                rung=prior.get("rung", "wavefront"), attempts=0,
            )
            telemetry.inc_counter("supervisor.checkpoint_hits", unit=code)
            say(f"[{code}] resumed from checkpoint (not re-run)")
            continue
        pending.append(code)

    if jobs > 1 and len(pending) > 1:
        cache = get_artifact_cache()
        cache_root = cache.root if cache else None
        telemetry_on = telemetry.enabled()
        ambient = telemetry.current_labels() if telemetry_on else None
        workers = min(jobs, len(pending))
        say(f"sharding {len(pending)} scene unit(s) across {workers} workers")
        unit_snapshots: Dict[str, Optional[dict]] = {}
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(
                    _supervised_unit_worker, preset, code, options,
                    fault_plan, cache_root, telemetry_on, ambient,
                ): code
                for code in pending
            }
            for future in as_completed(futures):
                code = futures[future]
                outcome = future.result()
                unit_rows[code] = outcome["row"]
                unit_entries[code] = UnitEntry(**outcome["entry"])
                unit_snapshots[code] = outcome.get("telemetry")
                for counter, value in outcome["supervisor"].items():
                    if counter in supervisor.counters:
                        supervisor.counters[counter] += value
                supervisor.total_backoff_s += (
                    outcome["supervisor"]["total_backoff_s"]
                )
                if checkpoint is not None:
                    checkpoint.record(code, {
                        "row": outcome["row"],
                        "entry": outcome["entry"],
                    })
                say(f"[{code}] unit complete ({unit_entries[code].status})")
        # Scene-order merge: counters commute, gauge last-write-wins
        # does not, and scene order matches the serial semantics.
        for code in preset.scenes:
            distributed.absorb_snapshot(unit_snapshots.get(code))
    else:
        for code in pending:
            def make_fn(rung: str, code: str = code):
                def run() -> dict:
                    if fault_plan is not None:
                        fault_plan.check(code)
                    return _scene_result(preset, code, rung)

                return run

            outcome = supervisor.run_unit(code, make_fn, progress=say)
            unit_entries[code] = outcome.entry
            unit_rows[code] = outcome.value
            if outcome.value is not None:
                say(
                    f"[{code}] verified {outcome.value['verified_rate']:.1%} "
                    f"memory savings {outcome.value['memory_savings']:+.1%}"
                )
            if checkpoint is not None:
                checkpoint.record(code, {
                    "row": outcome.value,
                    "entry": outcome.entry.to_dict(),
                })

    rows: List[dict] = []
    for code in preset.scenes:
        row = unit_rows.get(code)
        if row is not None:
            rows.append(row)
        if code in unit_entries:
            manifest.add(unit_entries[code])

    payload = {
        "schema": SIM_SCHEMA,
        "name": preset.name,
        "preset": asdict(preset),
        "scenes": list(preset.scenes),
        "results": rows,
        "resilience": {
            "enabled": True,
            "options": options.describe(),
            "supervisor": supervisor.describe(),
            "manifest": manifest.to_dict(),
            "checkpoint": checkpoint.describe() if checkpoint else None,
            "chaos": fault_plan.describe() if fault_plan else None,
        },
    }
    if telemetry.enabled():
        section = {
            "metrics": telemetry.get_registry().snapshot(),
            "spans": distributed.merged_span_summary(),
            "dropped_events": distributed.total_dropped_events(),
        }
        workers_info = distributed.worker_summary()
        if workers_info:
            section["workers"] = workers_info
        payload["telemetry"] = section
    say(manifest.summary())
    return payload


def summarize_sweep(payload: dict) -> str:
    """Short human-readable summary of a ``SIM_*.json`` artifact."""
    lines = [f"simulation sweep: {payload['name']} ({payload['schema']})"]
    for row in payload["results"]:
        tag = "" if row.get("predictor_enabled", True) else "  [predictor off]"
        lines.append(
            f"  {row['scene']:4s} {row['engine']:9s} "
            f"predicted {row['predicted_rate']:6.1%}  "
            f"verified {row['verified_rate']:6.1%}  "
            f"memory {row['memory_savings']:+7.1%}{tag}"
        )
    counts = payload["resilience"]["manifest"]["counts"]
    lines.append(
        f"  units: {counts['ok']} ok, {counts['resumed']} resumed, "
        f"{counts['degraded']} degraded, {counts['skipped']} skipped"
    )
    return "\n".join(lines)


__all__ = [
    "SIM_SCHEMA",
    "SimulatePreset",
    "run_simulation_sweep",
    "sim_fingerprint",
    "summarize_sweep",
]
