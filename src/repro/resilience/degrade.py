"""The graceful-degradation ladder and the partial-results manifest.

The paper's predictor is safe because a bad speculation falls back to a
full BVH traversal instead of a wrong image.  This module applies the
same philosophy at *run* granularity: when a unit of sweep work fails
even after retries, it steps down an explicit ladder of progressively
cheaper-but-safer configurations instead of sinking the whole sweep:

====================  ==================================================
rung                  meaning
====================  ==================================================
``wavefront``         full configuration, vectorized wavefront engine
``scalar``            scalar reference engine (lower peak memory: no
                      per-level gathered frontiers)
``predictor_off``     predictor-disabled baseline - plain traversal
                      only, no table, no functional simulation
``skip``              give up on the unit, record a diagnostic
====================  ==================================================

A sweep therefore always terminates, and its artifact carries a
:class:`PartialResultsManifest` listing what succeeded, what ran
degraded (and at which rung), and what was skipped and why.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: The ladder, strongest rung first.  ``skip`` is always last and always
#: "succeeds" (by recording a diagnostic instead of a result).
LADDER: Tuple[str, ...] = ("wavefront", "scalar", "predictor_off", "skip")

#: Unit statuses a manifest entry can carry.
STATUSES: Tuple[str, ...] = ("ok", "degraded", "skipped", "failed", "resumed")


def next_rung(rung: str) -> Optional[str]:
    """The rung below ``rung``, or None when already at ``skip``."""
    if rung not in LADDER:
        raise ValueError(f"unknown degradation rung {rung!r}")
    index = LADDER.index(rung)
    return LADDER[index + 1] if index + 1 < len(LADDER) else None


def rungs_from(rung: str) -> Tuple[str, ...]:
    """``rung`` and every rung below it, in descent order."""
    if rung not in LADDER:
        raise ValueError(f"unknown degradation rung {rung!r}")
    return LADDER[LADDER.index(rung):]


@dataclass
class UnitEntry:
    """One unit's outcome in the manifest.

    Attributes:
        unit: unit name (scene code for sweeps).
        status: ``ok`` (ran clean at the requested rung), ``degraded``
            (produced a result at a lower rung), ``skipped`` (bottom of
            the ladder), ``failed`` (no-degrade mode only), or
            ``resumed`` (served from a checkpoint).
        rung: the rung the result was finally produced at (or ``skip``).
        attempts: total attempts across all rungs.
        retries: attempts beyond the first on any rung.
        errors: one diagnostic string per failed attempt, in order
            (``rung/attempt: ErrorClass: message``).
    """

    unit: str
    status: str
    rung: str
    attempts: int = 1
    retries: int = 0
    errors: List[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "unit": self.unit,
            "status": self.status,
            "rung": self.rung,
            "attempts": self.attempts,
            "retries": self.retries,
            "errors": list(self.errors),
        }


@dataclass
class PartialResultsManifest:
    """What a resilient sweep actually delivered.

    The manifest is the sweep's honesty contract: a run that exits 0 is
    not claiming every unit succeeded, it is claiming every unit is
    *accounted for* here.
    """

    entries: List[UnitEntry] = field(default_factory=list)

    def add(self, entry: UnitEntry) -> UnitEntry:
        if entry.status not in STATUSES:
            raise ValueError(f"unknown unit status {entry.status!r}")
        self.entries.append(entry)
        return entry

    # ------------------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        tally = {status: 0 for status in STATUSES}
        for entry in self.entries:
            tally[entry.status] += 1
        return tally

    @property
    def complete(self) -> bool:
        """True when no unit was lost outright (``failed`` is empty)."""
        return all(entry.status != "failed" for entry in self.entries)

    @property
    def clean(self) -> bool:
        """True when every unit ran at its requested rung."""
        return all(entry.status in ("ok", "resumed") for entry in self.entries)

    def to_dict(self) -> dict:
        return {
            "units": [entry.to_dict() for entry in self.entries],
            "counts": self.counts(),
            "complete": self.complete,
        }

    def summary(self) -> str:
        """Human-readable account, one line per non-clean unit."""
        tally = self.counts()
        head = (
            f"resilience manifest: {len(self.entries)} units "
            f"({tally['ok']} ok, {tally['resumed']} resumed, "
            f"{tally['degraded']} degraded, {tally['skipped']} skipped, "
            f"{tally['failed']} failed)"
        )
        lines = [head]
        for entry in self.entries:
            if entry.status in ("ok", "resumed") and not entry.errors:
                continue
            detail = entry.errors[-1] if entry.errors else "no diagnostic"
            lines.append(
                f"  {entry.unit}: {entry.status} at rung {entry.rung} "
                f"after {entry.attempts} attempt(s) - {detail}"
            )
        return "\n".join(lines)


__all__ = [
    "LADDER",
    "STATUSES",
    "PartialResultsManifest",
    "UnitEntry",
    "next_rung",
    "rungs_from",
]
