"""Plain-text table formatting for benchmark output.

Every benchmark prints its table/figure data through this, so the
regenerated artifacts have a uniform, diffable shape.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render rows as an aligned ASCII table.

    Floats are formatted with ``float_format``; everything else with
    ``str``.  Columns are right-aligned except the first.
    """
    rendered: List[List[str]] = []
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(float_format.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)

    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            parts.append(cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i]))
        return "  ".join(parts)

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in rendered)
    return "\n".join(lines)
