"""Experiment drivers and reporting utilities.

One driver per paper artifact lives in :mod:`repro.analysis.experiments`
(the benchmarks under ``benchmarks/`` are thin wrappers); formatting and
statistics helpers live in :mod:`repro.analysis.tables` and
:mod:`repro.analysis.stats`; the Figure 11 hardware proxy lives in
:mod:`repro.analysis.correlate`.
"""

from repro.analysis.experiments import (
    ConfigMetrics,
    ExperimentContext,
    scaled_gpu_config,
    scaled_predictor_config,
    scaled_workload_params,
    sweep_config_metrics,
)
from repro.analysis.report import build_report, write_report
from repro.analysis.stats import geometric_mean, pearson_correlation
from repro.analysis.tables import format_table

__all__ = [
    "ConfigMetrics",
    "ExperimentContext",
    "build_report",
    "format_table",
    "geometric_mean",
    "pearson_correlation",
    "scaled_gpu_config",
    "scaled_predictor_config",
    "scaled_workload_params",
    "sweep_config_metrics",
    "write_report",
]
