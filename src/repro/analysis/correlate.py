"""Figure 11: correlating the simulator against a hardware proxy.

The paper validates its RT-unit model by tracing primary and reflection
rays on seven scenes both in simulation and on an NVIDIA RTX 2080 Ti,
reporting a rays/s correlation coefficient of 0.9.  Real RT-Core
hardware is not available here, so we substitute a closed-form
*hardware proxy*: an analytic rays/s model driven purely by scene and
tree statistics (triangle count, SAH cost, tree depth), independent of
the timing simulator's internals.  The experiment then correlates
simulated rays/s against the proxy's across the same 7 scenes x 2 ray
types, playing the same validating role: per-scene ordering and spread
of throughput must track an external model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.experiments import ExperimentContext
from repro.analysis.stats import pearson_correlation
from repro.bvh.stats import compute_stats
from repro.gpu.config import GPUConfig
from repro.gpu.simulator import simulate_workload
from repro.rays.camera import PinholeCamera
from repro.rays.reflection import generate_reflection_rays

#: Proxy throughput scale (rays per "cycle"); only relative values matter.
_PROXY_SCALE = 40.0


@dataclass(frozen=True)
class CorrelationPoint:
    """One (scene, ray type) measurement."""

    scene: str
    ray_type: str
    simulated_rays_per_cycle: float
    proxy_rays_per_cycle: float


def hardware_proxy_rays_per_cycle(
    num_triangles: int, sah_cost: float, max_depth: int, incoherent: bool
) -> float:
    """Analytic RT-core throughput model.

    Throughput falls with the expected traversal work - proportional to
    the tree's SAH cost and (weakly) its depth - and incoherent rays
    (reflections) pay an extra penalty for divergence, as real RT cores
    do.  Constants are arbitrary; only cross-scene *ratios* matter for
    the correlation.
    """
    if num_triangles <= 0:
        raise ValueError("num_triangles must be positive")
    work = sah_cost * (1.0 + 0.05 * max_depth) * (1.0 + 0.1 * math.log10(num_triangles))
    if incoherent:
        work *= 1.6
    return _PROXY_SCALE / work


def run_correlation(
    context: ExperimentContext,
    scene_codes: List[str],
    width: int = 48,
    height: int = 48,
) -> Tuple[List[CorrelationPoint], float]:
    """Trace primary + reflection rays per scene; correlate vs the proxy.

    Returns the per-point data and the Pearson correlation coefficient.
    """
    points: List[CorrelationPoint] = []
    for code in scene_codes:
        scene = context.scene(code)
        bvh = context.bvh(code)
        stats = compute_stats(bvh)

        camera = PinholeCamera(scene.camera, width, height)
        primary = camera.primary_rays()
        reflection = generate_reflection_rays(scene, bvh, width, height)

        for ray_type, rays, incoherent in (
            ("primary", primary, False),
            ("reflection", reflection, True),
        ):
            if len(rays) == 0:
                continue
            sim = simulate_workload(bvh, rays, GPUConfig())
            points.append(
                CorrelationPoint(
                    scene=code,
                    ray_type=ray_type,
                    simulated_rays_per_cycle=sim.rays_per_cycle(),
                    proxy_rays_per_cycle=hardware_proxy_rays_per_cycle(
                        stats.num_triangles, stats.sah_cost, stats.max_depth, incoherent
                    ),
                )
            )

    correlation = pearson_correlation(
        [p.simulated_rays_per_cycle for p in points],
        [p.proxy_rays_per_cycle for p in points],
    )
    return points, correlation
