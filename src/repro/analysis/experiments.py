"""Shared experiment machinery for the benchmark harness.

Every ``benchmarks/bench_*.py`` file drives its table or figure through
an :class:`ExperimentContext`: a memoizing runner that builds each scene,
BVH and AO workload once and caches timing-simulation results per
configuration, so e.g. the baseline run for a scene is shared between
Figure 12, Figure 13 and Table 5.

Scaled defaults
---------------

The paper simulates 4.2 M rays per scene against multi-megabyte BVHs; a
pure-Python reproduction scales everything down while preserving the
ratios that drive the results:

* workload: 64x64 viewport at 8 spp (~30 K AO rays) instead of
  1024x1024 x 4;
* predictor: 1024 entries / 4-way (the paper's table), but 4 origin
  hash bits, Go Up Level 2 and 2 nodes per entry - the optimum shifts
  at the scaled ray density exactly as Equation 1 predicts (fewer rays
  per hash bucket favour a slightly looser hash and cheaper
  verification);
* memory: 4 KB L1 / 32 KB shared L2 against ~50-300 KB working sets,
  preserving the paper's working-set >> cache regime (Figure 1).

``EXPERIMENTS.md`` documents each scaling decision next to the paper's
original value.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bvh.cache import cached_build_bvh
from repro.bvh.nodes import FlatBVH
from repro.core.predictor import PredictorConfig
from repro.geometry.ray import RayBatch
from repro.gpu.config import GPUConfig
from repro.gpu.simulator import SimOutput, simulate_workload
from repro.rays.aogen import AOWorkload, generate_ao_workload
from repro.rays.sorting import morton_sort_rays
from repro.scenes.registry import SCENE_CODES, get_scene
from repro.scenes.scene import Scene


@dataclass(frozen=True)
class WorkloadParams:
    """Viewport and sampling parameters for AO workload generation."""

    width: int = 64
    height: int = 64
    spp: int = 8
    seed: int = 1
    detail: float = 1.0


#: Default workload for headline experiments (Figures 12, 13, Table 5).
FULL_WORKLOAD = WorkloadParams()
#: Smaller workload for dense parameter sweeps (Tables 6-8, Figure 17).
SWEEP_WORKLOAD = WorkloadParams(width=48, height=48, spp=4)
#: Scene subset used by dense sweeps to keep run time tractable; the
#: headline experiments use all seven scenes.
SWEEP_SCENES: Tuple[str, ...] = ("SP", "LR", "CK")


def scaled_predictor_config(**overrides) -> PredictorConfig:
    """The validated scaled predictor configuration (see module docs)."""
    base = PredictorConfig(
        origin_bits=4,
        direction_bits=3,
        go_up_level=2,
        nodes_per_entry=2,
        extra_warps=4,
    )
    return base.with_overrides(**overrides) if overrides else base


def scaled_gpu_config(
    predictor: Optional[PredictorConfig] = None, **overrides
) -> GPUConfig:
    """The validated scaled GPU configuration (Table 2, scaled)."""
    config = GPUConfig(predictor=predictor)
    return config.with_overrides(**overrides) if overrides else config


def scaled_workload_params() -> WorkloadParams:
    """The default (headline) workload parameters."""
    return FULL_WORKLOAD


class ExperimentContext:
    """Memoizing runner shared by the benchmark harness."""

    def __init__(self) -> None:
        self._scenes: Dict[Tuple[str, float], Scene] = {}
        self._bvhs: Dict[Tuple[str, float], FlatBVH] = {}
        self._workloads: Dict[Tuple[str, WorkloadParams], AOWorkload] = {}
        self._sims: Dict[Tuple, SimOutput] = {}

    # ------------------------------------------------------------------
    def scene(self, code: str, detail: float = 1.0) -> Scene:
        """The (cached) scene for ``code``."""
        key = (code, detail)
        if key not in self._scenes:
            self._scenes[key] = get_scene(code, detail=detail)
        return self._scenes[key]

    def bvh(self, code: str, detail: float = 1.0) -> FlatBVH:
        """The (cached) SAH BVH for ``code``.

        Consults the on-disk artifact cache (``REPRO_ARTIFACT_CACHE``,
        :mod:`repro.bvh.cache`) when one is configured, so parallel
        sweep workers share builds across processes.
        """
        key = (code, detail)
        if key not in self._bvhs:
            self._bvhs[key] = cached_build_bvh(
                self.scene(code, detail).mesh, method="sah"
            )
        return self._bvhs[key]

    def workload(
        self, code: str, params: WorkloadParams = FULL_WORKLOAD
    ) -> AOWorkload:
        """The (cached) AO workload for ``code`` under ``params``."""
        key = (code, params)
        if key not in self._workloads:
            self._workloads[key] = generate_ao_workload(
                self.scene(code, params.detail),
                self.bvh(code, params.detail),
                width=params.width,
                height=params.height,
                spp=params.spp,
                seed=params.seed,
            )
        return self._workloads[key]

    def rays(
        self,
        code: str,
        params: WorkloadParams = FULL_WORKLOAD,
        sort: bool = False,
    ) -> RayBatch:
        """AO rays for ``code``, optionally Morton-sorted (Section 5.2)."""
        rays = self.workload(code, params).rays
        if sort:
            return rays.subset(morton_sort_rays(rays))
        return rays

    # ------------------------------------------------------------------
    def simulate(
        self,
        code: str,
        gpu: GPUConfig,
        params: WorkloadParams = FULL_WORKLOAD,
        sort: bool = False,
    ) -> SimOutput:
        """Run (or recall) a timing simulation."""
        key = (code, params, sort, gpu)
        if key not in self._sims:
            self._sims[key] = simulate_workload(
                self.bvh(code, params.detail), self.rays(code, params, sort), gpu
            )
        return self._sims[key]

    def baseline(
        self,
        code: str,
        params: WorkloadParams = FULL_WORKLOAD,
        sort: bool = False,
        **gpu_overrides,
    ) -> SimOutput:
        """Baseline RT-unit run (no predictor)."""
        return self.simulate(code, scaled_gpu_config(**gpu_overrides), params, sort)

    def predicted(
        self,
        code: str,
        predictor: Optional[PredictorConfig] = None,
        params: WorkloadParams = FULL_WORKLOAD,
        sort: bool = False,
        **gpu_overrides,
    ) -> SimOutput:
        """Predictor-enabled run (scaled default predictor when omitted)."""
        pc = predictor if predictor is not None else scaled_predictor_config()
        return self.simulate(code, scaled_gpu_config(pc, **gpu_overrides), params, sort)

    def speedup(
        self,
        code: str,
        predictor: Optional[PredictorConfig] = None,
        params: WorkloadParams = FULL_WORKLOAD,
        sort: bool = False,
        **gpu_overrides,
    ) -> float:
        """Baseline / predictor cycle ratio (>1: the predictor wins)."""
        base = self.baseline(code, params, sort, **gpu_overrides)
        pred = self.predicted(code, predictor, params, sort, **gpu_overrides)
        return base.cycles / pred.cycles


@dataclass(frozen=True)
class ConfigMetrics:
    """Per-(configuration, scene) sweep metrics used by the ablation tables."""

    speedup: float
    predicted_rate: float
    verified_rate: float


def _config_metrics(
    ctx: "ExperimentContext",
    config: Optional[PredictorConfig],
    code: str,
    params: WorkloadParams,
    sort: bool,
) -> ConfigMetrics:
    base = ctx.baseline(code, params, sort)
    pred = ctx.predicted(code, config, params, sort)
    return ConfigMetrics(
        speedup=base.cycles / pred.cycles,
        predicted_rate=pred.predicted_rate,
        verified_rate=pred.verified_rate,
    )


def _config_metrics_worker(task) -> ConfigMetrics:
    """Worker for :func:`sweep_config_metrics` (module-level: picklable).

    Each worker process keeps its own default context, so scenes, BVHs
    and baseline simulations memoize across the tasks it is handed.
    """
    config, code, params, sort = task
    return _config_metrics(get_default_context(), config, code, params, sort)


def sweep_config_metrics(
    configs: Sequence[Optional[PredictorConfig]],
    scenes: Sequence[str] = SWEEP_SCENES,
    params: WorkloadParams = SWEEP_WORKLOAD,
    sort: bool = False,
    jobs: Optional[int] = None,
    ctx: Optional["ExperimentContext"] = None,
) -> Dict[Tuple[Optional[PredictorConfig], str], ConfigMetrics]:
    """Metrics for every (config, scene) pair, optionally across processes.

    ``jobs`` defaults to the ``REPRO_BENCH_JOBS`` environment variable
    (1 when unset).  The timing simulation is deterministic, so the
    sharded sweep returns exactly the serial results; serial runs reuse
    the caller's context (or the process-wide default) so pytest-session
    memoization still applies.
    """
    if jobs is None:
        jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1") or "1")
    tasks = [
        (config, code, params, sort) for config in configs for code in scenes
    ]
    if jobs > 1 and len(tasks) > 1:
        with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
            metrics = list(pool.map(_config_metrics_worker, tasks))
    else:
        context = ctx if ctx is not None else get_default_context()
        metrics = [_config_metrics(context, *task) for task in tasks]
    return {
        (config, code): metric
        for (config, code, _, _), metric in zip(tasks, metrics)
    }


_DEFAULT_CONTEXT: Optional[ExperimentContext] = None


def get_default_context() -> ExperimentContext:
    """Process-wide shared context (the benchmark suite uses one)."""
    global _DEFAULT_CONTEXT
    if _DEFAULT_CONTEXT is None:
        _DEFAULT_CONTEXT = ExperimentContext()
    return _DEFAULT_CONTEXT


def all_scene_codes() -> List[str]:
    """The seven benchmark scene codes, paper order."""
    return list(SCENE_CODES)
