"""Collect regenerated benchmark artifacts into one report.

``pytest benchmarks/ --benchmark-only`` writes one plain-text table per
paper artifact under ``results/``; :func:`build_report` stitches them
into a single Markdown document ordered like the paper's evaluation
section, ready to diff against ``EXPERIMENTS.md`` or attach to a review.
"""

from __future__ import annotations

import os
from typing import Dict, List, Tuple

#: Artifact ids in the order the paper presents them, with headings.
ARTIFACT_ORDER: List[Tuple[str, str]] = [
    ("tab01_scenes", "Table 1 — benchmark scenes"),
    ("fig01_left_distribution", "Figure 1 (left) — access distribution"),
    ("fig01_right_l1_sweep", "Figure 1 (right) — L1 sweep without predictor"),
    ("fig02_limit_study", "Figure 2 — limit study"),
    ("fig11_correlation", "Figure 11 — simulator correlation"),
    ("fig12_speedup", "Figure 12 — headline speedup"),
    ("fig13_memory", "Figure 13 — memory accesses"),
    ("tab04_energy", "Table 4 — energy breakdown"),
    ("tab05_equation1", "Table 5 — Equation 1 vs measurement"),
    ("tab06_table_size", "Table 6 — predictor table geometry"),
    ("tab07_placement", "Table 7 — placement policies"),
    ("tab08a_grid_spherical", "Table 8a — Grid Spherical sweep"),
    ("tab08b_two_point", "Table 8b — Two Point sweep"),
    ("fig14_goup", "Figure 14 — Go Up Level"),
    ("fig15_repacking", "Figure 15 — warp repacking"),
    ("fig16_cache", "Figure 16 — cache configurations"),
    ("fig17_intersection_latency", "Figure 17 — intersection latency"),
    ("fig17_predictor_latency", "Figure 17 — predictor latency/bandwidth"),
    ("sec625_multism", "Section 6.2.5 — multi-SM scaling"),
    ("sec64_gi", "Section 6.4 — GI extension"),
    ("ext_dynamic_interframe", "Extension — inter-frame persistence"),
    ("ext_shadows", "Extension — shadow rays"),
    ("ext_tournament", "Extension — tournament hashing"),
    ("abl_timing_model", "Ablation — timing-model mechanisms"),
]


def collect_results(results_dir: str | os.PathLike) -> Dict[str, str]:
    """Read every ``<id>.txt`` under ``results_dir``; returns id -> text."""
    found: Dict[str, str] = {}
    if not os.path.isdir(results_dir):
        return found
    for name in os.listdir(results_dir):
        if name.endswith(".txt"):
            path = os.path.join(results_dir, name)
            with open(path, "r", encoding="utf-8") as handle:
                found[name[:-4]] = handle.read().rstrip()
    return found


def build_report(results_dir: str | os.PathLike, title: str = "Regenerated results") -> str:
    """Render all collected artifacts as one Markdown document.

    Artifacts appear in paper order; any extra files not in
    :data:`ARTIFACT_ORDER` are appended under "Other"; missing artifacts
    are listed so an incomplete benchmark run is visible.
    """
    results = collect_results(results_dir)
    lines: List[str] = [f"# {title}", ""]
    missing: List[str] = []
    used = set()
    for artifact_id, heading in ARTIFACT_ORDER:
        if artifact_id in results:
            used.add(artifact_id)
            lines += [f"## {heading}", "", "```", results[artifact_id], "```", ""]
        else:
            missing.append(heading)
    extras = sorted(set(results) - used)
    if extras:
        lines += ["## Other artifacts", ""]
        for artifact_id in extras:
            lines += [f"### {artifact_id}", "", "```", results[artifact_id], "```", ""]
    if missing:
        lines += ["## Missing artifacts", ""]
        lines += [f"- {name}" for name in missing]
        lines.append("")
    return "\n".join(lines)


def write_report(
    results_dir: str | os.PathLike, output_path: str | os.PathLike
) -> None:
    """Write :func:`build_report`'s output to ``output_path``."""
    with open(output_path, "w", encoding="utf-8") as handle:
        handle.write(build_report(results_dir) + "\n")
