"""Statistics helpers for experiment reporting."""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; the paper reports speedups this way.

    Raises:
        ValueError: on an empty or non-positive input.
    """
    values = list(values)
    if not values:
        raise ValueError("geometric mean of an empty sequence")
    if any(v <= 0.0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def pearson_correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient (Figure 11 reports ~0.9)."""
    if len(xs) != len(ys):
        raise ValueError("sequences must have equal length")
    n = len(xs)
    if n < 2:
        raise ValueError("need at least two points")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0.0 or var_y == 0.0:
        raise ValueError("zero variance input")
    return cov / math.sqrt(var_x * var_y)


def speedup(baseline_cycles: int, other_cycles: int) -> float:
    """Speedup of ``other`` over ``baseline`` (>1 means faster)."""
    if other_cycles <= 0:
        raise ValueError("cycle counts must be positive")
    return baseline_cycles / other_cycles
