"""Unit tests for scene generators and the registry."""

import numpy as np
import pytest

from repro.scenes import SCENE_CODES, available_scenes, get_scene
from repro.scenes.procedural import (
    box,
    chair,
    clutter,
    cylinder,
    floor_field,
    heightfield,
    open_room,
    quad,
    table,
    uv_sphere,
    voxel_terrain,
)


class TestPrimitives:
    def test_quad_triangle_count(self):
        assert len(quad((0, 0, 0), (1, 0, 0), (1, 1, 0), (0, 1, 0), subdiv=3)) == 18

    def test_quad_subdiv_validation(self):
        with pytest.raises(ValueError):
            quad((0, 0, 0), (1, 0, 0), (1, 1, 0), (0, 1, 0), subdiv=0)

    def test_box_triangle_count(self):
        assert len(box((0, 0, 0), (1, 1, 1), subdiv=2)) == 6 * 2 * 4

    def test_box_bounds(self):
        mesh = box((1, 2, 3), (4, 5, 6))
        aabb = mesh.scene_aabb()
        assert aabb.lo == (1, 2, 3)
        assert aabb.hi == (4, 5, 6)

    def test_open_room_same_as_box(self):
        assert len(open_room((0, 0, 0), (1, 1, 1), subdiv=2)) == len(
            box((0, 0, 0), (1, 1, 1), subdiv=2)
        )

    def test_sphere_bounds(self):
        mesh = uv_sphere((0, 0, 0), 1.0, lat=6, lon=8)
        aabb = mesh.scene_aabb()
        assert np.allclose(aabb.lo, (-1, -1, -1), atol=1e-6)
        assert np.allclose(aabb.hi, (1, 1, 1), atol=1e-6)

    def test_sphere_validation(self):
        with pytest.raises(ValueError):
            uv_sphere((0, 0, 0), 1.0, lat=1)

    def test_cylinder_height(self):
        mesh = cylinder((0, 0, 0), 0.5, 2.0, segments=8)
        aabb = mesh.scene_aabb()
        assert np.isclose(aabb.hi[1] - aabb.lo[1], 2.0)

    def test_cylinder_uncapped_fewer_triangles(self):
        capped = cylinder((0, 0, 0), 0.5, 1.0, segments=8, capped=True)
        open_ = cylinder((0, 0, 0), 0.5, 1.0, segments=8, capped=False)
        assert len(open_) < len(capped)

    def test_cylinder_validation(self):
        with pytest.raises(ValueError):
            cylinder((0, 0, 0), 0.5, 1.0, segments=2)

    def test_heightfield_counts(self):
        mesh = heightfield(0, 0, 1, 1, 4, 5, lambda x, z: 0.5)
        assert len(mesh) == 4 * 5 * 2

    def test_voxel_terrain_quantizes(self):
        mesh = voxel_terrain(0, 0, 2, 2, 2, 2, lambda x, z: 0.74, block_height=0.5)
        aabb = mesh.scene_aabb()
        assert np.isclose(aabb.hi[1], 0.5)  # 0.74 rounds to 0.5

    def test_table_and_chair_nonempty(self):
        assert len(table((0, 0, 0), 1, 1, 0.7)) > 0
        assert len(chair((0, 0, 0), 0.5, 1.0)) > 0

    def test_floor_field_objects_stand_on_floor(self):
        rng = np.random.default_rng(1)
        mesh = floor_field(rng, (0, 0.5, 0), (4, 0.5, 4), nx=3, nz=3, fill=1.0)
        aabb = mesh.scene_aabb()
        assert aabb.lo[1] >= 0.5 - 1e-9

    def test_floor_field_deterministic(self):
        a = floor_field(np.random.default_rng(9), (0, 0, 0), (4, 0, 4), 3, 3)
        b = floor_field(np.random.default_rng(9), (0, 0, 0), (4, 0, 4), 3, 3)
        assert len(a) == len(b)
        assert np.allclose(a.v0, b.v0)

    def test_clutter_zero_count(self):
        mesh = clutter(np.random.default_rng(0), 0, (0, 0, 0), (1, 1, 1))
        assert len(mesh) == 0


class TestRegistry:
    def test_available_scenes_paper_order(self):
        assert available_scenes() == ["SB", "SP", "LE", "LR", "FR", "BI", "CK"]

    @pytest.mark.parametrize("code", SCENE_CODES)
    def test_all_scenes_build(self, code):
        scene = get_scene(code, detail=0.4)
        assert scene.num_triangles > 100
        assert scene.code == code
        assert not scene.aabb().is_empty()

    def test_alias_lookup(self):
        assert get_scene("sponza", detail=0.4).code == "SP"
        assert get_scene("kitchen", detail=0.4).code == "CK"

    def test_case_insensitive(self):
        assert get_scene("sp", detail=0.4).code == "SP"

    def test_unknown_scene_raises(self):
        with pytest.raises(KeyError):
            get_scene("nonexistent")

    def test_invalid_detail_raises(self):
        with pytest.raises(ValueError):
            get_scene("SP", detail=0.0)

    def test_detail_scales_triangles(self):
        small = get_scene("SP", detail=0.5)
        large = get_scene("SP", detail=2.0)
        assert large.num_triangles > small.num_triangles

    def test_deterministic(self):
        a = get_scene("LR", detail=0.5)
        b = get_scene("LR", detail=0.5)
        assert a.num_triangles == b.num_triangles
        assert np.allclose(a.mesh.v0, b.mesh.v0)

    def test_camera_inside_scene_bbox(self):
        # Interior scenes: camera should sit within the scene bounds so
        # primary rays see geometry.
        for code in SCENE_CODES:
            scene = get_scene(code, detail=0.4)
            assert scene.aabb().contains_point(scene.camera.eye, eps=1.0), code
