"""Unit tests for BVH refitting and inter-frame predictor persistence."""

import numpy as np
import pytest

from repro.bvh import build_bvh, jitter_mesh, refit_bvh, validate_bvh
from repro.core import PredictorConfig, RayPredictor
from repro.gpu import GPUConfig, simulate_workload
from repro.gpu.simulator import make_predictors
from repro.trace import occlusion_any_hit, trace_occlusion_batch

PC = PredictorConfig(origin_bits=3, direction_bits=2, go_up_level=2)


class TestRefit:
    def test_refit_valid_and_topology_preserved(self, small_bvh):
        moved = jitter_mesh(small_bvh.mesh, magnitude=0.05, seed=1)
        refitted = refit_bvh(small_bvh, moved)
        validate_bvh(refitted)
        assert np.array_equal(refitted.left, small_bvh.left)
        assert np.array_equal(refitted.parent, small_bvh.parent)
        assert np.array_equal(refitted.first_tri, small_bvh.first_tri)

    def test_refit_identity_mesh_keeps_bounds(self, small_bvh):
        refitted = refit_bvh(small_bvh, small_bvh.mesh)
        assert np.allclose(refitted.lo, small_bvh.lo)
        assert np.allclose(refitted.hi, small_bvh.hi)

    def test_refit_traversal_correct_on_moved_mesh(self, small_bvh, small_workload):
        moved = jitter_mesh(small_bvh.mesh, magnitude=0.1, seed=2)
        refitted = refit_bvh(small_bvh, moved)
        rebuilt = build_bvh(moved, method="median")
        rays = [small_workload.rays[i] for i in range(0, len(small_workload), 17)]
        for ray in rays:
            assert occlusion_any_hit(refitted, ray) == occlusion_any_hit(rebuilt, ray)

    def test_refit_count_mismatch_raises(self, small_bvh, tiny_mesh):
        with pytest.raises(ValueError):
            refit_bvh(small_bvh, tiny_mesh)

    def test_jitter_preserves_shape(self, tiny_mesh):
        moved = jitter_mesh(tiny_mesh, magnitude=0.5, seed=3)
        # Rigid per-triangle translation: edge vectors unchanged.
        assert np.allclose(moved.v1 - moved.v0, tiny_mesh.v1 - tiny_mesh.v0)

    def test_jitter_deterministic(self, tiny_mesh):
        a = jitter_mesh(tiny_mesh, 0.2, seed=9)
        b = jitter_mesh(tiny_mesh, 0.2, seed=9)
        assert np.allclose(a.v0, b.v0)


class TestRefitEngines:
    """The level-synchronous refit is a drop-in for the scalar oracle."""

    @pytest.mark.parametrize("method", ["sah", "median", "lbvh"])
    def test_vector_refit_bit_identical_to_scalar(self, small_scene, method):
        bvh = build_bvh(small_scene.mesh, method=method)
        moved = jitter_mesh(bvh.mesh, magnitude=0.07, seed=5)
        vec = refit_bvh(bvh, moved, engine="vector")
        sca = refit_bvh(bvh, moved, engine="scalar")
        # Min/max folds are exactly associative, so the two schedules
        # must agree to the bit, not within a tolerance.
        assert np.array_equal(vec.lo, sca.lo)
        assert np.array_equal(vec.hi, sca.hi)

    def test_unknown_engine_raises(self, small_bvh):
        with pytest.raises(ValueError, match="refit engine"):
            refit_bvh(small_bvh, small_bvh.mesh, engine="cuda")

    def test_deformed_mesh_keeps_indices_stable(self, small_bvh):
        # The inter-frame contract: predictor tables store node indices,
        # so a refit over a deformed mesh must leave every index-valued
        # array untouched - only bounds may move.
        moved = jitter_mesh(small_bvh.mesh, magnitude=0.2, seed=11)
        refitted = refit_bvh(small_bvh, moved, engine="vector")
        for attr in ("left", "right", "first_tri", "tri_count",
                     "parent", "tri_indices"):
            assert np.array_equal(
                getattr(refitted, attr), getattr(small_bvh, attr)
            ), attr
        assert refitted.mesh is moved
        assert not np.array_equal(refitted.lo, small_bvh.lo)


class TestRebind:
    def test_rebind_keeps_table(self, small_bvh):
        predictor = RayPredictor(small_bvh, PC)
        stored = predictor.train(123, 0)
        moved = jitter_mesh(small_bvh.mesh, 0.02, seed=4)
        predictor.rebind(refit_bvh(small_bvh, moved))
        assert predictor.predict(123) == [stored]

    def test_rebind_topology_mismatch_raises(self, small_bvh, tiny_mesh):
        predictor = RayPredictor(small_bvh, PC)
        other = build_bvh(tiny_mesh)
        with pytest.raises(ValueError):
            predictor.rebind(other)


class TestInterFramePersistence:
    def test_make_predictors_count(self, small_bvh):
        config = GPUConfig(num_sms=3, predictor=PC)
        assert len(make_predictors(small_bvh, config)) == 3
        assert make_predictors(small_bvh, GPUConfig(num_sms=3)) == []

    def test_predictor_count_mismatch_raises(self, small_bvh, small_workload):
        config = GPUConfig(num_sms=2, predictor=PC)
        pool = make_predictors(small_bvh, GPUConfig(num_sms=1, predictor=PC))
        with pytest.raises(ValueError):
            simulate_workload(small_bvh, small_workload.rays, config, predictors=pool)

    def test_warm_table_predicts_more_on_second_frame(self, small_bvh, small_workload):
        config = GPUConfig(num_sms=1, predictor=PC)
        pool = make_predictors(small_bvh, config)
        frame1 = simulate_workload(small_bvh, small_workload.rays, config, predictors=pool)
        frame2 = simulate_workload(small_bvh, small_workload.rays, config, predictors=pool)
        # The second frame starts with a trained table.
        assert frame2.predicted_rate >= frame1.predicted_rate

    def test_warm_results_still_correct(self, small_bvh, small_workload):
        reference = trace_occlusion_batch(small_bvh, small_workload.rays)
        config = GPUConfig(num_sms=1, predictor=PC)
        pool = make_predictors(small_bvh, config)
        simulate_workload(small_bvh, small_workload.rays, config, predictors=pool)
        frame2 = simulate_workload(small_bvh, small_workload.rays, config, predictors=pool)
        assert sum(r.hits for r in frame2.per_sm) == int(reference.sum())
