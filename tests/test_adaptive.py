"""Unit tests for the tournament (multi-hash) predictor extension."""

import pytest

from repro.core import PredictorConfig
from repro.core.adaptive import TournamentPredictor
from repro.core.simulate import simulate_predictor
from repro.gpu import GPUConfig
from repro.gpu.memory import MemoryHierarchy
from repro.gpu.rt_unit import RTUnit
from repro.trace import trace_occlusion_batch

PC = PredictorConfig(origin_bits=3, direction_bits=2, go_up_level=2)


@pytest.fixture()
def predictor(small_bvh):
    return TournamentPredictor(small_bvh, PC)


class TestInterface:
    def test_hash_packs_both_components(self, predictor):
        origin, direction = (1.0, 1.0, 1.0), (0.0, 1.0, 0.0)
        packed = predictor.hash_ray(origin, direction)
        a, b = TournamentPredictor._unpack(packed)
        assert a == predictor.hasher_a.hash_ray(origin, direction)
        assert b == predictor.hasher_b.hash_ray(origin, direction)

    def test_hash_batch_matches_scalar(self, predictor, small_workload):
        rays = small_workload.rays
        batch = predictor.hash_batch(rays.origins, rays.directions)
        ray = rays[3]
        assert int(batch[3]) == predictor.hash_ray(ray.origin, ray.direction)

    def test_untrained_predicts_nothing(self, predictor):
        assert predictor.predict(predictor.hash_ray((1, 1, 1), (0, 1, 0))) is None

    def test_train_then_predict(self, predictor):
        h = predictor.hash_ray((2.0, 1.0, 2.0), (0.0, 1.0, 0.0))
        stored = predictor.train(h, 0)
        assert predictor.predict(h) == [stored]

    def test_train_populates_both_tables(self, predictor):
        h = predictor.hash_ray((2.0, 1.0, 2.0), (0.0, 1.0, 0.0))
        node = predictor.train(h, 0)
        a, b = TournamentPredictor._unpack(h)
        assert node in (predictor.table_a.peek(a) or [])
        assert node in (predictor.table_b.peek(b) or [])

    def test_reset(self, predictor):
        h = predictor.hash_ray((2.0, 1.0, 2.0), (0.0, 1.0, 0.0))
        predictor.train(h, 0)
        predictor.reset()
        assert predictor.predict(h) is None

    def test_storage_comparable_to_single_table(self, small_bvh):
        from repro.core.table import PredictorTable

        tournament = TournamentPredictor(small_bvh, PC)
        single = PredictorTable(
            num_entries=PC.num_entries, ways=PC.ways, hash_bits=PC.hash_bits
        )
        # Two half-size tables + chooser stay within ~20 % of one table.
        assert tournament.size_kib() < 1.2 * single.size_kib()


class TestChooser:
    def test_confirm_moves_chooser_toward_a(self, predictor, small_bvh):
        h = predictor.hash_ray((2.0, 1.0, 2.0), (0.0, 1.0, 0.0))
        a, b = TournamentPredictor._unpack(h)
        node = predictor.trained_node_for(0)
        predictor.table_a.update(a, node)  # only A knows the answer
        index = predictor._chooser_index(a)
        before = int(predictor._chooser[index])
        predictor.confirm(h, node)
        assert predictor._chooser[index] >= before

    def test_confirm_moves_chooser_toward_b(self, predictor):
        h = predictor.hash_ray((2.0, 1.0, 2.0), (0.0, 1.0, 0.0))
        a, b = TournamentPredictor._unpack(h)
        node = predictor.trained_node_for(0)
        predictor.table_b.update(b, node)
        index = predictor._chooser_index(a)
        before = int(predictor._chooser[index])
        predictor.confirm(h, node)
        assert predictor._chooser[index] <= before

    def test_prediction_prefers_trusted_component(self, predictor):
        h = predictor.hash_ray((2.0, 1.0, 2.0), (0.0, 1.0, 0.0))
        a, b = TournamentPredictor._unpack(h)
        predictor.table_a.update(a, 1)
        predictor.table_b.update(b, 2)
        node_a = predictor.trained_node_for(0)
        # Drive the chooser toward B.
        predictor.table_b.update(b, node_a)
        for _ in range(4):
            predictor.confirm(h, node_a)
        # B's counter direction means B's nodes come back.
        prediction = predictor.predict(h)
        assert prediction is not None


class TestSimulatorsAcceptIt:
    def test_functional_simulation(self, small_bvh, small_workload):
        predictor = TournamentPredictor(small_bvh, PC)
        result = simulate_predictor(
            small_bvh, small_workload.rays, predictor=predictor
        )
        assert result.num_rays == len(small_workload)
        assert result.predicted > 0

    def test_timing_simulation_results_correct(self, small_bvh, small_workload):
        reference = trace_occlusion_batch(small_bvh, small_workload.rays)
        config = GPUConfig(num_sms=1, predictor=PC)
        unit = RTUnit(
            small_bvh, config, MemoryHierarchy(config.memory),
            predictor=TournamentPredictor(small_bvh, PC),
        )
        result = unit.run(small_workload.rays)
        assert result.hits == int(reference.sum())
        assert result.predicted > 0
