"""Differential tests: vectorized vs scalar predictor table.

The struct-of-arrays :class:`~repro.core.vectable.VectorizedPredictorTable`
must be *order-equivalent* to the scalar
:class:`~repro.core.table.PredictorTable` - same lookup results (in the
same list order), same statistics, same occupancy and same fault
surface - across every associativity and node replacement policy, and
its batched kernels must match sequential scalar probes within a
window.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.table import PredictorTable
from repro.core.vectable import VectorizedPredictorTable, make_table

ASSOCIATIVITIES = (1, 2, 4, 8)
POLICIES = ("lru", "lfu", "lru-k")


def _pair(ways, policy, num_entries=8, nodes_per_entry=2, hash_bits=6):
    kwargs = dict(
        num_entries=num_entries,
        ways=ways,
        nodes_per_entry=nodes_per_entry,
        hash_bits=hash_bits,
        node_policy=policy,
    )
    return PredictorTable(**kwargs), VectorizedPredictorTable(**kwargs)


def _assert_equivalent(scalar: PredictorTable, vector: VectorizedPredictorTable):
    """Full observable-state equality between the two implementations."""
    assert vector.stats == scalar.stats
    assert vector.occupancy() == scalar.occupancy()
    slots = scalar.occupied_slots()
    assert vector.occupied_slots() == slots
    for s, w in slots:
        assert vector.entry_tag(s, w) == scalar.entry_tag(s, w)
        assert vector.entry_nodes(s, w) == scalar.entry_nodes(s, w)
    assert vector.iter_nodes() == scalar.iter_nodes()


def _drive(scalar, vector, ops):
    """Apply one op stream to both tables, checking probe-for-probe."""
    for kind, h, node in ops:
        if kind == "lookup":
            assert vector.lookup(h) == scalar.lookup(h)
        elif kind == "peek":
            assert vector.peek(h) == scalar.peek(h)
        elif kind == "confirm":
            scalar.confirm(h, node)
            vector.confirm(h, node)
        else:
            scalar.update(h, node)
            vector.update(h, node)


def _random_ops(rng, n, hash_pool=24, node_pool=12):
    kinds = ("lookup", "update", "update", "confirm", "peek")
    return [
        (
            kinds[int(rng.integers(len(kinds)))],
            int(rng.integers(hash_pool)) * 37 % (1 << 8),
            int(rng.integers(node_pool)),
        )
        for _ in range(n)
    ]


class TestScalarEquivalence:
    @pytest.mark.parametrize("ways", ASSOCIATIVITIES)
    @pytest.mark.parametrize("policy", POLICIES)
    def test_random_stream(self, ways, policy):
        scalar, vector = _pair(ways, policy)
        rng = np.random.default_rng(ways * 100 + len(policy))
        _drive(scalar, vector, _random_ops(rng, 400))
        _assert_equivalent(scalar, vector)

    @pytest.mark.parametrize("ways", ASSOCIATIVITIES)
    @pytest.mark.parametrize("policy", POLICIES)
    def test_single_node_entries(self, ways, policy):
        """The paper's default shape: one node slot per entry."""
        scalar, vector = _pair(ways, policy, nodes_per_entry=1)
        rng = np.random.default_rng(7)
        _drive(scalar, vector, _random_ops(rng, 300))
        _assert_equivalent(scalar, vector)

    def test_clear_preserves_stats(self):
        scalar, vector = _pair(2, "lru")
        _drive(scalar, vector, [("update", 3, 5), ("lookup", 3, 0)])
        scalar.clear()
        vector.clear()
        _assert_equivalent(scalar, vector)
        assert vector.lookup(3) is None
        assert scalar.lookup(3) is None
        assert vector.stats == scalar.stats

    def test_size_accounting_matches(self):
        scalar, vector = _pair(4, "lru", num_entries=1024, nodes_per_entry=1,
                               hash_bits=15)
        assert vector.size_bits() == scalar.size_bits()
        assert vector.size_kib() == pytest.approx(5.375)

    def test_rejects_bad_shapes_like_scalar(self):
        for kwargs in (
            dict(num_entries=0),
            dict(num_entries=6, ways=4),
            dict(num_entries=12, ways=2),  # 6 sets: not a power of two
        ):
            with pytest.raises(ValueError):
                PredictorTable(**kwargs)
            with pytest.raises(ValueError):
                VectorizedPredictorTable(**kwargs)
        # The vectorized store validates the policy eagerly (the scalar
        # table only instantiates policies on first allocation).
        with pytest.raises(ValueError):
            VectorizedPredictorTable(node_policy="mru")

    def test_factory_selects_implementation(self):
        assert isinstance(make_table("vector"), VectorizedPredictorTable)
        assert isinstance(make_table("scalar"), PredictorTable)
        with pytest.raises(ValueError):
            make_table("folded")


class TestFaultSurfaceEquivalence:
    """Corruption lands on the same logical slot in both stores."""

    @pytest.mark.parametrize("ways", ASSOCIATIVITIES)
    def test_corrupt_node_and_tag(self, ways):
        scalar, vector = _pair(ways, "lru")
        rng = np.random.default_rng(13)
        _drive(scalar, vector, _random_ops(rng, 200))
        slots = scalar.occupied_slots()
        assert slots
        for _ in range(8):
            s, w = slots[int(rng.integers(len(slots)))]
            nodes = scalar.entry_nodes(s, w)
            slot = int(rng.integers(len(nodes)))
            value = int(rng.integers(1 << 10))
            assert (vector.corrupt_node(s, w, slot, value)
                    == scalar.corrupt_node(s, w, slot, value))
            tag = int(rng.integers(1 << 8))
            assert (vector.corrupt_tag(s, w, tag)
                    == scalar.corrupt_tag(s, w, tag))
        # Post-corruption behavior (aliased lookups, stale nodes) stays
        # in lockstep under the default LRU policy.
        _drive(scalar, vector, _random_ops(rng, 200))
        _assert_equivalent(scalar, vector)


@st.composite
def _op_window(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    hashes = draw(st.lists(st.integers(min_value=0, max_value=255),
                           min_size=n, max_size=n))
    nodes = draw(st.lists(st.integers(min_value=0, max_value=15),
                          min_size=n, max_size=n))
    return hashes, nodes


class TestBatchedOrderEquivalence:
    """Batched kernels == sequential probes within a window."""

    @settings(deadline=None, max_examples=40)
    @given(window=_op_window(),
           ways=st.sampled_from(ASSOCIATIVITIES),
           policy=st.sampled_from(POLICIES))
    def test_lookup_insert_window(self, window, ways, policy):
        hashes, nodes = window
        seq = VectorizedPredictorTable(
            num_entries=8, ways=ways, nodes_per_entry=2, hash_bits=6,
            node_policy=policy,
        )
        bat = VectorizedPredictorTable(
            num_entries=8, ways=ways, nodes_per_entry=2, hash_bits=6,
            node_policy=policy,
        )
        ref = PredictorTable(
            num_entries=8, ways=ways, nodes_per_entry=2, hash_bits=6,
            node_policy=policy,
        )
        # Window semantics: all lookups, then all confirms, then all
        # updates - matching the simulate engine's in-flight window.
        seq_results = [seq.lookup(h) for h in hashes]
        ref_results = [ref.lookup(h) for h in hashes]
        for h, n_ in zip(hashes, nodes):
            seq.confirm(h, n_)
            ref.confirm(h, n_)
        for h, n_ in zip(hashes, nodes):
            seq.update(h, n_)
            ref.update(h, n_)

        harr = np.asarray(hashes, dtype=np.uint64)
        narr = np.asarray(nodes, dtype=np.int64)
        bnodes, bcounts = bat.lookup_batch(harr)
        bat.confirm_batch(harr, narr)
        bat.update_batch(harr, narr)

        for i, expect in enumerate(seq_results):
            got = (None if bcounts[i] == 0
                   else [int(x) for x in bnodes[i, : bcounts[i]]])
            assert got == expect == ref_results[i]
        assert bat.stats == seq.stats == ref.stats
        _assert_equivalent(ref, bat)
        _assert_equivalent(ref, seq)
