"""Unit tests for SimOutput aggregation over synthetic per-SM results."""

import pytest

from repro.gpu.rt_unit import RTUnitResult
from repro.gpu.simulator import SimOutput


def make_result(**overrides) -> RTUnitResult:
    base = dict(
        cycles=1000,
        rays=64,
        hits=40,
        predicted=30,
        verified=10,
        node_fetches=500,
        tri_fetches=100,
        misprediction_node_fetches=20,
        misprediction_tri_fetches=5,
        box_tests=1000,
        tri_tests=120,
        warps_executed=2,
        warp_steps=50,
        active_thread_steps=800,
        stack_spills=3,
        l1_accesses=400,
        l1_hits=200,
        l2_accesses=200,
        l2_hits=150,
        dram_accesses=50,
        dram_bank_parallelism=2.0,
        predictor_lookups=64,
        predictor_updates=40,
        collector_warps=1,
        collector_timeout_flushes=0,
    )
    base.update(overrides)
    return RTUnitResult(**base)


@pytest.fixture()
def output():
    return SimOutput(
        cycles=1200,
        per_sm=[make_result(), make_result(cycles=1200, rays=32, hits=16)],
    )


class TestAggregation:
    def test_rays_sum(self, output):
        assert output.rays == 96

    def test_cycles_is_max(self, output):
        assert output.cycles == 1200

    def test_access_sums(self, output):
        assert output.node_fetches == 1000
        assert output.tri_fetches == 200
        assert output.total_accesses == 1200

    def test_misprediction_accesses(self, output):
        assert output.misprediction_accesses == 2 * (20 + 5)

    def test_rates(self, output):
        assert output.predicted_rate == pytest.approx(60 / 96)
        assert output.verified_rate == pytest.approx(20 / 96)
        assert output.hit_rate == pytest.approx(56 / 96)

    def test_cache_rates(self, output):
        assert output.l1_hit_rate == pytest.approx(400 / 800)
        assert output.l2_hit_rate == pytest.approx(300 / 400)

    def test_dram(self, output):
        assert output.dram_accesses == 100
        assert output.dram_bank_parallelism == pytest.approx(2.0)

    def test_predictor_traffic(self, output):
        assert output.predictor_lookups == 128
        assert output.predictor_updates == 80

    def test_simt_efficiency(self, output):
        assert output.simt_efficiency == pytest.approx(1600 / (100 * 32))

    def test_rays_per_cycle(self, output):
        assert output.rays_per_cycle() == pytest.approx(96 / 1200)


class TestEmpty:
    def test_zero_sms(self):
        out = SimOutput(cycles=0, per_sm=[])
        assert out.rays == 0
        assert out.predicted_rate == 0.0
        assert out.l1_hit_rate == 0.0
        assert out.dram_bank_parallelism == 0.0
        assert out.simt_efficiency == 0.0
        assert out.rays_per_cycle() == 0.0


class TestRTUnitResultProperties:
    def test_rate_properties(self):
        r = make_result()
        assert r.predicted_rate == pytest.approx(30 / 64)
        assert r.verified_rate == pytest.approx(10 / 64)
        assert r.hit_rate == pytest.approx(40 / 64)
        assert r.total_accesses == 600

    def test_zero_ray_result(self):
        r = make_result(rays=0, l1_accesses=0, l2_accesses=0, warp_steps=0)
        assert r.predicted_rate == 0.0
        assert r.l1_hit_rate == 0.0
        assert r.simt_efficiency == 0.0
        assert r.rays_per_cycle() == 0.0
