"""Unit tests for ray-box and ray-triangle intersection kernels."""

import math

import numpy as np

from repro.geometry.intersect import (
    ray_aabb_intersect,
    ray_aabb_intersect_batch,
    ray_triangle_intersect,
    ray_triangle_intersect_batch,
)


def slab(origin, direction, t_min=0.0, t_max=math.inf, lo=(0, 0, 0), hi=(1, 1, 1)):
    inv = tuple(1.0 / d if d != 0.0 else math.copysign(math.inf, d) for d in direction)
    return ray_aabb_intersect(
        origin[0], origin[1], origin[2], inv[0], inv[1], inv[2],
        t_min, t_max, lo[0], lo[1], lo[2], hi[0], hi[1], hi[2],
    )


class TestRayAABB:
    def test_hit_through_center(self):
        hit, t = slab((-1, 0.5, 0.5), (1, 0, 0))
        assert hit
        assert math.isclose(t, 1.0)

    def test_miss_parallel_offset(self):
        hit, _ = slab((-1, 2.0, 0.5), (1, 0, 0))
        assert not hit

    def test_hit_from_inside(self):
        hit, t = slab((0.5, 0.5, 0.5), (1, 0, 0))
        assert hit
        assert t == 0.0  # clamped to t_min

    def test_miss_behind_origin(self):
        hit, _ = slab((2, 0.5, 0.5), (1, 0, 0))
        assert not hit

    def test_t_max_cuts_hit(self):
        hit, _ = slab((-5, 0.5, 0.5), (1, 0, 0), t_max=4.0)
        assert not hit
        hit, _ = slab((-5, 0.5, 0.5), (1, 0, 0), t_max=6.0)
        assert hit

    def test_t_min_cuts_hit(self):
        hit, _ = slab((-1, 0.5, 0.5), (1, 0, 0), t_min=3.0)
        assert not hit

    def test_diagonal_hit(self):
        hit, t = slab((-1, -1, -1), (1, 1, 1))
        assert hit
        assert math.isclose(t, 1.0)

    def test_axis_parallel_ray_inside_slab(self):
        # Direction has a zero component; ray inside that slab's range.
        hit, _ = slab((0.5, -1.0, 0.5), (0, 1, 0))
        assert hit

    def test_axis_parallel_ray_outside_slab(self):
        hit, _ = slab((2.0, -1.0, 0.5), (0, 1, 0))
        assert not hit

    def test_grazing_corner(self):
        hit, _ = slab((-1, -1, 0.5), (1, 1, 0))
        assert hit  # exactly through the (0,0) edge

    def test_negative_direction(self):
        hit, t = slab((2, 0.5, 0.5), (-1, 0, 0))
        assert hit
        assert math.isclose(t, 1.0)


class TestRayAABBBatch:
    def test_matches_scalar(self):
        rng = np.random.default_rng(5)
        n = 200
        origins = rng.uniform(-2, 2, (n, 3))
        directions = rng.normal(size=(n, 3))
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        with np.errstate(divide="ignore"):
            inv = 1.0 / directions
        t_min = np.zeros(n)
        t_max = np.full(n, np.inf)
        lo = np.zeros(3)
        hi = np.ones(3)
        batch = ray_aabb_intersect_batch(origins, inv, t_min, t_max, lo, hi)
        for i in range(n):
            scalar, _ = slab(tuple(origins[i]), tuple(directions[i]))
            assert batch[i] == scalar, f"mismatch at ray {i}"

    def test_per_ray_boxes(self):
        origins = np.array([[-1.0, 0.5, 0.5], [-1.0, 0.5, 0.5]])
        directions = np.array([[1.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
        with np.errstate(divide="ignore"):
            inv = 1.0 / directions
        lo = np.array([[0.0, 0.0, 0.0], [0.0, 5.0, 0.0]])
        hi = np.array([[1.0, 1.0, 1.0], [1.0, 6.0, 1.0]])
        out = ray_aabb_intersect_batch(
            origins, inv, np.zeros(2), np.full(2, np.inf), lo, hi
        )
        assert out.tolist() == [True, False]


V0 = (0.0, 0.0, 0.0)
V1 = (1.0, 0.0, 0.0)
V2 = (0.0, 1.0, 0.0)


class TestRayTriangle:
    def test_hit_centroid(self):
        t = ray_triangle_intersect(0.25, 0.25, -1, 0, 0, 1, 0.0, 10.0, V0, V1, V2)
        assert t is not None
        assert math.isclose(t, 1.0)

    def test_miss_outside(self):
        t = ray_triangle_intersect(0.9, 0.9, -1, 0, 0, 1, 0.0, 10.0, V0, V1, V2)
        assert t is None

    def test_no_backface_culling(self):
        # Hit from the other side: occlusion rays test both orientations.
        t = ray_triangle_intersect(0.25, 0.25, 1, 0, 0, -1, 0.0, 10.0, V0, V1, V2)
        assert t is not None
        assert math.isclose(t, 1.0)

    def test_parallel_ray_misses(self):
        t = ray_triangle_intersect(0.25, 0.25, -1, 1, 0, 0, 0.0, 10.0, V0, V1, V2)
        assert t is None

    def test_t_interval_respected(self):
        assert ray_triangle_intersect(0.25, 0.25, -1, 0, 0, 1, 0.0, 0.5, V0, V1, V2) is None
        assert ray_triangle_intersect(0.25, 0.25, -1, 0, 0, 1, 1.5, 10.0, V0, V1, V2) is None

    def test_edge_hit_counts(self):
        # A point on the v0-v1 edge (u in range, v == 0).
        t = ray_triangle_intersect(0.5, 0.0, -1, 0, 0, 1, 0.0, 10.0, V0, V1, V2)
        assert t is not None

    def test_vertex_hit_counts(self):
        t = ray_triangle_intersect(0.0, 0.0, -1, 0, 0, 1, 0.0, 10.0, V0, V1, V2)
        assert t is not None

    def test_degenerate_triangle_misses(self):
        t = ray_triangle_intersect(
            0.25, 0.25, -1, 0, 0, 1, 0.0, 10.0, V0, V0, V2
        )
        assert t is None

    def test_behind_origin_misses(self):
        t = ray_triangle_intersect(0.25, 0.25, 1, 0, 0, 1, 0.0, 10.0, V0, V1, V2)
        assert t is None


class TestRayTriangleBatch:
    def test_matches_scalar(self):
        rng = np.random.default_rng(11)
        n = 200
        origins = rng.uniform(-1, 2, (n, 3))
        directions = rng.normal(size=(n, 3))
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        v0 = np.broadcast_to(np.array(V0), (n, 3))
        v1 = np.broadcast_to(np.array(V1), (n, 3))
        v2 = np.broadcast_to(np.array(V2), (n, 3))
        t_min = np.zeros(n)
        t_max = np.full(n, np.inf)
        out = ray_triangle_intersect_batch(origins, directions, t_min, t_max, v0, v1, v2)
        for i in range(n):
            scalar = ray_triangle_intersect(
                origins[i][0], origins[i][1], origins[i][2],
                directions[i][0], directions[i][1], directions[i][2],
                0.0, math.inf, V0, V1, V2,
            )
            if scalar is None:
                assert out[i] == np.inf
            else:
                assert math.isclose(out[i], scalar, rel_tol=1e-9)

    def test_miss_is_inf(self):
        out = ray_triangle_intersect_batch(
            np.array([[5.0, 5.0, -1.0]]),
            np.array([[0.0, 0.0, 1.0]]),
            np.zeros(1),
            np.full(1, np.inf),
            np.array([V0]),
            np.array([V1]),
            np.array([V2]),
        )
        assert out[0] == np.inf
