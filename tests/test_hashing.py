"""Unit tests for the ray hash functions (Section 4.2)."""

import numpy as np
import pytest

from repro.core.hashing import (
    GridSphericalHash,
    TwoPointHash,
    fold_hash,
    grid_hash,
    make_hasher,
    quantize,
)
from repro.geometry.aabb import AABB

BOX = AABB((0.0, 0.0, 0.0), (10.0, 10.0, 10.0))


class TestFold:
    def test_narrow_hash_passthrough(self):
        assert fold_hash(0b101, 3, 8) == 0b101

    def test_fold_xors_chunks(self):
        # 6-bit value folded to 3 bits: high chunk xor low chunk.
        value = 0b101_011
        assert fold_hash(value, 6, 3) == (0b101 ^ 0b011)

    def test_fold_is_deterministic_and_bounded(self):
        for value in range(0, 1 << 12, 37):
            folded = fold_hash(value, 12, 5)
            assert 0 <= folded < 32
            assert folded == fold_hash(value, 12, 5)

    def test_invalid_out_bits(self):
        with pytest.raises(ValueError):
            fold_hash(1, 4, 0)


class TestQuantize:
    def test_endpoints(self):
        assert quantize(0.0, 0.0, 1.0, 4) == 0
        assert quantize(1.0, 0.0, 1.0, 4) == 15

    def test_clamps(self):
        assert quantize(-5.0, 0.0, 1.0, 4) == 0
        assert quantize(5.0, 0.0, 1.0, 4) == 15

    def test_degenerate_range(self):
        assert quantize(3.0, 2.0, 2.0, 4) == 0

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            quantize(0.5, 0, 1, 0)


class TestGridHash:
    def test_width(self):
        h = grid_hash((10, 10, 10), (0, 0, 0), (10, 10, 10), 5)
        assert h == (31 << 10) | (31 << 5) | 31

    def test_spatial_locality(self):
        a = grid_hash((1.0, 1.0, 1.0), BOX.lo, BOX.hi, 4)
        b = grid_hash((1.01, 1.0, 1.0), BOX.lo, BOX.hi, 4)
        c = grid_hash((9.0, 9.0, 9.0), BOX.lo, BOX.hi, 4)
        assert a == b  # same cell
        assert a != c


class TestGridSpherical:
    def test_hash_width(self):
        hasher = GridSphericalHash(BOX, origin_bits=5, direction_bits=3)
        assert hasher.bits == 15
        h = hasher.hash_ray((5, 5, 5), (0, 1, 0))
        assert 0 <= h < (1 << 15)

    def test_similar_rays_collide(self):
        hasher = GridSphericalHash(BOX, origin_bits=4, direction_bits=2)
        a = hasher.hash_ray((5.0, 5.0, 5.0), (0.0, 1.0, 0.0))
        b = hasher.hash_ray((5.05, 5.0, 5.0), (0.02, 0.999, 0.0))
        assert a == b

    def test_different_origins_differ(self):
        hasher = GridSphericalHash(BOX, origin_bits=4, direction_bits=2)
        a = hasher.hash_ray((1.0, 1.0, 1.0), (0.0, 1.0, 0.0))
        b = hasher.hash_ray((9.0, 9.0, 9.0), (0.0, 1.0, 0.0))
        assert a != b

    def test_opposite_directions_differ(self):
        hasher = GridSphericalHash(BOX, origin_bits=4, direction_bits=3)
        a = hasher.hash_ray((5.0, 5.0, 5.0), (0.0, 1.0, 0.0))
        b = hasher.hash_ray((5.0, 5.0, 5.0), (0.0, -1.0, 0.0))
        assert a != b

    def test_batch_matches_scalar(self):
        hasher = GridSphericalHash(BOX, origin_bits=5, direction_bits=3)
        rng = np.random.default_rng(3)
        origins = rng.uniform(0, 10, (300, 3))
        directions = rng.normal(size=(300, 3))
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        batch = hasher.hash_batch(origins, directions)
        for i in range(0, 300, 7):
            assert int(batch[i]) == hasher.hash_ray(
                tuple(origins[i]), tuple(directions[i])
            ), i

    def test_pole_directions_stable(self):
        hasher = GridSphericalHash(BOX, origin_bits=4, direction_bits=3)
        for d in [(0, 1, 0), (0, -1, 0), (1, 0, 0), (0, 0, 1)]:
            h = hasher.hash_ray((5, 5, 5), d)
            assert 0 <= h < (1 << hasher.bits)

    def test_validation(self):
        with pytest.raises(ValueError):
            GridSphericalHash(BOX, origin_bits=0)
        with pytest.raises(ValueError):
            GridSphericalHash(BOX, direction_bits=8)


class TestTwoPoint:
    def test_hash_width(self):
        hasher = TwoPointHash(BOX, origin_bits=5, length_ratio=0.15)
        assert hasher.bits == 15

    def test_similar_rays_collide(self):
        hasher = TwoPointHash(BOX, origin_bits=4, length_ratio=0.15)
        a = hasher.hash_ray((5.0, 5.0, 5.0), (0.0, 1.0, 0.0))
        b = hasher.hash_ray((5.02, 5.0, 5.0), (0.01, 0.999, 0.0))
        assert a == b

    def test_length_ratio_changes_hash_distribution(self):
        rng = np.random.default_rng(4)
        origins = rng.uniform(0, 10, (200, 3))
        directions = rng.normal(size=(200, 3))
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        short = TwoPointHash(BOX, origin_bits=5, length_ratio=0.05)
        long = TwoPointHash(BOX, origin_bits=5, length_ratio=0.35)
        assert not np.array_equal(
            short.hash_batch(origins, directions), long.hash_batch(origins, directions)
        )

    def test_batch_matches_scalar(self):
        hasher = TwoPointHash(BOX, origin_bits=5, length_ratio=0.15)
        rng = np.random.default_rng(5)
        origins = rng.uniform(0, 10, (100, 3))
        directions = rng.normal(size=(100, 3))
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        batch = hasher.hash_batch(origins, directions)
        for i in range(0, 100, 11):
            assert int(batch[i]) == hasher.hash_ray(
                tuple(origins[i]), tuple(directions[i])
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            TwoPointHash(BOX, origin_bits=0)
        with pytest.raises(ValueError):
            TwoPointHash(BOX, length_ratio=0.0)


class TestFactory:
    def test_grid_spherical(self):
        assert isinstance(make_hasher("grid_spherical", BOX), GridSphericalHash)

    def test_two_point(self):
        assert isinstance(make_hasher("two_point", BOX), TwoPointHash)

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            make_hasher("sha256", BOX)
