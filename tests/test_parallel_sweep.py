"""Process-sharded sweeps: determinism, resume composition, fingerprints.

``--jobs N`` must be a pure throughput knob: every unit is a pure
function of the pinned preset, so a sharded sweep's artifact has to
match the serial artifact except for wall-clock timing fields.  These
tests pin that contract, plus the interaction with checkpoints (a
mid-sweep kill resumes under ``--jobs``) and the artifact-cache
fingerprint (cached and uncached runs refuse to mix).
"""

import copy
import json

import pytest

from repro.bench.harness import (
    BenchPreset,
    run_benchmarks,
    sweep_fingerprint,
)
from repro.bvh.cache import configure_artifact_cache
from repro.errors import CheckpointError
from repro.resilience import ResilienceOptions, SweepCheckpoint
from repro.resilience.sweep import (
    SimulatePreset,
    run_simulation_sweep,
    sim_fingerprint,
)

#: Two tiny scenes so sharding across 2 workers is non-trivial.
PAR_PRESET = BenchPreset(
    name="partest",
    scenes=("SB", "CK"),
    width=6,
    height=6,
    spp=1,
    seed=1,
    detail=0.25,
    sim_rays=32,
    repeats=1,
)

SIM_PRESET = SimulatePreset(
    name="partest",
    scenes=("SB", "CK"),
    width=8,
    height=8,
    spp=1,
    detail=0.25,
    sim_rays=64,
)

#: Fields that legitimately differ between runs (wall-clock derived).
TIMING_KEYS = frozenset(
    {"wall_time_s", "rays_per_sec", "speedup_wavefront_over_scalar",
     "total_backoff_s"}
)


def strip_timing(obj):
    """Drop wall-clock-derived fields so payloads compare structurally."""
    if isinstance(obj, dict):
        return {
            key: strip_timing(value)
            for key, value in obj.items()
            if key not in TIMING_KEYS
        }
    if isinstance(obj, list):
        return [strip_timing(item) for item in obj]
    return obj


@pytest.fixture(autouse=True)
def no_leaked_cache():
    configure_artifact_cache(None)
    yield
    configure_artifact_cache(None)


class TestBenchSharding:
    def test_plain_sweep_matches_serial_modulo_timing(self):
        serial = run_benchmarks(PAR_PRESET, jobs=1)
        sharded = run_benchmarks(PAR_PRESET, jobs=2)
        assert strip_timing(serial) == strip_timing(sharded)

    def test_record_order_is_scene_order(self):
        payload = run_benchmarks(PAR_PRESET, jobs=2)
        scenes = [r["scene"] for r in payload["results"]]
        # SB's records all precede CK's regardless of completion order.
        assert scenes == sorted(scenes, key=("SB", "CK").index)

    def test_supervised_sweep_matches_serial_modulo_timing(self, tmp_path):
        opts_a = ResilienceOptions(
            checkpoint_path=str(tmp_path / "a.ckpt.json")
        )
        opts_b = ResilienceOptions(
            checkpoint_path=str(tmp_path / "b.ckpt.json")
        )
        serial = run_benchmarks(PAR_PRESET, resilience=opts_a, jobs=1)
        sharded = run_benchmarks(PAR_PRESET, resilience=opts_b, jobs=2)
        a, b = strip_timing(serial), strip_timing(sharded)
        # Checkpoint paths differ by construction; everything else match.
        a["resilience"]["checkpoint"].pop("path")
        b["resilience"]["checkpoint"].pop("path")
        assert a == b


class TestResumeComposition:
    def test_jobs_resume_reruns_only_missing_units(self, tmp_path):
        ckpt_path = str(tmp_path / "sweep.ckpt.json")
        options = ResilienceOptions(checkpoint_path=ckpt_path)
        full = run_benchmarks(PAR_PRESET, resilience=options, jobs=1)

        # Emulate a mid-sweep kill: drop CK from the persisted state.
        with open(ckpt_path) as handle:
            state = json.load(handle)
        assert set(state["completed"]) == {"SB", "CK"}
        del state["completed"]["CK"]
        with open(ckpt_path, "w") as handle:
            json.dump(state, handle)

        resumed = run_benchmarks(
            PAR_PRESET,
            resilience=ResilienceOptions(
                checkpoint_path=ckpt_path, resume=True
            ),
            jobs=2,
        )
        # SB came from the checkpoint, CK was re-run; the payload's
        # record set matches the uninterrupted sweep.
        statuses = {
            entry["unit"]: entry["status"]
            for entry in resumed["resilience"]["manifest"]["units"]
        }
        assert statuses == {"SB": "resumed", "CK": "ok"}
        assert [r["scene"] for r in resumed["results"]] == [
            r["scene"] for r in full["results"]
        ]
        # SB's records are byte-identical to the first run (checkpoint
        # replay); CK's match modulo timing (it actually re-ran).
        sb_full = [r for r in full["results"] if r["scene"] == "SB"]
        sb_resumed = [r for r in resumed["results"] if r["scene"] == "SB"]
        assert sb_full == sb_resumed
        assert strip_timing(full["results"]) == strip_timing(
            resumed["results"]
        )

    def test_parent_checkpoints_sharded_units(self, tmp_path):
        ckpt_path = str(tmp_path / "sweep.ckpt.json")
        run_benchmarks(
            PAR_PRESET,
            resilience=ResilienceOptions(checkpoint_path=ckpt_path),
            jobs=2,
        )
        with open(ckpt_path) as handle:
            state = json.load(handle)
        assert set(state["completed"]) == {"SB", "CK"}


class TestSimulateSharding:
    def test_results_identical_to_serial(self):
        serial = run_simulation_sweep(SIM_PRESET, jobs=1)
        sharded = run_simulation_sweep(SIM_PRESET, jobs=2)
        # Simulation rows carry no timing fields: exact equality.
        assert serial["results"] == sharded["results"]
        assert serial["results"], "sweep produced no rows"


class TestCacheFingerprint:
    def test_bench_fingerprint_tracks_cache_identity(self, tmp_path):
        bare = sweep_fingerprint(PAR_PRESET, PAR_PRESET.scenes, ("scalar",))
        assert "artifact_cache" not in bare
        configure_artifact_cache(str(tmp_path))
        cached = sweep_fingerprint(PAR_PRESET, PAR_PRESET.scenes, ("scalar",))
        assert cached["artifact_cache"]["enabled"] is True
        stripped = copy.deepcopy(cached)
        del stripped["artifact_cache"]
        assert stripped == bare

    def test_sim_fingerprint_tracks_cache_identity(self, tmp_path):
        bare = sim_fingerprint(SIM_PRESET)
        configure_artifact_cache(str(tmp_path))
        assert sim_fingerprint(SIM_PRESET) != bare

    def test_resume_refuses_to_mix_cached_and_uncached(self, tmp_path):
        # Checkpoint written with the cache enabled ...
        configure_artifact_cache(str(tmp_path / "cache"))
        ckpt_path = str(tmp_path / "sweep.ckpt.json")
        written = SweepCheckpoint(
            ckpt_path, sim_fingerprint(SIM_PRESET), bench_schema="x"
        )
        written.record("SB", {"row": None, "entry": {}})
        # ... must not resume with it disabled.
        configure_artifact_cache(None)
        reader = SweepCheckpoint(
            ckpt_path, sim_fingerprint(SIM_PRESET), bench_schema="x"
        )
        with pytest.raises(CheckpointError):
            reader.load(resume=True)
