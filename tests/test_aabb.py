"""Unit tests for repro.geometry.aabb."""

import math

from repro.geometry.aabb import AABB, aabb_surface_area, aabb_union


class TestConstruction:
    def test_default_is_empty(self):
        assert AABB().is_empty()

    def test_from_points(self):
        box = AABB.from_points([(0, 0, 0), (1, 2, 3), (-1, 1, 1)])
        assert box.lo == (-1, 0, 0)
        assert box.hi == (1, 2, 3)

    def test_grow_point_from_empty(self):
        box = AABB()
        box.grow_point((1, 2, 3))
        assert box.lo == (1, 2, 3)
        assert box.hi == (1, 2, 3)
        assert not box.is_empty()

    def test_grow_aabb(self):
        a = AABB((0, 0, 0), (1, 1, 1))
        b = AABB((2, -1, 0), (3, 0.5, 2))
        a.grow_aabb(b)
        assert a.lo == (0, -1, 0)
        assert a.hi == (3, 1, 2)


class TestQueries:
    def test_contains_point(self):
        box = AABB((0, 0, 0), (1, 1, 1))
        assert box.contains_point((0.5, 0.5, 0.5))
        assert box.contains_point((0, 0, 0))
        assert not box.contains_point((1.5, 0.5, 0.5))

    def test_contains_point_epsilon(self):
        box = AABB((0, 0, 0), (1, 1, 1))
        assert not box.contains_point((1.0001, 0.5, 0.5))
        assert box.contains_point((1.0001, 0.5, 0.5), eps=1e-3)

    def test_contains_aabb(self):
        outer = AABB((0, 0, 0), (2, 2, 2))
        inner = AABB((0.5, 0.5, 0.5), (1.5, 1.5, 1.5))
        assert outer.contains_aabb(inner)
        assert not inner.contains_aabb(outer)

    def test_center(self):
        assert AABB((0, 0, 0), (2, 4, 6)).center() == (1, 2, 3)

    def test_extent(self):
        assert AABB((0, 1, 2), (1, 3, 5)).extent() == (1, 2, 3)

    def test_extent_of_empty_is_zero(self):
        assert AABB().extent() == (0, 0, 0)

    def test_diagonal_length(self):
        box = AABB((0, 0, 0), (3, 4, 0))
        assert math.isclose(box.diagonal_length(), 5.0)

    def test_max_extent_and_longest_axis(self):
        box = AABB((0, 0, 0), (1, 5, 2))
        assert box.max_extent() == 5.0
        assert box.longest_axis() == 1

    def test_surface_area_unit_cube(self):
        assert AABB((0, 0, 0), (1, 1, 1)).surface_area() == 6.0

    def test_surface_area_empty_is_zero(self):
        assert AABB().surface_area() == 0.0

    def test_surface_area_degenerate_plane(self):
        # A flat box still has two faces.
        assert AABB((0, 0, 0), (1, 1, 0)).surface_area() == 2.0


class TestHelpers:
    def test_union(self):
        a = AABB((0, 0, 0), (1, 1, 1))
        b = AABB((2, 2, 2), (3, 3, 3))
        u = aabb_union(a, b)
        assert u.lo == (0, 0, 0)
        assert u.hi == (3, 3, 3)
        # Inputs must not be mutated.
        assert a.hi == (1, 1, 1)
        assert b.lo == (2, 2, 2)

    def test_raw_surface_area_matches_class(self):
        box = AABB((0, 0, 0), (2, 3, 4))
        assert aabb_surface_area(box.lo, box.hi) == box.surface_area()

    def test_raw_surface_area_inverted_is_zero(self):
        assert aabb_surface_area((1, 1, 1), (0, 0, 0)) == 0.0
