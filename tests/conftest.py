"""Shared fixtures: small deterministic scenes, BVHs and workloads.

Session-scoped where construction is expensive; tests must not mutate
shared objects (predictors and simulators take their own copies).
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.bvh import build_bvh
from repro.geometry.triangle import TriangleMesh
from repro.rays import generate_ao_workload
from repro.scenes import procedural as P
from repro.scenes.scene import CameraSpec, Scene

# Property tests run alongside heavy simulation tests; wall-clock
# deadlines would make them flaky, so disable them suite-wide.  CI caps
# the example budget via HYPOTHESIS_MAX_EXAMPLES (unset = library default).
_profile_kwargs = dict(
    deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
if os.environ.get("HYPOTHESIS_MAX_EXAMPLES"):
    _profile_kwargs["max_examples"] = int(os.environ["HYPOTHESIS_MAX_EXAMPLES"])
settings.register_profile("repro", **_profile_kwargs)
settings.load_profile("repro")


def make_test_scene(seed: int = 3) -> Scene:
    """A small cluttered room: fast to build, non-trivial to traverse."""
    rng = np.random.default_rng(seed)
    parts = [P.open_room((0, 0, 0), (8, 4, 6), subdiv=2)]
    parts.append(P.floor_field(rng, (1, 0, 1), (7, 0, 5), nx=4, nz=3))
    parts.append(P.uv_sphere((4.0, 1.5, 3.0), 0.6, lat=5, lon=8))
    parts.append(P.cylinder((2.0, 0.0, 4.0), 0.3, 2.0, segments=6))
    mesh = TriangleMesh.concatenate(parts)
    return Scene(
        name="test-room",
        code="TR",
        mesh=mesh,
        camera=CameraSpec(eye=(0.8, 2.0, 0.8), look_at=(6.0, 0.8, 4.5)),
        description="small deterministic test scene",
    )


@pytest.fixture(scope="session")
def small_scene() -> Scene:
    return make_test_scene()


@pytest.fixture(scope="session")
def small_bvh(small_scene):
    return build_bvh(small_scene.mesh, method="sah")


@pytest.fixture(scope="session")
def small_workload(small_scene, small_bvh):
    return generate_ao_workload(
        small_scene, small_bvh, width=16, height=16, spp=2, seed=7
    )


@pytest.fixture(scope="session")
def tiny_mesh() -> TriangleMesh:
    """Two axis-aligned triangles forming a unit quad at z=0."""
    v0 = np.array([[0.0, 0.0, 0.0], [0.0, 0.0, 0.0]])
    v1 = np.array([[1.0, 0.0, 0.0], [1.0, 1.0, 0.0]])
    v2 = np.array([[1.0, 1.0, 0.0], [0.0, 1.0, 0.0]])
    return TriangleMesh(v0, v1, v2)
