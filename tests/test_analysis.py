"""Unit tests for the analysis utilities and experiment context."""


import pytest

from repro.analysis import (
    ExperimentContext,
    format_table,
    geometric_mean,
    pearson_correlation,
    scaled_gpu_config,
    scaled_predictor_config,
)
from repro.analysis.correlate import hardware_proxy_rays_per_cycle
from repro.analysis.experiments import WorkloadParams
from repro.analysis.stats import speedup


class TestStats:
    def test_geometric_mean_simple(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_geometric_mean_identity(self):
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_geometric_mean_validation(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])

    def test_pearson_perfect(self):
        assert pearson_correlation([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_pearson_inverse(self):
        assert pearson_correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_pearson_validation(self):
        with pytest.raises(ValueError):
            pearson_correlation([1], [1])
        with pytest.raises(ValueError):
            pearson_correlation([1, 2], [1, 2, 3])
        with pytest.raises(ValueError):
            pearson_correlation([1, 1], [1, 2])

    def test_speedup(self):
        assert speedup(200, 100) == 2.0
        with pytest.raises(ValueError):
            speedup(100, 0)


class TestFormatTable:
    def test_basic(self):
        out = format_table(["Scene", "Speedup"], [["SP", 1.234], ["LR", 0.9]])
        lines = out.splitlines()
        assert "Scene" in lines[0]
        assert "1.234" in lines[2]
        assert "0.900" in lines[3]

    def test_title(self):
        out = format_table(["A"], [[1]], title="Table X")
        assert out.splitlines()[0] == "Table X"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["A", "B"], [[1]])

    def test_alignment(self):
        out = format_table(["name", "v"], [["x", 1.0], ["longer", 2.0]])
        lines = out.splitlines()
        # All rows have equal width.
        assert len(set(len(l) for l in lines[1:])) == 1


class TestScaledConfigs:
    def test_predictor_defaults(self):
        pc = scaled_predictor_config()
        assert pc.origin_bits == 4
        assert pc.go_up_level == 2
        assert pc.nodes_per_entry == 2
        assert pc.extra_warps == 4
        assert pc.num_entries == 1024  # the paper's table geometry

    def test_predictor_overrides(self):
        pc = scaled_predictor_config(go_up_level=5)
        assert pc.go_up_level == 5
        assert pc.origin_bits == 4

    def test_gpu_defaults(self):
        gpu = scaled_gpu_config()
        assert gpu.predictor is None
        assert gpu.num_sms == 2
        assert gpu.memory.l1.size_bytes == 4 * 1024

    def test_gpu_with_predictor(self):
        pc = scaled_predictor_config()
        gpu = scaled_gpu_config(pc)
        assert gpu.predictor is pc


class TestProxy:
    def test_more_work_less_throughput(self):
        fast = hardware_proxy_rays_per_cycle(1000, 20.0, 10, incoherent=False)
        slow = hardware_proxy_rays_per_cycle(1000, 60.0, 20, incoherent=False)
        assert fast > slow

    def test_incoherent_penalty(self):
        coherent = hardware_proxy_rays_per_cycle(1000, 30.0, 15, incoherent=False)
        incoherent = hardware_proxy_rays_per_cycle(1000, 30.0, 15, incoherent=True)
        assert incoherent < coherent

    def test_validation(self):
        with pytest.raises(ValueError):
            hardware_proxy_rays_per_cycle(0, 30.0, 15, False)


class TestExperimentContext:
    @pytest.fixture(scope="class")
    def context(self):
        return ExperimentContext()

    # Use a tiny workload so this stays fast.
    PARAMS = WorkloadParams(width=12, height=12, spp=1, seed=2, detail=0.3)

    def test_scene_cached(self, context):
        a = context.scene("SP", detail=0.3)
        b = context.scene("SP", detail=0.3)
        assert a is b

    def test_bvh_cached(self, context):
        assert context.bvh("SP", detail=0.3) is context.bvh("SP", detail=0.3)

    def test_workload_cached(self, context):
        a = context.workload("SP", self.PARAMS)
        assert a is context.workload("SP", self.PARAMS)

    def test_rays_sorted_variant(self, context):
        plain = context.rays("SP", self.PARAMS)
        sorted_ = context.rays("SP", self.PARAMS, sort=True)
        assert len(plain) == len(sorted_)

    def test_simulation_cached(self, context):
        a = context.baseline("SP", self.PARAMS)
        b = context.baseline("SP", self.PARAMS)
        assert a is b

    def test_speedup_positive(self, context):
        s = context.speedup("SP", params=self.PARAMS)
        assert s > 0.0
