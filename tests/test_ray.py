"""Unit tests for repro.geometry.ray."""

import math

import numpy as np
import pytest

from repro.geometry.ray import Ray, RayBatch


class TestRay:
    def test_at(self):
        ray = Ray((1, 2, 3), (1, 0, 0))
        assert ray.at(2.0) == (3, 2, 3)

    def test_invalid_interval_raises(self):
        with pytest.raises(ValueError):
            Ray((0, 0, 0), (1, 0, 0), t_min=2.0, t_max=1.0)

    def test_zero_direction_raises(self):
        with pytest.raises(ValueError):
            Ray((0, 0, 0), (0, 0, 0))

    def test_normalized(self):
        ray = Ray((0, 0, 0), (3, 0, 4), t_max=5.0)
        unit = ray.normalized()
        assert math.isclose(
            math.sqrt(sum(d * d for d in unit.direction)), 1.0, rel_tol=1e-12
        )
        assert unit.t_max == 5.0

    def test_inv_direction(self):
        ray = Ray((0, 0, 0), (2, -4, 0.5))
        inv = ray.inv_direction()
        assert inv == (0.5, -0.25, 2.0)

    def test_inv_direction_zero_component(self):
        ray = Ray((0, 0, 0), (1, 0, 0))
        inv = ray.inv_direction()
        assert inv[1] == math.inf
        assert inv[2] == math.inf


class TestRayBatch:
    def make(self, n=4):
        origins = np.zeros((n, 3))
        directions = np.tile([1.0, 0.0, 0.0], (n, 1))
        return RayBatch(origins, directions, t_min=0.0, t_max=np.arange(1, n + 1, dtype=float))

    def test_len(self):
        assert len(self.make(5)) == 5

    def test_getitem(self):
        batch = self.make()
        ray = batch[2]
        assert isinstance(ray, Ray)
        assert ray.t_max == 3.0

    def test_iteration_order(self):
        batch = self.make(3)
        t_maxes = [r.t_max for r in batch]
        assert t_maxes == [1.0, 2.0, 3.0]

    def test_scalar_t_broadcast(self):
        batch = RayBatch(np.zeros((3, 3)), np.tile([0, 1, 0.0], (3, 1)), t_max=7.0)
        assert batch.t_max.tolist() == [7.0, 7.0, 7.0]

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            RayBatch(np.zeros((3, 3)), np.zeros((4, 3)))

    def test_invalid_interval_raises(self):
        with pytest.raises(ValueError):
            RayBatch(np.zeros((2, 3)), np.ones((2, 3)), t_min=5.0, t_max=1.0)

    def test_subset_preserves_order(self):
        batch = self.make(5)
        sub = batch.subset([3, 1])
        assert [r.t_max for r in sub] == [4.0, 2.0]

    def test_concatenate(self):
        a = self.make(2)
        b = self.make(3)
        c = RayBatch.concatenate([a, b])
        assert len(c) == 5
        assert c.t_max.tolist() == [1.0, 2.0, 1.0, 2.0, 3.0]

    def test_concatenate_empty_list(self):
        c = RayBatch.concatenate([])
        assert len(c) == 0
