"""Unit tests for the shadow-ray workload."""

import numpy as np
import pytest

from repro.rays.shadows import (
    default_light_position,
    generate_shadow_workload,
)
from repro.trace import trace_occlusion_batch


class TestShadowWorkload:
    @pytest.fixture(scope="class")
    def workload(self, small_scene, small_bvh):
        return generate_shadow_workload(small_scene, small_bvh, width=16, height=16)

    def test_one_ray_per_hit_pixel(self, workload):
        assert len(workload) == len(workload.pixel_index)
        assert len(np.unique(workload.pixel_index)) == len(workload)

    def test_directions_point_at_light(self, workload):
        light = np.asarray(workload.light)
        targets = workload.rays.origins + (
            workload.rays.directions * (workload.rays.t_max[:, None])
        )
        # Rays stop just short of the light.
        dist = np.linalg.norm(targets - light, axis=1)
        assert (dist < 0.01).all()

    def test_directions_normalized(self, workload):
        norms = np.linalg.norm(workload.rays.directions, axis=1)
        assert np.allclose(norms, 1.0)

    def test_t_max_positive(self, workload):
        assert (workload.rays.t_max >= 0.0).all()

    def test_some_pixels_shadowed_some_lit(self, small_bvh, workload):
        shadowed = trace_occlusion_batch(small_bvh, workload.rays)
        # A cluttered room with a ceiling light: both classes exist.
        assert 0.0 < shadowed.mean() < 1.0

    def test_default_light_inside_scene(self, small_scene):
        light = default_light_position(small_scene)
        assert small_scene.aabb().contains_point(light)

    def test_custom_light(self, small_scene, small_bvh):
        wl = generate_shadow_workload(
            small_scene, small_bvh, width=8, height=8, light=(4.0, 3.5, 3.0)
        )
        assert wl.light == (4.0, 3.5, 3.0)


class TestShadowValidation:
    """The shadow generator screens its rays like the AO generator does."""

    def test_validation_counters_present(self, workload_factory):
        workload = workload_factory()
        assert workload.validation is not None
        assert workload.validation.total == len(workload) + workload.validation.num_invalid

    @pytest.fixture
    def workload_factory(self, small_scene, small_bvh):
        def make(**kwargs):
            return generate_shadow_workload(
                small_scene, small_bvh, width=8, height=8, **kwargs
            )

        return make

    def test_light_on_surface_point_is_filtered(self, small_scene, small_bvh):
        # A light sitting exactly on a primary hit point yields a
        # zero-length shadow direction for that pixel; the validation
        # boundary must drop the ray (and its pixel_index slot), not
        # hand traversal a zero vector.
        from repro.rays.camera import PinholeCamera
        from repro.trace.traversal import trace_closest_batch

        camera = PinholeCamera(small_scene.camera, 8, 8)
        primary = camera.primary_rays()
        ts, tris = trace_closest_batch(small_bvh, primary)
        hit = int(np.nonzero(tris >= 0)[0][0])
        point = primary.origins[hit] + primary.directions[hit] * ts[hit]

        workload = generate_shadow_workload(
            small_scene, small_bvh, width=8, height=8,
            light=tuple(float(c) for c in point),
        )
        assert workload.validation.num_invalid >= 1
        assert hit not in workload.pixel_index
        assert len(workload.rays) == len(workload.pixel_index)
        # Everything that survived is traversal-safe.
        assert np.isfinite(workload.rays.directions).all()
        assert (np.linalg.norm(workload.rays.directions, axis=1) > 0).all()

    def test_validation_wired_through_entry_point(
        self, small_scene, small_bvh, monkeypatch
    ):
        import repro.rays.shadows as shadows_mod

        calls = []
        real = shadows_mod.validate_ray_batch

        def spy(rays, mode="filter"):
            calls.append(mode)
            return real(rays, mode)

        monkeypatch.setattr(shadows_mod, "validate_ray_batch", spy)
        generate_shadow_workload(small_scene, small_bvh, width=8, height=8)
        assert calls == ["filter"]
