"""Unit tests for the shadow-ray workload."""

import numpy as np
import pytest

from repro.rays.shadows import (
    default_light_position,
    generate_shadow_workload,
)
from repro.trace import trace_occlusion_batch


class TestShadowWorkload:
    @pytest.fixture(scope="class")
    def workload(self, small_scene, small_bvh):
        return generate_shadow_workload(small_scene, small_bvh, width=16, height=16)

    def test_one_ray_per_hit_pixel(self, workload):
        assert len(workload) == len(workload.pixel_index)
        assert len(np.unique(workload.pixel_index)) == len(workload)

    def test_directions_point_at_light(self, workload):
        light = np.asarray(workload.light)
        targets = workload.rays.origins + (
            workload.rays.directions * (workload.rays.t_max[:, None])
        )
        # Rays stop just short of the light.
        dist = np.linalg.norm(targets - light, axis=1)
        assert (dist < 0.01).all()

    def test_directions_normalized(self, workload):
        norms = np.linalg.norm(workload.rays.directions, axis=1)
        assert np.allclose(norms, 1.0)

    def test_t_max_positive(self, workload):
        assert (workload.rays.t_max >= 0.0).all()

    def test_some_pixels_shadowed_some_lit(self, small_bvh, workload):
        shadowed = trace_occlusion_batch(small_bvh, workload.rays)
        # A cluttered room with a ceiling light: both classes exist.
        assert 0.0 < shadowed.mean() < 1.0

    def test_default_light_inside_scene(self, small_scene):
        light = default_light_position(small_scene)
        assert small_scene.aabb().contains_point(light)

    def test_custom_light(self, small_scene, small_bvh):
        wl = generate_shadow_workload(
            small_scene, small_bvh, width=8, height=8, light=(4.0, 3.5, 3.0)
        )
        assert wl.light == (4.0, 3.5, 3.0)
