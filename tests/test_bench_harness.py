"""Benchmark harness tests: artifact schema, I/O, and the regression gate."""

import copy
import json
import os

import pytest

from repro.bench import (
    ACCEPTED_SCHEMAS,
    BENCH_SCHEMA,
    QUICK_PRESET,
    BenchPreset,
    compare_payloads,
    load_payload,
    run_benchmarks,
    write_payload,
)
from repro.bench.harness import check_against_baselines, summarize

#: One tiny scene, tiny image: keeps the end-to-end test fast while still
#: exercising every benchmark and both engines.
TEST_PRESET = BenchPreset(
    name="testrun",
    scenes=("SB",),
    width=6,
    height=6,
    spp=1,
    seed=1,
    detail=0.25,
    sim_rays=32,
    repeats=1,
)


@pytest.fixture(scope="module")
def payload():
    return run_benchmarks(TEST_PRESET)


class TestArtifact:
    def test_schema_and_shape(self, payload):
        assert payload["schema"] == BENCH_SCHEMA
        assert payload["name"] == "testrun"
        assert payload["scenes"] == ["SB"]
        # 3 benchmarks x 1 scene x 2 engines.
        assert len(payload["results"]) == 6
        for record in payload["results"]:
            assert record["engine"] in ("scalar", "wavefront")
            assert record["rays"] > 0
            assert record["wall_time_s"] >= 0
            assert record["node_fetches"] >= 0

    def test_speedups_derived_for_all_benchmarks(self, payload):
        speed = payload["derived"]["speedup_wavefront_over_scalar"]
        assert set(speed) == {"occlusion_trace", "closest_trace", "predictor_sim"}
        for per_scene in speed.values():
            assert set(per_scene) == {"SB"}
            assert per_scene["SB"] > 0

    def test_counters_deterministic_across_runs(self, payload):
        def key(r):
            return (r["benchmark"], r["scene"], r["engine"])

        second = run_benchmarks(TEST_PRESET)
        first = {key(r): r for r in payload["results"]}
        for record in second["results"]:
            base = first[key(record)]
            assert record["node_fetches"] == base["node_fetches"]
            assert record["tri_fetches"] == base["tri_fetches"]

    def test_json_round_trip(self, payload, tmp_path):
        path = write_payload(payload, str(tmp_path))
        assert path.endswith("BENCH_testrun.json")
        assert load_payload(path) == json.loads(json.dumps(payload))

    def test_load_rejects_foreign_schema(self, payload, tmp_path):
        bad = dict(payload, schema="other/9")
        path = write_payload(bad, str(tmp_path))
        with pytest.raises(ValueError, match="unsupported benchmark schema"):
            load_payload(path)

    def test_load_accepts_previous_schema(self, payload, tmp_path):
        # Baselines written as repro-bench/1 (before the telemetry
        # section existed) must stay readable by the regression gate.
        assert "repro-bench/1" in ACCEPTED_SCHEMAS
        old = dict(payload, schema="repro-bench/1")
        old.pop("telemetry", None)
        path = write_payload(old, str(tmp_path))
        assert load_payload(path)["schema"] == "repro-bench/1"

    def test_no_telemetry_section_when_disabled(self, payload):
        # The module fixture runs with telemetry off; the artifact must
        # not grow a telemetry section in that mode.
        assert "telemetry" not in payload

    def test_telemetry_section_when_enabled(self):
        from repro import telemetry

        with telemetry.enabled_scope():
            telemetry.reset_telemetry()
            enabled_payload = run_benchmarks(TEST_PRESET)
        section = enabled_payload["telemetry"]
        names = {c["name"] for c in section["metrics"]["counters"]}
        assert "trace.node_fetches" in names
        assert any(
            c["labels"].get("scene") == "SB"
            for c in section["metrics"]["counters"]
        )
        assert section["spans"]

    def test_summarize_mentions_speedups(self, payload):
        text = summarize(payload)
        assert "occlusion_trace" in text
        assert "testrun" in text


class TestRegressionGate:
    def test_identical_payloads_pass(self, payload):
        assert compare_payloads(payload, payload) == []

    def test_speedup_regression_fails(self, payload):
        current = copy.deepcopy(payload)
        speed = current["derived"]["speedup_wavefront_over_scalar"]
        speed["occlusion_trace"]["SB"] = (
            payload["derived"]["speedup_wavefront_over_scalar"]["occlusion_trace"]["SB"]
            * 0.5
        )
        problems = compare_payloads(current, payload, tolerance=0.2)
        assert any("speedup regressed" in p for p in problems)

    def test_small_drift_within_tolerance_passes(self, payload):
        current = copy.deepcopy(payload)
        speed = current["derived"]["speedup_wavefront_over_scalar"]
        speed["closest_trace"]["SB"] *= 0.95
        assert compare_payloads(current, payload, tolerance=0.2) == []

    def test_counter_drift_fails(self, payload):
        current = copy.deepcopy(payload)
        current["results"][0]["node_fetches"] = (
            payload["results"][0]["node_fetches"] * 2 + 100
        )
        problems = compare_payloads(current, payload, tolerance=0.2)
        assert any("drifted" in p for p in problems)

    def test_missing_record_fails(self, payload):
        current = copy.deepcopy(payload)
        current["results"] = current["results"][1:]
        problems = compare_payloads(current, payload)
        assert any("missing" in p for p in problems)

    def test_missing_baseline_reported(self, payload, tmp_path):
        problems = check_against_baselines(payload, str(tmp_path))
        assert problems and "no committed baseline" in problems[0]

    def test_check_against_committed_baseline_dir(self, payload, tmp_path):
        write_payload(payload, str(tmp_path))
        assert check_against_baselines(payload, str(tmp_path)) == []


BASELINE_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "benchmarks",
    "baselines",
)


class TestCommittedBaselines:
    """The artifacts CI gates on must stay loadable and well-formed."""

    @pytest.mark.parametrize("name", ["quick", "wavefront"])
    def test_baseline_loads(self, name):
        payload = load_payload(os.path.join(BASELINE_DIR, f"BENCH_{name}.json"))
        assert payload["schema"] in ACCEPTED_SCHEMAS
        assert payload["results"]

    def test_quick_baseline_matches_preset(self):
        payload = load_payload(os.path.join(BASELINE_DIR, "BENCH_quick.json"))
        assert payload["preset"]["scenes"] == list(QUICK_PRESET.scenes)
        assert payload["preset"]["seed"] == QUICK_PRESET.seed

    def test_full_baseline_meets_paper_target(self):
        # ISSUE acceptance criterion: >=5x rays/sec over the scalar
        # engine for batch occlusion tracing on the SP scene.
        payload = load_payload(os.path.join(BASELINE_DIR, "BENCH_wavefront.json"))
        speed = payload["derived"]["speedup_wavefront_over_scalar"]
        assert speed["occlusion_trace"]["SP"] >= 5.0
