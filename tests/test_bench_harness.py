"""Benchmark harness tests: artifact schema, I/O, and the regression gate."""

import copy
import json
import os

import pytest

from repro.bench import (
    ACCEPTED_SCHEMAS,
    BENCH_SCHEMA,
    QUICK_PRESET,
    BenchPreset,
    compare_payloads,
    load_payload,
    run_benchmarks,
    write_payload,
)
from repro.bench.harness import check_against_baselines, summarize

#: One tiny scene, tiny image: keeps the end-to-end test fast while still
#: exercising every benchmark and both engines.
TEST_PRESET = BenchPreset(
    name="testrun",
    scenes=("SB",),
    width=6,
    height=6,
    spp=1,
    seed=1,
    detail=0.25,
    sim_rays=32,
    repeats=1,
)


@pytest.fixture(scope="module")
def payload():
    return run_benchmarks(TEST_PRESET)


class TestArtifact:
    def test_schema_and_shape(self, payload):
        assert payload["schema"] == BENCH_SCHEMA
        assert payload["name"] == "testrun"
        assert payload["scenes"] == ["SB"]
        # 3 benchmarks x 1 scene x 2 engines.
        assert len(payload["results"]) == 6
        for record in payload["results"]:
            assert record["engine"] in ("scalar", "wavefront")
            assert record["rays"] > 0
            assert record["wall_time_s"] >= 0
            assert record["node_fetches"] >= 0

    def test_speedups_derived_for_all_benchmarks(self, payload):
        speed = payload["derived"]["speedup_wavefront_over_scalar"]
        assert set(speed) == {"occlusion_trace", "closest_trace", "predictor_sim"}
        for per_scene in speed.values():
            assert set(per_scene) == {"SB"}
            assert per_scene["SB"] > 0

    def test_counters_deterministic_across_runs(self, payload):
        def key(r):
            return (r["benchmark"], r["scene"], r["engine"])

        second = run_benchmarks(TEST_PRESET)
        first = {key(r): r for r in payload["results"]}
        for record in second["results"]:
            base = first[key(record)]
            assert record["node_fetches"] == base["node_fetches"]
            assert record["tri_fetches"] == base["tri_fetches"]

    def test_json_round_trip(self, payload, tmp_path):
        path = write_payload(payload, str(tmp_path))
        assert path.endswith("BENCH_testrun.json")
        assert load_payload(path) == json.loads(json.dumps(payload))

    def test_load_rejects_foreign_schema(self, payload, tmp_path):
        bad = dict(payload, schema="other/9")
        path = write_payload(bad, str(tmp_path))
        with pytest.raises(ValueError, match="unsupported benchmark schema"):
            load_payload(path)

    def test_load_accepts_previous_schema(self, payload, tmp_path):
        # Baselines written as repro-bench/1 (before the telemetry
        # section existed) must stay readable by the regression gate.
        assert "repro-bench/1" in ACCEPTED_SCHEMAS
        old = dict(payload, schema="repro-bench/1")
        old.pop("telemetry", None)
        path = write_payload(old, str(tmp_path))
        assert load_payload(path)["schema"] == "repro-bench/1"

    def test_no_telemetry_section_when_disabled(self, payload):
        # The module fixture runs with telemetry off; the artifact must
        # not grow a telemetry section in that mode.
        assert "telemetry" not in payload

    def test_telemetry_section_when_enabled(self):
        from repro import telemetry

        with telemetry.enabled_scope():
            telemetry.reset_telemetry()
            enabled_payload = run_benchmarks(TEST_PRESET)
        section = enabled_payload["telemetry"]
        names = {c["name"] for c in section["metrics"]["counters"]}
        assert "trace.node_fetches" in names
        assert any(
            c["labels"].get("scene") == "SB"
            for c in section["metrics"]["counters"]
        )
        assert section["spans"]

    def test_summarize_mentions_speedups(self, payload):
        text = summarize(payload)
        assert "occlusion_trace" in text
        assert "testrun" in text


class TestRegressionGate:
    def test_identical_payloads_pass(self, payload):
        assert compare_payloads(payload, payload) == []

    def test_speedup_regression_fails(self, payload):
        current = copy.deepcopy(payload)
        speed = current["derived"]["speedup_wavefront_over_scalar"]
        speed["occlusion_trace"]["SB"] = (
            payload["derived"]["speedup_wavefront_over_scalar"]["occlusion_trace"]["SB"]
            * 0.5
        )
        problems = compare_payloads(current, payload, tolerance=0.2)
        assert any("speedup regressed" in p for p in problems)

    def test_small_drift_within_tolerance_passes(self, payload):
        current = copy.deepcopy(payload)
        speed = current["derived"]["speedup_wavefront_over_scalar"]
        speed["closest_trace"]["SB"] *= 0.95
        assert compare_payloads(current, payload, tolerance=0.2) == []

    def test_counter_drift_fails(self, payload):
        current = copy.deepcopy(payload)
        current["results"][0]["node_fetches"] = (
            payload["results"][0]["node_fetches"] * 2 + 100
        )
        problems = compare_payloads(current, payload, tolerance=0.2)
        assert any("drifted" in p for p in problems)

    def test_missing_record_fails(self, payload):
        current = copy.deepcopy(payload)
        current["results"] = current["results"][1:]
        problems = compare_payloads(current, payload)
        assert any("missing" in p for p in problems)

    def test_missing_baseline_reported(self, payload, tmp_path):
        problems = check_against_baselines(payload, str(tmp_path))
        assert problems and "no committed baseline" in problems[0]

    def test_check_against_committed_baseline_dir(self, payload, tmp_path):
        write_payload(payload, str(tmp_path))
        assert check_against_baselines(payload, str(tmp_path)) == []


#: Build-benchmark variant of the test preset: one scene, every method,
#: both build engines, plus the refit pass.
BUILD_TEST_PRESET = BenchPreset(
    name="buildtest",
    scenes=("SB",),
    width=6,
    height=6,
    spp=1,
    seed=1,
    detail=0.25,
    sim_rays=0,
    repeats=1,
    benchmarks=("bvh_build",),
)


@pytest.fixture(scope="module")
def build_payload():
    return run_benchmarks(BUILD_TEST_PRESET)


class TestBuildArtifact:
    def test_record_matrix(self, build_payload):
        # 3 methods x 2 engines + refit x 2 engines.
        records = build_payload["results"]
        assert len(records) == 8
        benchmarks = {r["benchmark"] for r in records}
        assert benchmarks == {
            "bvh_build_sah", "bvh_build_median", "bvh_build_lbvh",
            "bvh_refit",
        }
        for record in records:
            assert record["engine"] in ("vector", "scalar")
            assert record["rays"] > 0  # triangle count
            assert record["node_fetches"] == 0

    def test_vector_records_carry_agreement_verdict(self, build_payload):
        for record in build_payload["results"]:
            if record["engine"] == "vector":
                assert record["extra"]["agrees_with_scalar"] == 1.0
            else:
                assert "agrees_with_scalar" not in record["extra"]

    def test_derived_section_shape(self, build_payload):
        section = build_payload["derived"]["bvh_build"]["SB"]
        assert section["engines_agree"] is True
        assert section["refit_speedup_vector_over_scalar"] > 0
        methods = section["methods"]
        assert set(methods) == {"sah", "median", "lbvh"}
        for row in methods.values():
            assert row["nodes"] > 0
            assert row["max_depth"] > 0
            assert row["speedup_vector_over_scalar"] > 0

    def test_tree_shape_matches_records(self, build_payload):
        # The derived section must be reconstructable from the records:
        # per method, nodes/depth/cost come from the vector record.
        section = build_payload["derived"]["bvh_build"]["SB"]
        by_key = {
            (r["benchmark"], r["engine"]): r for r in build_payload["results"]
        }
        for method, row in section["methods"].items():
            rec = by_key[(f"bvh_build_{method}", "vector")]
            assert row["nodes"] == int(rec["extra"]["nodes"])
            assert row["max_depth"] == int(rec["extra"]["max_depth"])
            assert row["sah_cost"] == rec["extra"]["sah_cost"]

    def test_summarize_mentions_build(self, build_payload):
        text = summarize(build_payload)
        assert "bvh_build SB" in text
        assert "agree=True" in text

    def test_scalar_rung_drops_vector_engine(self):
        # A degraded unit (no "wavefront" in the traversal-engine set)
        # must time the scalar builders only.
        payload = run_benchmarks(BUILD_TEST_PRESET, engines=("scalar",))
        engines = {r["engine"] for r in payload["results"]}
        assert engines == {"scalar"}
        section = payload["derived"]["bvh_build"]["SB"]
        assert "engines_agree" not in section
        assert "speedup_vector_over_scalar" not in section["methods"]["sah"]


class TestBuildRegressionGate:
    def test_identical_payloads_pass(self, build_payload):
        assert compare_payloads(build_payload, build_payload) == []

    def test_engine_disagreement_fails(self, build_payload):
        current = copy.deepcopy(build_payload)
        current["derived"]["bvh_build"]["SB"]["engines_agree"] = False
        problems = compare_payloads(current, build_payload)
        assert any("no longer match the scalar oracle" in p for p in problems)

    def test_tree_shape_drift_fails(self, build_payload):
        current = copy.deepcopy(build_payload)
        row = current["derived"]["bvh_build"]["SB"]["methods"]["sah"]
        row["nodes"] += 2
        problems = compare_payloads(current, build_payload)
        assert any("nodes changed" in p for p in problems)

    def test_sah_cost_gates_exactly(self, build_payload):
        current = copy.deepcopy(build_payload)
        row = current["derived"]["bvh_build"]["SB"]["methods"]["sah"]
        row["sah_cost"] += 1e-6
        problems = compare_payloads(current, build_payload)
        assert any("sah_cost changed" in p for p in problems)

    def test_build_speedup_floor(self, build_payload):
        current = copy.deepcopy(build_payload)
        row = current["derived"]["bvh_build"]["SB"]["methods"]["sah"]
        row["speedup_vector_over_scalar"] = 0.01
        problems = compare_payloads(current, build_payload)
        assert any("vector speedup regressed" in p for p in problems)

    def test_refit_speedup_floor(self, build_payload):
        current = copy.deepcopy(build_payload)
        current["derived"]["bvh_build"]["SB"][
            "refit_speedup_vector_over_scalar"] = 0.01
        problems = compare_payloads(current, build_payload)
        assert any("refit speedup regressed" in p for p in problems)

    def test_missing_scene_fails(self, build_payload):
        current = copy.deepcopy(build_payload)
        del current["derived"]["bvh_build"]["SB"]
        problems = compare_payloads(current, build_payload)
        assert any("scene missing" in p for p in problems)


BASELINE_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "benchmarks",
    "baselines",
)


class TestCommittedBaselines:
    """The artifacts CI gates on must stay loadable and well-formed."""

    @pytest.mark.parametrize("name", ["quick", "wavefront"])
    def test_baseline_loads(self, name):
        payload = load_payload(os.path.join(BASELINE_DIR, f"BENCH_{name}.json"))
        assert payload["schema"] in ACCEPTED_SCHEMAS
        assert payload["results"]

    def test_quick_baseline_matches_preset(self):
        payload = load_payload(os.path.join(BASELINE_DIR, "BENCH_quick.json"))
        assert payload["preset"]["scenes"] == list(QUICK_PRESET.scenes)
        assert payload["preset"]["seed"] == QUICK_PRESET.seed

    def test_full_baseline_meets_paper_target(self):
        # ISSUE acceptance criterion: >=5x rays/sec over the scalar
        # engine for batch occlusion tracing on the SP scene.
        payload = load_payload(os.path.join(BASELINE_DIR, "BENCH_wavefront.json"))
        speed = payload["derived"]["speedup_wavefront_over_scalar"]
        assert speed["occlusion_trace"]["SP"] >= 5.0

    def test_build_baseline_meets_speedup_target(self):
        # ISSUE acceptance criterion: the committed build baseline shows
        # >=3x vector-over-scalar construction speedup on the largest
        # scene (BI), with the engines agreeing on every scene.
        payload = load_payload(os.path.join(BASELINE_DIR, "BENCH_build.json"))
        section = payload["derived"]["bvh_build"]
        assert section["BI"]["methods"]["sah"][
            "speedup_vector_over_scalar"] >= 3.0
        for code, row in section.items():
            assert row["engines_agree"] is True, code
