"""Differential tests for the level-synchronous vector BVH builders.

The contract under test: for every method and every input,
``build_bvh(..., engine="vector")`` produces a :class:`FlatBVH` that is
*array-identical* to the scalar oracle's - same node numbering, same
bounds to the bit, same triangle permutation.  The scalar builders are
the specification; the vector builders are an optimization that must be
observationally invisible.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.bvh import (
    BUILD_ENGINES,
    REFIT_ENGINES,
    build_bvh,
    jitter_mesh,
    refit_bvh,
    validate_bvh,
)
from repro.bvh.vector import trees_identical
from repro.geometry.triangle import TriangleMesh
from repro.scenes import SCENE_CODES, get_scene

MAX_EXAMPLES = int(os.environ.get("HYPOTHESIS_MAX_EXAMPLES", "50"))

METHODS = ("sah", "median", "lbvh")


def random_mesh(n: int, seed: int, spread: float = 4.0) -> TriangleMesh:
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-spread, spread, (n, 3))
    v0 = centers + rng.normal(scale=0.3, size=(n, 3))
    v1 = centers + rng.normal(scale=0.3, size=(n, 3))
    v2 = centers + rng.normal(scale=0.3, size=(n, 3))
    return TriangleMesh(v0, v1, v2)


def assert_identical(mesh: TriangleMesh, method: str, **kwargs) -> None:
    vec = build_bvh(mesh, method=method, engine="vector", **kwargs)
    sca = build_bvh(mesh, method=method, engine="scalar", **kwargs)
    assert trees_identical(vec, sca), (
        f"vector {method} tree diverged from the scalar oracle "
        f"(n={len(mesh)}, kwargs={kwargs})"
    )


class TestSceneDifferential:
    """Every registry scene, every method: trees agree array-for-array."""

    @pytest.mark.parametrize("code", SCENE_CODES)
    @pytest.mark.parametrize("method", METHODS)
    def test_scene_trees_identical(self, code, method):
        mesh = get_scene(code, detail=0.3).mesh
        assert_identical(mesh, method)

    @pytest.mark.parametrize("method", METHODS)
    def test_vector_tree_validates(self, small_scene, method):
        bvh = build_bvh(small_scene.mesh, method=method, engine="vector")
        validate_bvh(bvh)


class TestPropertyDifferential:
    @given(
        n=st.integers(min_value=1, max_value=200),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        method=st.sampled_from(METHODS),
    )
    @settings(max_examples=MAX_EXAMPLES)
    def test_random_meshes_identical(self, n, seed, method):
        assert_identical(random_mesh(n, seed), method)

    @given(
        n=st.integers(min_value=1, max_value=64),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        method=st.sampled_from(METHODS),
    )
    @settings(max_examples=MAX_EXAMPLES)
    def test_refit_engines_identical(self, n, seed, method):
        bvh = build_bvh(random_mesh(n, seed), method=method)
        moved = jitter_mesh(bvh.mesh, magnitude=0.1, seed=seed % 97)
        vec = refit_bvh(bvh, moved, engine="vector")
        sca = refit_bvh(bvh, moved, engine="scalar")
        assert np.array_equal(vec.lo, sca.lo)
        assert np.array_equal(vec.hi, sca.hi)


class TestEdgeCases:
    @pytest.mark.parametrize("method", METHODS)
    def test_single_triangle(self, method):
        assert_identical(random_mesh(1, 7), method)

    @pytest.mark.parametrize("method", METHODS)
    def test_coincident_centroids(self, method):
        # Every centroid identical: the median/SAH splits degenerate to
        # the halve-anyway fallback, LBVH to the object median; the
        # vector planner must take the same fallbacks.
        tri = random_mesh(1, 3)
        n = 37
        mesh = TriangleMesh(
            np.repeat(tri.v0, n, axis=0),
            np.repeat(tri.v1, n, axis=0),
            np.repeat(tri.v2, n, axis=0),
        )
        assert_identical(mesh, method)

    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("max_leaf_size", [1, 8, 16])
    def test_leaf_size_variants(self, method, max_leaf_size):
        assert_identical(random_mesh(150, 11), method,
                         max_leaf_size=max_leaf_size)

    @pytest.mark.parametrize("num_bins", [2, 64])
    def test_sah_bin_count_variants(self, num_bins):
        assert_identical(random_mesh(200, 13), "sah", num_bins=num_bins)

    def test_sah_cost_knobs(self):
        assert_identical(
            random_mesh(180, 17), "sah",
            traversal_cost=2.5, intersect_cost=0.5,
        )

    @pytest.mark.parametrize("bits", [4, 21])
    def test_lbvh_morton_bits_variants(self, bits):
        # bits=21 exercises the full 63-bit Morton range (uint64 keys
        # must never round-trip through float); bits=4 forces heavy
        # code collisions and the median fallback.
        assert_identical(random_mesh(160, 19), "lbvh", bits=bits)

    def test_flat_axis_cloud(self):
        # All centroids on one plane: one axis has zero extent, so the
        # per-axis SAH scale must mask it rather than divide by zero.
        mesh = random_mesh(90, 23)
        v0, v1, v2 = mesh.v0.copy(), mesh.v1.copy(), mesh.v2.copy()
        shift = ((v0 + v1 + v2) / 3.0)[:, 2]
        for v in (v0, v1, v2):
            v[:, 2] -= shift
        flat = TriangleMesh(v0, v1, v2)
        for method in METHODS:
            assert_identical(flat, method)


class TestEngineSelection:
    def test_engine_tuple_order(self):
        # First entry is the default build_bvh engine.
        assert BUILD_ENGINES == ("vector", "scalar")
        assert REFIT_ENGINES == ("vector", "scalar")

    def test_unknown_engine_raises(self, tiny_mesh):
        with pytest.raises(ValueError, match="build engine"):
            build_bvh(tiny_mesh, engine="gpu")

    def test_unknown_method_raises(self, tiny_mesh):
        with pytest.raises(ValueError, match="build method"):
            build_bvh(tiny_mesh, method="kdtree")

    def test_empty_mesh_raises(self):
        empty = TriangleMesh(
            np.empty((0, 3)), np.empty((0, 3)), np.empty((0, 3))
        )
        with pytest.raises(ValueError, match="empty mesh"):
            build_bvh(empty, engine="vector")


class TestLevelSchedules:
    """The vectorized FlatBVH derived views match loop references."""

    def test_depths_match_loop_reference(self, small_bvh):
        expected = np.zeros(small_bvh.num_nodes, dtype=np.int64)
        for node in range(1, small_bvh.num_nodes):
            expected[node] = expected[small_bvh.parent[node]] + 1
        assert np.array_equal(small_bvh.depths(), expected)

    def test_levels_partition_nodes_by_depth(self, small_bvh):
        depths = small_bvh.depths()
        levels = small_bvh.levels()
        assert len(levels) == int(depths.max()) + 1
        seen = np.concatenate(levels)
        assert sorted(seen.tolist()) == list(range(small_bvh.num_nodes))
        for d, nodes in enumerate(levels):
            assert np.all(depths[nodes] == d)
            # Sorted within a level (stable argsort over node index).
            assert np.all(np.diff(nodes) > 0)

    def test_leaf_of_triangle_matches_loop_reference(self, small_bvh):
        expected = np.full(small_bvh.num_triangles, -1, dtype=np.int64)
        for leaf in small_bvh.leaf_nodes():
            start = int(small_bvh.first_tri[leaf])
            for tri in range(start, start + int(small_bvh.tri_count[leaf])):
                expected[tri] = leaf
        assert np.array_equal(small_bvh.leaf_of_triangle(), expected)


class TestBuildTelemetry:
    def test_build_levels_counter(self, tiny_mesh):
        with telemetry.enabled_scope():
            telemetry.reset_telemetry()
            build_bvh(tiny_mesh, method="median", engine="vector")
            reg = telemetry.get_registry()
            assert reg.total("bvh.build_levels") > 0
            assert reg.value(
                "bvh.build_levels", method="median", engine="vector"
            ) > 0

    def test_scalar_build_reports_no_levels(self, tiny_mesh):
        # The scalar builders have no frontier; the counter must not
        # invent one for them.
        with telemetry.enabled_scope():
            telemetry.reset_telemetry()
            build_bvh(tiny_mesh, method="median", engine="scalar")
            assert telemetry.get_registry().total("bvh.build_levels") == 0

    def test_refit_nodes_counter(self, small_bvh):
        with telemetry.enabled_scope():
            telemetry.reset_telemetry()
            refit_bvh(small_bvh, small_bvh.mesh, engine="vector")
            reg = telemetry.get_registry()
            assert reg.value(
                "bvh.refit_nodes", engine="vector"
            ) == small_bvh.num_nodes

    def test_counters_silent_when_disabled(self, tiny_mesh):
        assert not telemetry.enabled()
        build_bvh(tiny_mesh, engine="vector")
        assert telemetry.get_registry().total("bvh.build_levels") == 0
