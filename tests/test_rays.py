"""Unit tests for cameras, sampling, AO workload generation and sorting."""


import numpy as np
import pytest

from repro.geometry.vec import vec_dot, vec_length
from repro.rays import (
    PinholeCamera,
    cosine_hemisphere_batch,
    cosine_sample_hemisphere,
    generate_ao_workload,
    morton_sort_rays,
    orthonormal_basis,
)
from repro.rays.aogen import AO_LENGTH_MAX_FRACTION, AO_LENGTH_MIN_FRACTION
from repro.rays.reflection import generate_reflection_rays
from repro.scenes.scene import CameraSpec


class TestCamera:
    def make(self, width=8, height=6):
        spec = CameraSpec(eye=(0, 0, 0), look_at=(0, 0, -1), fov_degrees=90.0)
        return PinholeCamera(spec, width, height)

    def test_one_ray_per_pixel(self):
        camera = self.make()
        assert len(camera.primary_rays()) == 48

    def test_directions_normalized(self):
        rays = self.make().primary_rays()
        norms = np.linalg.norm(rays.directions, axis=1)
        assert np.allclose(norms, 1.0)

    def test_central_ray_points_forward(self):
        camera = self.make(3, 3)
        rays = camera.primary_rays()
        center = rays[4]  # middle pixel of a 3x3 grid
        assert center.direction[2] < -0.99

    def test_pixel_of_ray(self):
        camera = self.make(8, 6)
        assert camera.pixel_of_ray(0) == (0, 0)
        assert camera.pixel_of_ray(9) == (1, 1)
        with pytest.raises(IndexError):
            camera.pixel_of_ray(48)

    def test_degenerate_eye_raises(self):
        with pytest.raises(ValueError):
            PinholeCamera(CameraSpec((0, 0, 0), (0, 0, 0)), 4, 4)

    def test_up_parallel_to_view_raises(self):
        with pytest.raises(ValueError):
            PinholeCamera(CameraSpec((0, 0, 0), (0, 1, 0), up=(0, 1, 0)), 4, 4)

    def test_invalid_dimensions_raise(self):
        with pytest.raises(ValueError):
            PinholeCamera(CameraSpec((0, 0, 0), (0, 0, -1)), 0, 4)


class TestSampling:
    def test_orthonormal_basis(self):
        for normal in [(0, 0, 1), (0, 0, -1), (1, 0, 0), (0.3, -0.5, 0.8)]:
            t, b = orthonormal_basis(normal)
            assert abs(vec_dot(t, b)) < 1e-9
            assert abs(vec_length(t) - 1.0) < 1e-9
            assert abs(vec_length(b) - 1.0) < 1e-9
            n = np.asarray(normal) / np.linalg.norm(normal)
            assert abs(vec_dot(t, n)) < 1e-9

    def test_cosine_sample_in_hemisphere(self):
        rng = np.random.default_rng(0)
        normal = (0.0, 1.0, 0.0)
        for _ in range(100):
            d = cosine_sample_hemisphere(normal, rng.random(), rng.random())
            assert vec_dot(d, normal) >= -1e-9
            assert abs(vec_length(d) - 1.0) < 1e-9

    def test_cosine_batch_in_hemisphere(self):
        rng = np.random.default_rng(1)
        normals = rng.normal(size=(500, 3))
        normals /= np.linalg.norm(normals, axis=1, keepdims=True)
        dirs = cosine_hemisphere_batch(normals, rng)
        dots = np.einsum("ij,ij->i", dirs, normals)
        assert (dots >= -1e-9).all()
        assert np.allclose(np.linalg.norm(dirs, axis=1), 1.0)

    def test_cosine_distribution_mean(self):
        # For cosine-weighted sampling, E[cos(theta)] = 2/3.
        rng = np.random.default_rng(2)
        normals = np.tile([0.0, 0.0, 1.0], (20000, 1))
        dirs = cosine_hemisphere_batch(normals, rng)
        assert abs(dirs[:, 2].mean() - 2 / 3) < 0.01


class TestAOWorkload:
    def test_counts(self, small_workload):
        wl = small_workload
        assert wl.num_primary == 16 * 16
        assert 0 < wl.num_primary_hits <= wl.num_primary
        assert len(wl) == wl.num_primary_hits * wl.spp

    def test_ray_lengths_follow_paper_fractions(self, small_scene, small_workload):
        diag = small_scene.aabb().diagonal_length()
        lengths = small_workload.rays.t_max
        assert (lengths >= AO_LENGTH_MIN_FRACTION * diag - 1e-9).all()
        assert (lengths <= AO_LENGTH_MAX_FRACTION * diag + 1e-9).all()

    def test_directions_unit(self, small_workload):
        norms = np.linalg.norm(small_workload.rays.directions, axis=1)
        assert np.allclose(norms, 1.0)

    def test_pixel_index_shape(self, small_workload):
        assert small_workload.pixel_index.shape == (len(small_workload),)
        assert (small_workload.pixel_index < 16 * 16).all()

    def test_deterministic(self, small_scene, small_bvh):
        a = generate_ao_workload(small_scene, small_bvh, 8, 8, 2, seed=5)
        b = generate_ao_workload(small_scene, small_bvh, 8, 8, 2, seed=5)
        assert np.allclose(a.rays.origins, b.rays.origins)
        assert np.allclose(a.rays.directions, b.rays.directions)

    def test_seed_changes_rays(self, small_scene, small_bvh):
        a = generate_ao_workload(small_scene, small_bvh, 8, 8, 2, seed=5)
        b = generate_ao_workload(small_scene, small_bvh, 8, 8, 2, seed=6)
        assert not np.allclose(a.rays.directions, b.rays.directions)

    def test_invalid_spp_raises(self, small_scene, small_bvh):
        with pytest.raises(ValueError):
            generate_ao_workload(small_scene, small_bvh, 8, 8, 0)


class TestMortonSort:
    def test_is_permutation(self, small_workload):
        perm = morton_sort_rays(small_workload.rays)
        assert sorted(perm.tolist()) == list(range(len(small_workload)))

    def test_sorted_origins_more_local(self, small_workload):
        rays = small_workload.rays
        perm = morton_sort_rays(rays)
        sorted_rays = rays.subset(perm)

        def adjacency_distance(batch):
            deltas = np.diff(batch.origins, axis=0)
            return np.linalg.norm(deltas, axis=1).mean()

        assert adjacency_distance(sorted_rays) <= adjacency_distance(rays)

    def test_deterministic(self, small_workload):
        a = morton_sort_rays(small_workload.rays)
        b = morton_sort_rays(small_workload.rays)
        assert np.array_equal(a, b)


class TestReflectionRays:
    def test_generation(self, small_scene, small_bvh):
        rays = generate_reflection_rays(small_scene, small_bvh, 8, 8)
        assert len(rays) > 0
        assert np.allclose(np.linalg.norm(rays.directions, axis=1), 1.0)

    def test_reflections_leave_surface(self, small_scene, small_bvh):
        # Reflected rays must point away from the surface they left:
        # tracing a tiny step along them should not re-hit immediately.
        rays = generate_reflection_rays(small_scene, small_bvh, 8, 8)
        assert np.isfinite(rays.origins).all()


class TestReflectionValidation:
    """The reflection generator screens its rays like the AO generator."""

    def test_rays_are_traversal_safe(self, small_scene, small_bvh):
        rays = generate_reflection_rays(small_scene, small_bvh, 8, 8)
        assert np.isfinite(rays.origins).all()
        assert np.isfinite(rays.directions).all()
        assert (np.linalg.norm(rays.directions, axis=1) > 0).all()

    def test_validation_wired_through_entry_point(
        self, small_scene, small_bvh, monkeypatch
    ):
        import repro.rays.reflection as reflection_mod

        calls = []
        real = reflection_mod.validate_ray_batch

        def spy(rays, mode="filter"):
            calls.append(mode)
            return real(rays, mode)

        monkeypatch.setattr(reflection_mod, "validate_ray_batch", spy)
        generate_reflection_rays(small_scene, small_bvh, 8, 8)
        assert calls == ["filter"]
