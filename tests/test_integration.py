"""Integration tests: full pipelines across modules.

These exercise the same paths the benchmark harness uses, at reduced
sizes, and assert the *directional* results the paper reports (the
benchmarks reproduce the magnitudes).
"""

import numpy as np
import pytest

from repro.analysis.experiments import ExperimentContext, WorkloadParams
from repro.core import (
    OracleKind,
    PredictorConfig,
    run_limit_study,
    simulate_predictor,
)
from repro.energy import EnergyModel
from repro.gpu import GPUConfig, simulate_workload
from repro.render import render_ao, write_ppm

PC = PredictorConfig(
    origin_bits=4, direction_bits=3, go_up_level=2, nodes_per_entry=2, extra_warps=4
)


@pytest.fixture(scope="module")
def context():
    return ExperimentContext()


PARAMS = WorkloadParams(width=32, height=32, spp=4, seed=1, detail=0.6)


class TestEndToEndPredictor:
    def test_functional_and_timing_sims_agree_on_rates(self, context):
        bvh = context.bvh("SP", PARAMS.detail)
        rays = context.rays("SP", PARAMS)
        functional = simulate_predictor(bvh, rays, PC)
        timing = simulate_workload(
            bvh, rays, GPUConfig(num_sms=1, predictor=PC)
        )
        # Same mechanism, different update timing: rates must be close.
        assert abs(functional.predicted_rate - timing.predicted_rate) < 0.15
        assert abs(functional.verified_rate - timing.verified_rate) < 0.10
        assert functional.hit_rate == pytest.approx(timing.hit_rate)

    def test_predictor_reduces_memory_accesses(self, context):
        base = context.baseline("SP", PARAMS)
        pred = context.predicted("SP", PC, PARAMS)
        assert pred.total_accesses < base.total_accesses

    def test_predictor_speeds_up_dense_scene(self, context):
        assert context.speedup("LR", PC, PARAMS) > 1.0

    def test_sorted_rays_benefit_less(self, context):
        unsorted = context.speedup("LR", PC, PARAMS)
        sorted_ = context.speedup("LR", PC, PARAMS, sort=True)
        assert sorted_ < unsorted * 1.05  # allow small noise margin

    def test_repacking_orders_as_paper(self, context):
        """Figure 15: Repack+extra >= Repack >= Default (scaled shapes)."""
        base = context.baseline("LR", PARAMS)
        default = context.predicted(
            "LR", PC.with_overrides(repack=False, extra_warps=0), PARAMS
        )
        repack4 = context.predicted("LR", PC, PARAMS)
        assert base.cycles / repack4.cycles > base.cycles / default.cycles


class TestLimitStudyIntegration:
    def test_oracles_bound_proposal_on_real_scene(self, context):
        bvh = context.bvh("SP", PARAMS.detail)
        rays = context.rays("SP", PARAMS).subset(np.arange(1500))
        study = run_limit_study(bvh, rays, PC)
        proposed = study[OracleKind.PROPOSED]
        ol = study[OracleKind.ORACLE_LOOKUP]
        ot = study[OracleKind.ORACLE_TRAINING]
        assert proposed.verified_rate <= ol.verified_rate <= ot.verified_rate + 1e-9
        assert ol.memory_savings > proposed.memory_savings


class TestEnergyIntegration:
    def test_predictor_saves_energy_when_faster(self, context):
        """Table 4: shorter execution outweighs the predictor's overhead."""
        base = context.baseline("LR", PARAMS)
        pred = context.predicted("LR", PC, PARAMS)
        model = EnergyModel(PC)
        base_energy = model.breakdown(base).total
        pred_energy = model.breakdown(pred).total
        if pred.cycles < base.cycles:
            assert pred_energy < base_energy


class TestMultiSM:
    def test_more_sms_fewer_prediction_opportunities(self, context):
        """Section 6.2.5: per-SM tables see fewer rays each."""
        bvh = context.bvh("SP", PARAMS.detail)
        rays = context.rays("SP", PARAMS)
        few = simulate_workload(bvh, rays, GPUConfig(num_sms=1, predictor=PC))
        many = simulate_workload(bvh, rays, GPUConfig(num_sms=6, predictor=PC))
        assert many.verified_rate <= few.verified_rate + 0.02


class TestRenderIntegration:
    def test_ao_render_and_save(self, context, tmp_path):
        scene = context.scene("FR", 0.6)
        bvh = context.bvh("FR", 0.6)
        result = render_ao(scene, bvh, width=24, height=24, spp=2, seed=2)
        out = tmp_path / "ao.ppm"
        write_ppm(out, result.image)
        assert out.stat().st_size > 24 * 24 * 3
        assert 0.0 < result.image.mean() < 1.0
