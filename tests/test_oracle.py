"""Unit tests for the limit-study oracles (Section 6.3)."""

import pytest

from repro.core import OracleKind, PredictorConfig, run_limit_study
from repro.core.oracle import ancestor_closure


CFG = PredictorConfig(origin_bits=3, direction_bits=2, go_up_level=2)


class TestAncestorClosure:
    def test_empty(self, small_bvh):
        assert ancestor_closure(small_bvh, []) == set()

    def test_contains_root_and_leaf(self, small_bvh):
        leaf = int(small_bvh.leaf_nodes()[0])
        closure = ancestor_closure(small_bvh, [leaf])
        assert leaf in closure
        assert 0 in closure

    def test_size_is_depth_plus_one(self, small_bvh):
        leaf = int(small_bvh.leaf_nodes()[0])
        depth = int(small_bvh.depths()[leaf])
        assert len(ancestor_closure(small_bvh, [leaf])) == depth + 1

    def test_union_of_leaves(self, small_bvh):
        leaves = small_bvh.leaf_nodes()[:2]
        combined = ancestor_closure(small_bvh, leaves)
        separate = ancestor_closure(small_bvh, [leaves[0]]) | ancestor_closure(
            small_bvh, [leaves[1]]
        )
        assert combined == separate


@pytest.fixture(scope="module")
def study(small_bvh, small_workload):
    return run_limit_study(small_bvh, small_workload.rays, CFG, in_flight=64)


class TestLimitStudy:
    def test_all_kinds_present(self, study):
        assert set(study) == set(OracleKind)

    def test_oracles_never_mispredict(self, study):
        for kind in (
            OracleKind.ORACLE_LOOKUP,
            OracleKind.ORACLE_TRAINING,
            OracleKind.ORACLE_UPDATES,
        ):
            result = study[kind]
            assert result.predicted == result.verified
            assert result.misprediction_node_fetches == 0

    def test_verified_bounded_by_hits(self, study):
        for result in study.values():
            assert result.verified <= result.hits

    def test_oracle_hierarchy(self, study):
        """Each relaxation can only verify more rays (Figure 2's shape)."""
        proposed = study[OracleKind.PROPOSED].verified
        ol = study[OracleKind.ORACLE_LOOKUP].verified
        ot = study[OracleKind.ORACLE_TRAINING].verified
        ou = study[OracleKind.ORACLE_UPDATES].verified
        assert proposed <= ol
        assert ol <= ot
        assert ot <= ou

    def test_oracle_memory_savings_exceed_proposed(self, study):
        assert (
            study[OracleKind.ORACLE_LOOKUP].memory_savings
            >= study[OracleKind.PROPOSED].memory_savings
        )

    def test_oracle_savings_positive(self, study):
        assert study[OracleKind.ORACLE_UPDATES].memory_savings > 0.0

    def test_hit_counts_agree_across_kinds(self, study):
        hits = {kind: r.hits for kind, r in study.items()}
        assert len(set(hits.values())) == 1  # ground truth is shared

    def test_subset_of_kinds(self, small_bvh, small_workload):
        partial = run_limit_study(
            small_bvh,
            small_workload.rays,
            CFG,
            kinds=[OracleKind.PROPOSED, OracleKind.ORACLE_LOOKUP],
        )
        assert set(partial) == {OracleKind.PROPOSED, OracleKind.ORACLE_LOOKUP}
