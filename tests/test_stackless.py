"""Unit tests for the restart-trail stackless traversal."""

import numpy as np

from repro.bvh import build_bvh
from repro.geometry.ray import Ray
from repro.geometry.triangle import TriangleMesh
from repro.trace import TraversalStats, occlusion_any_hit
from repro.trace.stackless import occlusion_any_hit_stackless


def random_rays(bvh, n=80, seed=14):
    rng = np.random.default_rng(seed)
    lo = np.asarray(bvh.lo[0])
    hi = np.asarray(bvh.hi[0])
    span = hi - lo
    rays = []
    for _ in range(n):
        origin = lo - 0.2 * span + rng.random(3) * 1.4 * span
        direction = rng.normal(size=3)
        direction /= np.linalg.norm(direction)
        t_max = float(rng.uniform(0.3, 3.0) * np.linalg.norm(span))
        rays.append(Ray(tuple(origin), tuple(direction), 0.0, t_max))
    return rays


class TestEquivalence:
    def test_matches_stack_traversal(self, small_bvh):
        for i, ray in enumerate(random_rays(small_bvh)):
            expected = occlusion_any_hit(small_bvh, ray)
            assert occlusion_any_hit_stackless(small_bvh, ray) == expected, i

    def test_matches_on_workload_rays(self, small_bvh, small_workload):
        for i in range(0, len(small_workload), 7):
            ray = small_workload.rays[i]
            assert occlusion_any_hit_stackless(small_bvh, ray) == occlusion_any_hit(
                small_bvh, ray
            ), i

    def test_single_leaf_tree(self):
        mesh = TriangleMesh(
            np.array([[0.0, 0.0, 0.0]]),
            np.array([[1.0, 0.0, 0.0]]),
            np.array([[0.0, 1.0, 0.0]]),
        )
        bvh = build_bvh(mesh)
        hit = Ray((0.2, 0.2, -1.0), (0.0, 0.0, 1.0), 0.0, 5.0)
        miss = Ray((5.0, 5.0, -1.0), (0.0, 0.0, 1.0), 0.0, 5.0)
        assert occlusion_any_hit_stackless(bvh, hit)
        assert not occlusion_any_hit_stackless(bvh, miss)

    def test_missing_root_early_out(self, small_bvh):
        ray = Ray((1000.0, 1000.0, 1000.0), (1.0, 0.0, 0.0), 0.0, 1.0)
        stats = TraversalStats()
        assert not occlusion_any_hit_stackless(small_bvh, ray, stats=stats)
        assert stats.node_fetches == 0


class TestAccessTradeoff:
    def test_trail_never_fetches_fewer_nodes(self, small_bvh):
        """Restart descents re-fetch path nodes: the hardware tradeoff."""
        stack_stats = TraversalStats()
        trail_stats = TraversalStats()
        for ray in random_rays(small_bvh, n=60, seed=3):
            occlusion_any_hit(small_bvh, ray, stats=stack_stats)
            occlusion_any_hit_stackless(small_bvh, ray, stats=trail_stats)
        assert trail_stats.node_fetches >= stack_stats.node_fetches
        # Triangle work is identical in aggregate: same leaves visited
        # until the first hit... leaf order may differ only in ties, so
        # allow a tiny tolerance.
        assert abs(trail_stats.tri_tests - stack_stats.tri_tests) <= (
            0.05 * max(1, stack_stats.tri_tests)
        )

    def test_hits_counted(self, small_bvh, small_workload):
        stats = TraversalStats()
        hits = 0
        for i in range(0, len(small_workload), 11):
            if occlusion_any_hit_stackless(
                small_bvh, small_workload.rays[i], stats=stats
            ):
                hits += 1
        assert stats.hits == hits
