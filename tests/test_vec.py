"""Unit tests for repro.geometry.vec."""

import math

import pytest

from repro.geometry.vec import (
    vec_add,
    vec_cross,
    vec_dot,
    vec_length,
    vec_normalize,
    vec_scale,
    vec_sub,
)


class TestBasicOps:
    def test_add(self):
        assert vec_add((1, 2, 3), (4, 5, 6)) == (5, 7, 9)

    def test_sub(self):
        assert vec_sub((4, 5, 6), (1, 2, 3)) == (3, 3, 3)

    def test_scale(self):
        assert vec_scale((1, -2, 3), 2.0) == (2, -4, 6)

    def test_scale_by_zero(self):
        assert vec_scale((1, 2, 3), 0.0) == (0, 0, 0)

    def test_dot_orthogonal(self):
        assert vec_dot((1, 0, 0), (0, 1, 0)) == 0.0

    def test_dot_parallel(self):
        assert vec_dot((2, 0, 0), (3, 0, 0)) == 6.0

    def test_accepts_lists(self):
        assert vec_add([1, 2, 3], [1, 1, 1]) == (2, 3, 4)


class TestCross:
    def test_right_handed(self):
        assert vec_cross((1, 0, 0), (0, 1, 0)) == (0, 0, 1)

    def test_anticommutative(self):
        a, b = (1.0, 2.0, 3.0), (-2.0, 0.5, 4.0)
        ab = vec_cross(a, b)
        ba = vec_cross(b, a)
        assert ab == tuple(-x for x in ba)

    def test_self_cross_is_zero(self):
        assert vec_cross((3, -1, 2), (3, -1, 2)) == (0, 0, 0)

    def test_orthogonal_to_inputs(self):
        a, b = (1.0, 2.0, 3.0), (4.0, -1.0, 0.5)
        c = vec_cross(a, b)
        assert abs(vec_dot(a, c)) < 1e-12
        assert abs(vec_dot(b, c)) < 1e-12


class TestLengthAndNormalize:
    def test_length_unit_axes(self):
        for axis in [(1, 0, 0), (0, 1, 0), (0, 0, 1)]:
            assert vec_length(axis) == 1.0

    def test_length_pythagoras(self):
        assert vec_length((3, 4, 0)) == 5.0

    def test_normalize_produces_unit_vector(self):
        n = vec_normalize((3, 4, 12))
        assert math.isclose(vec_length(n), 1.0, rel_tol=1e-12)

    def test_normalize_preserves_direction(self):
        n = vec_normalize((0, 0, 5))
        assert n == (0, 0, 1)

    def test_normalize_zero_raises(self):
        with pytest.raises(ValueError):
            vec_normalize((0, 0, 0))
