"""The public API surface: every exported name exists and is importable."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.geometry",
    "repro.scenes",
    "repro.bvh",
    "repro.rays",
    "repro.trace",
    "repro.core",
    "repro.gpu",
    "repro.energy",
    "repro.render",
    "repro.analysis",
]


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_names_resolve(self, package):
        module = importlib.import_module(package)
        assert hasattr(module, "__all__"), f"{package} lacks __all__"
        for name in module.__all__:
            assert hasattr(module, name), f"{package}.{name} missing"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_module_docstring(self, package):
        module = importlib.import_module(package)
        assert module.__doc__ and len(module.__doc__) > 40

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_headline_api_one_liner(self):
        """The README's import line must keep working."""
        from repro import (  # noqa: F401
            GPUConfig,
            PredictorConfig,
            build_bvh,
            generate_ao_workload,
            get_scene,
            simulate_workload,
        )

    def test_no_unexpected_export_collisions(self):
        """Top-level names must map to the same objects as the submodules."""
        import repro
        from repro.core.predictor import PredictorConfig
        from repro.gpu.config import GPUConfig

        assert repro.PredictorConfig is PredictorConfig
        assert repro.GPUConfig is GPUConfig
