"""Differential tests: the vectorized RT-unit vs the scalar oracle.

The vectorized engine (:mod:`repro.gpu.vec_rt_unit`) is a performance
rewrite, not a remodel: it must produce the *same* :class:`RTUnitResult`
as the scalar stepper — cycle counts, every fetch/test counter, and the
cache/DRAM statistics — for any configuration.  These tests pin that
contract on the shared test scene across config variants, plus a
Hypothesis property over small warp shapes, mirroring the
``test_vectable.py``-vs-``table.py`` pattern used for the predictor
pipeline.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import PredictorConfig
from repro.gpu import (
    GPUConfig,
    MemoryHierarchy,
    RT_ENGINES,
    make_rt_unit,
    simulate_workload,
)
from repro.gpu.config import CacheConfig, MemoryConfig, RTUnitConfig

PC = PredictorConfig(origin_bits=3, direction_bits=2, go_up_level=2)


def run_engine(engine, bvh, rays, predictor_config=None, **gpu_overrides):
    config = GPUConfig(num_sms=1, predictor=predictor_config, **gpu_overrides)
    memory = MemoryHierarchy(config.memory)
    unit = make_rt_unit(engine, bvh, config, memory)
    return unit.run(rays)


def run_both(bvh, rays, predictor_config=None, **gpu_overrides):
    return tuple(
        run_engine(engine, bvh, rays, predictor_config, **gpu_overrides)
        for engine in ("scalar", "vector")
    )


class TestEngineEquivalence:
    """Scalar and vector engines agree on the full result dataclass."""

    def test_baseline_identical(self, small_bvh, small_workload):
        scalar, vector = run_both(small_bvh, small_workload.rays)
        assert scalar == vector

    def test_predictor_identical(self, small_bvh, small_workload):
        scalar, vector = run_both(small_bvh, small_workload.rays, PC)
        assert scalar == vector

    def test_predictor_no_repack_identical(self, small_bvh, small_workload):
        scalar, vector = run_both(
            small_bvh, small_workload.rays, PC.with_overrides(repack=False)
        )
        assert scalar == vector

    def test_warp_barrier_identical(self, small_bvh, small_workload):
        scalar, vector = run_both(
            small_bvh, small_workload.rays,
            rt_unit=RTUnitConfig(warp_barrier=True),
        )
        assert scalar == vector

    @pytest.mark.parametrize("warp_size", [8, 32, 128])
    def test_warp_sizes_identical(self, small_bvh, small_workload, warp_size):
        scalar, vector = run_both(
            small_bvh, small_workload.rays, PC,
            rt_unit=RTUnitConfig(warp_size=warp_size),
        )
        assert scalar == vector

    def test_tiny_caches_identical(self, small_bvh, small_workload):
        # Thrashing caches exercise the DRAM/bank-timing paths hard.
        memory = MemoryConfig(
            l1=CacheConfig(size_bytes=512, ways=2),
            l2=CacheConfig(size_bytes=2048, ways=2),
        )
        scalar, vector = run_both(
            small_bvh, small_workload.rays, PC, memory=memory
        )
        assert scalar == vector

    def test_tiny_stack_spills_identical(self, small_bvh, small_workload):
        scalar, vector = run_both(
            small_bvh, small_workload.rays,
            rt_unit=RTUnitConfig(stack_entries=4),
        )
        assert scalar == vector
        assert scalar.stack_spills > 0

    @given(
        warp_size=st.integers(min_value=2, max_value=24),
        max_warps=st.integers(min_value=1, max_value=3),
        warp_barrier=st.booleans(),
        n_rays=st.integers(min_value=1, max_value=48),
    )
    def test_property_small_warp_configs(
        self, small_bvh, small_workload, warp_size, max_warps, warp_barrier,
        n_rays,
    ):
        rays = small_workload.rays.subset(range(n_rays))
        scalar, vector = run_both(
            small_bvh, rays, PC,
            rt_unit=RTUnitConfig(
                warp_size=warp_size,
                max_warps=max_warps,
                warp_barrier=warp_barrier,
            ),
        )
        assert scalar == vector


class TestDeterminism:
    """Same seed + config ⇒ bit-identical runs, per engine and across."""

    @pytest.mark.parametrize("engine", RT_ENGINES)
    def test_repeat_runs_identical(self, small_bvh, small_workload, engine):
        a = run_engine(engine, small_bvh, small_workload.rays, PC)
        b = run_engine(engine, small_bvh, small_workload.rays, PC)
        assert a == b

    def test_simulate_workload_engines_agree(self, small_bvh, small_workload):
        config = GPUConfig(num_sms=2, predictor=PC)
        vec = simulate_workload(
            small_bvh, small_workload.rays, config, engine="vector"
        )
        sca = simulate_workload(
            small_bvh, small_workload.rays, config, engine="scalar"
        )
        assert vec.per_sm == sca.per_sm
        assert vec.cycles == sca.cycles
        assert vec.dram_row_hits == sca.dram_row_hits


class TestSharding:
    def test_sharded_matches_serial_private_l2(self, small_bvh, small_workload):
        config = GPUConfig(num_sms=2, shared_l2=False)
        serial = simulate_workload(small_bvh, small_workload.rays, config)
        sharded = simulate_workload(
            small_bvh, small_workload.rays, config, sm_jobs=2
        )
        assert serial.per_sm == sharded.per_sm

    def test_sharding_rejects_shared_l2(self, small_bvh, small_workload):
        with pytest.raises(ValueError):
            simulate_workload(
                small_bvh, small_workload.rays,
                GPUConfig(num_sms=2, shared_l2=True), sm_jobs=2,
            )

    def test_unknown_engine_rejected(self, small_bvh, small_workload):
        with pytest.raises(ValueError):
            simulate_workload(
                small_bvh, small_workload.rays, GPUConfig(num_sms=1),
                engine="simd",
            )
