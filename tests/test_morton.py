"""Unit tests for Morton encoding."""

import numpy as np
import pytest

from repro.geometry.morton import morton_codes, morton_decode_3d, morton_encode_3d


class TestEncodeDecode:
    def test_zero(self):
        assert morton_encode_3d(0, 0, 0) == 0

    def test_unit_axes(self):
        assert morton_encode_3d(1, 0, 0) == 0b001
        assert morton_encode_3d(0, 1, 0) == 0b010
        assert morton_encode_3d(0, 0, 1) == 0b100

    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            x, y, z = (int(v) for v in rng.integers(0, 2**21, 3))
            assert morton_decode_3d(morton_encode_3d(x, y, z)) == (x, y, z)

    def test_monotone_in_each_axis(self):
        # Increasing one coordinate increases the code.
        assert morton_encode_3d(2, 3, 4) < morton_encode_3d(3, 3, 4)
        assert morton_encode_3d(2, 3, 4) < morton_encode_3d(2, 4, 4)
        assert morton_encode_3d(2, 3, 4) < morton_encode_3d(2, 3, 5)


class TestMortonCodes:
    def test_corners(self):
        pts = np.array([[0.0, 0.0, 0.0], [1.0, 1.0, 1.0]])
        codes = morton_codes(pts, np.zeros(3), np.ones(3), bits=4)
        assert codes[0] == 0
        assert codes[1] == morton_encode_3d(15, 15, 15)

    def test_locality(self):
        # Nearby points get closer codes than distant points, on average.
        pts = np.array([[0.1, 0.1, 0.1], [0.12, 0.1, 0.1], [0.9, 0.9, 0.9]])
        codes = morton_codes(pts, np.zeros(3), np.ones(3), bits=10).astype(np.int64)
        assert abs(codes[0] - codes[1]) < abs(codes[0] - codes[2])

    def test_clamps_out_of_range(self):
        pts = np.array([[-1.0, 2.0, 0.5]])
        codes = morton_codes(pts, np.zeros(3), np.ones(3), bits=4)
        # Quantization scales by 2^bits - 1, so 0.5 maps to cell 7.
        expected = morton_encode_3d(0, 15, 7)
        assert codes[0] == expected

    def test_degenerate_extent(self):
        pts = np.array([[0.5, 0.5, 0.5]])
        codes = morton_codes(pts, np.zeros(3), np.array([1.0, 0.0, 1.0]), bits=4)
        assert codes.shape == (1,)

    def test_bits_validation(self):
        pts = np.zeros((1, 3))
        with pytest.raises(ValueError):
            morton_codes(pts, np.zeros(3), np.ones(3), bits=0)
        with pytest.raises(ValueError):
            morton_codes(pts, np.zeros(3), np.ones(3), bits=22)
