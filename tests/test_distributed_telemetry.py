"""Distributed telemetry: merge semantics, sharded sweeps, the ledger.

Pins the contracts docs/OBSERVABILITY.md documents for cross-process
aggregation: worker snapshots merge into the parent registry with
label-preserving counter addition and raw-bucket histogram union; a
sharded ``--jobs 2`` sweep's merged metrics match the serial run's;
telemetry on/off never changes benchmark results; the disabled off
path activates zero hooks; and the run ledger / two-run comparison
built on those artifacts flags injected regressions.
"""

import json

import pytest

from repro import telemetry
from repro.bench.harness import BenchPreset, run_benchmarks, write_payload
from repro.errors import TelemetryAggregationError
from repro.resilience.sweep import SimulatePreset, run_simulation_sweep
from repro.telemetry import distributed
from repro.telemetry.ledger import (
    LedgerError,
    build_ledger,
    compare_runs,
    counter_deltas,
    ledger_entry,
    render_counter_deltas,
    render_trends,
)
from repro.telemetry.metrics import MetricError, Registry
from repro.telemetry.profiling import SamplingProfiler

#: Two tiny scenes so sharding across 2 workers is non-trivial.
PAR_PRESET = BenchPreset(
    name="disttest",
    scenes=("SB", "CK"),
    width=6,
    height=6,
    spp=1,
    seed=1,
    detail=0.25,
    sim_rays=32,
    repeats=1,
)

SIM_PRESET = SimulatePreset(
    name="disttest",
    scenes=("SB", "CK"),
    width=8,
    height=8,
    spp=1,
    detail=0.25,
    sim_rays=64,
)

#: Wall-clock-derived fields that legitimately differ between runs.
TIMING_KEYS = frozenset(
    {"wall_time_s", "rays_per_sec", "speedup_wavefront_over_scalar",
     "total_backoff_s"}
)


def strip_timing(obj):
    if isinstance(obj, dict):
        return {
            key: strip_timing(value)
            for key, value in obj.items()
            if key not in TIMING_KEYS
        }
    if isinstance(obj, list):
        return [strip_timing(item) for item in obj]
    return obj


@pytest.fixture(autouse=True)
def clean_telemetry():
    telemetry.disable()
    telemetry.reset_telemetry()
    yield
    telemetry.disable()
    telemetry.reset_telemetry()


def _counter_map(snapshot):
    """``{(name, labels...): value}`` over a registry snapshot."""
    return {
        (c["name"], tuple(sorted(c["labels"].items()))): c["value"]
        for c in snapshot["counters"]
    }


def _histogram_map(snapshot):
    return {
        (h["name"], tuple(sorted(h["labels"].items()))): h
        for h in snapshot["histograms"]
    }


class TestMergeSemantics:
    def test_counters_add_label_wise(self):
        reg = Registry()
        reg.counter("rays", scene="SB").inc(3)
        reg.counter("rays", scene="CK").inc(10)
        worker = {
            "counters": [
                {"name": "rays", "labels": {"scene": "SB"}, "value": 4},
                {"name": "rays", "labels": {"scene": "SP"}, "value": 7},
            ],
            "gauges": [],
            "histograms": [],
        }
        distributed.merge_metrics(reg, worker)
        merged = _counter_map(reg.snapshot())
        assert merged[("rays", (("scene", "SB"),))] == 7
        assert merged[("rays", (("scene", "CK"),))] == 10
        assert merged[("rays", (("scene", "SP"),))] == 7

    def test_gauges_last_write_wins(self):
        reg = Registry()
        reg.gauge("cycles").set(100)
        worker = {
            "counters": [],
            "gauges": [{"name": "cycles", "labels": {}, "value": 250.0}],
            "histograms": [],
        }
        distributed.merge_metrics(reg, worker)
        assert reg.snapshot()["gauges"][0]["value"] == 250.0

    def test_histograms_union_raw_buckets(self):
        reg = Registry()
        hist = reg.histogram("lat", buckets=(1.0, 2.0, 4.0))
        hist.observe(0.5)
        hist.observe(3.0)
        worker_reg = Registry()
        whist = worker_reg.histogram("lat", buckets=(1.0, 2.0, 4.0))
        whist.observe(1.5)
        whist.observe(10.0)
        distributed.merge_metrics(reg, worker_reg.snapshot())
        merged = reg.snapshot()["histograms"][0]
        assert merged["count"] == 4
        assert merged["sum"] == pytest.approx(15.0)
        assert merged["min"] == 0.5
        assert merged["max"] == 10.0
        # Cumulative buckets over {0.5, 1.5, 3.0, 10.0}.
        by_le = {b["le"]: b["count"] for b in merged["buckets"]}
        assert by_le[1.0] == 1
        assert by_le[2.0] == 2
        assert by_le[4.0] == 3
        assert by_le["inf"] == 4

    def test_histogram_edge_mismatch_rejected(self):
        reg = Registry()
        reg.histogram("lat", buckets=(1.0, 2.0)).observe(0.5)
        worker_reg = Registry()
        worker_reg.histogram("lat", buckets=(1.0, 2.0, 4.0)).observe(0.5)
        with pytest.raises(MetricError):
            distributed.merge_metrics(reg, worker_reg.snapshot())

    def test_label_collision_across_kinds_rejected(self):
        reg = Registry()
        reg.counter("x").inc()
        worker = {
            "counters": [],
            "gauges": [{"name": "x", "labels": {}, "value": 1.0}],
            "histograms": [],
        }
        with pytest.raises(MetricError):
            distributed.merge_metrics(reg, worker)

    def test_absorbed_snapshot_equals_label_wise_sum(self):
        """Parent registry after absorbing == label-wise sum of workers."""
        telemetry.enable(reset=True)
        snapshots = []
        for scene, rays in (("SB", 3), ("CK", 5)):
            worker_reg = Registry()
            worker_reg.counter("rays", scene=scene).inc(rays)
            worker_reg.counter("rays", scene="shared").inc(1)
            snapshots.append({
                "schema": distributed.SNAPSHOT_SCHEMA,
                "pid": 1234,
                "unit": scene,
                "metrics": worker_reg.snapshot(),
                "events": [],
                "dropped_events": 0,
                "phases": {},
            })
        for snapshot in snapshots:
            assert distributed.absorb_snapshot(snapshot)
        merged = _counter_map(telemetry.get_registry().snapshot())
        expected = {}
        for snapshot in snapshots:
            for key, value in _counter_map(snapshot["metrics"]).items():
                expected[key] = expected.get(key, 0) + value
        assert merged == expected
        assert len(telemetry.worker_snapshots()) == 2

    def test_absorb_rejects_unknown_schema(self):
        telemetry.enable(reset=True)
        with pytest.raises(MetricError):
            distributed.absorb_snapshot({"schema": "bogus/9", "metrics": {}})

    def test_absorb_none_is_noop(self):
        assert distributed.absorb_snapshot(None) is False


class TestShardedSweeps:
    def test_sharded_metrics_match_serial(self):
        telemetry.enable(reset=True)
        serial = run_benchmarks(PAR_PRESET, jobs=1)
        telemetry.enable(reset=True)
        sharded = run_benchmarks(PAR_PRESET, jobs=2)
        assert serial["telemetry"]["metrics"] == sharded["telemetry"]["metrics"]
        # The sharded run's telemetry came from worker processes.
        workers = sharded["telemetry"]["workers"]
        assert {w["unit"] for w in workers} == {"SB", "CK"}

    def test_results_bit_identical_telemetry_on_off(self):
        off = run_benchmarks(PAR_PRESET, jobs=2)
        telemetry.enable(reset=True)
        on = run_benchmarks(PAR_PRESET, jobs=2)
        assert "telemetry" not in off
        on = dict(on)
        on.pop("telemetry")
        assert strip_timing(off) == strip_timing(on)

    def test_stitched_trace_covers_worker_pids(self):
        telemetry.enable(reset=True)
        run_benchmarks(PAR_PRESET, jobs=2)
        events = distributed.stitched_chrome_trace()
        pids = {e["pid"] for e in events}
        worker_pids = {s["pid"] for s in telemetry.worker_snapshots()}
        assert worker_pids, "workers shipped no snapshots"
        assert worker_pids <= pids
        # Every worker row leads with a process_name metadata record.
        meta = [e for e in events if e.get("ph") == "M"]
        assert {e["pid"] for e in meta} == pids

    def test_disabled_aggregation_fails_loudly_when_sharded(self):
        telemetry.enable(reset=True)
        with pytest.raises(TelemetryAggregationError):
            run_benchmarks(PAR_PRESET, jobs=2, aggregate_telemetry=False)

    def test_disabled_aggregation_fine_when_serial_or_untelemetered(self):
        run_benchmarks(PAR_PRESET, jobs=2, aggregate_telemetry=False)
        telemetry.enable(reset=True)
        run_benchmarks(PAR_PRESET, jobs=1, aggregate_telemetry=False)

    def test_simulate_sharded_metrics_match_serial(self):
        telemetry.enable(reset=True)
        serial = run_simulation_sweep(SIM_PRESET, jobs=1)
        telemetry.enable(reset=True)
        sharded = run_simulation_sweep(SIM_PRESET, jobs=2)
        assert serial["telemetry"]["metrics"] == sharded["telemetry"]["metrics"]
        assert strip_timing(serial["results"]) == strip_timing(
            sharded["results"]
        )


class TestOffPathOverhead:
    def test_disabled_run_activates_zero_hooks(self):
        """With telemetry off, the new introspection hooks never fire."""
        assert not telemetry.enabled()
        run_benchmarks(PAR_PRESET, jobs=1)
        run_simulation_sweep(SIM_PRESET, jobs=1)
        assert telemetry.hook_activations() == 0

    def test_enabled_run_activates_hooks(self):
        telemetry.enable(reset=True)
        run_benchmarks(PAR_PRESET, jobs=1)
        assert telemetry.hook_activations() > 0


class TestProfilerHardening:
    def test_with_block_stops_sampler_on_exception(self):
        profiler = SamplingProfiler(interval_s=0.001)
        with pytest.raises(RuntimeError, match="workload"):
            with profiler:
                assert profiler._thread is not None
                raise RuntimeError("workload failed")
        assert profiler._thread is None

    def test_with_block_stops_sampler_on_success(self):
        with SamplingProfiler(interval_s=0.001) as profiler:
            assert profiler._thread is not None
        assert profiler._thread is None


class TestLedger:
    def _write_artifacts(self, tmp_path):
        telemetry.enable(reset=True)
        payload = run_benchmarks(PAR_PRESET, jobs=2)
        write_payload(payload, str(tmp_path))
        return payload

    def test_build_and_render(self, tmp_path):
        self._write_artifacts(tmp_path)
        ledger = build_ledger([str(tmp_path)])
        assert ledger["schema"] == "repro-ledger/1"
        (entry,) = ledger["entries"]
        assert entry["kind"] == "bench"
        assert entry["has_telemetry"]
        assert len(entry["worker_pids"]) >= 1
        assert entry["counters"]["predictor.rays"] > 0
        rendered = render_trends(ledger)
        assert "verified_rate" in rendered
        assert "SB" in rendered

    def test_entry_from_simulate_artifact(self, tmp_path):
        telemetry.enable(reset=True)
        payload = run_simulation_sweep(SIM_PRESET, jobs=1)
        path = tmp_path / "SIM_disttest.json"
        path.write_text(json.dumps(payload))
        entry = ledger_entry(str(path))
        assert entry["kind"] == "simulate"
        assert set(entry["scene_rows"]) == {"SB", "CK"}
        assert "verified_rate" in entry["scene_rows"]["SB"]

    def test_counter_deltas_and_regression_gate(self, tmp_path):
        payload = self._write_artifacts(tmp_path)
        # Identical runs: no counter deltas, gate passes.
        assert not compare_runs(payload, payload)
        rows = counter_deltas(payload, payload)
        assert rows and all(old == new for _, _, old, new in rows)
        assert "no differences" in render_counter_deltas(rows)
        # Injected regression: halve every speedup, bump a counter.
        regressed = json.loads(json.dumps(payload))
        speed = regressed["derived"]["speedup_wavefront_over_scalar"]
        for scenes in speed.values():
            for code in scenes:
                scenes[code] *= 0.5
        regressed["telemetry"]["metrics"]["counters"][0]["value"] += 11
        problems = compare_runs(payload, regressed)
        assert problems
        assert any("regressed" in p for p in problems)
        changed = [
            r for r in counter_deltas(payload, regressed) if r[2] != r[3]
        ]
        assert len(changed) == 1
        assert changed[0][3] - changed[0][2] == 11

    def test_unknown_inputs_rejected(self, tmp_path):
        with pytest.raises(LedgerError):
            build_ledger([str(tmp_path / "missing")])
        bogus = tmp_path / "BENCH_x.json"
        bogus.write_text(json.dumps({"schema": "other/1"}))
        with pytest.raises(LedgerError):
            ledger_entry(str(bogus))
        with pytest.raises(LedgerError):
            build_ledger([str(tmp_path)])
