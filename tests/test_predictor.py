"""Unit tests for RayPredictor and PredictorConfig."""

import pytest

from repro.core import PredictorConfig, RayPredictor


class TestConfig:
    def test_defaults_match_table3(self):
        config = PredictorConfig()
        assert config.num_entries == 1024
        assert config.ways == 4
        assert config.nodes_per_entry == 1
        assert config.hash_function == "grid_spherical"
        assert config.origin_bits == 5
        assert config.direction_bits == 3
        assert config.go_up_level == 3
        assert config.ports == 4
        assert config.lookup_latency == 1
        assert config.repack is True

    def test_hash_bits(self):
        assert PredictorConfig(origin_bits=5).hash_bits == 15
        assert PredictorConfig(origin_bits=3).hash_bits == 9

    def test_with_overrides(self):
        config = PredictorConfig().with_overrides(go_up_level=1, ways=8)
        assert config.go_up_level == 1
        assert config.ways == 8
        assert config.num_entries == 1024  # untouched

    def test_frozen(self):
        with pytest.raises(Exception):
            PredictorConfig().go_up_level = 5


class TestPredictor:
    @pytest.fixture()
    def predictor(self, small_bvh):
        return RayPredictor(small_bvh, PredictorConfig(go_up_level=2))

    def test_untrained_predicts_nothing(self, predictor):
        assert predictor.predict(123) is None

    def test_train_then_predict(self, predictor, small_bvh):
        tri = 0
        h = 42
        stored = predictor.train(h, tri)
        assert predictor.predict(h) == [stored]

    def test_trained_node_is_goup_ancestor(self, predictor, small_bvh):
        tri = 5
        leaf = int(small_bvh.leaf_of_triangle()[tri])
        expected = small_bvh.ancestor(leaf, 2)
        assert predictor.trained_node_for(tri) == expected

    def test_goup_zero_stores_leaf(self, small_bvh):
        predictor = RayPredictor(small_bvh, PredictorConfig(go_up_level=0))
        tri = 3
        leaf = int(small_bvh.leaf_of_triangle()[tri])
        assert predictor.trained_node_for(tri) == leaf

    def test_goup_huge_stores_root(self, small_bvh):
        predictor = RayPredictor(small_bvh, PredictorConfig(go_up_level=100))
        assert predictor.trained_node_for(0) == 0

    def test_hash_ray_in_range(self, predictor):
        h = predictor.hash_ray((1.0, 1.0, 1.0), (0.0, 1.0, 0.0))
        assert 0 <= h < (1 << predictor.config.hash_bits)

    def test_hash_batch_matches_scalar(self, predictor, small_workload):
        rays = small_workload.rays
        batch = predictor.hash_batch(rays.origins, rays.directions)
        ray = rays[0]
        assert int(batch[0]) == predictor.hash_ray(ray.origin, ray.direction)

    def test_reset_clears_table(self, predictor):
        predictor.train(7, 0)
        predictor.reset()
        assert predictor.predict(7) is None

    def test_two_point_hasher_selected(self, small_bvh):
        predictor = RayPredictor(
            small_bvh, PredictorConfig(hash_function="two_point")
        )
        assert type(predictor.hasher).__name__ == "TwoPointHash"
