"""Unit tests for the while-while traversal kernels (Algorithm 1).

Correctness is checked against brute-force intersection over all
triangles - the ground truth the BVH must never disagree with.
"""

import math

import numpy as np

from repro.bvh import build_bvh
from repro.geometry.intersect import ray_triangle_intersect
from repro.geometry.ray import Ray
from repro.trace import (
    TraversalStats,
    closest_hit,
    occlusion_all_hit_leaves,
    occlusion_any_hit,
    occlusion_any_hit_tri,
    occlusion_from_nodes,
    trace_closest_batch,
    trace_occlusion_batch,
)


def brute_force_any_hit(mesh, ray: Ray) -> bool:
    for i in range(len(mesh)):
        t = ray_triangle_intersect(
            ray.origin[0], ray.origin[1], ray.origin[2],
            ray.direction[0], ray.direction[1], ray.direction[2],
            ray.t_min, ray.t_max,
            tuple(mesh.v0[i]), tuple(mesh.v1[i]), tuple(mesh.v2[i]),
        )
        if t is not None:
            return True
    return False


def brute_force_closest(mesh, ray: Ray):
    best_t, best_i = math.inf, -1
    for i in range(len(mesh)):
        t = ray_triangle_intersect(
            ray.origin[0], ray.origin[1], ray.origin[2],
            ray.direction[0], ray.direction[1], ray.direction[2],
            ray.t_min, ray.t_max,
            tuple(mesh.v0[i]), tuple(mesh.v1[i]), tuple(mesh.v2[i]),
        )
        if t is not None and t < best_t:
            best_t, best_i = t, i
    return best_t, best_i


def random_rays(bvh, n=60, seed=4):
    rng = np.random.default_rng(seed)
    aabb_lo = np.asarray(bvh.lo[0])
    aabb_hi = np.asarray(bvh.hi[0])
    span = aabb_hi - aabb_lo
    rays = []
    for _ in range(n):
        origin = aabb_lo - 0.2 * span + rng.random(3) * 1.4 * span
        direction = rng.normal(size=3)
        direction /= np.linalg.norm(direction)
        t_max = float(rng.uniform(0.5, 3.0) * np.linalg.norm(span))
        rays.append(Ray(tuple(origin), tuple(direction), 0.0, t_max))
    return rays


class TestOcclusionCorrectness:
    def test_matches_brute_force(self, small_bvh):
        for i, ray in enumerate(random_rays(small_bvh)):
            expected = brute_force_any_hit(small_bvh.mesh, ray)
            assert occlusion_any_hit(small_bvh, ray) == expected, f"ray {i}"

    def test_same_result_across_builders(self, small_scene):
        bvhs = {m: build_bvh(small_scene.mesh, method=m) for m in ("sah", "median", "lbvh")}
        for ray in random_rays(bvhs["sah"], n=30, seed=9):
            results = {m: occlusion_any_hit(b, ray) for m, b in bvhs.items()}
            assert len(set(results.values())) == 1, results

    def test_returned_triangle_actually_hits(self, small_bvh):
        mesh = small_bvh.mesh
        for ray in random_rays(small_bvh, n=40, seed=13):
            tri = occlusion_any_hit_tri(small_bvh, ray)
            if tri >= 0:
                t = ray_triangle_intersect(
                    ray.origin[0], ray.origin[1], ray.origin[2],
                    ray.direction[0], ray.direction[1], ray.direction[2],
                    ray.t_min, ray.t_max,
                    tuple(mesh.v0[tri]), tuple(mesh.v1[tri]), tuple(mesh.v2[tri]),
                )
                assert t is not None

    def test_short_ray_misses(self, small_bvh):
        # Zero-length interval cannot hit anything.
        ray = Ray((4, 2, 3), (1, 0, 0), 0.0, 1e-12)
        assert not occlusion_any_hit(small_bvh, ray)

    def test_ray_outside_scene_misses(self, small_bvh):
        ray = Ray((100, 100, 100), (1, 0, 0), 0.0, 5.0)
        assert not occlusion_any_hit(small_bvh, ray)


class TestClosestHit:
    def test_matches_brute_force(self, small_bvh):
        for i, ray in enumerate(random_rays(small_bvh, seed=21)):
            expected_t, _ = brute_force_closest(small_bvh.mesh, ray)
            t, tri = closest_hit(small_bvh, ray)
            if expected_t == math.inf:
                assert tri == -1, f"ray {i}"
            else:
                assert math.isclose(t, expected_t, rel_tol=1e-9), f"ray {i}"

    def test_miss_returns_inf(self, small_bvh):
        t, tri = closest_hit(small_bvh, Ray((100, 100, 100), (1, 0, 0)))
        assert t == math.inf and tri == -1

    def test_closest_at_most_any_hit_t(self, small_bvh):
        mesh = small_bvh.mesh
        for ray in random_rays(small_bvh, n=30, seed=30):
            t_closest, tri_c = closest_hit(small_bvh, ray)
            tri_any = occlusion_any_hit_tri(small_bvh, ray)
            assert (tri_c >= 0) == (tri_any >= 0)
            if tri_any >= 0:
                t_any = ray_triangle_intersect(
                    ray.origin[0], ray.origin[1], ray.origin[2],
                    ray.direction[0], ray.direction[1], ray.direction[2],
                    ray.t_min, ray.t_max,
                    tuple(mesh.v0[tri_any]), tuple(mesh.v1[tri_any]),
                    tuple(mesh.v2[tri_any]),
                )
                assert t_closest <= t_any + 1e-9


class TestStatsCounters:
    def test_counters_accumulate(self, small_bvh):
        stats = TraversalStats()
        rays = random_rays(small_bvh, n=10, seed=2)
        for ray in rays:
            occlusion_any_hit(small_bvh, ray, stats=stats)
        assert stats.rays == 10
        assert stats.node_fetches > 0
        assert stats.box_tests >= 2 * stats.node_fetches
        assert stats.total_accesses == stats.node_fetches + stats.tri_fetches

    def test_trace_recording(self, small_bvh):
        stats = TraversalStats()
        ray = random_rays(small_bvh, n=1, seed=3)[0]
        occlusion_any_hit(small_bvh, ray, stats=stats, record_trace=True)
        assert len(stats.trace) == stats.total_accesses
        kinds = {kind for kind, _ in stats.trace}
        assert kinds <= {"node", "tri"}

    def test_no_trace_by_default(self, small_bvh):
        stats = TraversalStats()
        occlusion_any_hit(small_bvh, random_rays(small_bvh, n=1)[0], stats=stats)
        assert stats.trace == []

    def test_merge(self):
        a = TraversalStats(node_fetches=2, tri_fetches=1, rays=1, hits=1)
        b = TraversalStats(node_fetches=3, tri_fetches=0, rays=2, hits=0)
        a.merge(b)
        assert a.node_fetches == 5
        assert a.rays == 3
        assert a.hits == 1

    def test_per_ray(self):
        s = TraversalStats(node_fetches=10, tri_fetches=4, rays=2, hits=1)
        p = s.per_ray()
        assert p.node_fetches == 5.0
        assert p.hits == 0.5


class TestFromNodes:
    def test_verification_from_hit_leaf_succeeds(self, small_bvh):
        for ray in random_rays(small_bvh, n=40, seed=8):
            leaves = occlusion_all_hit_leaves(small_bvh, ray)
            if leaves:
                leaf = next(iter(leaves))
                assert occlusion_from_nodes(small_bvh, ray, [leaf])

    def test_verification_from_ancestor_succeeds(self, small_bvh):
        for ray in random_rays(small_bvh, n=40, seed=8):
            leaves = occlusion_all_hit_leaves(small_bvh, ray)
            if leaves:
                leaf = next(iter(leaves))
                ancestor = small_bvh.ancestor(leaf, 2)
                assert occlusion_from_nodes(small_bvh, ray, [ancestor])

    def test_verification_from_root_equals_full(self, small_bvh):
        for ray in random_rays(small_bvh, n=20, seed=18):
            assert occlusion_from_nodes(small_bvh, ray, [0]) == occlusion_any_hit(
                small_bvh, ray
            )

    def test_wrong_subtree_fails_for_missing_rays(self, small_bvh):
        miss_ray = Ray((100, 100, 100), (0, 1, 0), 0.0, 1.0)
        some_leaf = int(small_bvh.leaf_nodes()[0])
        assert not occlusion_from_nodes(small_bvh, miss_ray, [some_leaf])

    def test_empty_start_nodes_is_miss(self, small_bvh):
        ray = random_rays(small_bvh, n=1)[0]
        assert not occlusion_from_nodes(small_bvh, ray, [])


class TestAllHitLeaves:
    def test_leaves_are_leaves(self, small_bvh):
        for ray in random_rays(small_bvh, n=20, seed=40):
            for leaf in occlusion_all_hit_leaves(small_bvh, ray):
                assert small_bvh.is_leaf(leaf)

    def test_consistent_with_any_hit(self, small_bvh):
        for ray in random_rays(small_bvh, n=40, seed=41):
            leaves = occlusion_all_hit_leaves(small_bvh, ray)
            assert bool(leaves) == occlusion_any_hit(small_bvh, ray)

    def test_hit_leaf_contains_any_hit_triangle(self, small_bvh):
        mapping = small_bvh.leaf_of_triangle()
        for ray in random_rays(small_bvh, n=40, seed=42):
            tri = occlusion_any_hit_tri(small_bvh, ray)
            if tri >= 0:
                assert mapping[tri] in occlusion_all_hit_leaves(small_bvh, ray)


class TestBatchWrappers:
    def test_occlusion_batch(self, small_bvh, small_workload):
        stats = TraversalStats()
        hits = trace_occlusion_batch(small_bvh, small_workload.rays, stats=stats)
        assert hits.shape == (len(small_workload),)
        assert stats.rays == len(small_workload)
        assert stats.hits == int(hits.sum())

    def test_closest_batch(self, small_bvh, small_workload):
        ts, tris = trace_closest_batch(small_bvh, small_workload.rays)
        assert (np.isfinite(ts) == (tris >= 0)).all()
