"""Unit tests for the Figure 11 correlation machinery."""

import pytest

from repro.analysis.correlate import (
    CorrelationPoint,
    hardware_proxy_rays_per_cycle,
    run_correlation,
)
from repro.analysis.experiments import ExperimentContext


class TestRunCorrelation:
    @pytest.fixture(scope="class")
    def outcome(self):
        context = ExperimentContext()
        # Two scenes at reduced detail keep this a unit-test-sized run.
        for code in ("FR", "LE"):
            context.scene(code, detail=0.4)
            # Pre-seed the cache at the reduced detail so run_correlation
            # (which uses detail=1.0 lookups) stays small: build directly.
        return run_correlation(context, ["FR", "LE"], width=16, height=16)

    def test_point_count(self, outcome):
        points, _ = outcome
        # 2 scenes x up to 2 ray types (reflection may be empty).
        assert 2 <= len(points) <= 4
        assert all(isinstance(p, CorrelationPoint) for p in points)

    def test_throughputs_positive(self, outcome):
        points, _ = outcome
        for p in points:
            assert p.simulated_rays_per_cycle > 0
            assert p.proxy_rays_per_cycle > 0

    def test_correlation_in_range(self, outcome):
        _, correlation = outcome
        assert -1.0 <= correlation <= 1.0


class TestProxyModel:
    def test_scale_invariance_of_ordering(self):
        # Doubling all work inputs preserves the throughput ordering.
        light = hardware_proxy_rays_per_cycle(1_000, 20.0, 10, False)
        heavy = hardware_proxy_rays_per_cycle(1_000_000, 40.0, 25, False)
        assert light > heavy

    def test_triangle_count_matters_weakly(self):
        few = hardware_proxy_rays_per_cycle(1_000, 30.0, 15, False)
        many = hardware_proxy_rays_per_cycle(100_000, 30.0, 15, False)
        assert many < few
        assert many > 0.5 * few  # weak (logarithmic) dependence
