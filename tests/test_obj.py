"""Unit tests for the OBJ loader/writer."""

import numpy as np
import pytest

from repro.scenes.obj import load_obj, save_obj
from repro.scenes.scene import CameraSpec, Scene


OBJ_SIMPLE = """\
# comment
v 0 0 0
v 1 0 0
v 0 1 0
v 1 1 0
f 1 2 3
f 2 4 3
"""

OBJ_QUAD_FACE = """\
v 0 0 0
v 1 0 0
v 1 1 0
v 0 1 0
f 1 2 3 4
"""

OBJ_SLASHES = """\
v 0 0 0
v 1 0 0
v 0 1 0
vt 0 0
vn 0 0 1
f 1/1/1 2/1/1 3/1/1
"""

OBJ_NEGATIVE = """\
v 0 0 0
v 1 0 0
v 0 1 0
f -3 -2 -1
"""


class TestLoadObj:
    def test_simple(self, tmp_path):
        path = tmp_path / "a.obj"
        path.write_text(OBJ_SIMPLE)
        scene = load_obj(path)
        assert scene.num_triangles == 2

    def test_quad_fan_triangulation(self, tmp_path):
        path = tmp_path / "q.obj"
        path.write_text(OBJ_QUAD_FACE)
        scene = load_obj(path)
        assert scene.num_triangles == 2

    def test_slash_indices(self, tmp_path):
        path = tmp_path / "s.obj"
        path.write_text(OBJ_SLASHES)
        assert load_obj(path).num_triangles == 1

    def test_negative_indices(self, tmp_path):
        path = tmp_path / "n.obj"
        path.write_text(OBJ_NEGATIVE)
        scene = load_obj(path)
        assert scene.num_triangles == 1
        assert np.allclose(scene.mesh.v1[0], [1, 0, 0])

    def test_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "castle.obj"
        path.write_text(OBJ_SIMPLE)
        assert load_obj(path).name == "castle"

    def test_empty_raises(self, tmp_path):
        path = tmp_path / "e.obj"
        path.write_text("v 0 0 0\n")
        with pytest.raises(ValueError):
            load_obj(path)

    def test_out_of_range_index_raises(self, tmp_path):
        path = tmp_path / "bad.obj"
        path.write_text("v 0 0 0\nf 1 2 3\n")
        with pytest.raises(ValueError):
            load_obj(path)

    def test_camera_looks_at_center(self, tmp_path):
        path = tmp_path / "c.obj"
        path.write_text(OBJ_SIMPLE)
        scene = load_obj(path)
        center = scene.aabb().center()
        assert np.allclose(scene.camera.look_at, center)


class TestRoundTrip:
    def test_save_and_reload(self, tmp_path, tiny_mesh):
        scene = Scene("t", "T", tiny_mesh, CameraSpec((0, 0, 5), (0, 0, 0)))
        path = tmp_path / "round.obj"
        save_obj(scene, path)
        loaded = load_obj(path)
        assert loaded.num_triangles == 2
        assert np.allclose(
            sorted(loaded.mesh.v0.ravel()), sorted(tiny_mesh.v0.ravel())
        )
