"""Unit tests for the OBJ loader/writer."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import SceneLoadError
from repro.scenes.obj import load_obj, load_obj_with_report, save_obj
from repro.scenes.scene import CameraSpec, Scene


OBJ_SIMPLE = """\
# comment
v 0 0 0
v 1 0 0
v 0 1 0
v 1 1 0
f 1 2 3
f 2 4 3
"""

OBJ_QUAD_FACE = """\
v 0 0 0
v 1 0 0
v 1 1 0
v 0 1 0
f 1 2 3 4
"""

OBJ_SLASHES = """\
v 0 0 0
v 1 0 0
v 0 1 0
vt 0 0
vn 0 0 1
f 1/1/1 2/1/1 3/1/1
"""

OBJ_NEGATIVE = """\
v 0 0 0
v 1 0 0
v 0 1 0
f -3 -2 -1
"""


class TestLoadObj:
    def test_simple(self, tmp_path):
        path = tmp_path / "a.obj"
        path.write_text(OBJ_SIMPLE)
        scene = load_obj(path)
        assert scene.num_triangles == 2

    def test_quad_fan_triangulation(self, tmp_path):
        path = tmp_path / "q.obj"
        path.write_text(OBJ_QUAD_FACE)
        scene = load_obj(path)
        assert scene.num_triangles == 2

    def test_slash_indices(self, tmp_path):
        path = tmp_path / "s.obj"
        path.write_text(OBJ_SLASHES)
        assert load_obj(path).num_triangles == 1

    def test_negative_indices(self, tmp_path):
        path = tmp_path / "n.obj"
        path.write_text(OBJ_NEGATIVE)
        scene = load_obj(path)
        assert scene.num_triangles == 1
        assert np.allclose(scene.mesh.v1[0], [1, 0, 0])

    def test_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "castle.obj"
        path.write_text(OBJ_SIMPLE)
        assert load_obj(path).name == "castle"

    def test_empty_raises(self, tmp_path):
        path = tmp_path / "e.obj"
        path.write_text("v 0 0 0\n")
        with pytest.raises(ValueError):
            load_obj(path)

    def test_out_of_range_index_raises(self, tmp_path):
        path = tmp_path / "bad.obj"
        path.write_text("v 0 0 0\nf 1 2 3\n")
        with pytest.raises(ValueError):
            load_obj(path)

    def test_camera_looks_at_center(self, tmp_path):
        path = tmp_path / "c.obj"
        path.write_text(OBJ_SIMPLE)
        scene = load_obj(path)
        center = scene.aabb().center()
        assert np.allclose(scene.camera.look_at, center)


OBJ_MESSY = """\
v 0 0 0
v 1 0 0
v nan_is_fine_but_this_is_not 0 0
v 0 1 0
vribble
f 1 2 3
f 1 2
f 1 2 99
f one two three
"""


class TestLenientParsing:
    def test_messy_file_loads_with_warnings(self, tmp_path):
        path = tmp_path / "messy.obj"
        path.write_text(OBJ_MESSY)
        scene, report = load_obj_with_report(path)
        assert scene.num_triangles == 1
        assert not report.ok
        reasons = [w.reason for w in report.warnings]
        assert any("non-numeric vertex" in r for r in reasons)
        assert any("short 'f' record" in r for r in reasons)
        assert any("out of range" in r for r in reasons)
        # line numbers point at the offending lines, in file order
        assert [w.line_no for w in report.warnings] == sorted(
            w.line_no for w in report.warnings
        )
        assert "malformed lines skipped" in report.summary()

    def test_strict_mode_raises_on_first_bad_line(self, tmp_path):
        path = tmp_path / "messy.obj"
        path.write_text(OBJ_MESSY)
        with pytest.raises(SceneLoadError) as info:
            load_obj(path, strict=True)
        assert "line 3" in str(info.value)

    def test_clean_file_reports_ok(self, tmp_path):
        path = tmp_path / "clean.obj"
        path.write_text(OBJ_SIMPLE)
        scene, report = load_obj_with_report(path)
        assert report.ok
        assert report.num_faces == scene.num_triangles == 2
        assert report.summary().endswith("2 triangles")

    def test_truncated_file_no_faces_raises_scene_error(self, tmp_path):
        # Simulate truncation mid-write: vertices made it, faces did not.
        path = tmp_path / "trunc.obj"
        path.write_text("v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1 2\n")
        with pytest.raises(SceneLoadError):
            load_obj(path)
        # SceneLoadError still satisfies legacy except ValueError handlers.
        assert issubclass(SceneLoadError, ValueError)

    @settings(
        max_examples=25,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        garbage=st.lists(
            st.text(
                alphabet=st.characters(blacklist_categories=("Cs",),
                                       blacklist_characters="\r\n"),
                max_size=30,
            ),
            max_size=12,
        ),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_fuzz_garbage_lines_never_crash(self, tmp_path, garbage, seed):
        """Garbage interleaved with a valid triangle: the loader either
        returns a Scene or raises SceneLoadError - nothing else."""
        rng = np.random.default_rng(seed)
        lines = ["v 0 0 0", "v 1 0 0", "v 0 1 0", "f 1 2 3"]
        for text in garbage:
            lines.insert(int(rng.integers(len(lines) + 1)), text)
        path = tmp_path / f"fuzz{seed}.obj"
        path.write_text("\n".join(lines) + "\n")
        try:
            scene, report = load_obj_with_report(path)
        except SceneLoadError:
            return  # the valid face itself got corrupted by an insertion
        assert scene.num_triangles >= 1
        assert np.isfinite(scene.mesh.v0).all()


class TestRoundTrip:
    def test_save_and_reload(self, tmp_path, tiny_mesh):
        scene = Scene("t", "T", tiny_mesh, CameraSpec((0, 0, 5), (0, 0, 0)))
        path = tmp_path / "round.obj"
        save_obj(scene, path)
        loaded = load_obj(path)
        assert loaded.num_triangles == 2
        assert np.allclose(
            sorted(loaded.mesh.v0.ravel()), sorted(tiny_mesh.v0.ravel())
        )
