"""Unit tests for the energy model (Table 4)."""

import pytest

from repro.core import PredictorConfig
from repro.energy import EnergyModel, sram_access_energy_pj, sram_leakage_mw
from repro.gpu import GPUConfig, simulate_workload

PC = PredictorConfig(origin_bits=3, direction_bits=2, go_up_level=2)


class TestCacti:
    def test_energy_grows_with_capacity(self):
        assert sram_access_energy_pj(64 * 1024) > sram_access_energy_pj(4 * 1024)

    def test_energy_grows_with_width(self):
        assert sram_access_energy_pj(4096, 256) > sram_access_energy_pj(4096, 32)

    def test_kb_scale_magnitude(self):
        # KB-scale arrays: single-digit pJ at 45 nm.
        e = sram_access_energy_pj(5632, width_bits=43)  # the predictor table
        assert 0.5 < e < 20.0

    def test_leakage_scales_linearly(self):
        assert sram_leakage_mw(2048) == pytest.approx(2 * sram_leakage_mw(1024))

    def test_validation(self):
        with pytest.raises(ValueError):
            sram_access_energy_pj(0)
        with pytest.raises(ValueError):
            sram_access_energy_pj(1024, 0)
        with pytest.raises(ValueError):
            sram_leakage_mw(-1)


@pytest.fixture(scope="module")
def sims(small_bvh, small_workload):
    baseline = simulate_workload(small_bvh, small_workload.rays, GPUConfig(num_sms=1))
    predicted = simulate_workload(
        small_bvh, small_workload.rays, GPUConfig(num_sms=1, predictor=PC)
    )
    return baseline, predicted


class TestBreakdown:
    def test_components_nonnegative(self, sims):
        baseline, _ = sims
        breakdown = EnergyModel().breakdown(baseline)
        for name, value in breakdown.as_dict().items():
            assert value >= 0.0, name

    def test_total_is_sum(self, sims):
        baseline, _ = sims
        b = EnergyModel().breakdown(baseline)
        parts = b.as_dict()
        assert parts["Total"] == pytest.approx(
            sum(v for k, v in parts.items() if k != "Total")
        )

    def test_baseline_has_no_predictor_energy(self, sims):
        baseline, _ = sims
        b = EnergyModel().breakdown(baseline)
        assert b.predictor_table == 0.0
        assert b.warp_repacking == 0.0

    def test_predictor_run_pays_table_energy(self, sims):
        _, predicted = sims
        b = EnergyModel(PC).breakdown(predicted)
        assert b.predictor_table > 0.0

    def test_base_gpu_dominates(self, sims):
        """Table 4's shape: the base GPU (incl. DRAM) dwarfs the additions."""
        baseline, _ = sims
        b = EnergyModel().breakdown(baseline)
        additions = b.total - b.base_gpu
        assert b.base_gpu > 10 * additions

    def test_predictor_overhead_small_relative_to_total(self, sims):
        """The predictor's own structures must be a tiny fraction (Table 4:
        +0.07 nJ vs 296 nJ/ray)."""
        _, predicted = sims
        b = EnergyModel(PC).breakdown(predicted)
        overhead = b.predictor_table + b.warp_repacking
        assert overhead < 0.05 * b.total

    def test_delta_keys(self, sims):
        baseline, predicted = sims
        model = EnergyModel(PC)
        delta = model.breakdown(baseline).delta(model.breakdown(predicted))
        assert set(delta) == {
            "Base GPU", "Predictor table", "Warp repacking",
            "Traversal stack", "Ray buffer", "Ray intersections", "Total",
        }
