"""Wavefront engine tests: edge cases, guards, and engine equivalence.

The differential tests are the executable form of the engine contract
(see ``src/repro/trace/wavefront.py``): hit *results* - occlusion
booleans, closest-hit ``t`` and triangle - are bit-identical to the
scalar engine on every registry scene (the triangle up to genuine
exact-``t`` ties, where each engine reports the lowest index it
visited); order-dependent statistics are
explicitly outside the contract.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bvh import build_bvh
from repro.core.simulate import simulate_predictor
from repro.errors import TraversalError
from repro.faults import run_differential_oracle
from repro.geometry.intersect import ray_triangle_intersect
from repro.geometry.ray import Ray, RayBatch
from repro.rays import generate_ao_workload
from repro.scenes import SCENE_CODES, get_scene
from repro.trace import (
    TraversalStats,
    as_ray_batch,
    resolve_engine,
    trace_closest_batch,
    trace_occlusion_batch,
    wavefront_closest_batch,
    wavefront_occlusion_batch,
    wavefront_occlusion_tri_batch,
    wavefront_verify_batch,
)

MAX_EXAMPLES = int(os.environ.get("HYPOTHESIS_MAX_EXAMPLES", "50"))


def _scene_rays(code, detail=0.3, size=10):
    scene = get_scene(code, detail=detail)
    bvh = build_bvh(scene.mesh)
    rays = generate_ao_workload(
        scene, bvh, width=size, height=size, spp=1, seed=1, engine="scalar"
    ).rays
    return bvh, rays


class TestEngineSelection:
    def test_resolve_engine_accepts_known(self):
        assert resolve_engine("wavefront") == "wavefront"
        assert resolve_engine("scalar") == "scalar"

    def test_resolve_engine_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown traversal engine"):
            resolve_engine("simd")

    def test_batch_entry_points_reject_unknown_engine(self, small_bvh, small_workload):
        with pytest.raises(ValueError):
            trace_occlusion_batch(small_bvh, small_workload.rays, engine="nope")
        with pytest.raises(ValueError):
            trace_closest_batch(small_bvh, small_workload.rays, engine="nope")


class TestEdgeCases:
    def test_empty_batch(self, small_bvh):
        empty = RayBatch(np.zeros((0, 3)), np.zeros((0, 3)))
        assert wavefront_occlusion_batch(small_bvh, empty).shape == (0,)
        ts, tri = wavefront_closest_batch(small_bvh, empty)
        assert ts.shape == (0,) and tri.shape == (0,)

    def test_single_ray(self, small_bvh, small_workload):
        one = small_workload.rays.subset(np.array([0]))
        occ = wavefront_occlusion_batch(small_bvh, one)
        assert occ.shape == (1,)
        assert occ[0] == trace_occlusion_batch(small_bvh, one, engine="scalar")[0]

    def test_all_miss(self, small_bvh):
        # Rays starting far outside the scene, pointing away: the root
        # slab test rejects everything and no kernel ever launches.
        n = 8
        origins = np.tile([1e6, 1e6, 1e6], (n, 1))
        directions = np.tile([0.0, 1.0, 0.0], (n, 1))
        rays = RayBatch(origins, directions)
        stats = TraversalStats()
        occ = wavefront_occlusion_batch(small_bvh, rays, stats=stats)
        assert not occ.any()
        assert stats.node_fetches == 0
        ts, tri = wavefront_closest_batch(small_bvh, rays)
        assert np.all(np.isinf(ts)) and np.all(tri == -1)

    def test_rays_inside_root_aabb(self, small_bvh):
        # Origins strictly inside the root box in every direction: the
        # pre-descent root test must pass for all of them (t_near <= 0).
        center = (small_bvh.lo[0] + small_bvh.hi[0]) / 2.0
        dirs = np.array(
            [[1, 0, 0], [-1, 0, 0], [0, 1, 0], [0, -1, 0], [0, 0, 1], [0, 0, -1]],
            dtype=np.float64,
        )
        rays = RayBatch(np.tile(center, (6, 1)), dirs)
        stats = TraversalStats()
        wavefront_occlusion_batch(small_bvh, rays, stats=stats)
        assert stats.node_fetches > 0  # every ray descended past the root

    def test_zero_direction_component(self, small_bvh, small_workload):
        # Axis-parallel rays exercise the signed-infinity slab path.
        rays = RayBatch(
            small_workload.rays.origins[:4].copy(),
            np.tile([0.0, -1.0, 0.0], (4, 1)),
        )
        occ_w = wavefront_occlusion_batch(small_bvh, rays)
        occ_s = trace_occlusion_batch(small_bvh, rays, engine="scalar")
        assert np.array_equal(occ_w, occ_s)

    def test_as_ray_batch_coercion(self, small_bvh, small_workload):
        batch = small_workload.rays.subset(np.arange(5))
        assert as_ray_batch(batch) is batch
        coerced = as_ray_batch(list(batch))
        assert np.array_equal(coerced.origins, batch.origins)
        assert np.array_equal(coerced.t_max, batch.t_max)
        assert len(as_ray_batch([])) == 0
        one = as_ray_batch([Ray((0, 0, 0), (1, 0, 0))])
        assert len(one) == 1


class TestSpeculationGuards:
    def test_corrupt_start_nodes_raise(self, small_bvh, small_workload):
        rays = small_workload.rays.subset(np.arange(4))
        with pytest.raises(TraversalError):
            wavefront_occlusion_tri_batch(
                small_bvh, rays, start_nodes=[small_bvh.num_nodes + 7]
            )
        with pytest.raises(TraversalError):
            wavefront_occlusion_tri_batch(small_bvh, rays, start_nodes=[-2])

    def test_verify_guard_degrades_per_ray(self, small_bvh, small_workload):
        # One corrupt entry list must flag only its own ray; the rest of
        # the batch still verifies normally.
        rays = small_workload.rays.subset(np.arange(6))
        entries = [[0], [0], [small_bvh.num_nodes + 1], None, [], [0]]
        hit_tri, counters, fallback = wavefront_verify_batch(
            small_bvh, rays, entries
        )
        assert fallback.tolist() == [False, False, True, False, False, False]
        assert hit_tri[2] == -1  # corrupt ray never traversed
        assert counters.node_fetches[2] == 0
        assert counters.tri_fetches[2] == 0

    def test_verify_matches_full_traversal_from_root(self, small_bvh, small_workload):
        # Entry point 0 (the root) is a full traversal: occlusion must
        # match the plain batch result ray for ray.
        rays = small_workload.rays.subset(np.arange(32))
        hit_tri, _, fallback = wavefront_verify_batch(
            small_bvh, rays, [[0]] * 32
        )
        assert not fallback.any()
        expected = trace_occlusion_batch(small_bvh, rays, engine="scalar")
        assert np.array_equal(hit_tri >= 0, expected)


class TestDifferential:
    """Bit-identity between engines on every registry scene."""

    @pytest.mark.parametrize("code", SCENE_CODES)
    def test_all_scenes_bit_identical(self, code):
        bvh, rays = _scene_rays(code)
        occ_s = trace_occlusion_batch(bvh, rays, engine="scalar")
        occ_w = trace_occlusion_batch(bvh, rays, engine="wavefront")
        assert np.array_equal(occ_s, occ_w), "occlusion diverged"
        ts_s, tri_s = trace_closest_batch(bvh, rays, engine="scalar")
        ts_w, tri_w = trace_closest_batch(bvh, rays, engine="wavefront")
        assert np.array_equal(ts_s, ts_w), "closest-hit t diverged"
        assert np.array_equal(tri_s, tri_w), "closest-hit triangle diverged"

    def test_stats_totals_agree_on_results(self, small_bvh, small_workload):
        # Aggregate hit counts (result-derived) agree even though fetch
        # counters (order-derived) may not.
        s_stats, w_stats = TraversalStats(), TraversalStats()
        trace_occlusion_batch(
            small_bvh, small_workload.rays, stats=s_stats, engine="scalar"
        )
        trace_occlusion_batch(
            small_bvh, small_workload.rays, stats=w_stats, engine="wavefront"
        )
        assert s_stats.rays == w_stats.rays
        assert s_stats.hits == w_stats.hits

    def test_simulation_hits_identical(self, small_bvh, small_workload):
        rs = simulate_predictor(
            small_bvh, small_workload.rays, keep_outcomes=True, engine="scalar"
        )
        rw = simulate_predictor(
            small_bvh, small_workload.rays, keep_outcomes=True, engine="wavefront"
        )
        assert [o.hit for o in rs.outcomes] == [o.hit for o in rw.outcomes]

    @pytest.mark.parametrize("engine", ["scalar", "wavefront"])
    def test_fault_oracle_passes_under_both_engines(
        self, small_bvh, small_workload, engine
    ):
        report = run_differential_oracle(
            small_bvh, small_workload.rays, scene="TR", engine=engine
        )
        assert report.ok, report.summary()


class TestPropertyEquivalence:
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1),
           n=st.integers(min_value=1, max_value=64))
    @settings(max_examples=MAX_EXAMPLES)
    def test_random_rays_bit_identical(self, small_bvh, seed, n):
        """Random origins/directions around the scene: engines agree."""
        rng = np.random.default_rng(seed)
        span = small_bvh.hi[0] - small_bvh.lo[0]
        origins = small_bvh.lo[0] + rng.uniform(-0.25, 1.25, (n, 3)) * span
        directions = rng.normal(size=(n, 3))
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        rays = RayBatch(origins, directions)
        occ_s = trace_occlusion_batch(small_bvh, rays, engine="scalar")
        occ_w = trace_occlusion_batch(small_bvh, rays, engine="wavefront")
        assert np.array_equal(occ_s, occ_w)
        ts_s, tri_s = trace_closest_batch(small_bvh, rays, engine="scalar")
        ts_w, tri_w = trace_closest_batch(small_bvh, rays, engine="wavefront")
        # Engines agree bit-for-bit except when a ray grazes a BVH node
        # face: the slab t_near and the Moeller-Trumbore t round
        # differently at the boundary, so the best-t-bounded box test
        # can cull a subtree under one traversal order but not the
        # other.  That surfaces two ways - the same t with a different
        # lowest-index-visited triangle (coplanar exact tie), or t
        # values a ULP apart (one engine pruned the subtree holding the
        # marginally closer triangle).  Either way both engines must
        # report a genuine intersection at exactly the t they claim,
        # and the claims may differ by at most a few ULPs.
        mesh = small_bvh.mesh
        for i in np.nonzero((ts_s != ts_w) | (tri_s != tri_w))[0]:
            assert tri_s[i] >= 0 and tri_w[i] >= 0
            gap = abs(ts_s[i] - ts_w[i])
            assert gap <= 4.0 * np.spacing(max(ts_s[i], ts_w[i])), (
                i, ts_s[i], ts_w[i],
            )
            for tri, t_claim in (
                (int(tri_s[i]), ts_s[i]), (int(tri_w[i]), ts_w[i])
            ):
                t = ray_triangle_intersect(
                    *origins[i], *directions[i], 0.0, np.inf,
                    tuple(mesh.v0[tri]), tuple(mesh.v1[tri]), tuple(mesh.v2[tri]),
                )
                assert t == t_claim, (i, tri, t, t_claim)
