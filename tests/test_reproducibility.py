"""Reproducibility guarantees: the benchmark pipeline is deterministic."""

import numpy as np

from repro.analysis.experiments import ExperimentContext, WorkloadParams
from repro.gpu.cache import Cache
from repro.gpu.config import CacheConfig
from repro.trace import TraversalStats, occlusion_any_hit

PARAMS = WorkloadParams(width=12, height=12, spp=1, seed=4, detail=0.3)


class TestPipelineDeterminism:
    def test_two_fresh_contexts_agree(self):
        a = ExperimentContext()
        b = ExperimentContext()
        out_a = a.predicted("FR", params=PARAMS)
        out_b = b.predicted("FR", params=PARAMS)
        assert out_a.cycles == out_b.cycles
        assert out_a.total_accesses == out_b.total_accesses
        assert out_a.predicted_rate == out_b.predicted_rate

    def test_workloads_identical_across_contexts(self):
        a = ExperimentContext().workload("FR", PARAMS)
        b = ExperimentContext().workload("FR", PARAMS)
        assert np.array_equal(a.rays.origins, b.rays.origins)
        assert np.array_equal(a.rays.t_max, b.rays.t_max)


class TestTraceReplay:
    def test_recorded_trace_replays_deterministic_hits(self, small_bvh, small_workload):
        """The access trace drives the same cache behaviour every time."""
        stats = TraversalStats()
        for i in range(0, min(len(small_workload), 64)):
            occlusion_any_hit(
                small_bvh, small_workload.rays[i], stats=stats, record_trace=True
            )

        def replay():
            cache = Cache(CacheConfig(size_bytes=2048, ways=8))
            pattern = []
            for kind, index in stats.trace:
                addr = (
                    small_bvh.node_address(index)
                    if kind == "node"
                    else small_bvh.triangle_address(index)
                )
                pattern.append(cache.access(cache.line_of(addr)))
            return pattern

        first = replay()
        second = replay()
        assert first == second
        assert any(first)       # some locality exists
        assert not all(first)   # and some misses
