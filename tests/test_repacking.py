"""Unit tests for the partial warp collector and repacking (Section 4.4)."""

import pytest

from repro.core.repacking import PartialWarpCollector, repack_rays


class TestCollector:
    def test_fills_and_emits_full_warp(self):
        c = PartialWarpCollector(warp_size=4, capacity=8, timeout_cycles=5)
        assert c.push([1, 2]) == []
        assert len(c) == 2
        emitted = c.push([3, 4, 5])
        assert emitted == [[1, 2, 3, 4]]
        assert len(c) == 1

    def test_overflow_emits_multiple_warps(self):
        c = PartialWarpCollector(warp_size=4, capacity=8, timeout_cycles=5)
        emitted = c.push(list(range(9)))
        assert emitted == [[0, 1, 2, 3], [4, 5, 6, 7]]
        assert len(c) == 1

    def test_timeout_flush(self):
        c = PartialWarpCollector(warp_size=4, capacity=8, timeout_cycles=3)
        c.push([1, 2])
        assert c.tick(2) is None
        assert c.tick(1) == [1, 2]
        assert len(c) == 0
        assert c.stats.timeout_flushes == 1

    def test_push_resets_timeout(self):
        c = PartialWarpCollector(warp_size=4, capacity=8, timeout_cycles=3)
        c.push([1])
        c.tick(2)
        c.push([2])  # resets idle counter
        assert c.tick(2) is None

    def test_tick_empty_is_noop(self):
        c = PartialWarpCollector(warp_size=4, capacity=8, timeout_cycles=3)
        assert c.tick(100) is None

    def test_final_flush(self):
        c = PartialWarpCollector(warp_size=4, capacity=8, timeout_cycles=3)
        c.push([7, 8, 9])
        assert c.flush() == [7, 8, 9]
        assert c.flush() is None
        assert c.stats.final_flushes == 1

    def test_stats_counts(self):
        c = PartialWarpCollector(warp_size=2, capacity=4, timeout_cycles=3)
        c.push([1, 2, 3])
        assert c.stats.rays_collected == 3
        assert c.stats.warps_emitted == 1
        assert c.stats.full_flushes == 1

    def test_timeout_must_fit_5_bits(self):
        with pytest.raises(ValueError):
            PartialWarpCollector(timeout_cycles=32)
        with pytest.raises(ValueError):
            PartialWarpCollector(timeout_cycles=0)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PartialWarpCollector(warp_size=32, capacity=16)

    def test_paper_overflow_scenario(self):
        """30 rays buffered + 15 pushed -> 45 for one cycle, 32 move out."""
        c = PartialWarpCollector(warp_size=32, capacity=64, timeout_cycles=16)
        c.push(list(range(30)))
        emitted = c.push(list(range(100, 115)))
        assert len(emitted) == 1
        assert len(emitted[0]) == 32
        assert len(c) == 13


class TestRepackRays:
    def test_separates_classes(self):
        predicted, unpredicted = repack_rays([1, 2, 3], [4, 5], warp_size=2)
        assert predicted == [[1, 2], [3]]
        assert unpredicted == [[4, 5]]

    def test_empty_inputs(self):
        predicted, unpredicted = repack_rays([], [], warp_size=4)
        assert predicted == []
        assert unpredicted == []

    def test_no_warp_exceeds_size(self):
        predicted, unpredicted = repack_rays(list(range(100)), list(range(7)), 32)
        assert all(len(w) <= 32 for w in predicted + unpredicted)

    def test_order_preserved(self):
        predicted, _ = repack_rays([5, 3, 9, 1], [], warp_size=3)
        assert predicted == [[5, 3, 9], [1]]

    def test_all_rays_present_once(self):
        predicted, unpredicted = repack_rays(list(range(50)), list(range(50, 80)), 32)
        flat = [r for w in predicted + unpredicted for r in w]
        assert sorted(flat) == list(range(80))
