"""Unit tests for node replacement policies (Section 6.1.3)."""

import pytest

from repro.core.policies import LFUPolicy, LRUKPolicy, LRUPolicy, make_node_policy


class TestLRU:
    def test_insert_until_capacity(self):
        p = LRUPolicy(2)
        assert p.insert(1) is None
        assert p.insert(2) is None
        assert len(p) == 2

    def test_evicts_oldest(self):
        p = LRUPolicy(2)
        p.insert(1)
        p.insert(2)
        assert p.insert(3) == 1
        assert p.nodes == [2, 3]

    def test_touch_refreshes(self):
        p = LRUPolicy(2)
        p.insert(1)
        p.insert(2)
        p.touch(1)
        assert p.insert(3) == 2

    def test_reinsert_refreshes_no_eviction(self):
        p = LRUPolicy(2)
        p.insert(1)
        p.insert(2)
        assert p.insert(1) is None
        assert p.insert(3) == 2

    def test_contains(self):
        p = LRUPolicy(2)
        p.insert(7)
        assert 7 in p
        assert 8 not in p

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LRUPolicy(0)


class TestLFU:
    def test_evicts_least_frequent(self):
        p = LFUPolicy(2)
        p.insert(1)
        p.insert(2)
        p.touch(1)
        p.touch(1)
        assert p.insert(3) == 2

    def test_tie_breaks_oldest(self):
        p = LFUPolicy(2)
        p.insert(1)
        p.insert(2)
        assert p.insert(3) == 1

    def test_touch_unknown_is_noop(self):
        p = LFUPolicy(2)
        p.touch(42)
        assert len(p) == 0


class TestLRUK:
    def test_fewer_than_k_references_evicted_first(self):
        p = LRUKPolicy(2, k=2)
        p.insert(1)
        p.touch(1)  # node 1 now has 2 references
        p.insert(2)  # node 2 has 1 reference
        assert p.insert(3) == 2

    def test_kth_recency_ordering(self):
        p = LRUKPolicy(2, k=2)
        p.insert(1)   # refs(1) = [t1]
        p.touch(1)    # refs(1) = [t1, t2]
        p.insert(2)   # refs(2) = [t3]
        p.touch(2)    # refs(2) = [t3, t4]
        p.touch(1)    # refs(1) = [t2, t5]
        # 2nd-most-recent: node 1 -> t2, node 2 -> t3; t2 is older,
        # so LRU-K evicts node 1.
        assert p.insert(3) == 1

    def test_k_validation(self):
        with pytest.raises(ValueError):
            LRUKPolicy(2, k=0)


class TestFactory:
    @pytest.mark.parametrize(
        "kind,cls", [("lru", LRUPolicy), ("lfu", LFUPolicy), ("lru-k", LRUKPolicy)]
    )
    def test_kinds(self, kind, cls):
        assert isinstance(make_node_policy(kind, 2), cls)

    def test_lruk_kwargs(self):
        p = make_node_policy("lru-k", 2, k=3)
        assert p.k == 3

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            make_node_policy("random", 2)
