"""Telemetry subsystem tests: registry, tracer, profiling, pipeline wiring.

Covers the contracts docs/OBSERVABILITY.md documents: label/snapshot
semantics of the metrics registry, cumulative histogram buckets, span
nesting and Chrome ``trace_event`` export, the near-zero off path, and
the end-to-end invariant that the predictor counters published by the
instrumented pipeline decompose every traced ray exactly once.
"""

import json

import numpy as np
import pytest

from repro import telemetry
from repro.telemetry.metrics import MetricError, Registry
from repro.telemetry.profiling import PhaseTimer, SamplingProfiler
from repro.telemetry.schema import TELEMETRY_SCHEMA, validate_telemetry
from repro.telemetry.tracing import (
    EventTracer,
    summarize_spans,
    write_chrome_trace,
)


@pytest.fixture(autouse=True)
def clean_telemetry():
    """Each test starts and ends with telemetry off and empty."""
    telemetry.disable()
    telemetry.reset_telemetry()
    yield
    telemetry.disable()
    telemetry.reset_telemetry()


class TestRegistry:
    def test_counter_get_or_create_by_name_and_labels(self):
        reg = Registry()
        a = reg.counter("rays", scene="SP")
        b = reg.counter("rays", scene="SP")
        c = reg.counter("rays", scene="LR")
        assert a is b
        assert a is not c
        a.inc(3)
        c.inc(2)
        assert reg.value("rays", scene="SP") == 3
        assert reg.total("rays") == 5

    def test_label_order_does_not_matter(self):
        reg = Registry()
        reg.counter("x", a=1, b=2).inc()
        assert reg.counter("x", b=2, a=1).value == 1

    def test_counter_rejects_negative(self):
        reg = Registry()
        with pytest.raises(MetricError):
            reg.counter("x").inc(-1)

    def test_kind_conflict_detected(self):
        reg = Registry()
        reg.counter("x")
        with pytest.raises(MetricError):
            reg.gauge("x")

    def test_gauge_set_inc_dec(self):
        reg = Registry()
        g = reg.gauge("depth")
        g.set(10.0)
        g.inc(2.0)
        g.dec(4.0)
        assert g.value == 8.0

    def test_snapshot_shape_and_determinism(self):
        reg = Registry()
        reg.counter("b", scene="SP").inc(1)
        reg.counter("a", scene="SP").inc(2)
        reg.gauge("g").set(0.5)
        reg.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        snap = reg.snapshot()
        assert [c["name"] for c in snap["counters"]] == ["a", "b"]
        assert snap["counters"][0] == {
            "name": "a", "labels": {"scene": "SP"}, "value": 2,
        }
        assert snap == reg.snapshot()
        json.dumps(snap)  # must be JSON-serializable as-is

    def test_reset_clears_everything(self):
        reg = Registry()
        reg.counter("x").inc()
        reg.reset()
        snap = reg.snapshot()
        assert snap["counters"] == []


class TestHistogram:
    def test_bucket_edges_are_cumulative(self):
        reg = Registry()
        h = reg.histogram("lat", buckets=(1.0, 5.0, 10.0))
        for v in (0.5, 1.0, 3.0, 7.0, 100.0):
            h.observe(v)
        snap = reg.snapshot()["histograms"][0]
        # Cumulative le-style buckets: observe(1.0) lands in le=1.0.
        les = [(b["le"], b["count"]) for b in snap["buckets"]]
        assert les == [(1.0, 2), (5.0, 3), (10.0, 4), ("inf", 5)]
        assert snap["count"] == 5
        assert snap["min"] == 0.5
        assert snap["max"] == 100.0
        assert snap["sum"] == pytest.approx(111.5)

    def test_rejects_non_increasing_buckets(self):
        reg = Registry()
        with pytest.raises(MetricError):
            reg.histogram("h", buckets=(2.0, 1.0))

    def test_quantile_bound(self):
        reg = Registry()
        h = reg.histogram("q", buckets=(1.0, 10.0))
        for v in (0.5, 0.6, 0.7, 20.0):
            h.observe(v)
        assert h.quantile_bound(0.5) == 1.0
        assert h.quantile_bound(0.99) == float("inf")

    def test_bucket_mismatch_on_reuse_rejected(self):
        reg = Registry()
        reg.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(MetricError):
            reg.histogram("h", buckets=(3.0, 4.0))


class TestTracer:
    def test_span_nesting_records_both(self):
        tracer = EventTracer()
        with tracer.span("outer", scene="SP"):
            with tracer.span("inner"):
                pass
        names = [e.name for e in tracer.events()]
        # Spans close inner-first.
        assert names == ["inner", "outer"]
        outer = tracer.events()[1]
        assert outer.args == {"scene": "SP"}
        assert outer.dur_ns >= 0

    def test_span_add_attaches_late_args(self):
        tracer = EventTracer()
        with tracer.span("work") as sp:
            sp.add(levels=7)
        assert tracer.events()[0].args["levels"] == 7

    def test_ring_buffer_drops_and_counts(self):
        tracer = EventTracer(capacity=2)
        for i in range(5):
            tracer.instant(f"e{i}")
        assert len(tracer.events()) == 2
        assert tracer.dropped == 3

    def test_chrome_trace_is_valid_and_viewable_shape(self, tmp_path):
        tracer = EventTracer()
        with tracer.span("stage", rays=8):
            tracer.instant("marker")
        events = tracer.chrome_trace()
        parsed = json.loads(json.dumps(events))
        assert parsed[0]["ph"] == "M"
        assert parsed[0]["name"] == "process_name"
        phases = {e["ph"] for e in parsed[1:]}
        assert phases == {"X", "i"}
        for e in parsed[1:]:
            assert isinstance(e["pid"], int) and isinstance(e["tid"], int)
            assert e["ts"] >= 0
            if e["ph"] == "X":
                assert e["dur"] >= 0
        path = tmp_path / "trace.json"
        write_chrome_trace(events, str(path))
        on_disk = json.loads(path.read_text())
        assert "traceEvents" in on_disk

    def test_summarize_spans_aggregates(self):
        tracer = EventTracer()
        for _ in range(3):
            with tracer.span("stage"):
                pass
        summary = summarize_spans(tracer.events())
        assert summary["stage"]["count"] == 3
        assert summary["stage"]["total_ms"] >= 0


class TestOffPath:
    def test_disabled_span_is_shared_noop(self):
        assert telemetry.span("a") is telemetry.span("b")
        with telemetry.span("a") as sp:
            sp.add(x=1)  # must not raise
        assert telemetry.get_tracer().events() == []

    def test_disabled_counters_record_nothing(self):
        telemetry.inc_counter("x", 5)
        telemetry.set_gauge("g", 1.0)
        telemetry.observe("h", 2.0)
        snap = telemetry.get_registry().snapshot()
        assert snap == {"counters": [], "gauges": [], "histograms": []}

    def test_env_enabled_parsing(self):
        for value in ("1", "true", "YES", " on "):
            assert telemetry.env_enabled(value)
        for value in (None, "", "0", "false", "off", "no"):
            assert not telemetry.env_enabled(value)

    def test_enabled_scope_restores(self):
        assert not telemetry.enabled()
        with telemetry.enabled_scope():
            assert telemetry.enabled()
        assert not telemetry.enabled()

    def test_label_context_merges_innermost_wins(self):
        with telemetry.label_context(scene="SP", run=1):
            with telemetry.label_context(scene="LR"):
                labels = telemetry.current_labels({"stage": "x"})
        assert labels == {"scene": "LR", "run": "1", "stage": "x"}


class TestProfiling:
    def test_phase_timer_accumulates(self):
        timer = PhaseTimer()
        with timer.phase("build"):
            sum(range(1000))
        with timer.phase("build"):
            pass
        report = timer.report()
        assert report["build"]["count"] == 2
        assert report["build"]["wall_s"] >= 0.0
        assert report["build"]["cpu_s"] >= 0.0

    def test_sampling_profiler_smoke(self):
        import time

        profiler = SamplingProfiler(interval_s=0.001)
        with profiler.profile():
            deadline = time.perf_counter() + 0.05
            x = 0
            while time.perf_counter() < deadline:
                x += 1
        report = profiler.report()
        assert report["total_samples"] >= 1
        assert report["hot_functions"]
        assert all("frame" in e for e in report["hot_functions"])


class TestTraversalStatsShim:
    def test_old_import_path_still_works(self):
        from repro.trace.counters import TraversalStats as Old
        from repro.telemetry.stats import TraversalStats as New

        assert Old is New

    def test_publish_folds_into_registry(self):
        from repro.telemetry.stats import TraversalStats

        stats = TraversalStats()
        stats.rays, stats.node_fetches, stats.hits = 10, 40, 6
        with telemetry.enabled_scope():
            stats.publish(engine="scalar", stage="occlusion")
        reg = telemetry.get_registry()
        assert reg.value(
            "trace.node_fetches", engine="scalar", stage="occlusion"
        ) == 40
        assert reg.total("trace.rays") == 10


class TestPipelineIntegration:
    #: All seven paper scenes; the smoke stays tiny per scene.
    SCENES = ("SB", "SP", "LE", "LR", "FR", "BI", "CK")

    @pytest.mark.parametrize("scene_code", SCENES)
    def test_predictor_counters_decompose_rays(self, scene_code):
        from repro.analysis.experiments import scaled_predictor_config
        from repro.bvh import build_bvh
        from repro.core.simulate import simulate_predictor
        from repro.rays import generate_ao_workload
        from repro.scenes import get_scene

        scene = get_scene(scene_code, detail=0.2)
        bvh = build_bvh(scene.mesh)
        rays = generate_ao_workload(
            scene, bvh, width=8, height=8, spp=1, seed=1
        ).rays
        rays = rays.subset(np.arange(min(64, len(rays))))
        with telemetry.enabled_scope():
            telemetry.reset_telemetry()
            with telemetry.label_context(scene=scene_code):
                simulate_predictor(
                    bvh, rays, scaled_predictor_config(), engine="wavefront"
                )
            reg = telemetry.get_registry()
            total = reg.total("predictor.rays")
            assert total == len(rays)
            # Every ray is exactly one of verified/mispredicted/unpredicted.
            assert (
                reg.total("predictor.verified")
                + reg.total("predictor.mispredicted")
                + reg.total("predictor.unpredicted")
            ) == total
            assert (
                reg.total("predictor.verified")
                + reg.total("predictor.mispredicted")
            ) == reg.total("predictor.predicted")
            # The scene label rode along via the ambient context.
            assert reg.value(
                "predictor.rays", engine="wavefront", scene=scene_code
            ) == total

    def test_scalar_and_wavefront_publish_same_totals(self):
        from repro.analysis.experiments import scaled_predictor_config
        from repro.bvh import build_bvh
        from repro.rays import generate_ao_workload
        from repro.scenes import get_scene
        from repro.trace import TraversalStats, trace_occlusion_batch

        scene = get_scene("SP", detail=0.2)
        bvh = build_bvh(scene.mesh)
        rays = generate_ao_workload(
            scene, bvh, width=8, height=8, spp=1, seed=1
        ).rays
        hits = {}
        for engine in ("scalar", "wavefront"):
            with telemetry.enabled_scope():
                telemetry.reset_telemetry()
                stats = TraversalStats()
                trace_occlusion_batch(bvh, rays, stats=stats, engine=engine)
                reg = telemetry.get_registry()
                assert reg.total("trace.rays") == len(rays)
                assert reg.total("trace.node_fetches") == stats.node_fetches
                hits[engine] = reg.total("trace.hits")
        # The engines produce bit-identical *results*; fetch counts may
        # differ (traversal order), but the published hits must agree.
        assert hits["scalar"] == hits["wavefront"]

    def test_runner_payload_validates_clean(self):
        from repro.telemetry.runner import (
            TelemetryPreset,
            run_telemetry_workload,
        )

        preset = TelemetryPreset(
            scene="SP", detail=0.2, width=8, height=8, spp=1,
            sim_rays=64, rt_rays=64,
        )
        payload = run_telemetry_workload(preset)
        assert payload["schema"] == TELEMETRY_SCHEMA
        assert validate_telemetry(payload) == []
        json.dumps(payload)
        # The runner restores the pre-run switch state (off here).
        assert not telemetry.enabled()

    def test_validate_catches_broken_payloads(self):
        from repro.telemetry.runner import (
            TelemetryPreset,
            run_telemetry_workload,
        )

        preset = TelemetryPreset(
            scene="SP", detail=0.2, width=8, height=8, spp=1,
            sim_rays=64, rt_rays=64,
        )
        payload = run_telemetry_workload(preset)
        broken = json.loads(json.dumps(payload))
        for entry in broken["metrics"]["counters"]:
            if entry["name"] == "predictor.verified":
                entry["value"] += 1
        problems = validate_telemetry(broken)
        assert problems
        del broken["spans"]
        assert any("spans" in p for p in validate_telemetry(broken))
