"""Unit tests for the results report generator."""

import pytest

from repro.analysis.report import (
    ARTIFACT_ORDER,
    build_report,
    collect_results,
    write_report,
)


@pytest.fixture()
def results_dir(tmp_path):
    (tmp_path / "fig12_speedup.txt").write_text("Figure 12 data\nrow 1\n")
    (tmp_path / "tab01_scenes.txt").write_text("Table 1 data\n")
    (tmp_path / "custom_experiment.txt").write_text("extra data\n")
    (tmp_path / "notes.md").write_text("ignored\n")
    return tmp_path


class TestCollect:
    def test_collects_txt_only(self, results_dir):
        results = collect_results(results_dir)
        assert set(results) == {"fig12_speedup", "tab01_scenes", "custom_experiment"}

    def test_missing_dir_is_empty(self, tmp_path):
        assert collect_results(tmp_path / "nope") == {}


class TestBuild:
    def test_paper_order_preserved(self, results_dir):
        report = build_report(results_dir)
        assert report.index("Table 1") < report.index("Figure 12")

    def test_extras_appended(self, results_dir):
        report = build_report(results_dir)
        assert "custom_experiment" in report
        assert report.index("Other artifacts") > report.index("Figure 12")

    def test_missing_listed(self, results_dir):
        report = build_report(results_dir)
        assert "Missing artifacts" in report
        assert "limit study" in report

    def test_contents_included_verbatim(self, results_dir):
        report = build_report(results_dir)
        assert "Figure 12 data\nrow 1" in report

    def test_artifact_order_covers_all_benches(self):
        # Every bench id referenced by the harness must have a heading.
        ids = {artifact_id for artifact_id, _ in ARTIFACT_ORDER}
        assert len(ids) == len(ARTIFACT_ORDER)  # no duplicates
        assert "fig12_speedup" in ids
        assert "abl_timing_model" in ids


class TestWrite:
    def test_write_report(self, results_dir, tmp_path):
        out = tmp_path / "REPORT.md"
        write_report(results_dir, out)
        assert out.read_text().startswith("# Regenerated results")
