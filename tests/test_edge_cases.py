"""Edge cases and failure injection across the stack."""

import numpy as np
import pytest

from repro.bvh import build_bvh
from repro.core import PredictorConfig, RayPredictor, simulate_predictor
from repro.geometry.ray import Ray, RayBatch
from repro.geometry.triangle import TriangleMesh
from repro.gpu import GPUConfig, simulate_workload
from repro.trace import closest_hit, occlusion_any_hit

PC = PredictorConfig(origin_bits=3, direction_bits=2, go_up_level=2)


@pytest.fixture(scope="module")
def single_tri_bvh():
    mesh = TriangleMesh(
        np.array([[0.0, 0.0, 0.0]]),
        np.array([[1.0, 0.0, 0.0]]),
        np.array([[0.0, 1.0, 0.0]]),
    )
    return build_bvh(mesh)


class TestDegenerateBVHs:
    def test_single_triangle_root_is_leaf(self, single_tri_bvh):
        assert single_tri_bvh.num_nodes == 1
        assert single_tri_bvh.is_leaf(0)

    def test_traversal_of_leaf_root(self, single_tri_bvh):
        hit_ray = Ray((0.2, 0.2, -1.0), (0.0, 0.0, 1.0), 0.0, 10.0)
        miss_ray = Ray((5.0, 5.0, -1.0), (0.0, 0.0, 1.0), 0.0, 10.0)
        assert occlusion_any_hit(single_tri_bvh, hit_ray)
        assert not occlusion_any_hit(single_tri_bvh, miss_ray)
        t, tri = closest_hit(single_tri_bvh, hit_ray)
        assert tri == 0 and t == pytest.approx(1.0)

    def test_timing_sim_on_leaf_root(self, single_tri_bvh):
        rays = RayBatch(
            np.array([[0.2, 0.2, -1.0], [5.0, 5.0, -1.0]]),
            np.array([[0.0, 0.0, 1.0], [0.0, 0.0, 1.0]]),
            t_max=10.0,
        )
        out = simulate_workload(single_tri_bvh, rays, GPUConfig(num_sms=1))
        assert out.rays == 2
        assert sum(r.hits for r in out.per_sm) == 1

    def test_predictor_on_leaf_root(self, single_tri_bvh):
        predictor = RayPredictor(single_tri_bvh, PC)
        # Go Up Level clamps at the root, which IS the leaf.
        assert predictor.trained_node_for(0) == 0


class TestEmptyAndTinyWorkloads:
    def test_empty_ray_batch(self, small_bvh):
        empty = RayBatch(np.zeros((0, 3)), np.zeros((0, 3)))
        out = simulate_workload(small_bvh, empty, GPUConfig(num_sms=2))
        assert out.rays == 0
        assert out.cycles == 0

    def test_empty_functional_sim(self, small_bvh):
        empty = RayBatch(np.zeros((0, 3)), np.zeros((0, 3)))
        result = simulate_predictor(small_bvh, empty, PC)
        assert result.num_rays == 0
        assert result.memory_savings == 0.0

    def test_partial_warp(self, small_bvh, small_workload):
        rays = small_workload.rays.subset(np.arange(5))
        out = simulate_workload(
            small_bvh, rays, GPUConfig(num_sms=1, predictor=PC)
        )
        assert out.rays == 5
        assert out.cycles > 0

    def test_single_ray(self, small_bvh, small_workload):
        rays = small_workload.rays.subset([0])
        out = simulate_workload(small_bvh, rays, GPUConfig(num_sms=1))
        assert out.rays == 1

    def test_more_sms_than_warps(self, small_bvh, small_workload):
        rays = small_workload.rays.subset(np.arange(40))
        out = simulate_workload(small_bvh, rays, GPUConfig(num_sms=4))
        assert out.rays == 40


class TestDegenerateRays:
    def test_zero_length_interval(self, small_bvh):
        ray = Ray((4.0, 2.0, 3.0), (1.0, 0.0, 0.0), 1.0, 1.0)
        assert not occlusion_any_hit(small_bvh, ray)

    def test_axis_aligned_rays(self, small_bvh):
        # Rays with two zero direction components (infinite inv-direction).
        for axis in range(3):
            direction = [0.0, 0.0, 0.0]
            direction[axis] = 1.0
            ray = Ray((4.0, 2.0, 3.0), tuple(direction), 0.0, 100.0)
            occlusion_any_hit(small_bvh, ray)  # must not raise

    def test_ray_starting_exactly_on_bbox_corner(self, small_bvh):
        corner = small_bvh.root_aabb().lo
        ray = Ray(corner, (1.0, 1.0, 1.0), 0.0, 100.0)
        occlusion_any_hit(small_bvh, ray)  # must not raise


class TestTableStress:
    def test_many_updates_never_overflow(self, small_bvh):
        predictor = RayPredictor(small_bvh, PC)
        rng = np.random.default_rng(0)
        max_tri = small_bvh.num_triangles - 1
        for _ in range(5000):
            predictor.train(int(rng.integers(0, 1 << 9)), int(rng.integers(0, max_tri)))
        assert predictor.table.occupancy() <= 1.0
        # Every stored node index must be a valid node.
        for node in predictor.table.iter_nodes():
            assert 0 <= node < small_bvh.num_nodes

    def test_prediction_after_heavy_aliasing_still_safe(self, small_bvh, small_workload):
        """Adversarial config: 1-bit hashes alias everything; results must
        stay correct because predictions are only speculation."""
        config = PredictorConfig(origin_bits=1, direction_bits=1, go_up_level=2)
        from repro.trace import trace_occlusion_batch

        reference = trace_occlusion_batch(small_bvh, small_workload.rays)
        out = simulate_workload(
            small_bvh, small_workload.rays, GPUConfig(num_sms=1, predictor=config)
        )
        assert sum(r.hits for r in out.per_sm) == int(reference.sum())
