"""The CI workflow stays in sync with what the repo actually provides.

These tests pin the contract between ``.github/workflows/ci.yml`` and
the codebase: job names, the tested Python range, and the benchmark
gate invocation.  They parse the YAML with PyYAML when it is available
and fall back to structural text checks otherwise, so the suite runs in
environments without it.
"""

import os

import pytest

try:
    import yaml
except ImportError:  # pragma: no cover - PyYAML is present in dev envs
    yaml = None

WORKFLOW = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    ".github",
    "workflows",
    "ci.yml",
)


@pytest.fixture(scope="module")
def workflow_text():
    with open(WORKFLOW, "r", encoding="utf-8") as handle:
        return handle.read()


@pytest.fixture(scope="module")
def workflow(workflow_text):
    if yaml is None:
        pytest.skip("PyYAML not installed")
    return yaml.safe_load(workflow_text)


class TestWorkflowStructure:
    def test_parses_and_has_expected_jobs(self, workflow):
        assert set(workflow["jobs"]) == {
            "test", "lint", "benchmark-smoke", "telemetry-smoke",
            "chaos-smoke", "timing-smoke", "build-smoke",
        }

    def test_python_matrix_spans_supported_range(self, workflow):
        versions = workflow["jobs"]["test"]["strategy"]["matrix"]["python-version"]
        # pyproject declares requires-python >= 3.9; CI must cover both
        # ends of the supported range plus the newest release.
        assert "3.9" in versions
        assert "3.13" in versions

    def test_triggers_on_push_and_pr(self, workflow):
        # PyYAML 1.1 parses the bare `on:` key as boolean True.
        triggers = workflow.get("on", workflow.get(True))
        assert "pull_request" in triggers
        assert triggers["push"]["branches"] == ["main"]

    def test_hypothesis_examples_capped(self, workflow):
        assert "HYPOTHESIS_MAX_EXAMPLES" in workflow.get("env", {})

    def test_concurrency_cancels_superseded_runs(self, workflow):
        group = workflow.get("concurrency", {})
        # A push to an open PR must cancel the run it supersedes; the
        # group key has to vary per ref or runs would cancel each other
        # across branches.
        assert "ref" in str(group.get("group", ""))
        assert "cancel-in-progress" in group


class TestArtifactCache:
    def test_artifact_cache_env_points_at_cached_path(self, workflow):
        # Smoke jobs build the same seven BVHs; REPRO_ARTIFACT_CACHE
        # enables the content-addressed store and actions/cache persists
        # it across runs.
        assert workflow.get("env", {}).get("REPRO_ARTIFACT_CACHE")

    @pytest.mark.parametrize(
        "job", ["benchmark-smoke", "chaos-smoke", "timing-smoke"]
    )
    def test_smoke_jobs_restore_bvh_cache(self, workflow, job):
        cache_steps = [
            step for step in workflow["jobs"][job]["steps"]
            if "actions/cache" in step.get("uses", "")
        ]
        assert cache_steps, f"{job} must restore the BVH artifact cache"
        cache_path = workflow["env"]["REPRO_ARTIFACT_CACHE"]
        assert cache_steps[0]["with"]["path"] == cache_path
        # A store entry's bytes are a function of the serializer AND
        # the builder that produced the tree, so the key must
        # invalidate when either changes: io.py carries FORMAT_VERSION,
        # builder.py/lbvh.py the scalar oracles, vector.py the default
        # frontier engine.
        key = cache_steps[0]["with"]["key"]
        for module in (
            "src/repro/bvh/io.py",
            "src/repro/bvh/builder.py",
            "src/repro/bvh/lbvh.py",
            "src/repro/bvh/vector.py",
        ):
            assert module in key, f"{job} cache key must hash {module}"

    def test_build_smoke_skips_bvh_cache(self, workflow):
        # The build job times BVH construction itself; restoring a
        # prebuilt store would be dead weight (the build preset never
        # consults it).
        cache_steps = [
            step for step in workflow["jobs"]["build-smoke"]["steps"]
            if "actions/cache" in step.get("uses", "")
        ]
        assert not cache_steps


class TestBenchmarkGate:
    def test_smoke_job_runs_quick_check(self, workflow):
        runs = [
            step.get("run", "")
            for step in workflow["jobs"]["benchmark-smoke"]["steps"]
        ]
        quick = [r for r in runs if "repro bench --quick" in r]
        assert quick, "benchmark-smoke must run the quick preset"
        assert any("--check" in r for r in quick)
        # The quick run exercises the process-sharded sweep path.
        assert any("--jobs 2" in r for r in quick)

    def test_smoke_job_gates_predictor_throughput(self, workflow):
        runs = [
            step.get("run", "")
            for step in workflow["jobs"]["benchmark-smoke"]["steps"]
        ]
        gate = [r for r in runs if "repro bench --preset predictor" in r]
        assert gate, "benchmark-smoke must gate the predictor pipeline"
        assert any("--check" in r for r in gate)

    def test_committed_predictor_baseline_exists_for_gate(self):
        baseline = os.path.join(
            os.path.dirname(WORKFLOW), "..", "..",
            "benchmarks", "baselines", "BENCH_predictor.json",
        )
        assert os.path.exists(baseline)

    def test_lint_job_uses_ruff(self, workflow):
        runs = [
            step.get("run", "") for step in workflow["jobs"]["lint"]["steps"]
        ]
        assert any(r.strip().startswith("ruff check") for r in runs)

    def test_committed_baseline_exists_for_gate(self):
        # The --check invocation is meaningless without the artifact it
        # compares against.
        baseline = os.path.join(
            os.path.dirname(WORKFLOW), "..", "..",
            "benchmarks", "baselines", "BENCH_quick.json",
        )
        assert os.path.exists(baseline)

    def test_text_mentions_tier1_invocation(self, workflow_text):
        assert "python -m pytest -x -q" in workflow_text


class TestChaosGate:
    def test_smoke_job_runs_supervised_sweep_with_faults(self, workflow):
        runs = [
            step.get("run", "")
            for step in workflow["jobs"]["chaos-smoke"]["steps"]
        ]
        sweep = [r for r in runs if "repro simulate" in r]
        assert sweep, "chaos-smoke must run a repro simulate sweep"
        # The job only exercises the resilience layer if faults are
        # actually injected.
        assert any("--force-fail" in r for r in sweep)
        assert any("--chaos-rate" in r for r in sweep)

    def test_smoke_job_checks_manifest(self, workflow):
        runs = [
            step.get("run", "")
            for step in workflow["jobs"]["chaos-smoke"]["steps"]
        ]
        # Exit 0 alone is not enough: the job must also assert the
        # partial-results manifest recorded the degradation honestly.
        assert any("manifest" in r for r in runs)

    def test_uploads_artifact(self, workflow):
        paths = [
            step.get("with", {}).get("path", "")
            for step in workflow["jobs"]["chaos-smoke"]["steps"]
        ]
        assert any("SIM_chaos.json" in p for p in paths)


class TestTimingGate:
    def test_smoke_job_runs_timing_preset_check(self, workflow):
        runs = [
            step.get("run", "")
            for step in workflow["jobs"]["timing-smoke"]["steps"]
        ]
        gate = [r for r in runs if "repro bench --preset timing" in r]
        assert gate, "timing-smoke must run the timing preset"
        # --quick keeps the pinned workload but times a single repeat;
        # --check fails the build on cycle/counter drift.
        assert any("--quick" in r and "--check" in r for r in gate)

    def test_committed_timing_baseline_exists_for_gate(self):
        baseline = os.path.join(
            os.path.dirname(WORKFLOW), "..", "..",
            "benchmarks", "baselines", "BENCH_timing.json",
        )
        assert os.path.exists(baseline)

    def test_uploads_artifact(self, workflow):
        paths = [
            step.get("with", {}).get("path", "")
            for step in workflow["jobs"]["timing-smoke"]["steps"]
        ]
        assert any("BENCH_timing.json" in p for p in paths)


class TestBuildGate:
    def test_smoke_job_runs_build_preset_check(self, workflow):
        runs = [
            step.get("run", "")
            for step in workflow["jobs"]["build-smoke"]["steps"]
        ]
        gate = [r for r in runs if "repro bench --preset build" in r]
        assert gate, "build-smoke must run the build preset"
        # --quick keeps the pinned scenes but times a single repeat;
        # --check fails the build on tree-shape drift or an
        # engines-agree violation.
        assert any("--quick" in r and "--check" in r for r in gate)

    def test_committed_build_baseline_exists_for_gate(self):
        baseline = os.path.join(
            os.path.dirname(WORKFLOW), "..", "..",
            "benchmarks", "baselines", "BENCH_build.json",
        )
        assert os.path.exists(baseline)

    def test_uploads_artifact(self, workflow):
        paths = [
            step.get("with", {}).get("path", "")
            for step in workflow["jobs"]["build-smoke"]["steps"]
        ]
        assert any("BENCH_build.json" in p for p in paths)


class TestTelemetryGate:
    def test_smoke_job_runs_quick_check(self, workflow):
        runs = [
            step.get("run", "")
            for step in workflow["jobs"]["telemetry-smoke"]["steps"]
        ]
        assert any("repro telemetry --quick --check" in r for r in runs)

    def test_smoke_job_runs_sharded_telemetry_bench(self, workflow):
        # The distributed-aggregation path only exercises in CI if the
        # bench run is actually sharded with telemetry on.
        runs = [
            step.get("run", "")
            for step in workflow["jobs"]["telemetry-smoke"]["steps"]
        ]
        sharded = [
            r for r in runs
            if "repro bench" in r and "--jobs 2" in r and "--telemetry" in r
        ]
        assert sharded, "telemetry-smoke must run a sharded --telemetry bench"
        assert any("--trace-out" in r for r in sharded)

    def test_smoke_job_asserts_merged_section(self, workflow):
        # Exit 0 is not enough: the job must check the merged telemetry
        # section exists, is non-empty, and covers both worker pids.
        runs = [
            step.get("run", "")
            for step in workflow["jobs"]["telemetry-smoke"]["steps"]
        ]
        checks = [r for r in runs if '"telemetry"' in r or "workers" in r]
        assert any("pid" in r for r in checks)

    def test_uploads_artifact(self, workflow):
        paths = [
            step.get("with", {}).get("path", "")
            for step in workflow["jobs"]["telemetry-smoke"]["steps"]
        ]
        assert any("telemetry.json" in p for p in paths)
        # The stitched Chrome trace ships as a build artifact too.
        assert any("trace.json" in p for p in paths)
