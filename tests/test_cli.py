"""Unit tests for the ``python -m repro`` CLI."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_scenes_command(self, capsys):
        assert main(["--detail", "0.3", "scenes"]) == 0
        out = capsys.readouterr().out
        for code in ("SB", "SP", "LE", "LR", "FR", "BI", "CK"):
            assert code in out

    def test_quick_command(self, capsys):
        assert main(["--detail", "0.3", "quick", "FR", "--size", "12", "--spp", "1"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "predictor" in out

    def test_limit_command(self, capsys):
        assert main([
            "--detail", "0.3", "limit", "FR",
            "--size", "10", "--spp", "1", "--rays", "200",
        ]) == 0
        out = capsys.readouterr().out
        assert "oracle_lookup" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_faults_command(self, capsys):
        assert main([
            "--detail", "0.2", "faults", "SP",
            "--size", "12", "--spp", "1", "--rays", "250",
            "--rate", "0.15", "--in-flight", "16",
        ]) == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "faults injected" in out

    def test_faults_command_with_ray_perturbation(self, capsys):
        assert main([
            "--detail", "0.2", "faults", "FR",
            "--size", "10", "--spp", "1", "--rays", "150",
            "--rate", "0.2", "--in-flight", "16", "--perturb-rays",
        ]) == 0
        assert "OK" in capsys.readouterr().out

    def test_unknown_scene_exits_with_input_code(self, capsys):
        from repro.errors import EXIT_INPUT

        assert main(["quick", "ZZ"]) == EXIT_INPUT
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_bad_fault_rate_exits_with_input_code(self, capsys):
        from repro.errors import EXIT_INPUT

        assert main([
            "--detail", "0.2", "faults", "SP", "--rate", "7",
        ]) == EXIT_INPUT
        assert "table_rate" in capsys.readouterr().err

    def test_report_command(self, capsys, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig12_speedup.txt").write_text("data\n")
        out = tmp_path / "REPORT.md"
        assert main(["report", "--results", str(results), "--output", str(out)]) == 0
        assert out.exists()
        assert "Figure 12" in out.read_text()

    def test_telemetry_command(self, capsys, tmp_path):
        import json

        from repro import telemetry

        out = tmp_path / "telemetry.json"
        trace = tmp_path / "trace.json"
        assert main([
            "telemetry", "--scene", "SP", "--quick", "--check",
            "--out", str(out), "--trace-out", str(trace),
        ]) == 0
        captured = capsys.readouterr()
        assert "telemetry artifact valid" in captured.out
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro-telemetry/1"
        assert json.loads(trace.read_text())["traceEvents"]
        # The subcommand force-enables for its run only.
        assert not telemetry.enabled()

    def test_global_telemetry_flag_enables(self, capsys):
        from repro import telemetry

        try:
            assert main([
                "--detail", "0.2", "--telemetry", "quick", "SP",
                "--size", "8", "--spp", "1",
            ]) == 0
            assert telemetry.enabled()
            names = {
                c["name"]
                for c in telemetry.get_registry().snapshot()["counters"]
            }
            assert "trace.rays" in names
        finally:
            telemetry.disable()
            telemetry.reset_telemetry()
