"""Unit tests for the ``python -m repro`` CLI."""

import json
import os
import subprocess
import sys

import pytest

from repro.__main__ import main


class TestCLI:
    def test_scenes_command(self, capsys):
        assert main(["--detail", "0.3", "scenes"]) == 0
        out = capsys.readouterr().out
        for code in ("SB", "SP", "LE", "LR", "FR", "BI", "CK"):
            assert code in out

    def test_quick_command(self, capsys):
        assert main(["--detail", "0.3", "quick", "FR", "--size", "12", "--spp", "1"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "predictor" in out

    def test_limit_command(self, capsys):
        assert main([
            "--detail", "0.3", "limit", "FR",
            "--size", "10", "--spp", "1", "--rays", "200",
        ]) == 0
        out = capsys.readouterr().out
        assert "oracle_lookup" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_faults_command(self, capsys):
        assert main([
            "--detail", "0.2", "faults", "SP",
            "--size", "12", "--spp", "1", "--rays", "250",
            "--rate", "0.15", "--in-flight", "16",
        ]) == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "faults injected" in out

    def test_faults_command_with_ray_perturbation(self, capsys):
        assert main([
            "--detail", "0.2", "faults", "FR",
            "--size", "10", "--spp", "1", "--rays", "150",
            "--rate", "0.2", "--in-flight", "16", "--perturb-rays",
        ]) == 0
        assert "OK" in capsys.readouterr().out

    def test_unknown_scene_exits_with_input_code(self, capsys):
        from repro.errors import EXIT_INPUT

        assert main(["quick", "ZZ"]) == EXIT_INPUT
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_bad_fault_rate_exits_with_input_code(self, capsys):
        from repro.errors import EXIT_INPUT

        assert main([
            "--detail", "0.2", "faults", "SP", "--rate", "7",
        ]) == EXIT_INPUT
        assert "table_rate" in capsys.readouterr().err

    def test_report_command(self, capsys, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig12_speedup.txt").write_text("data\n")
        out = tmp_path / "REPORT.md"
        assert main(["report", "--results", str(results), "--output", str(out)]) == 0
        assert out.exists()
        assert "Figure 12" in out.read_text()

    def test_telemetry_command(self, capsys, tmp_path):
        import json

        from repro import telemetry

        out = tmp_path / "telemetry.json"
        trace = tmp_path / "trace.json"
        assert main([
            "telemetry", "--scene", "SP", "--quick", "--check",
            "--out", str(out), "--trace-out", str(trace),
        ]) == 0
        captured = capsys.readouterr()
        assert "telemetry artifact valid" in captured.out
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro-telemetry/1"
        assert json.loads(trace.read_text())["traceEvents"]
        # The subcommand force-enables for its run only.
        assert not telemetry.enabled()

    def test_global_telemetry_flag_enables(self, capsys):
        from repro import telemetry

        try:
            assert main([
                "--detail", "0.2", "--telemetry", "quick", "SP",
                "--size", "8", "--spp", "1",
            ]) == 0
            assert telemetry.enabled()
            names = {
                c["name"]
                for c in telemetry.get_registry().snapshot()["counters"]
            }
            assert "trace.rays" in names
        finally:
            telemetry.disable()
            telemetry.reset_telemetry()


def _run_repro(*argv, cwd=None):
    """Invoke the installed CLI exactly as a user would: a subprocess.

    Exit codes are an external contract; asserting them in-process via
    ``main()`` would miss anything ``sys.exit`` / argparse do on the way
    out.
    """
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True, text=True, env=env, cwd=cwd, timeout=300,
    )


class TestExitCodeContract:
    """Every structured error maps to its documented, stable exit code."""

    def test_every_error_class_has_documented_code(self):
        import inspect

        import repro.errors as errors_mod
        from repro.errors import ReproError

        documented = {
            value
            for name, value in vars(errors_mod).items()
            if name.startswith("EXIT_")
        }
        for _, cls in inspect.getmembers(errors_mod, inspect.isclass):
            if issubclass(cls, ReproError):
                assert cls.exit_code in documented, cls
                # The docstring table is the user-facing contract; every
                # constant must appear in it.
        doc = errors_mod.__doc__
        for name, value in vars(errors_mod).items():
            if name.startswith("EXIT_"):
                assert f"\n{value:<6d}" in doc or f"\n{value}  " in doc, (
                    f"{name}={value} missing from the exit-code table"
                )

    def test_exit_code_for_covers_new_classes(self):
        from repro import errors

        cases = {
            errors.SceneLoadError("x"): errors.EXIT_SCENE,
            errors.InputValidationError("x"): errors.EXIT_INPUT,
            errors.RayValidationError("x"): errors.EXIT_INPUT,
            errors.TraversalError("x"): errors.EXIT_TRAVERSAL,
            errors.SimulationStallError("x"): errors.EXIT_WATCHDOG,
            errors.OracleMismatchError("x"): errors.EXIT_ORACLE,
            errors.CheckpointError("x"): errors.EXIT_CHECKPOINT,
            errors.UnitTimeoutError("x"): errors.EXIT_TIMEOUT,
            errors.MemoryBudgetError("x"): errors.EXIT_MEMORY,
            errors.InjectedFaultError("x"): errors.EXIT_INJECTED,
            errors.SweepFailedError("x"): errors.EXIT_SWEEP,
            KeyError("x"): errors.EXIT_INPUT,
            ValueError("x"): errors.EXIT_INPUT,
            RuntimeError("x"): errors.EXIT_INTERNAL,
        }
        for exc, expected in cases.items():
            assert errors.exit_code_for(exc) == expected, exc

    def test_usage_error_exits_2(self):
        from repro.errors import EXIT_USAGE

        result = _run_repro("frobnicate")
        assert result.returncode == EXIT_USAGE

    def test_unknown_scene_exits_4(self):
        from repro.errors import EXIT_INPUT

        result = _run_repro("quick", "ZZ", "--size", "8", "--spp", "1")
        assert result.returncode == EXIT_INPUT
        assert result.stderr.startswith("error:")
        assert "Traceback" not in result.stderr

    def test_invalid_fault_rate_exits_4(self):
        from repro.errors import EXIT_INPUT

        result = _run_repro("--detail", "0.2", "faults", "SP", "--rate", "7")
        assert result.returncode == EXIT_INPUT

    def test_no_degrade_forced_failure_exits_12(self, tmp_path):
        from repro.errors import EXIT_SWEEP

        result = _run_repro(
            "--detail", "0.2", "simulate", "--scenes", "SB",
            "--size", "8", "--rays", "32",
            "--force-fail", "SB", "--no-degrade", "--max-retries", "0",
            "--out", str(tmp_path),
        )
        assert result.returncode == EXIT_SWEEP
        assert "error:" in result.stderr

    def test_corrupt_checkpoint_on_resume_exits_8(self, tmp_path):
        from repro.errors import EXIT_CHECKPOINT

        checkpoint = tmp_path / "SIM_simulate.checkpoint.json"
        checkpoint.write_text("{ not json")
        result = _run_repro(
            "--detail", "0.2", "simulate", "--scenes", "SB",
            "--size", "8", "--rays", "32",
            "--resume", "--checkpoint", str(checkpoint),
            "--out", str(tmp_path),
        )
        assert result.returncode == EXIT_CHECKPOINT
        assert "checkpoint" in result.stderr.lower()

    def test_mismatched_fingerprint_on_resume_exits_8(self, tmp_path):
        from repro.errors import EXIT_CHECKPOINT

        out = tmp_path / "results"
        first = _run_repro(
            "--detail", "0.2", "simulate", "--scenes", "SB",
            "--size", "8", "--rays", "32", "--supervise",
            "--out", str(out),
        )
        assert first.returncode == 0
        # Same checkpoint, different sweep shape: refuse to mix results.
        second = _run_repro(
            "--detail", "0.2", "simulate", "--scenes", "SB", "SP",
            "--size", "8", "--rays", "32", "--resume",
            "--out", str(out),
        )
        assert second.returncode == EXIT_CHECKPOINT

    def test_successful_sweep_exits_0_with_manifest(self, tmp_path):
        result = _run_repro(
            "--detail", "0.2", "simulate", "--scenes", "SB",
            "--size", "8", "--rays", "32",
            "--force-fail", "SB:1",
            "--out", str(tmp_path),
        )
        assert result.returncode == 0, result.stderr
        payload = json.loads((tmp_path / "SIM_simulate.json").read_text())
        manifest = payload["resilience"]["manifest"]
        assert manifest["complete"]
